//! Quickstart: price a single Credit Default Swap on the simulated FPGA
//! engine and check it against the reference pricer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cds_repro::engine::prelude::*;
use cds_repro::quant::prelude::*;

fn main() {
    // Market data: the paper's configuration of 1024 interest-rate and
    // 1024 hazard-rate points, generated deterministically.
    let market = MarketData::paper_workload(42);

    // One CDS option: 5-year maturity, quarterly premium payments, 40%
    // recovery on default.
    let option = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40);

    // Golden reference: straight-line CPU pricer.
    let golden = CdsPricer::new(market.clone()).price(&option);
    println!("reference pricer");
    println!("  fair spread          : {:.4} bps", golden.spread_bps);
    println!("  P(default by {:>4}y)  : {:.4}", option.maturity, golden.default_prob_at_maturity);
    println!("  premium annuity      : {:.6}", golden.premium_annuity);
    println!("  protection leg (unit): {:.6}", golden.protection_unit);
    println!("  schedule points      : {}", golden.time_points);

    // The paper's best single engine: the vectorised dataflow engine,
    // running on the discrete-event HLS simulator.
    let engine = FpgaCdsEngine::new(market, EngineVariant::Vectorised.config());
    let report = engine.price_batch(std::slice::from_ref(&option));

    println!("\nvectorised FPGA engine (simulated Alveo U280 @ 300 MHz)");
    println!("  fair spread          : {:.4} bps", report.spreads[0]);
    println!("  kernel cycles        : {}", report.kernel_cycles);
    println!("  kernel time          : {:.3} us", report.kernel_seconds * 1e6);
    println!("  PCIe transfer        : {:.3} us", report.transfer_seconds * 1e6);

    let diff = (report.spreads[0] - golden.spread_bps).abs();
    assert!(diff < 1e-6, "engine disagrees with reference by {diff} bps");
    println!("\nengine matches the reference pricer to {diff:.2e} bps ✓");
}
