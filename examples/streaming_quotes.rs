//! Streaming deployment: quotes arrive as a Poisson process and the
//! continuously-running engine prices them one by one — the regime the
//! paper's AAT further-work direction targets, where tail latency matters
//! as much as throughput.
//!
//! ```text
//! cargo run --release --example streaming_quotes
//! ```

use cds_repro::engine::prelude::*;
use cds_repro::engine::streaming::{poisson_arrivals, run_streaming};
use cds_repro::quant::prelude::*;
use std::rc::Rc;

const QUOTES: usize = 256;

fn main() {
    let market = Rc::new(MarketData::paper_workload(42));
    let mut generator = PortfolioGenerator::new(11);
    let options = generator.portfolio(QUOTES);
    let config = EngineVariant::Vectorised.config();

    println!("streaming {QUOTES} quotes through the vectorised engine (capacity ~26.5k opts/s)\n");
    println!(
        "{:>18} {:>14} {:>14} {:>16}",
        "offered (opts/s)", "p50 lat (us)", "p99 lat (us)", "achieved (opts/s)"
    );

    for rate in [5_000.0, 15_000.0, 22_000.0, 26_000.0, 40_000.0, 100_000.0] {
        let arrivals = poisson_arrivals(&config, rate, QUOTES, 42);
        let report = run_streaming(market.clone(), &config, &options, &arrivals);
        println!(
            "{:>18.0} {:>14.1} {:>14.1} {:>16.1}",
            rate,
            report.p50_us(&config),
            report.p99_us(&config),
            report.options_per_second,
        );
    }

    println!(
        "\nbelow saturation the latency is the pipeline fill (~{:.0} us);",
        config.clock.seconds(22 * 1024 / 2) * 1e6
    );
    println!("beyond ~26.5k opts/s queueing delay takes over and p99 explodes —");
    println!("the classic open-system hockey stick, now measurable pre-silicon.");
}
