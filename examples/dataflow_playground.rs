//! Using the HLS dataflow simulator directly: build a custom pipeline,
//! observe initiation intervals, backpressure and the Listing-1 effect.
//!
//! This example is about the *substrate* rather than the CDS engine — it
//! shows how `dataflow-sim` models the three phenomena the paper's
//! optimisations revolve around.
//!
//! ```text
//! cargo run --release --example dataflow_playground
//! ```

use dataflow_sim::prelude::*;

fn main() {
    println!("1. The II=7 dependency chain (the problem Listing 1 fixes)\n");
    // A stage that accumulates 1024 doubles with a loop-carried
    // dependency produces one result per 7 cycles...
    let naive = run_accumulator(7);
    // ...while the 7-lane version produces one per cycle.
    let fixed = run_accumulator(1);
    println!("   II=7 accumulation over 64 values: {naive} cycles");
    println!("   II=1 (Listing-1) accumulation   : {fixed} cycles");
    println!(
        "   speedup: {:.2}x (paper: ~7x on the long hazard loop)\n",
        naive as f64 / fixed as f64
    );

    println!("2. Backpressure: a slow consumer throttles the pipeline\n");
    for depth in [1usize, 2, 8] {
        let cycles = run_backpressure(depth);
        println!("   FIFO depth {depth:>2}: {cycles} cycles for 32 tokens through a II=5 consumer");
    }
    println!("   (deeper FIFOs only hide bursts; steady state is set by the slow stage)\n");

    println!("3. Dataflow concurrency: stages overlap instead of running sequentially\n");
    let seq: Cycle = (0..3).map(|_| run_stage_alone()).sum();
    let overlapped = run_three_stage_pipeline();
    println!("   three stages run back-to-back : {seq} cycles");
    println!("   same stages as a dataflow region: {overlapped} cycles");
    println!("   overlap gain: {:.2}x", seq as f64 / overlapped as f64);
}

/// A source feeding an accumulator stage with the given II.
fn run_accumulator(ii: u64) -> Cycle {
    let mut g = GraphBuilder::new();
    let (tx, rx) = g.stream::<f64>("values", 4);
    let (txo, rxo) = g.stream::<f64>("sums", 4);
    g.add(SourceStage::new("src", (0..64).map(f64::from).collect(), Cost::new(1, 1), tx));
    let mut acc = 0.0f64;
    g.add(MapStage::new("accumulate", rx, txo, Some(64), move |v| {
        acc += v;
        (acc, Cost::new(ii, 7))
    }));
    g.add_counted_sink("sink", rxo, 64);
    EventSim::new(g).run().expect("no deadlock").total_cycles
}

/// Fast producer into a slow (II=5) consumer through a FIFO of the given
/// depth.
fn run_backpressure(depth: usize) -> Cycle {
    let mut g = GraphBuilder::new();
    let (tx, rx) = g.stream::<u64>("narrow", depth);
    let (txo, rxo) = g.stream::<u64>("out", depth);
    g.add(SourceStage::new("fast-src", (0..32).collect(), Cost::new(1, 1), tx));
    g.add(MapStage::new("slow", rx, txo, Some(32), |v| (v, Cost::new(5, 5))));
    g.add_counted_sink("sink", rxo, 32);
    EventSim::new(g).run().expect("no deadlock").total_cycles
}

/// One 16-token stage with II=3 run on its own.
fn run_stage_alone() -> Cycle {
    let mut g = GraphBuilder::new();
    let (tx, rx) = g.stream::<u64>("in", 4);
    let (txo, rxo) = g.stream::<u64>("out", 4);
    g.add(SourceStage::new("src", (0..16).collect(), Cost::new(1, 1), tx));
    g.add(MapStage::new("work", rx, txo, Some(16), |v| (v + 1, Cost::new(3, 3))));
    g.add_counted_sink("sink", rxo, 16);
    EventSim::new(g).run().expect("no deadlock").total_cycles
}

/// The same three II=3 stages chained in one dataflow region: they
/// overlap, so the region takes barely longer than one stage.
fn run_three_stage_pipeline() -> Cycle {
    let mut g = GraphBuilder::new();
    let (tx, rx) = g.stream::<u64>("s0", 4);
    let (t1, r1) = g.stream::<u64>("s1", 4);
    let (t2, r2) = g.stream::<u64>("s2", 4);
    let (t3, r3) = g.stream::<u64>("s3", 4);
    g.add(SourceStage::new("src", (0..16).collect(), Cost::new(1, 1), tx));
    g.add(MapStage::new("a", rx, t1, Some(16), |v| (v + 1, Cost::new(3, 3))));
    g.add(MapStage::new("b", r1, t2, Some(16), |v| (v * 2, Cost::new(3, 3))));
    g.add(MapStage::new("c", r2, t3, Some(16), |v| (v - 1, Cost::new(3, 3))));
    g.add_counted_sink("sink", r3, 16);
    EventSim::new(g).run().expect("no deadlock").total_cycles
}
