//! Desk workflow: quote a credit spread ladder, mark an existing book to
//! market and compute bump sensitivities — with the fair spreads produced
//! by the simulated FPGA engine (demonstrating that the engine is a
//! drop-in pricing service, not just a kernel).
//!
//! ```text
//! cargo run --release --example risk_ladder
//! ```

use cds_repro::engine::prelude::*;
use cds_repro::quant::prelude::*;
use cds_repro::quant::risk;

fn main() {
    let market = MarketData::paper_workload(42);

    // 1. Spread ladder across the standard maturity grid, priced on the
    //    vectorised FPGA engine.
    let grid = [1.0, 2.0, 3.0, 5.0, 7.0];
    let ladder_options: Vec<CdsOption> =
        grid.iter().map(|&m| CdsOption::new(m, PaymentFrequency::Quarterly, 0.40)).collect();
    let engine = FpgaCdsEngine::new(market.clone(), EngineVariant::Vectorised.config());
    let report = engine.price_batch(&ladder_options);

    println!("credit spread ladder (fair spreads from the FPGA engine)");
    println!("{:>9} {:>13}", "maturity", "spread (bps)");
    for (m, s) in grid.iter().zip(&report.spreads) {
        println!("{m:>8}y {s:>13.2}");
    }

    // Cross-check against the reference ladder.
    let reference = risk::spread_ladder(&market, &grid, PaymentFrequency::Quarterly, 0.40);
    for ((_, golden), engine_spread) in reference.iter().zip(&report.spreads) {
        assert!((golden - engine_spread).abs() < 1e-6);
    }

    // 2. Mark an existing book to market: three seated contracts struck
    //    at various running spreads.
    println!("\nbook mark-to-market (protection buyer, per unit notional)");
    println!("{:>9} {:>14} {:>12} {:>12}", "maturity", "contract bps", "fair bps", "value");
    for (maturity, struck) in [(3.0, 80.0), (5.0, 140.0), (7.0, 260.0)] {
        let option = CdsOption::new(maturity, PaymentFrequency::Quarterly, 0.40);
        let mtm = risk::mark_to_market(&market, &option, struck);
        println!(
            "{maturity:>8}y {struck:>14.2} {:>12.2} {:>12.6}",
            mtm.fair_spread_bps, mtm.value_per_notional
        );
    }

    // 3. Sensitivities of the 5-year point.
    let five_year = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40);
    let sens = risk::sensitivities(&market, &five_year, 140.0);
    println!("\n5y position sensitivities (per unit notional)");
    println!("  CS01 (1bp hazard bump)   : {:+.6}", sens.cs01);
    println!("  IR01 (1bp rate bump)     : {:+.6}", sens.ir01);
    println!("  REC01 (1% recovery bump) : {:+.6}", sens.rec01);
    println!("\ncredit risk dominates, as expected for a CDS: |CS01| >> |IR01| ✓");
    assert!(sens.cs01.abs() > 5.0 * sens.ir01.abs());
}
