//! Engine scaling and power efficiency: the paper's §IV experiment.
//!
//! Sweeps the number of CDS engines on the simulated Alveo U280 from one
//! to the resource limit, comparing throughput, power draw and
//! options/Watt against the 24-core Cascade Lake Xeon.
//!
//! ```text
//! cargo run --release --example engine_scaling
//! ```

use cds_repro::cpu::CpuPerfModel;
use cds_repro::engine::multi::{engine_resource_usage, MultiEngine};
use cds_repro::engine::prelude::*;
use cds_repro::power::{options_per_watt, CpuPowerModel, FpgaPowerModel};
use cds_repro::quant::prelude::*;
use dataflow_sim::resource::Device;

const BATCH: usize = 1024;

fn main() {
    let market = MarketData::paper_workload(42);
    let options = PortfolioGenerator::uniform(BATCH, 5.5, PaymentFrequency::Quarterly, 0.40);

    // Resource fit: how many engines does the U280 take?
    let device = Device::alveo_u280();
    let config = EngineVariant::Vectorised.config();
    let per_engine = engine_resource_usage(&config, market.hazard.len());
    let max = MultiEngine::max_engines(&market, &config, &device);
    println!("one vectorised engine uses:");
    println!(
        "  {} LUTs, {} DSPs, {} URAM blocks",
        per_engine.luts, per_engine.dsps, per_engine.uram
    );
    println!("=> {max} engines fit on the {} (paper: five)\n", device.name);

    let cpu_perf = CpuPerfModel::xeon_8260m();
    let cpu_power = CpuPowerModel::xeon_8260m();
    let fpga_power = FpgaPowerModel::alveo_u280_cds();

    println!(
        "{:<22} {:>14} {:>10} {:>12} {:>10}",
        "configuration", "options/s", "Watts", "opts/Watt", "vs CPU"
    );
    println!("{}", "-".repeat(74));

    let cpu_rate = cpu_perf.options_per_second(24);
    let cpu_watts = cpu_power.watts(24);
    let cpu_eff = options_per_watt(cpu_rate, cpu_watts);
    println!(
        "{:<22} {:>14.2} {:>10.2} {:>12.2} {:>10}",
        "24-core Xeon 8260M", cpu_rate, cpu_watts, cpu_eff, "1.00x"
    );

    for n in 1..=max {
        let multi = MultiEngine::new(market.clone(), n).expect("validated engine count");
        let report = multi.price_batch(&options);
        let watts = fpga_power.watts(n as u32);
        let eff = options_per_watt(report.options_per_second, watts);
        println!(
            "{:<22} {:>14.2} {:>10.2} {:>12.2} {:>9.2}x",
            format!("{n} FPGA engine{}", if n == 1 { "" } else { "s" }),
            report.options_per_second,
            watts,
            eff,
            report.options_per_second / cpu_rate,
        );
    }

    let five = MultiEngine::new(market.clone(), max).unwrap().price_batch(&options);
    println!(
        "\nat {max} engines the FPGA delivers {:.2}x the CPU's throughput while drawing {:.1}x less power",
        five.options_per_second / cpu_rate,
        cpu_watts / fpga_power.watts(max as u32),
    );
    println!(
        "power efficiency advantage: {:.2}x options/Watt (paper: around seven times)",
        options_per_watt(five.options_per_second, fpga_power.watts(max as u32)) / cpu_eff,
    );

    // The same deployment, simulated as one discrete-event run containing
    // all engines concurrently, and under the staggered-DMA host schedule.
    let multi = MultiEngine::new(market.clone(), max).unwrap();
    let one_des = multi.price_batch_simulated(&options);
    let staggered = multi.price_batch_staggered(&options);
    println!("\ncross-checks at {max} engines:");
    println!("  single-DES simulation : {:>12.2} opts/s", one_des.options_per_second);
    println!("  staggered-DMA schedule: {:>12.2} opts/s", staggered.options_per_second);

    // And the paper's §V further work: single-precision engines.
    let mut f32_config = EngineVariant::Vectorised.config();
    f32_config.precision = cds_repro::engine::config::EnginePrecision::Single;
    let max32 = MultiEngine::max_engines(&market, &f32_config, &device);
    let f32_multi =
        MultiEngine::with_config(market, f32_config, device, max32).expect("f32 engines fit");
    let f32_report = f32_multi.price_batch(&options);
    println!(
        "  f32 further work      : {:>12.2} opts/s on {max32} engines ({:.2}x the f64 deployment)",
        f32_report.options_per_second,
        f32_report.options_per_second / five.options_per_second,
    );
}
