//! Overnight batch pricing: the HPC workload that motivates the paper —
//! "the capability to perform batch processing of financial data on HPC
//! machines, for instance overnight, which must still occur within
//! specific time constraints".
//!
//! Prices a realistic mixed portfolio on every engine variant plus the
//! multithreaded CPU engine, reporting throughput and the projected time
//! to price a large overnight book.
//!
//! ```text
//! cargo run --release --example portfolio_pricing
//! ```

use cds_repro::cpu::engine::CpuCdsEngine;
use cds_repro::cpu::parallel::price_parallel;
use cds_repro::engine::multi::MultiEngine;
use cds_repro::engine::prelude::*;
use cds_repro::quant::prelude::*;

const PORTFOLIO: usize = 512;
const OVERNIGHT_BOOK: f64 = 50_000_000.0; // 50M CDS positions to re-mark

fn main() {
    let market = MarketData::paper_workload(2024);
    let mut generator = PortfolioGenerator::new(7);
    let options = generator.portfolio(PORTFOLIO);

    // Reference spreads for validation.
    let reference: Vec<f64> =
        options.iter().map(|o| CdsPricer::new(market.clone()).price(o).spread_bps).collect();
    let stats = |xs: &[f64]| {
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        (min, mean, max)
    };
    let (lo, mean, hi) = stats(&reference);
    println!("portfolio of {PORTFOLIO} CDS options");
    println!("  spreads: min {lo:.1} bps  mean {mean:.1} bps  max {hi:.1} bps\n");

    println!("{:<38} {:>14} {:>16}", "engine", "options/s", "50M book (mins)");
    println!("{}", "-".repeat(72));

    // CPU engine, actually executed on this machine.
    let cpu = CpuCdsEngine::new(&market);
    let t0 = std::time::Instant::now();
    let cpu_spreads = price_parallel(&cpu, &options, 4);
    let cpu_rate = PORTFOLIO as f64 / t0.elapsed().as_secs_f64();
    check(&cpu_spreads, &reference, "host CPU");
    row("host CPU engine (4 threads, measured)", cpu_rate);

    // Each simulated FPGA variant.
    for variant in EngineVariant::ALL {
        let engine = FpgaCdsEngine::new(market.clone(), variant.config());
        let report = engine.price_batch(&options);
        check(&report.spreads, &reference, variant.paper_label());
        row(variant.paper_label(), report.options_per_second);
    }

    // Full five-engine U280 deployment.
    let multi = MultiEngine::new(market.clone(), 5).expect("five engines fit the U280");
    let report = multi.price_batch(&options);
    check(&report.spreads, &reference, "5-engine U280");
    row("5x vectorised engines (full U280)", report.options_per_second);

    println!("\nall engines agree with the reference pricer ✓");
}

fn row(label: &str, rate: f64) {
    let minutes = OVERNIGHT_BOOK / rate / 60.0;
    println!("{label:<38} {rate:>14.2} {minutes:>16.1}");
}

fn check(spreads: &[f64], reference: &[f64], label: &str) {
    for (s, r) in spreads.iter().zip(reference) {
        assert!((s - r).abs() < 1e-6 * (1.0 + r.abs()), "{label}: {s} vs reference {r}");
    }
}
