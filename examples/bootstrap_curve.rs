//! Curve bootstrapping: the inverse problem. Recover a hazard curve from
//! quoted par spreads, verify the round trip through the FPGA engine, and
//! inspect the fitted forward hazards.
//!
//! ```text
//! cargo run --release --example bootstrap_curve
//! ```

use cds_repro::engine::prelude::*;
use cds_repro::quant::bootstrap::{bootstrap_hazard, CdsQuote};
use cds_repro::quant::prelude::*;

fn main() {
    // A quoted CDS ladder, as a desk would see it (upward-sloping credit).
    let interest = Curve::flat(0.02, 128, 30.0);
    let quotes = vec![
        CdsQuote {
            maturity: 1.0,
            spread_bps: 55.0,
            frequency: PaymentFrequency::Quarterly,
            recovery: 0.40,
        },
        CdsQuote {
            maturity: 2.0,
            spread_bps: 72.0,
            frequency: PaymentFrequency::Quarterly,
            recovery: 0.40,
        },
        CdsQuote {
            maturity: 3.0,
            spread_bps: 96.0,
            frequency: PaymentFrequency::Quarterly,
            recovery: 0.40,
        },
        CdsQuote {
            maturity: 5.0,
            spread_bps: 128.0,
            frequency: PaymentFrequency::Quarterly,
            recovery: 0.40,
        },
        CdsQuote {
            maturity: 7.0,
            spread_bps: 146.0,
            frequency: PaymentFrequency::Quarterly,
            recovery: 0.40,
        },
    ];

    let result = bootstrap_hazard(&interest, &quotes).expect("arbitrage-free ladder bootstraps");

    println!("bootstrapped piecewise hazard curve");
    println!(
        "{:>10} {:>12} {:>16} {:>12}",
        "maturity", "quote (bps)", "fwd hazard (%)", "iterations"
    );
    let mut prev = 0.0;
    for ((q, h), it) in quotes.iter().zip(&result.segment_hazards).zip(&result.iterations) {
        println!(
            "{:>9}y {:>12.1} {:>15.3}% {:>12}   (segment {:.2}y..{:.2}y)",
            q.maturity,
            q.spread_bps,
            h * 100.0,
            it,
            prev,
            q.maturity
        );
        prev = q.maturity;
    }

    // Round trip: reprice every quote off the fitted curve — on the FPGA
    // engine this time.
    let market = MarketData { interest, hazard: result.hazard.clone() };
    let options: Vec<CdsOption> =
        quotes.iter().map(|q| CdsOption::new(q.maturity, q.frequency, q.recovery)).collect();
    let engine = FpgaCdsEngine::new(market, EngineVariant::Vectorised.config());
    let report = engine.price_batch(&options);

    println!("\nround trip through the FPGA engine:");
    let mut worst: f64 = 0.0;
    for (q, s) in quotes.iter().zip(&report.spreads) {
        let err = (s - q.spread_bps).abs();
        worst = worst.max(err);
        println!(
            "  {:>4}y: quoted {:>7.2} bps, repriced {:>10.5} bps  (err {err:.2e})",
            q.maturity, q.spread_bps, s
        );
    }
    assert!(worst < 1e-5, "round trip drifted by {worst} bps");
    println!("\nround-trip error below 1e-5 bps for every quote ✓");
}
