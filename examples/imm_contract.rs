//! Pricing a real, dated CDS contract: market conventions end to end.
//!
//! Standard CDS contracts are specified by dates, not year fractions —
//! they mature on IMM dates (the 20th of Mar/Jun/Sep/Dec) and pay
//! quarterly on the same grid, with a short first stub. This example
//! walks the full chain: trade date → IMM schedule → year fractions →
//! spread, comparing against the synthetic evenly-spaced schedule the
//! throughput experiments use.
//!
//! ```text
//! cargo run --release --example imm_contract
//! ```

use cds_repro::quant::calendar::{imm_payment_dates, is_imm_date, Date};
use cds_repro::quant::cds::price_cds_with_schedule;
use cds_repro::quant::daycount::DayCount;
use cds_repro::quant::prelude::*;

fn main() {
    let market = MarketData::paper_workload(42);
    let trade = Date::new(2026, 7, 5).expect("valid trade date");

    println!("trade date: {trade}");
    println!("tenor     : 5Y standard contract, Act/365F, 40% recovery\n");

    let (maturity, schedule) =
        imm_schedule(&trade, 5, DayCount::Act365Fixed).expect("IMM schedule builds");
    assert!(is_imm_date(&maturity));
    println!("scheduled maturity: {maturity} (IMM roll)");

    let dates = imm_payment_dates(&trade, &maturity);
    println!("payment dates ({}):", dates.len());
    for (d, t) in dates.iter().take(4).zip(schedule.points()) {
        println!("  {d}  (t = {t:.4}y)");
    }
    println!("  ... {} more, quarterly on the IMM grid", dates.len().saturating_sub(4));

    // Price off the dated schedule.
    let dated = price_cds_with_schedule(&market, &schedule, 0.40);
    println!("\ndated contract fair spread : {:.4} bps", dated.spread_bps);

    // Compare with the synthetic evenly-spaced contract of the same
    // economic length (what the throughput experiments price).
    let synthetic_maturity = *schedule.points().last().expect("non-empty schedule");
    let synthetic = CdsPricer::new(market).price(&CdsOption::new(
        synthetic_maturity,
        PaymentFrequency::Quarterly,
        0.40,
    ));
    println!("synthetic {synthetic_maturity:.3}y equivalent  : {:.4} bps", synthetic.spread_bps);

    let diff_bps = (dated.spread_bps - synthetic.spread_bps).abs();
    println!("\nconvention difference: {diff_bps:.4} bps (stub vs even periods)");
    assert!(diff_bps < 2.0, "conventions should agree to a couple of bps");
}
