//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator, the stand-in for
/// `rand::rngs::StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
            let m = rng.gen_range(1u8..=12);
            assert!((1..=12).contains(&m));
        }
    }

    #[test]
    fn integer_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
