//! In-tree stand-in for the subset of the `rand` 0.8 API this workspace
//! uses, so the build has no network dependency (the CI and dev
//! containers are offline; see `docs/OBSERVABILITY.md`).
//!
//! Covered surface: [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over half-open and inclusive integer/float ranges, and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded with
//! splitmix64 — deterministic for a given seed on every platform, which
//! is exactly the property the harness and tests rely on. It is **not**
//! the same bit stream as upstream `StdRng` (ChaCha12); nothing in this
//! repo depends on upstream's stream, only on seed-determinism.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod distributions;
pub mod rngs;

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open `lo..hi` or inclusive
    /// `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of a generator from a seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}
