//! Uniform sampling over ranges, mirroring the slice of
//! `rand::distributions::uniform` the workspace touches.

/// Uniform-range sampling traits.
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a bounded range.
    pub trait SampleUniform: Sized {
        /// Sample from `[lo, hi)` when `inclusive` is false, `[lo, hi]`
        /// otherwise.
        fn sample_between<R: RngCore + ?Sized>(
            lo: Self,
            hi: Self,
            inclusive: bool,
            rng: &mut R,
        ) -> Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    // Span computed in u128 so signed ranges and wide
                    // unsigned ranges cannot overflow.
                    let lo_w = lo as i128;
                    let hi_w = hi as i128;
                    let span = (hi_w - lo_w + if inclusive { 1 } else { 0 }) as u128;
                    assert!(span > 0, "cannot sample from empty range");
                    let offset = (rng.next_u64() as u128) % span;
                    (lo_w + offset as i128) as $t
                }
            }
        )*};
    }
    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_sample_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    lo: Self,
                    hi: Self,
                    _inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    assert!(hi > lo, "cannot sample from empty range");
                    // 53 random mantissa bits -> unit in [0, 1).
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    lo + (hi - lo) * unit as $t
                }
            }
        )*};
    }
    impl_sample_uniform_float!(f32, f64);

    /// Range-like arguments accepted by [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draw one value.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_between(self.start, self.end, false, rng)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            T::sample_between(lo, hi, true, rng)
        }
    }
}
