//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream there is no value tree and no shrinking: `generate`
/// draws one concrete value.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Box a strategy as a trait object (used by [`crate::prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed strategies (built by
/// [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from the candidate arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Integer and float primitives that range strategies can produce.
pub trait RangeValue: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive` = false) or `[lo, hi]`.
    fn draw(lo: Self, hi: Self, inclusive: bool, rng: &mut TestRng) -> Self;
}

macro_rules! impl_range_value_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn draw(lo: Self, hi: Self, inclusive: bool, rng: &mut TestRng) -> Self {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot generate from empty range");
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_value_float {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn draw(lo: Self, hi: Self, _inclusive: bool, rng: &mut TestRng) -> Self {
                assert!(hi > lo, "cannot generate from empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}
impl_range_value_float!(f32, f64);

impl<T: RangeValue + Copy> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::draw(self.start, self.end, false, rng)
    }
}

impl<T: RangeValue + Copy> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::draw(*self.start(), *self.end(), true, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = TestRng::from_name("strategy_unit");
        let s = (1u64..9, 0.5f64..2.0).prop_map(|(n, x)| (n * 2, x));
        for _ in 0..200 {
            let (n, x) = s.generate(&mut rng);
            assert!((2..18).contains(&n) && n % 2 == 0);
            assert!((0.5..2.0).contains(&x));
        }
    }

    #[test]
    fn flat_map_dependent_generation() {
        let mut rng = TestRng::from_name("flat_map_unit");
        let s = (2usize..6).prop_flat_map(|n| crate::collection::vec(0u32..10, n));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = TestRng::from_name("union_unit");
        let s = Union::new(vec![boxed(Just(1u8)), boxed(Just(2u8)), boxed(Just(3u8))]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
