//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for [`fn@vec`]: an exact `usize` or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`fn@vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_name("collection_unit");
        let exact = vec(0u8..10, 5usize);
        assert_eq!(exact.generate(&mut rng).len(), 5);
        let ranged = vec(0u8..10, 0..4usize);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[ranged.generate(&mut rng).len()] = true;
        }
        assert!(seen.iter().all(|&s| s), "lengths 0..=3 all reachable");
    }
}
