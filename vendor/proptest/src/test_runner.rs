//! Test-case configuration, error type, and the deterministic RNG.

/// Per-`proptest!` configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Build from any message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

/// Deterministic generator seeded from the test name, so a given test
/// explores the same cases on every run and every platform.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        TestRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
