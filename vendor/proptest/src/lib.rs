//! In-tree stand-in for the subset of the `proptest` 1.x API this
//! workspace uses, so property tests run without network access.
//!
//! Differences from upstream, by design:
//!
//! * generation is plain uniform random from a **fixed per-test seed**
//!   (derived from the test name), so every run explores the same cases
//!   — deterministic CI, reproducible failures;
//! * there is **no shrinking**: a failing case panics with the values'
//!   `Debug` rendering where available and the case index always;
//! * only the combinators this repo calls exist: ranges, tuples,
//!   [`strategy::Just`], `prop_map`, `prop_flat_map`,
//!   [`collection::vec`], [`option::of`], and [`prop_oneof!`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each argument is drawn from its strategy and
/// the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__cfg.cases {
                let __vals = ($(
                    $crate::strategy::Strategy::generate(&($strat), &mut __rng),
                )+);
                let __res: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        let ($($pat,)+) = __vals;
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __res {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        __case + 1,
                        __cfg.cases,
                        e.message
                    );
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// Assert inside a property test; failure aborts the case with a message
/// instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} != {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}: {:?} != {:?}",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: both sides equal {:?}", __l);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}
