//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `None` half the time and `Some(inner)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.next_u64() & 1 == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
