//! In-tree stand-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use, so `cargo bench` works offline.
//!
//! It is a measurement harness, not a statistics package: each benchmark
//! runs a warm-up iteration plus `sample_size` timed iterations and
//! prints the mean wall-clock time per iteration. `--test` (the CI smoke
//! mode, `cargo bench -- --test`) runs every benchmark body exactly once
//! and reports `ok` without timing. Unknown CLI flags are ignored, so
//! whatever cargo forwards is tolerated.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle passed to every bench function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { test_mode: std::env::args().any(|a| a == "--test") }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        run_one("", &id.into().full, 10, test_mode, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare the per-iteration work (accepted, not used in reporting).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Time one closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into().full, self.sample_size, self.test_mode, f);
        self
    }

    /// Time one closure over a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into().full, self.sample_size, self.test_mode, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    samples: usize,
    test_mode: bool,
    mut f: F,
) {
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    let mut bencher =
        Bencher { iterations: if test_mode { 1 } else { samples as u64 }, elapsed: Duration::ZERO };
    if test_mode {
        f(&mut bencher);
        println!("test {label} ... ok");
        return;
    }
    // One untimed warm-up pass, then the timed samples.
    let mut warm = Bencher { iterations: 1, elapsed: Duration::ZERO };
    f(&mut warm);
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iterations.max(1) as f64;
    println!("{label:<60} {per_iter:>14.1} ns/iter ({} iters)", bencher.iterations);
}

/// Timing handle handed to the benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the configured number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{}/{}", name.into(), parameter) }
    }

    /// A bare parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { full: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { full: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// Declared per-iteration workload size.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Collect bench functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
