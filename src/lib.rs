//! # cds-repro — umbrella crate
//!
//! Re-exports the workspace crates that make up the reproduction of
//! *"Optimisation of an FPGA Credit Default Swap engine by embracing
//! dataflow techniques"* (Brown, Klaisoongnoen, Thomson Brown — IEEE
//! CLUSTER 2021), so the top-level `examples/` and `tests/` can address
//! the whole system through one dependency.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! per-experiment index.

pub use cds_cpu as cpu;
pub use cds_engine as engine;
pub use cds_power as power;
pub use cds_quant as quant;
pub use dataflow_sim as dataflow;
