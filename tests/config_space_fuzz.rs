//! Configuration-space robustness: random combinations of every engine
//! knob (stream depth, vectorisation factor, URAM ports, precision,
//! region mode, hazard II, accrual FIFO override) must produce a graph
//! that completes without deadlock and prices identically to the
//! reference (or within f32 tolerance in single-precision mode).

use cds_repro::engine::config::EnginePrecision;
use cds_repro::engine::prelude::*;
use cds_repro::quant::prelude::*;
use dataflow_sim::region::RegionMode;
use proptest::prelude::*;

fn any_config() -> impl Strategy<Value = EngineConfig> {
    (
        1usize..=8, // stream depth
        1usize..=8, // vector factor
        1usize..=4, // uram ports per function
        prop_oneof![Just(EnginePrecision::Double), Just(EnginePrecision::Single)],
        prop_oneof![Just(RegionMode::Continuous), Just(RegionMode::PerOption)],
        prop_oneof![Just(HazardIiMode::PartialSums), Just(HazardIiMode::DependencyChained)],
        proptest::option::of(2usize..32), // accrual FIFO override
    )
        .prop_map(|(depth, v, ports, precision, mode, ii, accrual)| {
            let mut config = EngineVariant::Vectorised.config();
            config.stream_depth = depth;
            config.vector_factor = v;
            config.uram_ports_per_function = ports;
            config.precision = precision;
            config.region_mode = mode;
            config.hazard_ii = ii;
            config.accrual_fifo_depth = accrual;
            config
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn any_configuration_completes_and_prices_correctly(
        config in any_config(),
        maturity in 0.4f64..6.0,
        recovery in 0.0f64..0.9,
        n_options in 1usize..5,
        seed in 0u64..20,
    ) {
        let market = MarketData::paper_workload(seed);
        let options: Vec<CdsOption> = (0..n_options)
            .map(|i| CdsOption::new(maturity + 0.25 * i as f64, PaymentFrequency::Quarterly, recovery))
            .collect();
        let pricer = CdsPricer::new(market.clone());
        let tolerance = match config.precision {
            EnginePrecision::Double => 1e-7,
            EnginePrecision::Single => 5e-3,
        };
        // Any deadlock, runaway or panic fails the property.
        let engine = FpgaCdsEngine::new(market, config);
        let report = engine.price_batch(&options);
        prop_assert_eq!(report.spreads.len(), options.len());
        prop_assert!(report.kernel_cycles > 0);
        for (o, s) in options.iter().zip(&report.spreads) {
            let golden = pricer.price(o).spread_bps;
            prop_assert!(
                (s - golden).abs() < tolerance * (1.0 + golden.abs()),
                "spread {} vs {} under {:?}", s, golden, engine.config()
            );
        }
    }

    #[test]
    fn throughput_never_exceeds_port_bandwidth_bound(
        v in 1usize..=8,
        ports in 1usize..=4,
        seed in 0u64..10,
    ) {
        // Physics check: the hazard unit cannot beat its aggregate URAM
        // bandwidth, whatever the replication factor.
        let market = MarketData::paper_workload(seed);
        let mut config = EngineVariant::Vectorised.config();
        config.vector_factor = v;
        config.uram_ports_per_function = ports;
        let options = PortfolioGenerator::uniform(12, 5.5, PaymentFrequency::Quarterly, 0.4);
        let engine = FpgaCdsEngine::new(market, config);
        let report = engine.price_batch(&options);
        // 22 points × 1024 knots per option at `ports` knots/cycle is the
        // floor on kernel cycles (minus small boundary effects).
        let floor = (12.0 * 22.0 * 1024.0 / ports as f64) * 0.95;
        prop_assert!(
            (report.kernel_cycles as f64) >= floor,
            "cycles {} below physical bound {} (V={}, ports={})",
            report.kernel_cycles, floor, v, ports
        );
    }
}
