//! Numerical equivalence: every engine implementation — baseline,
//! the three dataflow variants, the multi-engine deployment and the CPU
//! engines — must price identically to the golden reference pricer, for
//! arbitrary portfolios.

use cds_repro::cpu::engine::CpuCdsEngine;
use cds_repro::cpu::parallel::price_parallel;
use cds_repro::engine::multi::MultiEngine;
use cds_repro::engine::prelude::*;
use cds_repro::quant::prelude::*;
use proptest::prelude::*;

/// Shared cross-engine agreement budget (see `cds_quant::ulp`): 128 ULPs
/// plus a 1e-9 absolute floor, ~16x the worst divergence ever measured
/// across the routes. Far tighter than the 1e-7 relative tolerance this
/// suite used before the comparator existed.
const CMP: UlpComparator = UlpComparator::ENGINE_F64;

fn assert_close(label: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{label}: length mismatch");
    if let Err((i, m)) = CMP.check_all(got, want) {
        panic!("{label}[{i}]: {m}");
    }
}

fn reference(market: &MarketData<f64>, options: &[CdsOption]) -> Vec<f64> {
    let pricer = CdsPricer::new(market.clone());
    options.iter().map(|o| pricer.price(o).spread_bps).collect()
}

#[test]
fn all_engines_agree_on_mixed_portfolio() {
    let market = MarketData::paper_workload(99);
    let options = PortfolioGenerator::new(5).portfolio(24);
    let golden = reference(&market, &options);

    for variant in EngineVariant::ALL {
        let engine = FpgaCdsEngine::new(market.clone(), variant.config());
        let report = engine.price_batch(&options);
        assert_close(variant.paper_label(), &report.spreads, &golden);
    }

    let multi = MultiEngine::new(market.clone(), 5).unwrap();
    assert_close("multi-engine", &multi.price_batch(&options).spreads, &golden);

    let cpu = CpuCdsEngine::new(&market);
    assert_close("cpu sequential", &cpu.price_batch(&options), &golden);
    assert_close("cpu parallel", &price_parallel(&cpu, &options, 3), &golden);
}

#[test]
fn engines_handle_every_payment_frequency() {
    let market = MarketData::paper_workload(3);
    let pricer = CdsPricer::new(market.clone());
    for freq in PaymentFrequency::ALL {
        let option = CdsOption::new(3.5, freq, 0.45);
        let golden = pricer.price(&option).spread_bps;
        for variant in EngineVariant::ALL {
            let engine = FpgaCdsEngine::new(market.clone(), variant.config());
            let report = engine.price_batch(std::slice::from_ref(&option));
            if let Err(m) = CMP.check(report.spreads[0], golden) {
                panic!("{variant:?} {freq:?}: {m}");
            }
        }
    }
}

#[test]
fn short_stub_only_option() {
    // A maturity shorter than one payment period: single stub time point.
    let market = MarketData::paper_workload(8);
    let option = CdsOption::new(0.1, PaymentFrequency::Quarterly, 0.40);
    let golden = CdsPricer::new(market.clone()).price(&option).spread_bps;
    for variant in EngineVariant::ALL {
        let engine = FpgaCdsEngine::new(market.clone(), variant.config());
        let report = engine.price_batch(std::slice::from_ref(&option));
        if let Err(m) = CMP.check(report.spreads[0], golden) {
            panic!("{variant:?}: {m}");
        }
    }
}

#[test]
fn single_option_batch_equals_larger_batch_prefix() {
    // Streaming more options must not change earlier results.
    let market = MarketData::paper_workload(17);
    let options = PortfolioGenerator::new(2).portfolio(8);
    let engine = FpgaCdsEngine::new(market.clone(), EngineVariant::Vectorised.config());
    let full = engine.price_batch(&options);
    let first = engine.price_batch(&options[..1]);
    assert!((full.spreads[0] - first.spreads[0]).abs() < 1e-12);
}

#[test]
fn engines_agree_under_stressed_market() {
    // A crisis-regime market (inverted 9% hazard, near-zero rates) far
    // from the calibration workload: numerics must still agree.
    let market = MarketData::stressed_workload(13);
    let options = PortfolioGenerator::new(6).portfolio(12);
    let golden = reference(&market, &options);
    assert!(golden.iter().all(|s| *s > 200.0), "stressed spreads should be wide: {golden:?}");
    for variant in EngineVariant::ALL {
        let engine = FpgaCdsEngine::new(market.clone(), variant.config());
        assert_close(variant.paper_label(), &engine.price_batch(&options).spreads, &golden);
    }
}

#[test]
fn kernel_cycles_monotone_in_batch_size() {
    let market = MarketData::paper_workload(42);
    let engine = FpgaCdsEngine::new(market, EngineVariant::Vectorised.config());
    let mut prev = 0;
    for n in [4usize, 8, 16, 32] {
        let options = PortfolioGenerator::uniform(n, 5.5, PaymentFrequency::Quarterly, 0.4);
        let cycles = engine.price_batch(&options).kernel_cycles;
        assert!(cycles > prev, "n={n}: {cycles} <= {prev}");
        prev = cycles;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn vectorised_engine_matches_reference_on_random_options(
        maturities in proptest::collection::vec(0.3f64..9.5, 1..6),
        recovery in 0.0f64..0.9,
        seed in 0u64..50,
    ) {
        let market = MarketData::paper_workload(seed);
        let options: Vec<CdsOption> = maturities
            .iter()
            .map(|&m| CdsOption::new(m, PaymentFrequency::Quarterly, recovery))
            .collect();
        let golden = reference(&market, &options);
        let engine = FpgaCdsEngine::new(market, EngineVariant::Vectorised.config());
        let report = engine.price_batch(&options);
        for (g, w) in report.spreads.iter().zip(&golden) {
            prop_assert!(CMP.matches(*g, *w), "{:?}", CMP.check(*g, *w));
        }
    }

    #[test]
    fn baseline_engine_matches_reference_on_random_options(
        maturity in 0.3f64..9.5,
        recovery in 0.0f64..0.9,
        seed in 0u64..50,
    ) {
        let market = MarketData::paper_workload(seed);
        let option = CdsOption::new(maturity, PaymentFrequency::SemiAnnual, recovery);
        let golden = CdsPricer::new(market.clone()).price(&option).spread_bps;
        let engine = FpgaCdsEngine::new(market, EngineVariant::XilinxBaseline.config());
        let report = engine.price_batch(std::slice::from_ref(&option));
        prop_assert!(
            CMP.matches(report.spreads[0], golden),
            "{:?}", CMP.check(report.spreads[0], golden)
        );
    }
}
