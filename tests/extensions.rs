//! Integration tests for the extension features beyond the paper's core
//! tables: bootstrapping, streaming, reduced precision and graph
//! analysis — each exercised through the full stack.

use cds_repro::engine::config::EnginePrecision;
use cds_repro::engine::multi::MultiEngine;
use cds_repro::engine::prelude::*;
use cds_repro::engine::streaming::{poisson_arrivals, run_streaming};
use cds_repro::engine::variants::dataflow::build_graph;
use cds_repro::quant::bootstrap::{bootstrap_hazard, CdsQuote};
use cds_repro::quant::prelude::*;
use dataflow_sim::analysis::{analyse_run, check_acyclic, critical_path};
use dataflow_sim::event_sim::EventSim;
use dataflow_sim::resource::Device;
use std::rc::Rc;

#[test]
fn bootstrap_round_trip_through_fpga_engine() {
    // Market quotes → bootstrapped curve → FPGA engine reprices to par.
    let interest = Curve::flat(0.025, 64, 30.0);
    let quotes: Vec<CdsQuote> = [(1.0, 60.0), (3.0, 95.0), (5.0, 125.0), (7.0, 140.0)]
        .into_iter()
        .map(|(maturity, spread_bps)| CdsQuote {
            maturity,
            spread_bps,
            frequency: PaymentFrequency::Quarterly,
            recovery: 0.40,
        })
        .collect();
    let fitted = bootstrap_hazard(&interest, &quotes).expect("ladder bootstraps");
    let market = MarketData { interest, hazard: fitted.hazard };
    let options: Vec<CdsOption> =
        quotes.iter().map(|q| CdsOption::new(q.maturity, q.frequency, q.recovery)).collect();
    let engine = FpgaCdsEngine::new(market, EngineVariant::Vectorised.config());
    let report = engine.price_batch(&options);
    for (q, s) in quotes.iter().zip(&report.spreads) {
        assert!(
            (s - q.spread_bps).abs() < 1e-5,
            "maturity {}: {s} vs {}",
            q.maturity,
            q.spread_bps
        );
    }
}

#[test]
fn streaming_saturated_throughput_matches_batch() {
    let market = Rc::new(MarketData::paper_workload(42));
    let options = PortfolioGenerator::uniform(64, 5.5, PaymentFrequency::Quarterly, 0.40);
    let config = EngineVariant::Vectorised.config();

    let batch_rate = FpgaCdsEngine::new((*market).clone(), config.clone())
        .price_batch(&options)
        .options_per_second;

    // Offer far more load than the engine can take: the achieved rate
    // must converge to the batch rate (same hardware, saturated).
    let arrivals = poisson_arrivals(&config, 500_000.0, options.len(), 1);
    let streamed = run_streaming(market, &config, &options, &arrivals);
    let ratio = streamed.options_per_second / batch_rate;
    assert!(
        (0.85..1.15).contains(&ratio),
        "streamed {} vs batch {batch_rate}",
        streamed.options_per_second
    );
}

#[test]
fn streaming_latency_hockey_stick() {
    let market = Rc::new(MarketData::paper_workload(42));
    let options = PortfolioGenerator::uniform(48, 5.5, PaymentFrequency::Quarterly, 0.40);
    let config = EngineVariant::Vectorised.config();
    let light = run_streaming(
        market.clone(),
        &config,
        &options,
        &poisson_arrivals(&config, 3_000.0, options.len(), 2),
    );
    let heavy = run_streaming(
        market,
        &config,
        &options,
        &poisson_arrivals(&config, 150_000.0, options.len(), 2),
    );
    assert!(
        heavy.p99_cycles > 4 * light.p99_cycles,
        "light p99 {} heavy p99 {}",
        light.p99_cycles,
        heavy.p99_cycles
    );
    // Spreads identical regardless of arrival pattern.
    assert_eq!(light.spreads, heavy.spreads);
}

#[test]
fn single_precision_engines_fit_more_and_stay_accurate() {
    let market = MarketData::paper_workload(42);
    let device = Device::alveo_u280();
    let mut config = EngineVariant::Vectorised.config();
    config.precision = EnginePrecision::Single;
    let n32 = MultiEngine::max_engines(&market, &config, &device);
    assert!(n32 > 5, "f32 fits only {n32} engines");

    let options = PortfolioGenerator::new(3).portfolio(24);
    let pricer = CdsPricer::new(market.clone());
    let engine = FpgaCdsEngine::new(market, config);
    let report = engine.price_batch(&options);
    for (o, s) in options.iter().zip(&report.spreads) {
        let golden = pricer.price(o).spread_bps;
        let rel = (s - golden).abs() / golden;
        assert!(rel < 5e-3, "f32 engine {s} vs {golden} (rel {rel})");
        assert!(rel > 0.0, "single precision should differ measurably");
    }
}

#[test]
fn single_precision_is_faster_per_engine() {
    let market = MarketData::paper_workload(42);
    let options = PortfolioGenerator::uniform(16, 5.5, PaymentFrequency::Quarterly, 0.40);
    let f64_cycles = FpgaCdsEngine::new(market.clone(), EngineVariant::Vectorised.config())
        .price_batch(&options)
        .kernel_cycles;
    let mut config = EngineVariant::Vectorised.config();
    config.precision = EnginePrecision::Single;
    let f32_cycles = FpgaCdsEngine::new(market, config).price_batch(&options).kernel_cycles;
    let speedup = f64_cycles as f64 / f32_cycles as f64;
    assert!((1.5..2.3).contains(&speedup), "f32 speedup {speedup}");
}

#[test]
fn cds_graph_static_analysis() {
    let market = Rc::new(MarketData::paper_workload(1));
    let options = PortfolioGenerator::uniform(2, 5.5, PaymentFrequency::Quarterly, 0.40);
    for variant in [EngineVariant::InterOption, EngineVariant::Vectorised] {
        let (g, _sink) = build_graph(market.clone(), &variant.config(), &options, 0);
        assert!(check_acyclic(&g), "{variant:?} graph must be feed-forward");
        let depth = critical_path(&g);
        // source → timegen → unit → calc → tee → calc → reduce → combine → sink ≈ 8-10.
        assert!((6..=12).contains(&depth), "{variant:?} critical path {depth}");
    }
}

#[test]
fn engine_trace_exports_valid_vcd() {
    let mut config = EngineVariant::Vectorised.config();
    let recorder = dataflow_sim::trace::TraceRecorder::new();
    config.trace = Some(recorder.clone());
    let market = MarketData::paper_workload(2);
    let options = PortfolioGenerator::uniform(3, 5.5, PaymentFrequency::Quarterly, 0.40);
    let _ = FpgaCdsEngine::new(market, config).price_batch(&options);
    // At a 300 MHz clock one cycle is 3.33 ns; round the VCD timescale.
    let vcd = recorder.to_vcd(3);
    assert!(vcd.starts_with("$version"));
    assert!(vcd.contains("$enddefinitions $end"));
    assert!(vcd.contains("hazard_rep0_busy"));
    // 18 replica wires declared.
    assert_eq!(vcd.matches("$var wire 1").count(), 18);
    // Rising edges: one per processed time point per replica in total
    // (3 options x 22 points across each of 3 function types).
    assert_eq!(vcd.matches("\n1").count(), 3 * 22 * 3);
}

#[test]
fn cds_run_analysis_flags_scan_streams() {
    let market = Rc::new(MarketData::paper_workload(1));
    let options = PortfolioGenerator::uniform(4, 5.5, PaymentFrequency::Quarterly, 0.40);
    let (g, _sink) = build_graph(market, &EngineVariant::InterOption.config(), &options, 0);
    let report = EventSim::new(g).run().expect("runs");
    let analysis = analyse_run(&report);
    // The time-point FIFOs feeding the slow scan units must have filled.
    assert!(
        analysis.saturated.iter().any(|s| s.starts_with("tp_")),
        "expected backpressure on tp_* streams, saturated: {:?}",
        analysis.saturated
    );
    let rendered = analysis.render();
    assert!(rendered.contains("SATURATED"));
}
