//! Scheduler cross-validation on the real CDS graph: the event-driven
//! simulator and the naive cycle-stepped reference simulator must agree
//! exactly — same spreads, same completion cycle, same per-stream traffic
//! — when executing the actual Figure-2/Figure-3 engine graphs.

use cds_repro::engine::prelude::*;
use cds_repro::engine::variants::dataflow::build_graph;
use cds_repro::quant::prelude::*;
use dataflow_sim::cycle_sim::CycleSim;
use dataflow_sim::event_sim::EventSim;
use std::rc::Rc;

fn check_agreement(config: &EngineConfig, options: &[CdsOption]) {
    let market = Rc::new(MarketData::paper_workload(4));

    let (g_event, sink_event) = build_graph(market.clone(), config, options, 0);
    let (g_cycle, sink_cycle) = build_graph(market.clone(), config, options, 0);

    let r_event = EventSim::new(g_event).run().expect("event sim completes");
    let r_cycle =
        CycleSim::new(g_cycle).with_max_cycles(10_000_000).run().expect("cycle sim completes");

    assert_eq!(
        r_event.total_cycles, r_cycle.total_cycles,
        "completion cycle diverges for {:?}",
        config.variant
    );
    // Backpressure counts scheduler retry effort (how often a blocked
    // producer was re-stepped), which legitimately differs between the
    // event-driven and cycle-stepped schedulers — zero it, like
    // `SimReport::events`, before demanding exact agreement.
    let strip = |streams: &[dataflow_sim::graph::StreamReport]| -> Vec<_> {
        streams
            .iter()
            .map(|s| {
                let mut s = s.clone();
                s.backpressure = 0;
                s
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(&r_event.streams), strip(&r_cycle.streams), "stream stats diverge");

    // Spread tokens: identity and timing must match exactly, and the
    // spreads are gated through the shared ULP comparator at its
    // zero-tolerance preset — the two schedulers execute the identical
    // arithmetic, so even a one-ULP drift means a scheduling bug, and
    // the comparator reports the drift in ULPs instead of a bare
    // tuple-inequality dump.
    let (ev, cy) = (sink_event.collected(), sink_cycle.collected());
    assert_eq!(ev.len(), cy.len(), "spread token counts diverge");
    for ((te, ce), (tc, cc)) in ev.iter().zip(&cy) {
        assert_eq!((te.opt_idx, ce), (tc.opt_idx, cc), "token identity/cycle diverges");
        if let Err(m) = UlpComparator::EXACT.check(te.spread_bps, tc.spread_bps) {
            panic!("option {} spread diverges between schedulers: {m}", te.opt_idx);
        }
    }
}

#[test]
fn schedulers_agree_on_inter_option_graph() {
    let options = PortfolioGenerator::uniform(3, 2.0, PaymentFrequency::Quarterly, 0.4);
    check_agreement(&EngineVariant::InterOption.config(), &options);
}

#[test]
fn schedulers_agree_on_vectorised_graph() {
    let options = PortfolioGenerator::uniform(2, 1.5, PaymentFrequency::Quarterly, 0.4);
    check_agreement(&EngineVariant::Vectorised.config(), &options);
}

#[test]
fn schedulers_agree_on_shallow_streams() {
    let mut config = EngineVariant::InterOption.config();
    config.stream_depth = 1;
    let options = PortfolioGenerator::uniform(2, 1.0, PaymentFrequency::SemiAnnual, 0.3);
    check_agreement(&config, &options);
}

#[test]
fn schedulers_agree_on_mixed_maturities() {
    let options = vec![
        CdsOption::new(0.6, PaymentFrequency::Quarterly, 0.2),
        CdsOption::new(2.3, PaymentFrequency::Annual, 0.5),
        CdsOption::new(1.1, PaymentFrequency::Monthly, 0.4),
    ];
    check_agreement(&EngineVariant::InterOption.config(), &options);
}

#[test]
fn schedulers_agree_on_dependency_chained_ablation() {
    let mut config = EngineVariant::InterOption.config();
    config.hazard_ii = HazardIiMode::DependencyChained;
    let options = PortfolioGenerator::uniform(1, 1.0, PaymentFrequency::Quarterly, 0.4);
    check_agreement(&config, &options);
}
