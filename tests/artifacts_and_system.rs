//! Whole-system checks: figure artifacts, resource gating, power story,
//! determinism, and the harness-level ablations.

use cds_harness::ablations;
use cds_harness::figures;
use cds_harness::workload::Workload;
use cds_repro::engine::multi::{engine_resource_usage, MultiEngine, MultiEngineError};
use cds_repro::engine::prelude::*;
use cds_repro::power::{CpuPowerModel, EfficiencyComparison, FpgaPowerModel};
use cds_repro::quant::prelude::*;
use dataflow_sim::resource::Device;

#[test]
fn figures_render_and_are_distinct() {
    let market = MarketData::paper_workload(1);
    let f1 = figures::fig1_dot();
    let f2 = figures::fig2_dot(&market);
    let f3 = figures::fig3_dot(&market);
    for dot in [&f1, &f2, &f3] {
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
    // Fig 1 is the sequential flowchart, Fig 2 the dataflow graph, Fig 3
    // adds replication.
    assert!(f1.contains("next option"));
    assert!(f2.contains("payment-calc") && !f2.contains("rep0"));
    assert!(f3.contains("interp-t-rep3"));
    assert_ne!(f2, f3);
}

#[test]
fn five_engine_limit_is_resource_driven() {
    let market = MarketData::paper_workload(2);
    let device = Device::alveo_u280();
    let config = EngineVariant::Vectorised.config();
    let per_engine = engine_resource_usage(&config, market.hazard.len());
    // Five fit, six do not — and it is a genuine resource constraint.
    assert!(per_engine.times(5).fits_in(device.usable()));
    assert!(!per_engine.times(6).fits_in(device.usable()));
    assert!(matches!(
        MultiEngine::new(market, 6),
        Err(MultiEngineError::DoesNotFit { requested: 6, max: 5 })
    ));
}

#[test]
fn smaller_vector_factor_admits_more_engines() {
    // De-vectorised engines are smaller, so more fit — the resource model
    // exposes the area/throughput trade-off behind §IV.
    let market = MarketData::paper_workload(2);
    let device = Device::alveo_u280();
    let mut small = EngineVariant::Vectorised.config();
    small.vector_factor = 1;
    let n_small = MultiEngine::max_engines(&market, &small, &device);
    let n_big = MultiEngine::max_engines(&market, &EngineVariant::Vectorised.config(), &device);
    assert!(n_small > n_big, "V=1 fits {n_small}, V=6 fits {n_big}");
}

#[test]
fn power_story_end_to_end() {
    // Run the actual engines, then feed measured rates through the power
    // models: the paper's efficiency narrative must hold.
    let workload = Workload::paper(42, 128);
    let five = MultiEngine::new(workload.market.clone(), 5).unwrap();
    let fpga_rate = five.price_batch(&workload.options).options_per_second;
    let cpu_rate = cds_repro::cpu::CpuPerfModel::xeon_8260m().options_per_second(24);
    let cmp = EfficiencyComparison::new(
        cpu_rate,
        24,
        fpga_rate,
        5,
        &CpuPowerModel::xeon_8260m(),
        &FpgaPowerModel::alveo_u280_cds(),
    );
    assert!(cmp.performance_ratio() > 1.25, "perf {}", cmp.performance_ratio());
    assert!((4.2..5.2).contains(&cmp.power_ratio()), "power {}", cmp.power_ratio());
    assert!(cmp.efficiency_ratio() > 5.5, "efficiency {}", cmp.efficiency_ratio());
}

#[test]
fn runs_are_deterministic() {
    let workload = Workload::paper(11, 32);
    let run = || {
        let engine =
            FpgaCdsEngine::new(workload.market.clone(), EngineVariant::Vectorised.config());
        let r = engine.price_batch(&workload.options);
        (r.spreads.clone(), r.kernel_cycles)
    };
    assert_eq!(run(), run());
}

#[test]
fn vector_sweep_shape() {
    // Fig-3 mechanism at system level: V=2 roughly doubles, V=6 matches
    // the paper's observation (no further gain beyond port bandwidth).
    let workload = Workload::paper(42, 48);
    let rows = ablations::vector_sweep(&workload, &[1, 2, 6]);
    assert!((1.6..2.3).contains(&rows[1].speedup), "V=2 speedup {}", rows[1].speedup);
    assert!((1.6..2.3).contains(&rows[2].speedup), "V=6 speedup {}", rows[2].speedup);
}

#[test]
fn listing1_host_and_model() {
    let rows = ablations::listing1(&[1024]);
    let row = &rows[0];
    // The 7-lane kernel must at least not be slower on the host — it
    // typically wins 2-6x by breaking the FP dependency chain. Only
    // meaningful with optimisations; in debug builds the lane kernel's
    // bounds checks dominate.
    if !cfg!(debug_assertions) {
        assert!(row.host_speedup > 0.9, "host speedup {}", row.host_speedup);
    }
    // The hardware model shows the paper's ~7x regardless of build.
    let model = row.fpga_cycles_ii7 as f64 / row.fpga_cycles_listing1 as f64;
    assert!((6.0..7.5).contains(&model), "model speedup {model}");
}

#[test]
fn shallow_accrual_fifo_starves_the_replicas() {
    // The accrual-path FIFO bounds the engine's in-flight window; forcing
    // it below the replica count must cost throughput while leaving the
    // numerics untouched.
    let workload = Workload::paper(42, 48);
    let healthy = FpgaCdsEngine::new(workload.market.clone(), EngineVariant::Vectorised.config())
        .price_batch(&workload.options);
    let mut starved_config = EngineVariant::Vectorised.config();
    starved_config.accrual_fifo_depth = Some(2);
    let starved =
        FpgaCdsEngine::new(workload.market.clone(), starved_config).price_batch(&workload.options);
    assert_eq!(healthy.spreads, starved.spreads, "numerics must be unaffected");
    let slowdown = starved.kernel_cycles as f64 / healthy.kernel_cycles as f64;
    assert!(slowdown > 1.2, "expected starvation, got slowdown {slowdown}");
}

#[test]
fn precision_ablation_reports_small_errors() {
    let report = ablations::precision(&Workload::mixed(5, 48));
    assert!(report.max_relative_error < 5e-3);
    assert!(report.max_error_bps < 1.0);
}
