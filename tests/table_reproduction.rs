//! End-to-end reproduction of the paper's Tables I and II, asserted
//! against the acceptance bands of DESIGN.md §4.
//!
//! Absolute options/second need not match the authors' testbed, but the
//! *shape* — who wins, by what factor, where the crossovers fall — must.

use cds_harness::tables::{table1, table2};
use cds_harness::workload::Workload;

fn workload() -> Workload {
    // Large enough that fills and one-off overheads amortise; small
    // enough for a debug-profile test run.
    Workload::paper(42, 192)
}

#[test]
fn table1_absolute_rates_within_15_percent_of_paper() {
    let t = table1(&workload());
    for row in &t.rows {
        let ratio = row.measured / row.paper;
        assert!(
            (0.85..1.15).contains(&ratio),
            "{}: measured {} vs paper {} ({}x)",
            row.description,
            row.measured,
            row.paper,
            ratio
        );
    }
}

#[test]
fn table1_speedup_ladder_in_bands() {
    let t = table1(&workload());
    let s_opt = t.speedup_over_baseline("Optimised");
    let s_inter = t.speedup_over_baseline("inter-options");
    let s_vec = t.speedup_over_baseline("Vectorisation");
    // Paper: 2.13x, 3.84x, 7.99x.
    assert!((1.7..2.7).contains(&s_opt), "optimised/baseline {s_opt}");
    assert!((1.4..2.2).contains(&(s_inter / s_opt)), "inter/optimised {}", s_inter / s_opt);
    assert!((1.6..2.5).contains(&(s_vec / s_inter)), "vectorised/inter {}", s_vec / s_inter);
    assert!((6.0..10.0).contains(&s_vec), "vectorised/baseline {s_vec}");
}

#[test]
fn table1_crossovers_match_paper() {
    // Paper narrative: the baseline falls short of a CPU core; the
    // optimised engine still falls "slightly short of CPU single-core
    // performance"; inter-option is "for the first time … out performing
    // the CPU core"; vectorised beats it by ~3x.
    let t = table1(&workload());
    let rate =
        |needle: &str| t.rows.iter().find(|r| r.description.contains(needle)).unwrap().measured;
    let cpu = rate("CPU core");
    assert!(rate("Xilinx") < cpu);
    assert!(rate("Optimised") < cpu);
    assert!(rate("inter-options") > cpu);
    let vec_vs_cpu = rate("Vectorisation") / cpu;
    assert!((2.5..3.6).contains(&vec_vs_cpu), "vectorised vs CPU core {vec_vs_cpu}");
}

#[test]
fn table2_rates_within_15_percent_of_paper() {
    let t = table2(&workload());
    for row in &t.rows {
        let ratio = row.measured_rate / row.paper.0;
        assert!(
            (0.85..1.15).contains(&ratio),
            "{}: measured {} vs paper {}",
            row.description,
            row.measured_rate,
            row.paper.0
        );
    }
}

#[test]
fn table2_headline_claims() {
    let t = table2(&workload());
    // "our FPGA approach is out performing all 24 cores … by around 1.55
    // times" (our scale-up lands slightly lower; band covers both).
    let perf = t.fpga_vs_cpu_performance();
    assert!((1.3..1.8).contains(&perf), "FPGA5/CPU24 performance {perf}");
    // "draws around 4.7 times less power".
    let power = t.power_ratio();
    assert!((4.2..5.2).contains(&power), "power ratio {power}");
    // "power efficiency … around seven times".
    let eff = t.efficiency_ratio();
    assert!((5.8..8.2).contains(&eff), "efficiency ratio {eff}");
}

#[test]
fn table2_fpga_scaling_factors() {
    let t = table2(&workload());
    let rate = |needle: &str| {
        t.rows.iter().find(|r| r.description.starts_with(needle)).unwrap().measured_rate
    };
    let one = rate("1 FPGA");
    // Paper: 1.943x at two engines, 4.124x at five.
    let two = rate("2 FPGA") / one;
    let five = rate("5 FPGA") / one;
    assert!((1.80..2.0).contains(&two), "2-engine scaling {two}");
    assert!((3.7..4.4).contains(&five), "5-engine scaling {five}");
}

#[test]
fn tables_are_deterministic() {
    let a = table1(&workload());
    let b = table1(&workload());
    assert_eq!(a.rows, b.rows);
}
