//! Validated retry/backoff/deadline policy for the recovery layers.
//!
//! Both recovery surfaces of the project — the batch failover path
//! ([`crate::multi::MultiEngine::price_batch_resilient_with`]) and the
//! `cds-server` serving front-end's deadline-aware retry/hedging layer —
//! consume the same [`RetryPolicy`]. Centralising the parameters here
//! removes the magic retry counts that used to be sprinkled over call
//! sites and makes the budgets *validated*: a zero or negative budget is
//! a configuration bug and is rejected with a typed
//! [`RetryPolicyError`] instead of silently producing a policy that
//! never retries (or never stops).
//!
//! # Retry budget math
//!
//! A request arriving with budget `D = deadline_micros` is allowed up to
//! `max_attempts` tries. Attempt `k` (1-based) is preceded by an
//! exponential backoff of nominally
//! `backoff_base_micros · backoff_multiplier^(k−1)` microseconds,
//! jittered deterministically into `[½·nominal, nominal]` by hashing the
//! request id (so replays are reproducible and co-arriving retries
//! decorrelate). A hedged attempt — the same request raced on a second
//! engine shard — is launched once the first attempt has been in flight
//! for `hedge_after_micros` without an answer. No backoff, hedge, or
//! attempt may start once `D` is exhausted: the worst-case time a
//! request can occupy the server is `D` plus one service time.

use crate::error::CdsError;
use dataflow_sim::fault::splitmix64;

/// A rejected [`RetryPolicy`] parameter (zero or negative budget, or an
/// inconsistent combination). Typed so callers can match on the exact
/// mistake; converts into [`CdsError::Config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryPolicyError {
    /// `max_attempts` was zero or negative: the policy could never price
    /// anything.
    NoAttempts,
    /// `deadline_micros` was zero or negative: every request would be
    /// dead on arrival.
    NoDeadline,
    /// `backoff_base_micros` was zero or negative: retries would hammer
    /// a struggling engine with no spacing at all.
    NoBackoff,
    /// `backoff_multiplier` was zero or negative: the backoff sequence
    /// would collapse to zero instead of growing.
    NoMultiplier,
    /// `hedge_after_micros` was zero or negative: the hedge would race
    /// every request immediately, doubling load for no tail benefit.
    NoHedgeDelay,
    /// `hedge_after_micros` was not below `deadline_micros`: the hedge
    /// could never fire before the request expired.
    HedgeBeyondDeadline,
}

impl RetryPolicyError {
    /// Static description, also used as the [`CdsError::Config`] reason.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self {
            RetryPolicyError::NoAttempts => "retry policy needs at least one attempt",
            RetryPolicyError::NoDeadline => "retry deadline budget must be positive",
            RetryPolicyError::NoBackoff => "retry backoff base must be positive",
            RetryPolicyError::NoMultiplier => "retry backoff multiplier must be positive",
            RetryPolicyError::NoHedgeDelay => "hedge delay must be positive",
            RetryPolicyError::HedgeBeyondDeadline => "hedge delay must be below the deadline",
        }
    }
}

impl std::fmt::Display for RetryPolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.reason())
    }
}

impl std::error::Error for RetryPolicyError {}

impl From<RetryPolicyError> for CdsError {
    fn from(e: RetryPolicyError) -> Self {
        CdsError::Config { reason: e.reason() }
    }
}

/// Validated retry/backoff/deadline parameters.
///
/// Construct with [`RetryPolicy::validated`] (or a named preset); the
/// fields are public for inspection but every consumer re-checks
/// [`RetryPolicy::validate`] at its entry point, so a hand-mutated
/// invalid policy is caught there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum pricing attempts per request (initial try included).
    pub max_attempts: usize,
    /// Total per-request latency budget, microseconds.
    pub deadline_micros: u64,
    /// Nominal backoff before the second attempt, microseconds.
    pub backoff_base_micros: u64,
    /// Exponential growth factor of successive backoffs.
    pub backoff_multiplier: u64,
    /// In-flight time after which a single hedged attempt is raced on a
    /// different engine shard, microseconds.
    pub hedge_after_micros: u64,
}

impl RetryPolicy {
    /// Build a policy, rejecting zero/negative budgets and inconsistent
    /// combinations with a typed [`RetryPolicyError`].
    ///
    /// Parameters are signed so that a caller computing budgets (e.g.
    /// subtracting a safety margin) cannot smuggle a negative value in
    /// through an unsigned cast.
    pub fn validated(
        max_attempts: i64,
        deadline_micros: i64,
        backoff_base_micros: i64,
        backoff_multiplier: i64,
        hedge_after_micros: i64,
    ) -> Result<RetryPolicy, RetryPolicyError> {
        if max_attempts <= 0 {
            return Err(RetryPolicyError::NoAttempts);
        }
        if deadline_micros <= 0 {
            return Err(RetryPolicyError::NoDeadline);
        }
        if backoff_base_micros <= 0 {
            return Err(RetryPolicyError::NoBackoff);
        }
        if backoff_multiplier <= 0 {
            return Err(RetryPolicyError::NoMultiplier);
        }
        if hedge_after_micros <= 0 {
            return Err(RetryPolicyError::NoHedgeDelay);
        }
        let policy = RetryPolicy {
            max_attempts: max_attempts as usize,
            deadline_micros: deadline_micros as u64,
            backoff_base_micros: backoff_base_micros as u64,
            backoff_multiplier: backoff_multiplier as u64,
            hedge_after_micros: hedge_after_micros as u64,
        };
        policy.validate()?;
        Ok(policy)
    }

    /// Re-check the invariants of an already-built policy.
    pub fn validate(&self) -> Result<(), RetryPolicyError> {
        if self.max_attempts == 0 {
            return Err(RetryPolicyError::NoAttempts);
        }
        if self.deadline_micros == 0 {
            return Err(RetryPolicyError::NoDeadline);
        }
        if self.backoff_base_micros == 0 {
            return Err(RetryPolicyError::NoBackoff);
        }
        if self.backoff_multiplier == 0 {
            return Err(RetryPolicyError::NoMultiplier);
        }
        if self.hedge_after_micros == 0 {
            return Err(RetryPolicyError::NoHedgeDelay);
        }
        if self.hedge_after_micros >= self.deadline_micros {
            return Err(RetryPolicyError::HedgeBeyondDeadline);
        }
        Ok(())
    }

    /// Batch failover preset: the initial (possibly faulted) round plus
    /// two fault-free re-shard rounds, the recovery depth every
    /// resilient batch route historically hard-coded. The time budgets
    /// are sized for a batch context (a whole re-shard round, not a
    /// single quote).
    #[must_use]
    pub fn batch_failover() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            deadline_micros: 500_000,
            backoff_base_micros: 1_000,
            backoff_multiplier: 2,
            hedge_after_micros: 100_000,
        }
    }

    /// Deep-recovery preset for cascade chaos scenarios (one more
    /// re-shard round than [`RetryPolicy::batch_failover`], for plans
    /// that kill engines in successive waves).
    #[must_use]
    pub fn cascade_failover() -> RetryPolicy {
        RetryPolicy { max_attempts: 3, ..RetryPolicy::batch_failover() }
    }

    /// Serving-layer preset: per-quote budget of 250 ms, three attempts,
    /// 2 ms exponential backoff, hedge after 20 ms. Generous against CPU
    /// pricing times (microseconds) so the gate never trips on scheduler
    /// noise, tight enough that a dead shard is hedged around quickly.
    #[must_use]
    pub fn server_default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            deadline_micros: 250_000,
            backoff_base_micros: 2_000,
            backoff_multiplier: 2,
            hedge_after_micros: 20_000,
        }
    }

    /// Nominal (un-jittered) backoff before 1-based attempt `attempt`,
    /// microseconds; zero before the first attempt. Saturates instead of
    /// overflowing for absurd attempt numbers.
    #[must_use]
    pub fn backoff_micros(&self, attempt: usize) -> u64 {
        if attempt <= 1 {
            return 0;
        }
        let mut backoff = self.backoff_base_micros;
        for _ in 2..attempt {
            backoff = backoff.saturating_mul(self.backoff_multiplier);
        }
        backoff
    }

    /// Deterministically jittered backoff in `[½·nominal, nominal]`,
    /// keyed on the request id and attempt number — replayable, and two
    /// requests shed by the same event back off at different times.
    #[must_use]
    pub fn jittered_backoff_micros(&self, attempt: usize, request_id: u64) -> u64 {
        let nominal = self.backoff_micros(attempt);
        if nominal == 0 {
            return 0;
        }
        let half = nominal / 2;
        let jitter_span = nominal - half + 1;
        half + splitmix64(request_id ^ ((attempt as u64) << 48)) % jitter_span
    }

    /// Budget left after `elapsed_micros` in flight (zero when spent).
    #[must_use]
    pub fn remaining_micros(&self, elapsed_micros: u64) -> u64 {
        self.deadline_micros.saturating_sub(elapsed_micros)
    }

    /// Whether 1-based attempt `attempt` may still start: within the
    /// attempt count, and with its backoff fitting the remaining budget.
    #[must_use]
    pub fn allows_attempt(&self, attempt: usize, elapsed_micros: u64) -> bool {
        attempt <= self.max_attempts
            && self.remaining_micros(elapsed_micros) > self.backoff_micros(attempt)
    }

    /// Whether a hedge may be launched after `in_flight_micros` of
    /// silence, `elapsed_micros` into the overall budget.
    #[must_use]
    pub fn should_hedge(&self, in_flight_micros: u64, elapsed_micros: u64) -> bool {
        in_flight_micros >= self.hedge_after_micros && self.remaining_micros(elapsed_micros) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for p in [
            RetryPolicy::batch_failover(),
            RetryPolicy::cascade_failover(),
            RetryPolicy::server_default(),
        ] {
            if let Err(e) = p.validate() {
                panic!("preset must validate: {e}");
            }
        }
    }

    #[test]
    fn zero_and_negative_budgets_are_typed_errors() {
        let cases = [
            ((0, 100, 10, 2, 50), RetryPolicyError::NoAttempts),
            ((-3, 100, 10, 2, 50), RetryPolicyError::NoAttempts),
            ((2, 0, 10, 2, 50), RetryPolicyError::NoDeadline),
            ((2, -1, 10, 2, 50), RetryPolicyError::NoDeadline),
            ((2, 100, 0, 2, 50), RetryPolicyError::NoBackoff),
            ((2, 100, -10, 2, 50), RetryPolicyError::NoBackoff),
            ((2, 100, 10, 0, 50), RetryPolicyError::NoMultiplier),
            ((2, 100, 10, -2, 50), RetryPolicyError::NoMultiplier),
            ((2, 100, 10, 2, 0), RetryPolicyError::NoHedgeDelay),
            ((2, 100, 10, 2, -7), RetryPolicyError::NoHedgeDelay),
            ((2, 100, 10, 2, 100), RetryPolicyError::HedgeBeyondDeadline),
            ((2, 100, 10, 2, 150), RetryPolicyError::HedgeBeyondDeadline),
        ];
        for ((a, d, b, m, h), want) in cases {
            match RetryPolicy::validated(a, d, b, m, h) {
                Err(got) => assert_eq!(got, want, "({a},{d},{b},{m},{h})"),
                Ok(p) => panic!("({a},{d},{b},{m},{h}) must be rejected, got {p:?}"),
            }
        }
        // The error converts into the engine's typed error layer.
        let e: CdsError = RetryPolicyError::NoDeadline.into();
        assert!(matches!(e, CdsError::Config { .. }), "got {e:?}");
        assert!(e.to_string().contains("deadline"));
    }

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        let p = match RetryPolicy::validated(5, 1_000_000, 100, 2, 500) {
            Ok(p) => p,
            Err(e) => panic!("valid policy rejected: {e}"),
        };
        assert_eq!(p.backoff_micros(1), 0);
        assert_eq!(p.backoff_micros(2), 100);
        assert_eq!(p.backoff_micros(3), 200);
        assert_eq!(p.backoff_micros(4), 400);
        // Saturation, not overflow, at absurd attempt counts.
        assert_eq!(p.backoff_micros(10_000), u64::MAX);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::server_default();
        for attempt in 2..=p.max_attempts {
            for id in [0u64, 1, 42, u64::MAX] {
                let nominal = p.backoff_micros(attempt);
                let j = p.jittered_backoff_micros(attempt, id);
                assert_eq!(j, p.jittered_backoff_micros(attempt, id), "deterministic");
                assert!(
                    j >= nominal / 2 && j <= nominal,
                    "jitter {j} outside [{}, {nominal}]",
                    nominal / 2
                );
            }
        }
        // Different ids decorrelate (not all equal).
        let js: std::collections::BTreeSet<u64> =
            (0..32).map(|id| p.jittered_backoff_micros(2, id)).collect();
        assert!(js.len() > 1, "jitter must vary with the request id");
    }

    #[test]
    fn budget_gating() {
        let p = match RetryPolicy::validated(3, 10_000, 1_000, 2, 2_000) {
            Ok(p) => p,
            Err(e) => panic!("valid policy rejected: {e}"),
        };
        assert!(p.allows_attempt(1, 0));
        assert!(p.allows_attempt(3, 0));
        assert!(!p.allows_attempt(4, 0), "beyond max_attempts");
        assert!(!p.allows_attempt(2, 9_500), "backoff no longer fits the budget");
        assert!(!p.allows_attempt(1, 10_000), "budget spent");
        assert_eq!(p.remaining_micros(4_000), 6_000);
        assert_eq!(p.remaining_micros(20_000), 0);
        assert!(!p.should_hedge(1_999, 0));
        assert!(p.should_hedge(2_000, 0));
        assert!(!p.should_hedge(2_000, 10_000), "no hedge once the budget is spent");
    }
}
