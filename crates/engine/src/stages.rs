//! Engine-specific dataflow stages: schedule generation, tee, and the
//! per-option reduction used by the accumulation regions of Figure 2.

use crate::tokens::{OptionTok, TimePointTok, Tok};
use cds_quant::accumulate::LaneAccumulator;
use cds_quant::schedule::PaymentSchedule;
use dataflow_sim::process::{Process, ProcessStatus};
use dataflow_sim::stream::{ReadPoll, StreamId, StreamReceiver, StreamSender};
use dataflow_sim::Cycle;

/// Generates the time points of each incoming option and fans them out to
/// the hazard, interpolation and accrual paths, plus a once-per-option
/// metadata token (recovery rate) for the final combine stage.
///
/// This is the top box of the paper's Figure 1 ("for each option the model
/// first determines a set of distinct time points") recast as a streaming
/// stage.
pub struct TimePointGen {
    name: String,
    rx: StreamReceiver<OptionTok>,
    tx_haz: StreamSender<TimePointTok>,
    tx_t: StreamSender<TimePointTok>,
    tx_mid: StreamSender<TimePointTok>,
    tx_half_delta: StreamSender<Tok>,
    tx_meta: StreamSender<Tok>,
    /// Points of the option currently streaming out.
    current: Vec<TimePointTok>,
    pos: usize,
    busy_until: Cycle,
    expected_options: u64,
    emitted_options: u64,
    meta_pending: Option<Tok>,
}

/// Latency of the schedule arithmetic producing one time point.
const TIMEGEN_LATENCY: Cycle = 4;

impl TimePointGen {
    /// Create the stage; `expected_options` bounds its lifetime (the
    /// paper's inter-option engine makes every stage option-count aware).
    #[allow(clippy::too_many_arguments)] // one sender per Figure-2 consumer path
    pub fn new(
        name: impl Into<String>,
        rx: StreamReceiver<OptionTok>,
        tx_haz: StreamSender<TimePointTok>,
        tx_t: StreamSender<TimePointTok>,
        tx_mid: StreamSender<TimePointTok>,
        tx_half_delta: StreamSender<Tok>,
        tx_meta: StreamSender<Tok>,
        expected_options: u64,
    ) -> Self {
        TimePointGen {
            name: name.into(),
            rx,
            tx_haz,
            tx_t,
            tx_mid,
            tx_half_delta,
            tx_meta,
            current: Vec::new(),
            pos: 0,
            busy_until: 0,
            expected_options,
            emitted_options: 0,
            meta_pending: None,
        }
    }

    /// Expand an option into its time-point tokens.
    pub fn expand(option: &OptionTok) -> Vec<TimePointTok> {
        let schedule = match PaymentSchedule::generate(option.maturity, option.payments_per_year) {
            Ok(s) => s,
            Err(e) => panic!("option token failed schedule generation: {e}"),
        };
        let n = schedule.len();
        schedule
            .periods()
            .enumerate()
            .map(|(i, (prev, t))| TimePointTok {
                opt_idx: option.opt_idx,
                t,
                delta: t - prev,
                mid: 0.5 * (prev + t),
                last: i + 1 == n,
            })
            .collect()
    }
}

impl Process for TimePointGen {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, now: Cycle) -> ProcessStatus {
        if let Some(meta) = self.meta_pending.take() {
            if let Err(meta) = self.tx_meta.try_push(now, meta, 1) {
                self.meta_pending = Some(meta);
                return ProcessStatus::Blocked;
            }
        }
        if now < self.busy_until {
            return ProcessStatus::Continue(self.busy_until);
        }
        if self.pos < self.current.len() {
            // Emit the next point to every per-time-point path atomically
            // (all-or-nothing, as a hardware stage writing several streams
            // in one cycle would stall on any full FIFO).
            if self.tx_haz.is_full()
                || self.tx_t.is_full()
                || self.tx_mid.is_full()
                || self.tx_half_delta.is_full()
            {
                return ProcessStatus::Blocked;
            }
            let tp = self.current[self.pos];
            if self.tx_haz.try_push(now, tp, TIMEGEN_LATENCY).is_err()
                || self.tx_t.try_push(now, tp, TIMEGEN_LATENCY).is_err()
                || self.tx_mid.try_push(now, tp, TIMEGEN_LATENCY).is_err()
                || self
                    .tx_half_delta
                    .try_push(now, Tok::new(tp.opt_idx, 0.5 * tp.delta, tp.last), TIMEGEN_LATENCY)
                    .is_err()
            {
                unreachable!("all four streams were checked not full");
            }
            self.pos += 1;
            self.busy_until = now + 1;
            return ProcessStatus::Continue(self.busy_until);
        }
        if self.emitted_options >= self.expected_options {
            return ProcessStatus::Done;
        }
        match self.rx.poll(now) {
            ReadPoll::Ready(option) => {
                self.current = Self::expand(&option);
                self.pos = 0;
                self.emitted_options += 1;
                let meta = Tok::new(option.opt_idx, option.recovery, true);
                if let Err(meta) = self.tx_meta.try_push(now, meta, 1) {
                    self.meta_pending = Some(meta);
                    return ProcessStatus::Blocked;
                }
                self.busy_until = now + TIMEGEN_LATENCY;
                ProcessStatus::Continue(self.busy_until)
            }
            ReadPoll::NotUntil(c) => ProcessStatus::Continue(c),
            ReadPoll::Empty => ProcessStatus::Blocked,
        }
    }

    fn inputs(&self) -> Vec<StreamId> {
        vec![self.rx.id()]
    }

    fn outputs(&self) -> Vec<StreamId> {
        vec![
            self.tx_haz.id(),
            self.tx_t.id(),
            self.tx_mid.id(),
            self.tx_half_delta.id(),
            self.tx_meta.id(),
        ]
    }

    fn reset(&mut self) {
        self.current.clear();
        self.pos = 0;
        self.busy_until = 0;
        self.emitted_options = 0;
        self.meta_pending = None;
    }
}

/// Duplicates a token stream to two consumers (one output register, one
/// cycle), used where a computed term feeds two downstream regions.
pub struct TeeStage<T: Copy> {
    name: String,
    rx: StreamReceiver<T>,
    tx_a: StreamSender<T>,
    tx_b: StreamSender<T>,
    busy_until: Cycle,
    expected: u64,
    processed: u64,
}

impl<T: Copy> TeeStage<T> {
    /// Create a tee expecting `expected` tokens.
    pub fn new(
        name: impl Into<String>,
        rx: StreamReceiver<T>,
        tx_a: StreamSender<T>,
        tx_b: StreamSender<T>,
        expected: u64,
    ) -> Self {
        TeeStage { name: name.into(), rx, tx_a, tx_b, busy_until: 0, expected, processed: 0 }
    }
}

impl<T: Copy> Process for TeeStage<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, now: Cycle) -> ProcessStatus {
        if self.processed >= self.expected {
            return ProcessStatus::Done;
        }
        if now < self.busy_until {
            return ProcessStatus::Continue(self.busy_until);
        }
        if self.tx_a.is_full() || self.tx_b.is_full() {
            return ProcessStatus::Blocked;
        }
        match self.rx.poll(now) {
            ReadPoll::Ready(v) => {
                assert!(self.tx_a.try_push(now, v, 1).is_ok(), "checked not full");
                assert!(self.tx_b.try_push(now, v, 1).is_ok(), "checked not full");
                self.processed += 1;
                self.busy_until = now + 1;
                ProcessStatus::Continue(self.busy_until)
            }
            ReadPoll::NotUntil(c) => ProcessStatus::Continue(c),
            ReadPoll::Empty => ProcessStatus::Blocked,
        }
    }

    fn inputs(&self) -> Vec<StreamId> {
        vec![self.rx.id()]
    }

    fn outputs(&self) -> Vec<StreamId> {
        vec![self.tx_a.id(), self.tx_b.id()]
    }

    fn reset(&mut self) {
        self.busy_until = 0;
        self.processed = 0;
    }
}

/// Per-option reduction: consumes one [`Tok`] per time point, accumulates
/// with the Listing-1 seven-lane accumulator, and emits the option's sum
/// when the `last` token arrives — the "accumulation of values" regions of
/// Figure 2.
pub struct ReduceStage {
    name: String,
    rx: StreamReceiver<Tok>,
    tx: StreamSender<Tok>,
    acc: LaneAccumulator<f64>,
    busy_until: Cycle,
    pending: Option<Tok>,
    expected_options: u64,
    emitted_options: u64,
}

/// Cycles to reduce the seven partial sums plus stream handoff — the
/// short final loop of Listing 1 ("whilst this suffers the same spatial
/// dependencies, the impact is minimal as this final loop only operates
/// on 7 elements").
const LANE_REDUCE_LATENCY: Cycle = 7 * 7 + 2;

impl ReduceStage {
    /// Create a reducer expecting `expected_options` options.
    pub fn new(
        name: impl Into<String>,
        rx: StreamReceiver<Tok>,
        tx: StreamSender<Tok>,
        expected_options: u64,
    ) -> Self {
        ReduceStage {
            name: name.into(),
            rx,
            tx,
            acc: LaneAccumulator::new(),
            busy_until: 0,
            pending: None,
            expected_options,
            emitted_options: 0,
        }
    }
}

impl Process for ReduceStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, now: Cycle) -> ProcessStatus {
        if let Some(tok) = self.pending.take() {
            if let Err(tok) = self.tx.try_push(now, tok, 1) {
                self.pending = Some(tok);
                return ProcessStatus::Blocked;
            }
            self.emitted_options += 1;
        }
        if self.emitted_options >= self.expected_options {
            return ProcessStatus::Done;
        }
        if now < self.busy_until {
            return ProcessStatus::Continue(self.busy_until);
        }
        match self.rx.poll(now) {
            ReadPoll::Ready(tok) => {
                self.acc.push(tok.value);
                if tok.last {
                    let sum = Tok::new(tok.opt_idx, self.acc.finish(), true);
                    self.acc.reset();
                    self.busy_until = now + LANE_REDUCE_LATENCY;
                    match self.tx.try_push(now, sum, LANE_REDUCE_LATENCY) {
                        Ok(()) => self.emitted_options += 1,
                        Err(sum) => self.pending = Some(sum),
                    }
                } else {
                    self.busy_until = now + 1;
                }
                ProcessStatus::Continue(self.busy_until)
            }
            ReadPoll::NotUntil(c) => ProcessStatus::Continue(c),
            ReadPoll::Empty => ProcessStatus::Blocked,
        }
    }

    fn inputs(&self) -> Vec<StreamId> {
        vec![self.rx.id()]
    }

    fn outputs(&self) -> Vec<StreamId> {
        vec![self.tx.id()]
    }

    fn reset(&mut self) {
        self.acc.reset();
        self.busy_until = 0;
        self.pending = None;
        self.emitted_options = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_quant::option::PaymentFrequency;
    use dataflow_sim::graph::GraphBuilder;
    use dataflow_sim::prelude::*;

    fn opt(idx: u32, maturity: f64) -> OptionTok {
        OptionTok { opt_idx: idx, maturity, payments_per_year: 4, recovery: 0.4 }
    }

    #[test]
    fn expand_matches_schedule() {
        let points = TimePointGen::expand(&opt(0, 5.5));
        assert_eq!(points.len(), 22);
        assert!(points[21].last);
        assert!(!points[20].last);
        assert!((points[0].t - 0.25).abs() < 1e-12);
        assert!((points[0].delta - 0.25).abs() < 1e-12);
        assert!((points[0].mid - 0.125).abs() < 1e-12);
        let _ = PaymentFrequency::Quarterly; // frequency 4 above
    }

    #[test]
    fn timegen_streams_all_points_and_meta() {
        let mut g = GraphBuilder::new();
        let (tx_o, rx_o) = g.stream::<OptionTok>("opts", 4);
        let (tx_h, rx_h) = g.stream::<TimePointTok>("haz", 64);
        let (tx_t, rx_t) = g.stream::<TimePointTok>("t", 64);
        let (tx_m, rx_m) = g.stream::<TimePointTok>("mid", 64);
        let (tx_d, rx_d) = g.stream::<Tok>("half_delta", 64);
        let (tx_meta, rx_meta) = g.stream::<Tok>("meta", 4);
        g.add(SourceStage::new("src", vec![opt(0, 2.0), opt(1, 1.0)], Cost::UNIT, tx_o));
        g.add(TimePointGen::new("timegen", rx_o, tx_h, tx_t, tx_m, tx_d, tx_meta, 2));
        let s_h = g.add_counted_sink("s_h", rx_h, 12);
        let s_t = g.add_counted_sink("s_t", rx_t, 12);
        let s_m = g.add_counted_sink("s_m", rx_m, 12);
        let s_d = g.add_counted_sink("s_d", rx_d, 12);
        let s_meta = g.add_counted_sink("s_meta", rx_meta, 2);
        EventSim::new(g).run().unwrap();
        // 2y + 1y quarterly = 8 + 4 points.
        assert_eq!(s_h.len(), 12);
        assert_eq!(s_t.len(), 12);
        assert_eq!(s_m.len(), 12);
        assert_eq!(s_d.len(), 12);
        let metas = s_meta.values();
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].value, 0.4);
        // half-delta tokens carry Δ/2 = 0.125.
        assert!((s_d.values()[0].value - 0.125).abs() < 1e-12);
    }

    #[test]
    fn tee_duplicates_in_order() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<Tok>("in", 4);
        let (ta, ra) = g.stream::<Tok>("a", 4);
        let (tb, rb) = g.stream::<Tok>("b", 4);
        let toks: Vec<Tok> = (0..5).map(|i| Tok::new(0, i as f64, i == 4)).collect();
        g.add(SourceStage::new("src", toks.clone(), Cost::UNIT, tx));
        g.add(TeeStage::new("tee", rx, ta, tb, 5));
        let sa = g.add_counted_sink("sa", ra, 5);
        let sb = g.add_counted_sink("sb", rb, 5);
        EventSim::new(g).run().unwrap();
        assert_eq!(sa.values(), toks);
        assert_eq!(sb.values(), toks);
    }

    #[test]
    fn reduce_sums_per_option() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<Tok>("in", 8);
        let (to, ro) = g.stream::<Tok>("out", 4);
        // Two options: values 1..=4 (sum 10) then 5,6 (sum 11).
        let mut toks = Vec::new();
        for i in 1..=4 {
            toks.push(Tok::new(0, i as f64, i == 4));
        }
        for i in 5..=6 {
            toks.push(Tok::new(1, i as f64, i == 6));
        }
        g.add(SourceStage::new("src", toks, Cost::UNIT, tx));
        g.add(ReduceStage::new("reduce", rx, to, 2));
        let sink = g.add_counted_sink("sink", ro, 2);
        EventSim::new(g).run().unwrap();
        let sums = sink.values();
        assert_eq!(sums.len(), 2);
        assert!((sums[0].value - 10.0).abs() < 1e-12);
        assert!((sums[1].value - 11.0).abs() < 1e-12);
        assert_eq!(sums[1].opt_idx, 1);
    }

    #[test]
    fn reduce_latency_reflects_lane_reduction() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<Tok>("in", 8);
        let (to, ro) = g.stream::<Tok>("out", 4);
        g.add(SourceStage::new("src", vec![Tok::new(0, 1.0, true)], Cost::UNIT, tx));
        g.add(ReduceStage::new("reduce", rx, to, 1));
        let sink = g.add_counted_sink("sink", ro, 1);
        EventSim::new(g).run().unwrap();
        let (_, arrival) = sink.collected()[0];
        assert!(arrival >= LANE_REDUCE_LATENCY, "arrival {arrival}");
    }
}
