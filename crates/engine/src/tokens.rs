//! Token types flowing on the engine's HLS streams.
//!
//! Hardware streams carry fixed-width words, so every token is a small
//! `Copy` struct. A unified value token ([`Tok`]) is used on all
//! intermediate streams — the per-stream meaning of its `value` field is
//! documented at each stream's creation site — which lets the generic
//! zip/merge stages of `dataflow-sim` operate on homogeneous types, just
//! as the hardware streams all carry 64-bit words.

/// An option entering the engine (the red once-per-option inputs of the
/// paper's Figure 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptionTok {
    /// Index within the batch, for result ordering.
    pub opt_idx: u32,
    /// Maturity in years.
    pub maturity: f64,
    /// Premium payments per year.
    pub payments_per_year: u32,
    /// Recovery rate.
    pub recovery: f64,
}

/// One schedule time point (the blue per-time-point streams of Figure 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimePointTok {
    /// Owning option index.
    pub opt_idx: u32,
    /// The time point `tᵢ`.
    pub t: f64,
    /// Period length `Δᵢ = tᵢ − tᵢ₋₁`.
    pub delta: f64,
    /// Period mid-point `(tᵢ₋₁ + tᵢ)/2`.
    pub mid: f64,
    /// True on the option's final time point (the maturity).
    pub last: bool,
}

/// Generic per-time-point or per-option value token.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tok {
    /// Owning option index.
    pub opt_idx: u32,
    /// Stream-specific payload (survival probability, discount factor,
    /// leg term, accumulated sum, recovery rate, …).
    pub value: f64,
    /// True on the option's final token.
    pub last: bool,
}

impl Tok {
    /// Construct a token.
    pub fn new(opt_idx: u32, value: f64, last: bool) -> Self {
        Tok { opt_idx, value, last }
    }
}

/// A finished spread result leaving the engine (green output of Fig 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpreadTok {
    /// Option index the spread belongs to.
    pub opt_idx: u32,
    /// Fair spread in basis points.
    pub spread_bps: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_small_copy_types() {
        // Hardware buses are fixed-width; keep tokens register-sized.
        assert!(std::mem::size_of::<Tok>() <= 24);
        assert!(std::mem::size_of::<TimePointTok>() <= 40);
        assert!(std::mem::size_of::<OptionTok>() <= 32);
        assert!(std::mem::size_of::<SpreadTok>() <= 16);
    }

    #[test]
    fn tok_constructor() {
        let t = Tok::new(3, 0.5, true);
        assert_eq!(t.opt_idx, 3);
        assert_eq!(t.value, 0.5);
        assert!(t.last);
    }
}
