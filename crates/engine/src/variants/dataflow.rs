//! The optimised dataflow CDS engines (Figures 2 and 3).
//!
//! One graph-construction function realises all three optimised variants
//! of Table I:
//!
//! * **Optimised Dataflow** — the graph below, invoked per option
//!   ([`dataflow_sim::region::RegionMode::PerOption`]), paying the
//!   calibrated region restart overhead each time;
//! * **Dataflow inter-options** — the same graph run continuously over
//!   the whole batch (option parameters become streams and "each dataflow
//!   stage \[is\] aware of the overall number of options");
//! * **Vectorised** — the hazard and interpolation functions are
//!   replicated `vector_factor` times behind round-robin split/merge
//!   schedulers (Figure 3). The replicas of one function share that
//!   function's dual-ported URAM copy of the constant data, so aggregate
//!   scan bandwidth — not the replica count — bounds the gain, which is
//!   why the paper observes that six-fold replication "doubled
//!   performance".
//!
//! Stage topology (streams in parentheses):
//!
//! ```text
//! options ─▶ TimePointGen ─(tp_haz)──▶ [hazard ×V] ──(surv)──▶ tee ─(surv_a)─▶ payment-calc
//!                         ─(tp_t)────▶ [interp-t ×V] ─(Δ·DF)───────────────────▶ payment-calc ─▶ Σ payments ─▶ combine
//!                         ─(tp_mid)──▶ [interp-mid ×V] ─(DFmid)─▶ payoff-calc ─▶ tee ─▶ Σ payoffs ─▶ combine
//!                         ─(Δ/2)─────────────────────────────────▶ accrual-calc ─▶ Σ accruals ─▶ combine
//!                         ─(meta: recovery)──────────────────────────────────────────────────────▶ combine ─▶ spread
//! ```
//!
//! The survival stream's second tee leg feeds the payoff calculation
//! (which differentiates survival across the period), and the payoff
//! tee's second leg feeds the accrual calculation, mirroring the shared
//! sub-calculations of Figure 2.

use crate::config::{EngineConfig, EnginePrecision, FP_DIV_LATENCY_CYCLES};
use crate::report::EngineRunReport;
use crate::stages::{ReduceStage, TeeStage, TimePointGen};
use crate::tokens::{OptionTok, SpreadTok, TimePointTok, Tok};
use cds_quant::option::{CdsOption, MarketData};
use cds_quant::schedule::PaymentSchedule;
use dataflow_sim::graph::GraphBuilder;
use dataflow_sim::prelude::*;
use dataflow_sim::region::RegionMode;
use dataflow_sim::stages::SinkHandle;
use dataflow_sim::stream::StreamReceiver;
use dataflow_sim::trace::{Counters, TraceRecorder};
use std::rc::Rc;

/// Latency of the short arithmetic in the per-point calculation stages.
const CALC_LATENCY: Cycle = 8;

/// Price a batch on an optimised dataflow engine variant.
pub fn run(
    market: Rc<MarketData<f64>>,
    config: &EngineConfig,
    options: &[CdsOption],
) -> EngineRunReport {
    let curve_load =
        config.memory.curve_load_cycles(market.hazard.len().max(market.interest.len()));
    match config.region_mode {
        RegionMode::Continuous => {
            let (g, sink) = build_graph(market, config, options, 0);
            let processes = g.process_count();
            let mut sim = EventSim::new(g);
            let report = match sim.run() {
                Ok(r) => r,
                Err(e) => panic!("CDS dataflow graph must not deadlock: {e}"),
            };
            let kernel = report.total_cycles
                + config.region_cost.batch_overhead(
                    RegionMode::Continuous,
                    options.len() as u64,
                    processes,
                );
            let trace = config.trace.clone().unwrap_or_default();
            let counters = Counters::from_run(&trace, &report);
            EngineRunReport::from_cycles_with_counters(
                config,
                collect_spreads(&sink, options.len()),
                kernel,
                curve_load,
                counters,
            )
        }
        RegionMode::PerOption => {
            // "The dataflow region shuts-down and restarts between
            // options": each option is a fresh invocation paying the
            // restart overhead, and the pipelines fill and drain anew.
            // Telemetry note: when tracing is enabled, each invocation
            // records into a fresh recorder (spans of different
            // invocations all start at cycle 0 and would otherwise
            // overlap); the merged busy/stall totals land in the report's
            // counters rather than in the caller's recorder.
            let mut spreads = Vec::with_capacity(options.len());
            let mut kernel: Cycle = 0;
            let mut counters = Counters::default();
            for (idx, option) in options.iter().enumerate() {
                let run_trace = TraceRecorder::new();
                let run_config = config.trace.as_ref().map(|_| {
                    let mut c = config.clone();
                    c.trace = Some(run_trace.clone());
                    c
                });
                let (g, sink) = build_graph(
                    market.clone(),
                    run_config.as_ref().unwrap_or(config),
                    std::slice::from_ref(option),
                    idx as u32,
                );
                let processes = g.process_count();
                let mut sim = EventSim::new(g);
                let report = match sim.run() {
                    Ok(r) => r,
                    Err(e) => panic!("CDS dataflow graph must not deadlock: {e}"),
                };
                kernel += report.total_cycles + config.region_cost.invocation_overhead(processes);
                counters.merge(&Counters::from_run(&run_trace, &report));
                spreads.extend(collect_spreads(&sink, 1));
            }
            counters.region_restarts = (options.len() as u64).saturating_sub(1);
            EngineRunReport::from_cycles_with_counters(
                config, spreads, kernel, curve_load, counters,
            )
        }
    }
}

fn collect_spreads(sink: &SinkHandle<SpreadTok>, expected: usize) -> Vec<f64> {
    let collected = sink.values();
    assert_eq!(collected.len(), expected, "every option must produce a spread");
    // Results leave the engine in option order (the round-robin merge and
    // strict per-option reduction preserve sequence); assert and map.
    for (i, tok) in collected.iter().enumerate() {
        debug_assert_eq!(tok.opt_idx as usize % expected.max(1), i % expected.max(1));
    }
    collected.into_iter().map(|t| t.spread_bps).collect()
}

/// Build the Figure-2/Figure-3 dataflow graph for a slice of options.
pub fn build_graph(
    market: Rc<MarketData<f64>>,
    config: &EngineConfig,
    options: &[CdsOption],
    base_idx: u32,
) -> (GraphBuilder, SinkHandle<SpreadTok>) {
    build_graph_with_arrivals(market, config, options, base_idx, None)
}

/// As [`build_graph`], but options enter the engine at the prescribed
/// absolute cycles instead of back-to-back — the streaming deployment of
/// the paper's AAT further-work direction.
pub fn build_graph_with_arrivals(
    market: Rc<MarketData<f64>>,
    config: &EngineConfig,
    options: &[CdsOption],
    base_idx: u32,
    arrivals: Option<&[Cycle]>,
) -> (GraphBuilder, SinkHandle<SpreadTok>) {
    let mut g = GraphBuilder::new();
    let sink = build_graph_into(&mut g, "", market, config, options, base_idx, arrivals);
    (g, sink)
}

/// Instantiate one engine's stages and streams into an existing graph
/// under a name `prefix`, so several independent engines can be simulated
/// concurrently in a single discrete-event run (the §IV multi-engine
/// deployment). Returns the engine's spread sink.
#[allow(clippy::too_many_arguments)] // one knob per §IV deployment dimension
pub fn build_graph_into(
    g: &mut GraphBuilder,
    prefix: &str,
    market: Rc<MarketData<f64>>,
    config: &EngineConfig,
    options: &[CdsOption],
    base_idx: u32,
    arrivals: Option<&[Cycle]>,
) -> SinkHandle<SpreadTok> {
    let n_opts = options.len() as u64;
    let total_points: u64 = options
        .iter()
        .map(|o| match PaymentSchedule::<f64>::generate(o.maturity, o.frequency.per_year()) {
            Ok(s) => s.len() as u64,
            Err(e) => panic!("option failed schedule generation: {e}"),
        })
        .sum();
    let depth = config.stream_depth;
    g.set_default_depth(depth);

    // Once-per-option input stream (red arrows of Fig 2).
    let (tx_opts, rx_opts) = g.stream::<OptionTok>(format!("{prefix}options"), depth.max(4));
    let option_toks: Vec<OptionTok> = options
        .iter()
        .enumerate()
        .map(|(i, o)| OptionTok {
            opt_idx: base_idx + i as u32,
            maturity: o.maturity,
            payments_per_year: o.frequency.per_year(),
            recovery: o.recovery_rate,
        })
        .collect();
    match arrivals {
        None => {
            g.add(SourceStage::new(
                format!("{prefix}option-in"),
                option_toks,
                Cost::new(1, 1),
                tx_opts,
            ));
        }
        Some(cycles) => {
            assert_eq!(cycles.len(), option_toks.len(), "one arrival per option");
            let schedule: Vec<(OptionTok, Cycle)> =
                option_toks.into_iter().zip(cycles.iter().copied()).collect();
            g.add(dataflow_sim::stages::TimedSourceStage::new(
                format!("{prefix}option-in"),
                schedule,
                1,
                tx_opts,
            ));
        }
    }

    // Per-time-point streams (blue arrows of Fig 2).
    let (tx_haz, rx_haz) = g.stream::<TimePointTok>(format!("{prefix}tp_hazard"), depth);
    let (tx_t, rx_t) = g.stream::<TimePointTok>(format!("{prefix}tp_interp_t"), depth);
    let (tx_mid, rx_mid) = g.stream::<TimePointTok>(format!("{prefix}tp_interp_mid"), depth);
    // The accrual path consumes half-delta tokens only once the payoff
    // term of the same point emerges from the long hazard/interpolation
    // pipelines; its FIFO must cover the replica count plus that lag or
    // it throttles the in-flight window below `V` and starves replicas.
    let hd_depth =
        config.accrual_fifo_depth.unwrap_or_else(|| depth.max(4 * config.vector_factor.max(1) + 8));
    let (tx_hd, rx_hd) = g.stream::<Tok>(format!("{prefix}half_delta"), hd_depth);
    let (tx_meta, rx_meta) = g.stream::<Tok>(format!("{prefix}recovery_meta"), depth.max(8));
    g.add(TimePointGen::new(
        format!("{prefix}time-points"),
        rx_opts,
        tx_haz,
        tx_t,
        tx_mid,
        tx_hd,
        tx_meta,
        n_opts,
    ));

    // Scan costs per time point: full static-bound table scan, adjusted
    // for URAM port sharing (vectorisation) and datapath width
    // (precision). The hazard unit's accumulation II multiplies the whole
    // scan when dependency-chained.
    let haz_ii = config.replica_scan_cycles(market.hazard.len()) * config.hazard_ii.ii();
    let interp_ii = config.replica_scan_cycles(market.interest.len());
    let exp_latency = config.precision.exp_latency();
    // Listing-1 lane reduction plus the exponential producing survival.
    let hazard_tail = 7 * config.precision.add_latency() + exp_latency;
    // Mixed-precision mode: the memory-bound scan/exp datapath runs in
    // f32; the narrow downstream arithmetic stays f64.
    let market32: Option<Rc<cds_quant::option::MarketData<f32>>> = match config.precision {
        EnginePrecision::Single => Some(Rc::new(market.to_f32())),
        EnginePrecision::Double => None,
    };

    // Hazard unit: full static-bound scan of the hazard constants per time
    // point with the Listing-1 accumulator, then exp → survival. The
    // static bound (scan the whole table, select up to t) is what makes
    // time points independent and therefore vectorisable.
    let rx_surv = {
        let market = market.clone();
        let market32 = market32.clone();
        replicated_unit(
            g,
            config,
            &format!("{prefix}hazard"),
            rx_haz,
            total_points,
            move |tp: TimePointTok| {
                let survival = match &market32 {
                    Some(m32) => {
                        let (integral, _) = m32.hazard.scan_integral(tp.t as f32);
                        (-integral).exp() as f64
                    }
                    None => {
                        let (integral, _) = market.hazard.scan_integral(tp.t);
                        (-integral).exp()
                    }
                };
                (Tok::new(tp.opt_idx, survival, tp.last), Cost::new(haz_ii, haz_ii + hazard_tail))
            },
        )
    };

    // Interpolation at the payment date: Δ·DF(t).
    let rx_ddf = {
        let market = market.clone();
        let market32 = market32.clone();
        replicated_unit(
            g,
            config,
            &format!("{prefix}interp-t"),
            rx_t,
            total_points,
            move |tp: TimePointTok| {
                let df = match &market32 {
                    Some(m32) => {
                        let rate = m32.interest.value_at(tp.t as f32);
                        (-rate * tp.t as f32).exp() as f64
                    }
                    None => {
                        let rate = market.interest.value_at(tp.t);
                        (-rate * tp.t).exp()
                    }
                };
                (
                    Tok::new(tp.opt_idx, tp.delta * df, tp.last),
                    Cost::new(interp_ii, interp_ii + exp_latency + CALC_LATENCY),
                )
            },
        )
    };

    // Interpolation at the period mid-point: DF(mid).
    let rx_dfm = {
        let market = market.clone();
        let market32 = market32.clone();
        replicated_unit(
            g,
            config,
            &format!("{prefix}interp-mid"),
            rx_mid,
            total_points,
            move |tp: TimePointTok| {
                let df_mid = match &market32 {
                    Some(m32) => {
                        let rate = m32.interest.value_at(tp.mid as f32);
                        (-rate * tp.mid as f32).exp() as f64
                    }
                    None => {
                        let rate = market.interest.value_at(tp.mid);
                        (-rate * tp.mid).exp()
                    }
                };
                (
                    Tok::new(tp.opt_idx, df_mid, tp.last),
                    Cost::new(interp_ii, interp_ii + exp_latency),
                )
            },
        )
    };

    // Survival feeds both the payment and payoff calculations.
    let (tx_sa, rx_sa) = g.stream::<Tok>(format!("{prefix}survival_a"), depth);
    let (tx_sb, rx_sb) = g.stream::<Tok>(format!("{prefix}survival_b"), depth);
    g.add(TeeStage::new(format!("{prefix}survival-tee"), rx_surv, tx_sa, tx_sb, total_points));

    // Payment term: (Δ·DF(t)) · S(t).
    let (tx_pay, rx_pay) = g.stream::<Tok>(format!("{prefix}payment_terms"), depth);
    g.add(ZipStage::new(
        format!("{prefix}payment-calc"),
        vec![rx_sa, rx_ddf],
        tx_pay,
        Some(total_points),
        |xs: &[Tok]| {
            (
                Tok::new(xs[0].opt_idx, xs[1].value * xs[0].value, xs[0].last),
                Cost::new(1, CALC_LATENCY),
            )
        },
    ));

    // Payoff term: DF(mid) · (S(tᵢ₋₁) − S(tᵢ)); prev-survival kept as
    // stage state, reset at each option boundary.
    let (tx_poff, rx_poff) = g.stream::<Tok>(format!("{prefix}payoff_terms"), depth);
    {
        let mut prev_survival = 1.0f64;
        g.add(ZipStage::new(
            format!("{prefix}payoff-calc"),
            vec![rx_sb, rx_dfm],
            tx_poff,
            Some(total_points),
            move |xs: &[Tok]| {
                let d_pd = prev_survival - xs[0].value;
                prev_survival = if xs[0].last { 1.0 } else { xs[0].value };
                (
                    Tok::new(xs[0].opt_idx, xs[1].value * d_pd, xs[0].last),
                    Cost::new(1, CALC_LATENCY),
                )
            },
        ));
    }

    // Payoff feeds both its own accumulator and the accrual calculation.
    let (tx_pa, rx_pa) = g.stream::<Tok>(format!("{prefix}payoff_a"), depth);
    let (tx_pb, rx_pb) = g.stream::<Tok>(format!("{prefix}payoff_b"), depth);
    g.add(TeeStage::new(format!("{prefix}payoff-tee"), rx_poff, tx_pa, tx_pb, total_points));

    // Accrual term: payoff-term · (Δ/2) — "the CDS insurance that has
    // been paid for but not yet received".
    let (tx_accr, rx_accr) = g.stream::<Tok>(format!("{prefix}accrual_terms"), depth);
    g.add(ZipStage::new(
        format!("{prefix}accrual-calc"),
        vec![rx_pb, rx_hd],
        tx_accr,
        Some(total_points),
        |xs: &[Tok]| {
            (
                Tok::new(xs[0].opt_idx, xs[0].value * xs[1].value, xs[0].last),
                Cost::new(1, CALC_LATENCY),
            )
        },
    ));

    // Per-option accumulations (Listing-1 lane accumulators).
    let (tx_ps, rx_ps) = g.stream::<Tok>(format!("{prefix}payment_sum"), depth);
    g.add(ReduceStage::new(format!("{prefix}sum-payments"), rx_pay, tx_ps, n_opts));
    let (tx_os, rx_os) = g.stream::<Tok>(format!("{prefix}payoff_sum"), depth);
    g.add(ReduceStage::new(format!("{prefix}sum-payoffs"), rx_pa, tx_os, n_opts));
    let (tx_as, rx_as) = g.stream::<Tok>(format!("{prefix}accrual_sum"), depth);
    g.add(ReduceStage::new(format!("{prefix}sum-accruals"), rx_accr, tx_as, n_opts));

    // Final combination into the spread (green output of Fig 2).
    let (tx_spread, rx_spread) = g.stream::<SpreadTok>(format!("{prefix}spreads"), depth.max(4));
    g.add(ZipStage::new(
        format!("{prefix}combine"),
        vec![rx_ps, rx_os, rx_as, rx_meta],
        tx_spread,
        Some(n_opts),
        |xs: &[Tok]| {
            let (premium, protection, accrual, recovery) =
                (xs[0].value, xs[1].value, xs[2].value, xs[3].value);
            let lgd = 1.0 - recovery;
            let denom = premium + accrual;
            // A vanishing payment-leg PV means the fair-spread quotient
            // diverges (the reference pricer's DegenerateOption error);
            // the hardware stage signals it in-band as NaN rather than
            // fabricating a zero spread.
            let spread_bps = if denom > cds_quant::cds::DEGENERATE_ANNUITY_EPS {
                lgd * protection / denom * 10_000.0
            } else {
                f64::NAN
            };
            (
                SpreadTok { opt_idx: xs[0].opt_idx, spread_bps },
                Cost::new(1, FP_DIV_LATENCY_CYCLES + CALC_LATENCY),
            )
        },
    ));

    g.add_counted_sink(format!("{prefix}spread-out"), rx_spread, n_opts)
}

/// Wrap a per-time-point function into either a single stage (V = 1) or a
/// Figure-3 round-robin split / replicas / merge diamond (V > 1).
fn replicated_unit<F>(
    g: &mut GraphBuilder,
    config: &EngineConfig,
    name: &str,
    rx: StreamReceiver<TimePointTok>,
    total_points: u64,
    f: F,
) -> StreamReceiver<Tok>
where
    F: FnMut(TimePointTok) -> (Tok, Cost) + Clone + 'static,
{
    let v = config.vector_factor.max(1);
    let depth = config.stream_depth;
    let (tx_out, rx_out) = g.stream::<Tok>(format!("{name}_out"), depth);
    if v == 1 {
        let stage = MapStage::new(name, rx, tx_out, Some(total_points), f);
        let stage = match &config.trace {
            Some(t) => stage.with_trace(t.clone()),
            None => stage,
        };
        g.add(stage);
        return rx_out;
    }
    let mut to_replica_rx = Vec::with_capacity(v);
    let mut to_replica_tx = Vec::with_capacity(v);
    for k in 0..v {
        let (tx, rxk) = g.stream::<TimePointTok>(format!("{name}_to_{k}"), depth);
        to_replica_tx.push(tx);
        to_replica_rx.push(rxk);
    }
    g.add(RoundRobinSplit::new(
        format!("{name}-sched"),
        rx,
        to_replica_tx,
        Cost::UNIT,
        Some(total_points),
    ));
    let mut from_replica_rx = Vec::with_capacity(v);
    for (k, rxk) in to_replica_rx.into_iter().enumerate() {
        let (txk, rx_from) = g.stream::<Tok>(format!("{name}_from_{k}"), depth);
        // Replicas finish passively once the split and merge have moved
        // their exact token counts.
        let stage = MapStage::new(format!("{name}-rep{k}"), rxk, txk, None, f.clone());
        let stage = match &config.trace {
            Some(t) => stage.with_trace(t.clone()),
            None => stage,
        };
        g.add(stage);
        from_replica_rx.push(rx_from);
    }
    g.add(RoundRobinMerge::new(
        format!("{name}-merge"),
        from_replica_rx,
        tx_out,
        Cost::UNIT,
        Some(total_points),
    ));
    rx_out
}

/// Graphviz DOT of the Figure-2 dataflow architecture.
pub fn fig2_dot(market: &Rc<MarketData<f64>>) -> String {
    let config = crate::config::EngineVariant::InterOption.config();
    let options = vec![CdsOption::new(5.5, cds_quant::option::PaymentFrequency::Quarterly, 0.4)];
    let (g, _sink) = build_graph(market.clone(), &config, &options, 0);
    g.to_dot("Fig 2: CDS dataflow architecture")
}

/// Graphviz DOT of the Figure-3 vectorised architecture (replicated
/// hazard/interpolation units behind round-robin schedulers).
pub fn fig3_dot(market: &Rc<MarketData<f64>>) -> String {
    let config = crate::config::EngineVariant::Vectorised.config();
    let options = vec![CdsOption::new(5.5, cds_quant::option::PaymentFrequency::Quarterly, 0.4)];
    let (g, _sink) = build_graph(market.clone(), &config, &options, 0);
    g.to_dot("Fig 3: vectorised defaulting-probability calculation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineVariant;
    use cds_quant::cds::CdsPricer;
    use cds_quant::option::{PaymentFrequency, PortfolioGenerator};

    fn market() -> Rc<MarketData<f64>> {
        Rc::new(MarketData::paper_workload(7))
    }

    fn paper_options(n: usize) -> Vec<CdsOption> {
        PortfolioGenerator::uniform(n, 5.5, PaymentFrequency::Quarterly, 0.4)
    }

    #[test]
    fn all_variants_match_reference_numerics() {
        let market = market();
        let pricer = CdsPricer::new((*market).clone());
        let options = PortfolioGenerator::new(11).portfolio(12);
        for variant in [
            EngineVariant::OptimisedDataflow,
            EngineVariant::InterOption,
            EngineVariant::Vectorised,
        ] {
            let report = run(market.clone(), &variant.config(), &options);
            assert_eq!(report.spreads.len(), options.len());
            for (o, s) in options.iter().zip(&report.spreads) {
                let golden = pricer.price(o).spread_bps;
                assert!(
                    (s - golden).abs() < 1e-7 * (1.0 + golden.abs()),
                    "{variant:?}: {s} vs {golden}"
                );
            }
        }
    }

    #[test]
    fn inter_option_faster_than_per_option() {
        let market = market();
        let options = paper_options(8);
        let per = run(market.clone(), &EngineVariant::OptimisedDataflow.config(), &options);
        let cont = run(market.clone(), &EngineVariant::InterOption.config(), &options);
        let gain = per.kernel_cycles as f64 / cont.kernel_cycles as f64;
        assert!(gain > 1.4, "inter-option gain only {gain}");
        assert_eq!(per.spreads, cont.spreads);
    }

    #[test]
    fn vectorisation_roughly_doubles_throughput() {
        let market = market();
        let options = paper_options(8);
        let inter = run(market.clone(), &EngineVariant::InterOption.config(), &options);
        let vec_ = run(market.clone(), &EngineVariant::Vectorised.config(), &options);
        let gain = inter.kernel_cycles as f64 / vec_.kernel_cycles as f64;
        assert!(gain > 1.6 && gain < 2.5, "vectorisation gain {gain}");
        assert_eq!(inter.spreads, vec_.spreads);
    }

    #[test]
    fn steady_state_cycles_per_option_near_scan_bound() {
        // Inter-option: the hazard unit scans the full 1024-entry curve
        // per time point (22 points at 5.5y quarterly) ⇒ ≈ 22.5k
        // cycles/option once the pipeline is full.
        let market = market();
        let options = paper_options(32);
        let report = run(market.clone(), &EngineVariant::InterOption.config(), &options);
        let per_option = report.cycles_per_option();
        let bound = 22.0 * 1024.0;
        assert!(
            per_option > bound * 0.95 && per_option < bound * 1.25,
            "cycles/option {per_option} vs scan bound {bound}"
        );
    }

    #[test]
    fn mixed_portfolio_order_preserved() {
        let market = market();
        let pricer = CdsPricer::new((*market).clone());
        // Distinct maturities so any misordering would be caught.
        let options: Vec<CdsOption> =
            (1..=6).map(|i| CdsOption::new(i as f64, PaymentFrequency::Quarterly, 0.4)).collect();
        let report = run(market.clone(), &EngineVariant::Vectorised.config(), &options);
        for (o, s) in options.iter().zip(&report.spreads) {
            let golden = pricer.price(o).spread_bps;
            assert!((s - golden).abs() < 1e-7 * (1.0 + golden.abs()));
        }
    }

    #[test]
    fn fig_dots_well_formed() {
        let market = market();
        let f2 = fig2_dot(&market);
        assert!(f2.contains("time-points"));
        assert!(f2.contains("hazard"));
        assert!(f2.contains("combine"));
        assert!(!f2.contains("hazard-rep"), "Fig 2 must not be vectorised");
        let f3 = fig3_dot(&market);
        assert!(f3.contains("hazard-sched"));
        assert!(f3.contains("hazard-rep5"));
        assert!(f3.contains("hazard-merge"));
    }

    #[test]
    fn degenerate_option_yields_nan_not_silent_zero() {
        // A vanishing-maturity contract has a near-zero payment-leg PV;
        // the combine stage must flag the diverging quotient in-band as
        // NaN, mirroring the reference pricer's DegenerateOption error.
        let market = market();
        let options = vec![CdsOption::new(1e-13, PaymentFrequency::Quarterly, 0.4)];
        let report = run(market, &EngineVariant::InterOption.config(), &options);
        assert!(report.spreads[0].is_nan(), "got {}", report.spreads[0]);
    }

    #[test]
    fn stream_depth_one_still_correct() {
        let market = market();
        let mut config = EngineVariant::InterOption.config();
        config.stream_depth = 1;
        let options = paper_options(4);
        let report = run(market.clone(), &config, &options);
        let pricer = CdsPricer::new((*market).clone());
        for (o, s) in options.iter().zip(&report.spreads) {
            assert!((s - pricer.price(o).spread_bps).abs() < 1e-7);
        }
    }
}
