//! The engine variants of the paper's Table I.

pub mod dataflow;
pub mod xilinx;
