//! The baseline open-source Xilinx Vitis library CDS engine (Figure 1).
//!
//! "The Xilinx CDS engine processed one option at a time, where input
//! values for an option are loaded, the calculations then undertaken for
//! each time point, and then the spread returned. … whilst the Xilinx
//! implementation pipelines the individual loops it does not dataflow
//! these, and as such the components making up the overall flowchart of
//! Figure 1 run sequentially."
//!
//! Timing model (every term from the pipelined-loop algebra of
//! [`dataflow_sim::pipeline`]):
//!
//! * **defaulting probability**: for each time point, the hazard constant
//!   data up to that time is accumulated with the loop-carried
//!   double-precision add ⇒ II = 7 over the prefix length;
//! * **payments / payoff**: a linear interpolation scan over the interest
//!   curve prefix per time point (II = 1, the scan itself pipelines);
//! * **accrual and combination**: cheap per-point arithmetic.
//!
//! Numerically the baseline is identical to the reference pricer — it is
//! the same mathematics, merely scheduled badly.

use crate::config::{
    EngineConfig, FP_ADD_LATENCY_CYCLES, FP_DIV_LATENCY_CYCLES, FP_EXP_LATENCY_CYCLES,
};
use crate::report::EngineRunReport;
use crate::stages::TimePointGen;
use crate::tokens::OptionTok;
use cds_quant::accumulate::sum_lanes7;
use cds_quant::option::{CdsOption, MarketData};
use dataflow_sim::pipeline::PipelinedLoop;
use dataflow_sim::Cycle;

/// Price a batch on the baseline engine, returning spreads and timing.
pub fn run(
    market: &MarketData<f64>,
    config: &EngineConfig,
    options: &[CdsOption],
) -> EngineRunReport {
    let mut spreads = Vec::with_capacity(options.len());
    let mut kernel_cycles: Cycle = 0;
    let hazard_loop = PipelinedLoop::new(config.hazard_ii.ii(), FP_ADD_LATENCY_CYCLES);
    let scan_loop = PipelinedLoop::fully_pipelined(4);
    let timegen_loop = PipelinedLoop::fully_pipelined(4);

    for (idx, option) in options.iter().enumerate() {
        let tok = OptionTok {
            opt_idx: idx as u32,
            maturity: option.maturity,
            payments_per_year: option.frequency.per_year(),
            recovery: option.recovery_rate,
        };
        let points = TimePointGen::expand(&tok);

        // --- numerics (identical formulas to the reference pricer) ---
        let mut payments = Vec::with_capacity(points.len());
        let mut payoffs = Vec::with_capacity(points.len());
        let mut accruals = Vec::with_capacity(points.len());
        let mut prev_survival = 1.0f64;

        // --- timing: sequential pipelined loops per Figure 1 ---
        // Time point generation.
        kernel_cycles += timegen_loop.cycles(points.len() as u64);
        // Defaulting probability: prefix accumulation per time point at
        // the dependency-chained II.
        let mut hazard_cycles: Cycle = 0;
        let mut interp_t_cycles: Cycle = 0;
        let mut interp_mid_cycles: Cycle = 0;
        let mut survivals = Vec::with_capacity(points.len());
        for p in &points {
            let (integral, scanned) = market.hazard.scan_integral(p.t);
            hazard_cycles += hazard_loop.cycles(scanned as u64) + FP_EXP_LATENCY_CYCLES;
            survivals.push((-integral).exp());
        }
        // Present value of expected payments: interpolation scan + exp.
        for (p, s) in points.iter().zip(&survivals) {
            let (rate, scanned) = market.interest.scan_value_at(p.t);
            interp_t_cycles += scan_loop.cycles(scanned as u64) + FP_EXP_LATENCY_CYCLES;
            let df = (-rate * p.t).exp();
            payments.push(p.delta * df * *s);
        }
        // Present value of expected payoff and accrual: mid-point scan.
        for (p, s) in points.iter().zip(&survivals) {
            let (rate_mid, scanned) = market.interest.scan_value_at(p.mid);
            interp_mid_cycles += scan_loop.cycles(scanned as u64) + FP_EXP_LATENCY_CYCLES;
            let df_mid = (-rate_mid * p.mid).exp();
            let d_pd = prev_survival - s;
            payoffs.push(df_mid * d_pd);
            accruals.push(0.5 * p.delta * df_mid * d_pd);
            prev_survival = *s;
        }
        kernel_cycles += hazard_cycles + interp_t_cycles + interp_mid_cycles;
        // Leg accumulations (the short dependency-chained sums over the
        // time points) and the final spread combination.
        kernel_cycles += PipelinedLoop::dependency_chained_add().cycles(points.len() as u64);
        kernel_cycles += FP_DIV_LATENCY_CYCLES + 2;
        // Per-option loop control (not a dataflow-region relaunch).
        kernel_cycles += config.region_cost.invocation_overhead(0);

        let premium: f64 = sum_lanes7(&payments);
        let protection: f64 = sum_lanes7(&payoffs);
        let accrual: f64 = sum_lanes7(&accruals);
        let lgd = 1.0 - option.recovery_rate;
        let denom = premium + accrual;
        spreads.push(if denom > 0.0 { lgd * protection / denom * 10_000.0 } else { 0.0 });
    }

    let curve_load =
        config.memory.curve_load_cycles(market.hazard.len().max(market.interest.len()));
    EngineRunReport::from_cycles(config, spreads, kernel_cycles, curve_load)
}

/// Graphviz DOT rendering of the baseline's Figure-1 flowchart.
pub fn fig1_dot() -> String {
    let mut dot = String::new();
    dot.push_str("digraph fig1 {\n  label=\"Fig 1: Xilinx CDS engine (sequential)\";\n");
    dot.push_str("  rankdir=TB;\n  node [shape=box, style=rounded];\n");
    let stages = [
        ("load", "Load option"),
        ("timegen", "Determine time points"),
        ("prob", "Defaulting probability\n(hazard accumulation, II=7)"),
        ("payment", "PV of expected payments"),
        ("payoff", "PV of expected payoff"),
        ("accrual", "Accrued protection"),
        ("combine", "Combine -> spread"),
    ];
    for (id, label) in stages {
        dot.push_str(&format!("  {id} [label=\"{label}\"];\n"));
    }
    for w in stages.windows(2) {
        dot.push_str(&format!("  {} -> {};\n", w[0].0, w[1].0));
    }
    dot.push_str("  combine -> load [style=dashed, label=\"next option\"];\n}\n");
    dot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineVariant;
    use cds_quant::cds::CdsPricer;
    use cds_quant::option::{PaymentFrequency, PortfolioGenerator};

    fn market() -> MarketData<f64> {
        MarketData::paper_workload(7)
    }

    #[test]
    fn spreads_match_reference_pricer() {
        let market = market();
        let pricer = CdsPricer::new(market.clone());
        let options = PortfolioGenerator::new(3).portfolio(16);
        let report = run(&market, &EngineVariant::XilinxBaseline.config(), &options);
        for (o, s) in options.iter().zip(&report.spreads) {
            let golden = pricer.price(o).spread_bps;
            assert!((s - golden).abs() < 1e-8, "{s} vs {golden}");
        }
    }

    #[test]
    fn cycles_scale_with_batch_size() {
        let market = market();
        let config = EngineVariant::XilinxBaseline.config();
        let opts8 = PortfolioGenerator::uniform(8, 5.5, PaymentFrequency::Quarterly, 0.4);
        let opts16 = PortfolioGenerator::uniform(16, 5.5, PaymentFrequency::Quarterly, 0.4);
        let r8 = run(&market, &config, &opts8);
        let r16 = run(&market, &config, &opts16);
        let ratio = r16.kernel_cycles as f64 / r8.kernel_cycles as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn dependency_chained_ii_dominates_runtime() {
        // Switching the hazard II from 7 to 1 (leaving everything else)
        // must cut the baseline's cycles substantially.
        let market = market();
        let options = PortfolioGenerator::uniform(8, 5.5, PaymentFrequency::Quarterly, 0.4);
        let slow = run(&market, &EngineVariant::XilinxBaseline.config(), &options);
        let mut fixed = EngineVariant::XilinxBaseline.config();
        fixed.hazard_ii = crate::config::HazardIiMode::PartialSums;
        let fast = run(&market, &fixed, &options);
        let speedup = slow.kernel_cycles as f64 / fast.kernel_cycles as f64;
        assert!(speedup > 2.0, "II fix alone gave only {speedup}");
        // Numerics unchanged.
        assert_eq!(slow.spreads, fast.spreads);
    }

    #[test]
    fn longer_maturity_costs_more() {
        let market = market();
        let config = EngineVariant::XilinxBaseline.config();
        let short = PortfolioGenerator::uniform(4, 2.0, PaymentFrequency::Quarterly, 0.4);
        let long = PortfolioGenerator::uniform(4, 7.0, PaymentFrequency::Quarterly, 0.4);
        assert!(
            run(&market, &config, &long).kernel_cycles
                > 2 * run(&market, &config, &short).kernel_cycles
        );
    }

    #[test]
    fn fig1_dot_well_formed() {
        let dot = fig1_dot();
        assert!(dot.starts_with("digraph fig1 {"));
        assert!(dot.contains("Defaulting probability"));
        assert!(dot.contains("prob -> payment"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
