//! Typed error layer for the engine crate.
//!
//! Every fallible public entry point of the engine returns [`CdsError`]
//! instead of panicking: quant-domain failures ([`QuantError`]) and
//! simulator failures ([`SimError`]) are wrapped, deployment sizing keeps
//! its dedicated [`MultiEngineError`], and the fault-tolerant paths add
//! variants for work that could not be completed even after recovery.
//! Panics remain only for *internal invariants* — states a correct engine
//! cannot reach regardless of caller input.

use crate::multi::MultiEngineError;
use cds_quant::QuantError;
use dataflow_sim::graph::SimError;

/// Errors surfaced by the engine's fallible APIs.
#[derive(Debug, Clone, PartialEq)]
pub enum CdsError {
    /// A quantitative-finance failure: invalid option or curve input, or
    /// a degenerate contract whose fair spread diverges.
    Quant(QuantError),
    /// The discrete-event simulation failed (deadlock, runaway, or a
    /// mis-wired graph) — with fault injection active these become
    /// graceful terminations instead, so reaching this indicates a
    /// genuine engine bug or an impossible configuration.
    Sim(SimError),
    /// Multi-engine deployment sizing failed (zero engines, or more
    /// engines than fit on the device).
    Deployment(MultiEngineError),
    /// The engine configuration is inconsistent with the requested
    /// operation (e.g. streaming on a per-option region).
    Config {
        /// Human-readable description of the inconsistency.
        reason: &'static str,
    },
    /// Options were lost in flight (dropped by an injected fault or a
    /// dead engine) and recovery was not attempted.
    OptionsLost {
        /// Original indices of the unpriced options.
        lost: Vec<u32>,
    },
    /// Recovery retries were exhausted with work still unpriced.
    Exhausted {
        /// Retry rounds attempted.
        attempts: usize,
        /// Options still unpriced after the final round.
        unpriced: usize,
    },
    /// A run journal or checkpoint could not be parsed or is internally
    /// inconsistent (journal IO is typed, never a panic).
    Journal {
        /// What was wrong with the journal/checkpoint data.
        reason: String,
    },
    /// A curve point tick could not be ingested by the incremental
    /// repricing engine (knot out of bounds, or a value the curve
    /// validation rejects).
    Tick {
        /// What was wrong with the tick.
        reason: String,
    },
    /// The storage substrate failed while persisting or loading a
    /// journal/checkpoint (ENOSPC, EIO, a failed rename or sync).
    Storage {
        /// The file the failing operation targeted.
        path: String,
        /// The underlying I/O failure.
        cause: String,
    },
}

impl std::fmt::Display for CdsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CdsError::Quant(e) => write!(f, "quant error: {e}"),
            CdsError::Sim(e) => write!(f, "simulation error: {e}"),
            CdsError::Deployment(e) => write!(f, "deployment error: {e}"),
            CdsError::Config { reason } => write!(f, "invalid engine configuration: {reason}"),
            CdsError::OptionsLost { lost } => {
                write!(f, "{} option(s) lost in flight: {:?}", lost.len(), lost)
            }
            CdsError::Exhausted { attempts, unpriced } => {
                write!(f, "{unpriced} option(s) unpriced after {attempts} recovery attempt(s)")
            }
            CdsError::Journal { reason } => write!(f, "invalid run journal: {reason}"),
            CdsError::Tick { reason } => write!(f, "invalid curve tick: {reason}"),
            CdsError::Storage { path, cause } => {
                write!(f, "journal storage failure at {path}: {cause}")
            }
        }
    }
}

impl std::error::Error for CdsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CdsError::Quant(e) => Some(e),
            CdsError::Sim(e) => Some(e),
            CdsError::Deployment(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QuantError> for CdsError {
    fn from(e: QuantError) -> Self {
        CdsError::Quant(e)
    }
}

impl From<SimError> for CdsError {
    fn from(e: SimError) -> Self {
        CdsError::Sim(e)
    }
}

impl From<MultiEngineError> for CdsError {
    fn from(e: MultiEngineError) -> Self {
        CdsError::Deployment(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(CdsError, &str)> = vec![
            (CdsError::Quant(QuantError::CurveTooShort { got: 1 }), "quant"),
            (CdsError::Sim(SimError::Runaway { events: 9 }), "simulation"),
            (CdsError::Deployment(MultiEngineError::NoEngines), "deployment"),
            (CdsError::Config { reason: "streaming requires the continuous region" }, "continuous"),
            (CdsError::OptionsLost { lost: vec![3, 4] }, "lost"),
            (CdsError::Exhausted { attempts: 2, unpriced: 5 }, "unpriced"),
            (CdsError::Journal { reason: "bad magic".to_string() }, "journal"),
            (CdsError::Tick { reason: "knot 9 out of bounds".to_string() }, "tick"),
            (
                CdsError::Storage {
                    path: "/tmp/x.ckpt".to_string(),
                    cause: "injected ENOSPC".to_string(),
                },
                "storage",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg} should mention {needle}");
        }
    }

    #[test]
    fn from_impls_wrap_sources() {
        use std::error::Error;
        let e: CdsError = QuantError::CurveTooShort { got: 0 }.into();
        assert!(matches!(e, CdsError::Quant(_)));
        assert!(e.source().is_some());
        let e: CdsError = MultiEngineError::NoEngines.into();
        assert!(matches!(e, CdsError::Deployment(_)));
        let e = CdsError::Config { reason: "x" };
        assert!(e.source().is_none());
    }
}
