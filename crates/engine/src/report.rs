//! Run reports: spreads plus the timing decomposition behind the paper's
//! options/second metric.

use crate::config::{EngineConfig, EngineVariant};
use dataflow_sim::trace::Counters;
use dataflow_sim::Cycle;

/// Outcome of pricing one batch of options on an engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineRunReport {
    /// Which variant produced this report.
    pub variant: EngineVariant,
    /// Fair spreads in basis points, in option order.
    pub spreads: Vec<f64>,
    /// Kernel compute cycles (per-option region overheads included).
    pub kernel_cycles: Cycle,
    /// Cycles spent loading the constant curves from HBM into URAM at
    /// initialisation.
    pub curve_load_cycles: Cycle,
    /// Host↔card PCIe transfer time in seconds (options in, spreads out) —
    /// included in every reported figure, as in the paper.
    pub transfer_seconds: f64,
    /// Kernel time in seconds (compute + curve load).
    pub kernel_seconds: f64,
    /// End-to-end seconds.
    pub total_seconds: f64,
    /// The paper's headline metric.
    pub options_per_second: f64,
    /// Run telemetry: per-process busy/stall split (populated when the
    /// config carries a trace recorder), stream occupancy high-water,
    /// backpressure events and region restarts.
    pub counters: Counters,
}

impl EngineRunReport {
    /// Assemble a report from raw cycle counts.
    pub fn from_cycles(
        config: &EngineConfig,
        spreads: Vec<f64>,
        kernel_cycles: Cycle,
        curve_load_cycles: Cycle,
    ) -> Self {
        Self::from_cycles_with_counters(
            config,
            spreads,
            kernel_cycles,
            curve_load_cycles,
            Counters::default(),
        )
    }

    /// As [`EngineRunReport::from_cycles`], carrying the run's telemetry.
    pub fn from_cycles_with_counters(
        config: &EngineConfig,
        spreads: Vec<f64>,
        kernel_cycles: Cycle,
        curve_load_cycles: Cycle,
        counters: Counters,
    ) -> Self {
        let options = spreads.len() as u64;
        let kernel_seconds = config.clock.seconds(kernel_cycles + curve_load_cycles);
        let transfer_seconds = config.pcie.option_batch_seconds(options);
        let total_seconds = kernel_seconds + transfer_seconds;
        EngineRunReport {
            variant: config.variant,
            spreads,
            kernel_cycles,
            curve_load_cycles,
            transfer_seconds,
            kernel_seconds,
            total_seconds,
            options_per_second: if total_seconds > 0.0 {
                options as f64 / total_seconds
            } else {
                0.0
            },
            counters,
        }
    }

    /// Number of options priced.
    pub fn options(&self) -> usize {
        self.spreads.len()
    }

    /// Average kernel cycles per option (excluding curve load).
    pub fn cycles_per_option(&self) -> f64 {
        if self.spreads.is_empty() {
            0.0
        } else {
            self.kernel_cycles as f64 / self.spreads.len() as f64
        }
    }
}

/// One resident option whose fair spread changed under a curve tick.
///
/// Spreads travel as raw `f64` bits: the incremental engine's contract
/// is *bit* identity with a from-scratch full reprice, and carrying
/// bits end-to-end keeps every consumer honest about it (no silent
/// re-rounding through text or comparison through tolerances).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpreadDelta {
    /// Stable portfolio id of the repriced option.
    pub id: u32,
    /// Spread bits under the previous epoch.
    pub old_bits: u64,
    /// Spread bits under the new epoch.
    pub new_bits: u64,
}

impl SpreadDelta {
    /// The spread before the tick, in basis points.
    pub fn old_spread_bps(&self) -> f64 {
        f64::from_bits(self.old_bits)
    }

    /// The spread after the tick, in basis points.
    pub fn new_spread_bps(&self) -> f64 {
        f64::from_bits(self.new_bits)
    }
}

/// Outcome of ingesting one curve point tick incrementally.
#[derive(Debug, Clone, PartialEq)]
pub struct TickReport {
    /// Epoch published by this tick (monotonically increasing).
    pub epoch: u64,
    /// True when the tick re-published the identical value bits: the
    /// affected set is empty by construction and no option repriced.
    pub zero_delta: bool,
    /// Number of options whose read set touches the ticked knot (all of
    /// them were repriced; not all necessarily changed spread bits).
    pub affected: usize,
    /// The options whose spread bits actually changed, in id order.
    pub deltas: Vec<SpreadDelta>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_delta_round_trips_bits() {
        let d = SpreadDelta { id: 7, old_bits: 101.25f64.to_bits(), new_bits: 99.75f64.to_bits() };
        assert_eq!(d.old_spread_bps(), 101.25);
        assert_eq!(d.new_spread_bps(), 99.75);
    }

    #[test]
    fn report_arithmetic() {
        let config = EngineVariant::InterOption.config();
        let r = EngineRunReport::from_cycles(&config, vec![100.0; 10], 3_000_000, 640);
        assert_eq!(r.options(), 10);
        assert!((r.cycles_per_option() - 300_000.0).abs() < 1e-9);
        assert!(r.kernel_seconds > 0.0);
        assert!(r.transfer_seconds > 0.0);
        assert!(r.total_seconds > r.kernel_seconds);
        let implied = 10.0 / r.total_seconds;
        assert!((r.options_per_second - implied).abs() < 1e-9);
    }

    #[test]
    fn empty_batch_is_degenerate_but_safe() {
        let config = EngineVariant::InterOption.config();
        let r = EngineRunReport::from_cycles(&config, Vec::new(), 0, 0);
        assert_eq!(r.options(), 0);
        assert_eq!(r.cycles_per_option(), 0.0);
        assert_eq!(r.options_per_second, 0.0);
    }
}
