//! Streaming deployment: quote-by-quote pricing with latency tracking.
//!
//! The paper's introduction motivates two regimes: batch processing and
//! "the ability to stream in data and generate immediate decisions"; its
//! conclusions propose combining the engine with Xilinx's Accelerated
//! Algorithmic Trading platform. This module realises the streaming
//! regime on the simulator: options arrive as a (Poisson) point process,
//! flow through the continuously-running dataflow region, and each
//! result's **latency** — arrival cycle to spread-out cycle — is
//! recorded, yielding the p50/p99 service latencies a trading deployment
//! would quote.
//!
//! A trading deployment must also survive overload and hardware faults,
//! so the entry point [`run_streaming_with`] takes a [`StreamingPolicy`]:
//!
//! * **admission control** ([`AdmissionControl`]) — a virtual-queue load
//!   shedder at the ingress. The pipelined engine is an M/D/1 server;
//!   beyond a target utilisation the queueing wait grows without bound,
//!   so arrivals that would push the backlog past the
//!   Pollaczek–Khinchine wait at that utilisation are **shed** rather
//!   than admitted, keeping the p99 of admitted traffic bounded at any
//!   offered load;
//! * **deadline watchdog** — per-option latency deadline; completions
//!   over budget are counted as misses, and admitted options that never
//!   complete (a dropped token, a dead stage) are reported as *lost*
//!   instead of hanging the run;
//! * **fault injection** — a seeded [`FaultPlan`] forwarded to the
//!   dataflow simulator for chaos testing.

use crate::checkpoint::{streaming_checkpoints, Checkpoint};
use crate::config::EngineConfig;
use crate::error::CdsError;
use crate::scrub::{scrub_spreads, ScrubPolicy, ScrubReport};
use crate::tokens::{OptionTok, SpreadTok, TimePointTok, Tok};
use crate::variants::dataflow::build_graph_into;
use cds_quant::option::{CdsOption, MarketData};
use dataflow_sim::event_sim::EventSim;
use dataflow_sim::fault::{FaultKind, FaultPlan};
use dataflow_sim::graph::GraphBuilder;
use dataflow_sim::region::RegionMode;
use dataflow_sim::trace::Counters;
use dataflow_sim::Cycle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::rc::Rc;

/// Latency statistics of a streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingReport {
    /// Per-completed-option `(arrival_cycle, completion_cycle)`, in
    /// original option order.
    pub spans: Vec<(Cycle, Cycle)>,
    /// Median latency in cycles (completed options).
    pub p50_cycles: Cycle,
    /// 99th-percentile latency in cycles (completed options).
    pub p99_cycles: Cycle,
    /// Worst latency in cycles (completed options).
    pub max_cycles: Cycle,
    /// Achieved throughput over the run, options/second.
    pub options_per_second: f64,
    /// Spreads of completed options, in original option order.
    pub spreads: Vec<f64>,
    /// Run telemetry (occupancy high-water, backpressure events, injected
    /// faults, and — when tracing is enabled — per-stage busy/stall
    /// cycles).
    pub counters: Counters,
    /// Options rejected at the ingress by admission control.
    pub options_shed: u64,
    /// Original indices of the shed options.
    pub shed_indices: Vec<u32>,
    /// Admitted options that never produced a spread (lost to an injected
    /// fault or a dead stage).
    pub options_lost: u64,
    /// Original indices of the lost options.
    pub lost_indices: Vec<u32>,
    /// Completed options whose latency exceeded the policy deadline.
    pub deadline_misses: u64,
    /// Total faults injected by the policy's fault plan.
    pub faults_injected: u64,
    /// Scrubber outcome when [`StreamingPolicy::scrub`] was set.
    pub scrub: Option<ScrubReport>,
}

impl StreamingReport {
    /// Median latency in microseconds under the engine clock.
    pub fn p50_us(&self, config: &EngineConfig) -> f64 {
        config.clock.seconds(self.p50_cycles) * 1e6
    }

    /// p99 latency in microseconds.
    pub fn p99_us(&self, config: &EngineConfig) -> f64 {
        config.clock.seconds(self.p99_cycles) * 1e6
    }
}

/// Backpressure-aware load shedding at the streaming ingress.
///
/// The engine services admitted options at a deterministic interval, so
/// the ingress can track a **virtual queue**: the cycle at which the
/// server would free up if every admitted option took exactly
/// `service_cycles_per_option`. An arrival that would wait longer than
/// `max_queue_cycles` behind that backlog is shed. Because the backlog of
/// admitted work can never exceed the threshold, the waiting time of
/// every admitted option — and hence the p99 — stays bounded regardless
/// of the offered load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionControl {
    /// Deterministic service interval per option, in cycles (e.g.
    /// payment count × [`EngineConfig::steady_state_point_cycles`]).
    pub service_cycles_per_option: Cycle,
    /// Maximum backlog, in cycles, an arrival may queue behind.
    pub max_queue_cycles: Cycle,
}

impl AdmissionControl {
    /// Derive the queue bound from M/D/1 queueing theory: admit while the
    /// backlog is within the Pollaczek–Khinchine mean wait at
    /// `target_utilisation` (`Wq = ρ·s / (2(1−ρ))`). Offered load beyond
    /// that utilisation is shed instead of queued.
    ///
    /// # Panics
    /// Panics unless `0 < target_utilisation < 1` (at ρ ≥ 1 the M/D/1
    /// wait is unbounded and no finite queue bound exists).
    pub fn from_md1(service_cycles_per_option: Cycle, target_utilisation: f64) -> Self {
        assert!(
            target_utilisation > 0.0 && target_utilisation < 1.0,
            "target utilisation must be in (0, 1), got {target_utilisation}"
        );
        let s = service_cycles_per_option as f64;
        let wq = target_utilisation * s / (2.0 * (1.0 - target_utilisation));
        AdmissionControl { service_cycles_per_option, max_queue_cycles: wq.ceil() as Cycle }
    }
}

/// Robustness policy of a streaming run; the default is the historical
/// behaviour (admit everything, no deadline, no faults).
#[derive(Debug, Clone, Default)]
pub struct StreamingPolicy {
    /// Per-option latency deadline; completions over budget count as
    /// [`StreamingReport::deadline_misses`].
    pub deadline_cycles: Option<Cycle>,
    /// Ingress load shedding; `None` admits every arrival.
    pub admission: Option<AdmissionControl>,
    /// Seeded fault plan forwarded to the dataflow simulator.
    pub fault_plan: Option<FaultPlan>,
    /// Result-integrity scrubbing of the completed spreads; `None`
    /// reports engine outputs verbatim.
    pub scrub: Option<ScrubPolicy>,
    /// Scenario label stamped into emitted [`Checkpoint`]s and asserted
    /// on resume: [`resume_streaming_from`] refuses a checkpoint whose
    /// recorded label differs from a requested one (both `Some`), so a
    /// journal from the wrong scenario surfaces as a typed error instead
    /// of a silently wrong (often empty) resumed run. `None` requests no
    /// assertion and labels nothing.
    pub scenario: Option<String>,
}

/// Draw Poisson arrival cycles for `n` options at `rate` options/second
/// under the engine clock (exponential inter-arrival times, fixed seed).
pub fn poisson_arrivals(config: &EngineConfig, rate: f64, n: usize, seed: u64) -> Vec<Cycle> {
    assert!(rate > 0.0, "arrival rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / rate;
        out.push(config.clock.cycles_for(t));
    }
    out
}

/// Analytic M/D/1 sojourn prediction for the streaming engine, in cycles.
///
/// The pipelined engine behaves as a single server with deterministic
/// service interval `service_ii` (cycles between successive results) and
/// a fixed pass-through latency `pipeline_latency` (fill). For Poisson
/// arrivals at `lambda` options/cycle, Pollaczek–Khinchine gives the mean
/// queueing wait `Wq = ρ·s / (2(1−ρ))`; the mean sojourn is
/// `Wq + pipeline_latency`. Returns `None` at or beyond saturation.
///
/// The test suite checks the discrete-event simulator against this
/// closed form — simulation and queueing theory agreeing from two
/// entirely different derivations.
pub fn md1_mean_sojourn_cycles(
    lambda_per_cycle: f64,
    service_ii: f64,
    pipeline_latency: f64,
) -> Option<f64> {
    let rho = lambda_per_cycle * service_ii;
    if rho >= 1.0 {
        return None;
    }
    let wq = rho * service_ii / (2.0 * (1.0 - rho));
    Some(wq + pipeline_latency)
}

/// Run a streaming session: options enter at `arrivals` cycles and flow
/// through a continuously-running engine.
///
/// Infallible wrapper over [`run_streaming_with`] with the default
/// (admit-everything, fault-free) policy, kept for callers that treat a
/// failure as fatal.
///
/// # Panics
/// Panics if the configuration is per-option (streaming requires the
/// continuous region), if arrivals and options differ in length, or if an
/// option is outside its admissible domain.
pub fn run_streaming(
    market: Rc<MarketData<f64>>,
    config: &EngineConfig,
    options: &[CdsOption],
    arrivals: &[Cycle],
) -> StreamingReport {
    match run_streaming_with(market, config, options, arrivals, &StreamingPolicy::default()) {
        Ok(report) => report,
        Err(e) => panic!("streaming run failed: {e}"),
    }
}

/// Run a streaming session under an explicit robustness [`StreamingPolicy`].
///
/// Options are re-validated at the ingress ([`CdsOption::validated`]), the
/// admission controller sheds arrivals that would exceed the queue bound,
/// and the watchdog classifies every admitted option as completed (with a
/// latency and possibly a deadline miss) or lost. Latency percentiles are
/// computed over completed options only.
pub fn run_streaming_with(
    market: Rc<MarketData<f64>>,
    config: &EngineConfig,
    options: &[CdsOption],
    arrivals: &[Cycle],
    policy: &StreamingPolicy,
) -> Result<StreamingReport, CdsError> {
    if config.region_mode != RegionMode::Continuous {
        return Err(CdsError::Config { reason: "streaming requires the continuous region" });
    }
    if options.len() != arrivals.len() {
        return Err(CdsError::Config { reason: "need exactly one arrival cycle per option" });
    }
    for o in options {
        CdsOption::validated(o.maturity, o.frequency, o.recovery_rate)?;
    }

    // Ingress admission: virtual-queue load shedding.
    let mut admitted: Vec<usize> = Vec::with_capacity(options.len());
    let mut shed_indices: Vec<u32> = Vec::new();
    match &policy.admission {
        None => admitted.extend(0..options.len()),
        Some(ac) => {
            let mut server_free_at: Cycle = 0;
            for (i, &arr) in arrivals.iter().enumerate() {
                let backlog = server_free_at.saturating_sub(arr);
                if backlog > ac.max_queue_cycles {
                    shed_indices.push(i as u32);
                } else {
                    admitted.push(i);
                    server_free_at = server_free_at.max(arr) + ac.service_cycles_per_option;
                }
            }
        }
    }

    if admitted.is_empty() {
        return Ok(StreamingReport {
            spans: Vec::new(),
            p50_cycles: 0,
            p99_cycles: 0,
            max_cycles: 0,
            options_per_second: 0.0,
            spreads: Vec::new(),
            counters: Counters::default(),
            options_shed: shed_indices.len() as u64,
            shed_indices,
            options_lost: 0,
            lost_indices: Vec::new(),
            deadline_misses: 0,
            faults_injected: 0,
            scrub: None,
        });
    }

    let admitted_opts: Vec<CdsOption> = admitted.iter().map(|&i| options[i]).collect();
    let admitted_arrivals: Vec<Cycle> = admitted.iter().map(|&i| arrivals[i]).collect();

    let mut g = GraphBuilder::new();
    if let Some(plan) = &policy.fault_plan {
        // Tag every token type with its owning option, so fault events
        // name the option the scrubber must quarantine.
        let plan = plan
            .clone()
            .identify::<OptionTok>(|t| Some(t.opt_idx))
            .identify::<TimePointTok>(|t| Some(t.opt_idx))
            .identify::<Tok>(|t| Some(t.opt_idx))
            .identify::<SpreadTok>(|t| Some(t.opt_idx));
        g.set_fault_plan(plan);
    }
    let sink = build_graph_into(
        &mut g,
        "",
        market.clone(),
        config,
        &admitted_opts,
        0,
        Some(&admitted_arrivals),
    );
    let mut sim = EventSim::new(g);
    let report = sim.run().map_err(CdsError::Sim)?;

    // Watchdog: classify every admitted option as completed or lost.
    let collected = sink.collected();
    let mut done = vec![false; admitted.len()];
    // (original index, arrival, completion, spread), sorted by index.
    let mut per_option: Vec<(usize, Cycle, Cycle, f64)> = Vec::with_capacity(collected.len());
    for (tok, done_at) in &collected {
        let pos = tok.opt_idx as usize;
        done[pos] = true;
        per_option.push((admitted[pos], admitted_arrivals[pos], *done_at, tok.spread_bps));
    }
    per_option.sort_unstable_by_key(|&(idx, ..)| idx);
    let lost_indices: Vec<u32> =
        admitted.iter().zip(&done).filter(|(_, &d)| !d).map(|(&idx, _)| idx as u32).collect();

    let mut spans = Vec::with_capacity(per_option.len());
    let mut latencies = Vec::with_capacity(per_option.len());
    let mut spreads = Vec::with_capacity(per_option.len());
    let mut deadline_misses = 0u64;
    for &(_, arrival, done_at, spread) in &per_option {
        let latency = done_at.saturating_sub(arrival);
        if policy.deadline_cycles.is_some_and(|d| latency > d) {
            deadline_misses += 1;
        }
        spans.push((arrival, done_at));
        latencies.push(latency);
        spreads.push(spread);
    }
    latencies.sort_unstable();
    let pct = |p: f64| -> Cycle {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    // Result-integrity scrub: guard every completed spread, quarantine
    // options tainted by corruption faults, reprice on the CPU fallback.
    let mut scrub = None;
    if let Some(sp) = &policy.scrub {
        let tainted: Vec<u32> = report
            .fault_events
            .iter()
            .filter(|e| e.kind == FaultKind::Corrupt)
            .filter_map(|e| e.opt_idx)
            .filter_map(|i| admitted.get(i as usize).map(|&orig| orig as u32))
            .collect();
        let mut priced: Vec<(u32, f64)> =
            per_option.iter().map(|&(idx, _, _, s)| (idx as u32, s)).collect();
        let scrub_report = scrub_spreads(&market, options, &mut priced, &tainted, sp)?;
        for (slot, &(_, s)) in priced.iter().enumerate() {
            spreads[slot] = s;
        }
        scrub = Some(scrub_report);
    }

    let span_seconds = config.clock.seconds(report.total_cycles);
    let trace = config.trace.clone().unwrap_or_default();
    let counters = Counters::from_run(&trace, &report);
    Ok(StreamingReport {
        p50_cycles: pct(0.50),
        p99_cycles: pct(0.99),
        max_cycles: latencies.last().copied().unwrap_or(0),
        options_per_second: if span_seconds > 0.0 {
            spreads.len() as f64 / span_seconds
        } else {
            0.0
        },
        spans,
        spreads,
        faults_injected: counters.faults.total(),
        counters,
        options_shed: shed_indices.len() as u64,
        shed_indices,
        options_lost: lost_indices.len() as u64,
        lost_indices,
        deadline_misses,
        scrub,
    })
}

/// Run a streaming session under `policy`, emitting a write-ahead
/// [`Checkpoint`] to `sink` after every `cadence` completed options
/// (plus a terminal commit record).
///
/// Checkpoints are derived in completion-cycle order — the order a
/// journal on real hardware would observe — so a consumer that persists
/// them and later calls [`resume_streaming_from`] on the last one it
/// saw loses at most one cadence interval of work.
pub fn run_streaming_checkpointed(
    market: Rc<MarketData<f64>>,
    config: &EngineConfig,
    options: &[CdsOption],
    arrivals: &[Cycle],
    policy: &StreamingPolicy,
    cadence: u32,
    mut sink: impl FnMut(&Checkpoint),
) -> Result<StreamingReport, CdsError> {
    let report = run_streaming_with(market, config, options, arrivals, policy)?;
    let fault_seed = policy.fault_plan.as_ref().map(FaultPlan::seed);
    for checkpoint in streaming_checkpoints(
        options.len() as u32,
        &report,
        fault_seed,
        policy.scenario.as_deref(),
        cadence,
    )? {
        sink(&checkpoint);
    }
    Ok(report)
}

/// Resume a streaming run from a [`Checkpoint`], re-pricing only the
/// admitted options the checkpoint has not seen complete.
///
/// `options` and `arrivals` must be the *original* workload. The
/// checkpoint's admission decisions are final (no re-admission), its
/// completions are taken verbatim (spreads are stored bit-exactly), and
/// the remainder is run through the engine with the caller's fault plan
/// and scrub settings. Because per-option pricing is independent of
/// batch composition, the merged spread set is bit-identical to an
/// uninterrupted run. Throughput and counters describe the resumed
/// portion only; latency percentiles and deadline misses are recomputed
/// over the merged completion set.
pub fn resume_streaming_from(
    market: Rc<MarketData<f64>>,
    config: &EngineConfig,
    options: &[CdsOption],
    arrivals: &[Cycle],
    policy: &StreamingPolicy,
    checkpoint: &Checkpoint,
) -> Result<StreamingReport, CdsError> {
    checkpoint.validate()?;
    // Scenario guard: a checkpoint recorded under scenario X resumed
    // while requesting scenario Y would replay the wrong journal —
    // historically a silent empty-or-wrong run, now a typed error. A
    // `None` on the policy side requests no assertion (the legitimate
    // "finish fault-free, whatever the journal was" path).
    if let (Some(recorded), Some(requested)) = (&checkpoint.scenario, &policy.scenario) {
        if recorded != requested {
            return Err(CdsError::Journal {
                reason: format!(
                    "checkpoint was recorded under scenario `{recorded}` but the resume \
                     requested scenario `{requested}`"
                ),
            });
        }
    }
    if checkpoint.total_options as usize != options.len() {
        return Err(CdsError::Journal {
            reason: format!(
                "checkpoint covers {} options but the workload has {}",
                checkpoint.total_options,
                options.len()
            ),
        });
    }
    if options.len() != arrivals.len() {
        return Err(CdsError::Config { reason: "need exactly one arrival cycle per option" });
    }

    let done: BTreeSet<u32> = checkpoint.completed.iter().map(|c| c.index).collect();
    let remaining: Vec<u32> =
        checkpoint.admitted.iter().copied().filter(|i| !done.contains(i)).collect();
    let rem_opts: Vec<CdsOption> = remaining.iter().map(|&i| options[i as usize]).collect();
    let rem_arrivals: Vec<Cycle> = remaining.iter().map(|&i| arrivals[i as usize]).collect();
    let sub_policy = StreamingPolicy {
        deadline_cycles: policy.deadline_cycles,
        admission: None, // admission decisions in the checkpoint are final
        fault_plan: policy.fault_plan.clone(),
        scrub: policy.scrub,
        scenario: policy.scenario.clone(),
    };
    let sub = run_streaming_with(market, config, &rem_opts, &rem_arrivals, &sub_policy)?;

    // Merge checkpointed completions with the resumed run's, back in
    // original-index order.
    let sub_lost: BTreeSet<u32> = sub.lost_indices.iter().map(|&i| remaining[i as usize]).collect();
    let mut merged: Vec<(u32, Cycle, Cycle, f64)> = checkpoint
        .completed
        .iter()
        .map(|c| (c.index, arrivals[c.index as usize], c.done_cycle, c.spread_bps))
        .collect();
    let sub_completed = remaining.iter().copied().filter(|i| !sub_lost.contains(i));
    for (idx, (&(arrival, done_at), &spread)) in
        sub_completed.zip(sub.spans.iter().zip(&sub.spreads))
    {
        merged.push((idx, arrival, done_at, spread));
    }
    merged.sort_unstable_by_key(|&(idx, ..)| idx);

    let mut spans = Vec::with_capacity(merged.len());
    let mut spreads = Vec::with_capacity(merged.len());
    let mut latencies = Vec::with_capacity(merged.len());
    let mut deadline_misses = 0u64;
    for &(_, arrival, done_at, spread) in &merged {
        let latency = done_at.saturating_sub(arrival);
        if policy.deadline_cycles.is_some_and(|d| latency > d) {
            deadline_misses += 1;
        }
        spans.push((arrival, done_at));
        latencies.push(latency);
        spreads.push(spread);
    }
    latencies.sort_unstable();
    let pct = |p: f64| -> Cycle {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    Ok(StreamingReport {
        p50_cycles: pct(0.50),
        p99_cycles: pct(0.99),
        max_cycles: latencies.last().copied().unwrap_or(0),
        options_per_second: sub.options_per_second,
        spans,
        spreads,
        faults_injected: sub.faults_injected,
        counters: sub.counters,
        options_shed: checkpoint.shed.len() as u64,
        shed_indices: checkpoint.shed.clone(),
        options_lost: sub_lost.len() as u64,
        lost_indices: sub_lost.into_iter().collect(),
        deadline_misses,
        scrub: sub.scrub,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineVariant;
    use cds_quant::cds::CdsPricer;
    use cds_quant::option::{PaymentFrequency, PortfolioGenerator};

    fn market() -> Rc<MarketData<f64>> {
        Rc::new(MarketData::paper_workload(7))
    }

    fn options(n: usize) -> Vec<CdsOption> {
        PortfolioGenerator::uniform(n, 5.5, PaymentFrequency::Quarterly, 0.4)
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_rate_consistent() {
        let config = EngineVariant::Vectorised.config();
        let arrivals = poisson_arrivals(&config, 10_000.0, 500, 1);
        assert_eq!(arrivals.len(), 500);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        // Mean inter-arrival ≈ clock/rate = 30k cycles; allow wide noise.
        let span = (arrivals[499] - arrivals[0]) as f64;
        let mean = span / 499.0;
        assert!((15_000.0..60_000.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn light_load_latency_is_pipeline_latency() {
        // Arrivals far apart: each option sees an empty engine, so the
        // latency is the pipeline's fill (≈ one full scan plus tails),
        // not a queueing delay.
        let config = EngineVariant::InterOption.config();
        let opts = options(6);
        let arrivals: Vec<Cycle> = (0..6).map(|i| i * 2_000_000).collect();
        let report = run_streaming(market(), &config, &opts, &arrivals);
        // 22 points × 1024 cycles ≈ 22.5k, plus stage tails.
        assert!(
            report.p50_cycles > 20_000 && report.p50_cycles < 30_000,
            "p50 {}",
            report.p50_cycles
        );
        // No queueing: p99 ≈ p50.
        assert!(report.p99_cycles < report.p50_cycles + 2_000);
    }

    #[test]
    fn saturating_load_queues_and_matches_batch_throughput() {
        let config = EngineVariant::Vectorised.config();
        let opts = options(48);
        // Arrivals far above the engine's ~26.5k opts/s capacity.
        let arrivals = poisson_arrivals(&config, 200_000.0, 48, 3);
        let report = run_streaming(market(), &config, &opts, &arrivals);
        // Later arrivals wait behind earlier ones: p99 >> p50 of light load.
        assert!(report.p99_cycles > 5 * report.p50_cycles.min(30_000), "p99 {}", report.p99_cycles);
        // Throughput approaches the batch steady state.
        assert!(
            (20_000.0..30_000.0).contains(&report.options_per_second),
            "throughput {}",
            report.options_per_second
        );
    }

    #[test]
    fn vectorised_has_lower_latency_than_inter_option_under_load() {
        let opts = options(24);
        let inter = EngineVariant::InterOption.config();
        let vec_ = EngineVariant::Vectorised.config();
        let arrivals_i = poisson_arrivals(&inter, 13_000.0, 24, 5);
        let arrivals_v = arrivals_i.clone();
        let r_inter = run_streaming(market(), &inter, &opts, &arrivals_i);
        let r_vec = run_streaming(market(), &vec_, &opts, &arrivals_v);
        assert!(
            r_vec.p99_cycles < r_inter.p99_cycles,
            "vectorised p99 {} vs inter p99 {}",
            r_vec.p99_cycles,
            r_inter.p99_cycles
        );
    }

    #[test]
    fn simulated_mean_latency_tracks_md1_theory() {
        // Uniform 5.5y quarterly options on the vectorised engine: the
        // service interval is 22 points × 512 cycles ≈ 11.3k cycles and
        // the pipeline fill ≈ one replica scan + tails.
        let config = EngineVariant::Vectorised.config();
        let n = 200;
        let opts = options(n);
        let service_ii = 22.0 * 512.0;
        // Measure the fill directly: a lone option's latency.
        let lone = run_streaming(market(), &config, &opts[..1], &[0]);
        let fill = lone.p50_cycles as f64;

        // Moderate load: ρ = 0.6. The P-K formula is an asymptotic mean
        // and queue waits are heavy-tailed at this load, so one finite
        // run of 200 arrivals is noisy — pool several seeds before
        // comparing.
        let lambda = 0.6 / service_ii;
        let rate_per_s = lambda * config.clock.hz;
        let mut latency_sum = 0.0;
        let mut samples = 0usize;
        for seed in [11, 13, 17, 19, 23] {
            let arrivals = poisson_arrivals(&config, rate_per_s, n, seed);
            let report = run_streaming(market(), &config, &opts, &arrivals);
            latency_sum += report.spans.iter().map(|&(a, d)| (d - a) as f64).sum::<f64>();
            samples += n;
        }
        let mean_sim = latency_sum / samples as f64;
        let mean_theory =
            md1_mean_sojourn_cycles(lambda, service_ii, fill).expect("below saturation");
        let err = (mean_sim - mean_theory).abs() / mean_theory;
        assert!(err < 0.30, "DES mean {mean_sim} vs M/D/1 {mean_theory} ({:.0}% off)", err * 100.0);
    }

    #[test]
    fn md1_formula_properties() {
        // At zero load the sojourn is the pipeline fill.
        assert_eq!(md1_mean_sojourn_cycles(0.0, 100.0, 42.0), Some(42.0));
        // Saturated or oversaturated: undefined.
        assert_eq!(md1_mean_sojourn_cycles(0.01, 100.0, 0.0), None);
        assert_eq!(md1_mean_sojourn_cycles(0.02, 100.0, 0.0), None);
        // Monotone in load.
        let a = md1_mean_sojourn_cycles(0.004, 100.0, 0.0).unwrap();
        let b = md1_mean_sojourn_cycles(0.008, 100.0, 0.0).unwrap();
        assert!(b > a);
    }

    #[test]
    fn streaming_spreads_match_reference() {
        let m = market();
        let pricer = CdsPricer::new((*m).clone());
        let opts = PortfolioGenerator::new(9).portfolio(10);
        let config = EngineVariant::Vectorised.config();
        let arrivals = poisson_arrivals(&config, 20_000.0, 10, 7);
        let report = run_streaming(m, &config, &opts, &arrivals);
        for (o, s) in opts.iter().zip(&report.spreads) {
            let golden = pricer.price(o).spread_bps;
            assert!((s - golden).abs() < 1e-7 * (1.0 + golden), "{s} vs {golden}");
        }
    }

    #[test]
    fn overload_orders_percentiles_and_records_backpressure() {
        // Offered load far above capacity: the input FIFOs fill, rejected
        // pushes register as backpressure, and the latency percentiles
        // must be coherent (p50 ≤ p99 ≤ max).
        let config = EngineVariant::Vectorised.config();
        let opts = options(48);
        let arrivals = poisson_arrivals(&config, 200_000.0, 48, 3);
        let report = run_streaming(market(), &config, &opts, &arrivals);
        assert!(report.p50_cycles <= report.p99_cycles, "p50 > p99");
        assert!(report.p99_cycles <= report.max_cycles, "p99 > max");
        assert!(
            report.counters.backpressure_events > 0,
            "overload must produce backpressure events"
        );
        assert!(report.counters.stream_occupancy_high_water > 0);
    }

    #[test]
    #[should_panic(expected = "continuous region")]
    fn per_option_config_rejected() {
        let config = EngineVariant::OptimisedDataflow.config();
        let opts = options(2);
        let _ = run_streaming(market(), &config, &opts, &[0, 10]);
    }

    #[test]
    fn default_policy_matches_legacy_api() {
        let config = EngineVariant::Vectorised.config();
        let opts = options(12);
        let arrivals = poisson_arrivals(&config, 15_000.0, 12, 9);
        let legacy = run_streaming(market(), &config, &opts, &arrivals);
        let with =
            run_streaming_with(market(), &config, &opts, &arrivals, &StreamingPolicy::default());
        let with = match with {
            Ok(r) => r,
            Err(e) => panic!("default policy must succeed: {e}"),
        };
        assert_eq!(legacy.spreads, with.spreads);
        assert_eq!(legacy.p99_cycles, with.p99_cycles);
        assert_eq!(with.options_shed, 0);
        assert_eq!(with.options_lost, 0);
        assert_eq!(with.faults_injected, 0);
    }

    #[test]
    fn invalid_option_rejected_at_ingress() {
        let config = EngineVariant::Vectorised.config();
        let mut bad = options(1);
        bad[0].maturity = -2.0;
        let err = run_streaming_with(market(), &config, &bad, &[0], &StreamingPolicy::default());
        assert!(matches!(err, Err(CdsError::Quant(_))), "got {err:?}");
    }

    #[test]
    fn empty_streaming_run_is_ok() {
        let config = EngineVariant::Vectorised.config();
        let report = run_streaming_with(market(), &config, &[], &[], &StreamingPolicy::default());
        let report = match report {
            Ok(r) => r,
            Err(e) => panic!("empty run must succeed: {e}"),
        };
        assert!(report.spreads.is_empty());
        assert_eq!(report.p99_cycles, 0);
    }

    #[test]
    fn admission_control_sheds_and_bounds_p99_at_twice_saturation() {
        // Offered load 2× the engine's capacity. Without shedding the
        // queue grows without bound and late arrivals see enormous
        // latencies; with the M/D/1 admission bound the p99 of admitted
        // traffic stays within a small multiple of the unloaded p99.
        let config = EngineVariant::Vectorised.config();
        let n = 200;
        let opts = options(n);
        let service = 22 * config.steady_state_point_cycles(1024);
        let lone = run_streaming(market(), &config, &opts[..1], &[0]);
        let unloaded_p99 = lone.p99_cycles;

        let capacity_per_s = config.clock.hz / service as f64;
        let arrivals = poisson_arrivals(&config, 2.0 * capacity_per_s, n, 21);
        let policy = StreamingPolicy {
            admission: Some(AdmissionControl::from_md1(service, 0.8)),
            ..Default::default()
        };
        let report = match run_streaming_with(market(), &config, &opts, &arrivals, &policy) {
            Ok(r) => r,
            Err(e) => panic!("shedding run must succeed: {e}"),
        };
        assert!(report.options_shed > 0, "2x load must shed");
        assert_eq!(report.options_lost, 0, "every admitted option must be priced");
        assert_eq!(report.spreads.len() as u64 + report.options_shed, n as u64);
        assert!(
            report.p99_cycles <= 10 * unloaded_p99,
            "p99 {} must stay within 10x unloaded p99 {}",
            report.p99_cycles,
            unloaded_p99
        );
        // Unthrottled run for contrast: the tail is much worse.
        let open = run_streaming(market(), &config, &opts, &arrivals);
        assert!(open.p99_cycles > report.p99_cycles, "shedding must improve the tail");
    }

    #[test]
    fn dropped_result_is_flagged_lost_not_hung() {
        // Drop the third token on the spread output stream: option 2 is
        // admitted, priced, and then lost in flight. The watchdog reports
        // it instead of deadlocking the run.
        let m = market();
        let pricer = CdsPricer::new((*m).clone());
        let config = EngineVariant::Vectorised.config();
        let opts = options(6);
        let arrivals: Vec<Cycle> = (0..6).map(|i| i * 50_000).collect();
        let policy = StreamingPolicy {
            fault_plan: Some(FaultPlan::new(0xD20).drop_nth("spreads", 2)),
            ..Default::default()
        };
        let report = match run_streaming_with(m, &config, &opts, &arrivals, &policy) {
            Ok(r) => r,
            Err(e) => panic!("faulted run must terminate gracefully: {e}"),
        };
        assert_eq!(report.options_lost, 1);
        assert_eq!(report.lost_indices, vec![2]);
        assert!(report.faults_injected > 0);
        assert_eq!(report.spreads.len(), 5);
        // Survivors are unaffected by the drop.
        let golden = pricer.price(&opts[0]).spread_bps;
        for s in &report.spreads {
            assert!((s - golden).abs() < 1e-7 * (1.0 + golden), "{s} vs {golden}");
        }
    }

    #[test]
    fn deadline_watchdog_counts_misses_under_load() {
        let config = EngineVariant::Vectorised.config();
        let opts = options(48);
        let arrivals = poisson_arrivals(&config, 200_000.0, 48, 3);
        // Deadline below the saturated-queue sojourn: late completions
        // are flagged, none are lost.
        let policy = StreamingPolicy { deadline_cycles: Some(30_000), ..Default::default() };
        let report = match run_streaming_with(market(), &config, &opts, &arrivals, &policy) {
            Ok(r) => r,
            Err(e) => panic!("deadline run must succeed: {e}"),
        };
        assert!(report.deadline_misses > 0, "saturated run must miss a 30k deadline");
        assert_eq!(report.options_lost, 0);
        assert_eq!(report.spreads.len(), 48);
    }

    #[test]
    fn corruption_is_quarantined_and_repriced_to_clean_spreads() {
        // Corrupt two spread tokens: one blatantly (sign flip, caught by
        // the invariant guards) and one subtly (+0.25 bp, inside the
        // envelope — only the fault event's option identity catches it).
        // The scrubber must quarantine both and converge the run to the
        // fault-free spreads.
        use crate::tokens::SpreadTok;
        let config = EngineVariant::Vectorised.config();
        let opts = options(8);
        let arrivals: Vec<Cycle> = (0..8).map(|i| i * 40_000).collect();
        let clean = run_streaming(market(), &config, &opts, &arrivals);
        let plan = FaultPlan::new(0xC0)
            .corrupt_nth::<SpreadTok>("spreads", 2, |t| SpreadTok {
                spread_bps: -t.spread_bps,
                ..t
            })
            .corrupt_nth::<SpreadTok>("spreads", 5, |t| SpreadTok {
                spread_bps: t.spread_bps + 0.25,
                ..t
            });
        let policy = StreamingPolicy {
            fault_plan: Some(plan),
            scrub: Some(ScrubPolicy { cross_check_every: 0 }),
            ..Default::default()
        };
        let scrubbed = match run_streaming_with(market(), &config, &opts, &arrivals, &policy) {
            Ok(r) => r,
            Err(e) => panic!("corrupted run must terminate gracefully: {e}"),
        };
        let scrub = match &scrubbed.scrub {
            Some(s) => s,
            None => panic!("scrub policy must produce a scrub report"),
        };
        assert_eq!(scrub.quarantined_indices(), vec![2, 5]);
        assert_eq!(scrubbed.spreads.len(), clean.spreads.len());
        for (s, c) in scrubbed.spreads.iter().zip(&clean.spreads) {
            assert!((s - c).abs() < 1e-6 * (1.0 + c.abs()), "scrubbed {s} vs clean {c}");
        }
        // Without the scrubber the corruption reaches the report.
        let unscrubbed_policy = StreamingPolicy { scrub: None, ..policy };
        let raw = match run_streaming_with(market(), &config, &opts, &arrivals, &unscrubbed_policy)
        {
            Ok(r) => r,
            Err(e) => panic!("unscrubbed run must terminate gracefully: {e}"),
        };
        assert!(raw.spreads[2] < 0.0, "sign-flip corruption must survive without scrubbing");
    }

    #[test]
    fn killed_run_resumes_from_checkpoint_bit_identically() {
        let config = EngineVariant::Vectorised.config();
        let n = 12usize;
        let opts = options(n);
        let arrivals: Vec<Cycle> = (0..n as u64).map(|i| i * 30_000).collect();
        let clean = run_streaming(market(), &config, &opts, &arrivals);
        assert_eq!(clean.spreads.len(), n);

        // Kill the whole engine mid-run: roughly half the options
        // complete, the rest are reported lost.
        let kill_cycle = arrivals[n / 2];
        let policy = StreamingPolicy {
            fault_plan: Some(FaultPlan::new(1).kill_region("", kill_cycle)),
            ..Default::default()
        };
        let cadence = 2u32;
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let killed = run_streaming_checkpointed(
            market(),
            &config,
            &opts,
            &arrivals,
            &policy,
            cadence,
            |c| checkpoints.push(c.clone()),
        );
        let killed = match killed {
            Ok(r) => r,
            Err(e) => panic!("killed run must terminate gracefully: {e}"),
        };
        assert!(killed.options_lost > 0, "the kill must lose in-flight work");
        assert!(killed.spreads.len() < n);

        // The terminal commit record covers everything that completed,
        // and the last cadence-aligned checkpoint trails it by less than
        // one interval.
        let last = match checkpoints.last() {
            Some(c) => c.clone(),
            None => panic!("checkpointed run must emit at least one checkpoint"),
        };
        assert_eq!(last.completed.len(), killed.spreads.len());
        if checkpoints.len() >= 2 {
            let aligned = &checkpoints[checkpoints.len() - 2];
            assert!(last.completed.len() - aligned.completed.len() <= cadence as usize);
        }

        // Round-trip the checkpoint through its text serialization — the
        // resume consumes exactly what a journal on disk would hold.
        let restored = match Checkpoint::parse(&last.to_text()) {
            Ok(c) => c,
            Err(e) => panic!("checkpoint round trip failed: {e}"),
        };
        assert_eq!(restored, last);

        let resumed = resume_streaming_from(
            market(),
            &config,
            &opts,
            &arrivals,
            &StreamingPolicy::default(),
            &restored,
        );
        let resumed = match resumed {
            Ok(r) => r,
            Err(e) => panic!("resume must succeed: {e}"),
        };
        assert_eq!(resumed.options_lost, 0);
        assert_eq!(resumed.spreads.len(), n);
        for (i, (a, b)) in resumed.spreads.iter().zip(&clean.spreads).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "option {i}: resumed {a} vs clean {b}");
        }
    }

    #[test]
    fn resume_rejects_mismatched_and_malformed_checkpoints() {
        let config = EngineVariant::Vectorised.config();
        let opts = options(4);
        let arrivals: Vec<Cycle> = (0..4).map(|i| i * 30_000).collect();
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let _ = run_streaming_checkpointed(
            market(),
            &config,
            &opts,
            &arrivals,
            &StreamingPolicy::default(),
            2,
            |c| checkpoints.push(c.clone()),
        );
        let last = match checkpoints.last() {
            Some(c) => c.clone(),
            None => panic!("expected checkpoints"),
        };
        assert!(last.is_complete());
        // Wrong workload size.
        let err = resume_streaming_from(
            market(),
            &config,
            &opts[..2],
            &arrivals[..2],
            &StreamingPolicy::default(),
            &last,
        );
        assert!(matches!(err, Err(CdsError::Journal { .. })), "got {err:?}");
        // Checkpoint cadence of zero is a configuration error.
        let err = run_streaming_checkpointed(
            market(),
            &config,
            &opts,
            &arrivals,
            &StreamingPolicy::default(),
            0,
            |_| {},
        );
        assert!(matches!(err, Err(CdsError::Config { .. })), "got {err:?}");
    }

    #[test]
    fn stage_stall_fault_raises_latency_and_is_counted() {
        let config = EngineVariant::Vectorised.config();
        let opts = options(8);
        let arrivals: Vec<Cycle> = (0..8).map(|i| i * 40_000).collect();
        let clean = run_streaming(market(), &config, &opts, &arrivals);
        // Stall every survival token of the first option (22 quarterly
        // points at 5.5y): its completion is gated by its last point, so
        // the stall shows up as end-to-end latency.
        let policy = StreamingPolicy {
            fault_plan: Some(FaultPlan::new(7).stall_stage("hazard_out", 5_000, 22)),
            ..Default::default()
        };
        let stalled = match run_streaming_with(market(), &config, &opts, &arrivals, &policy) {
            Ok(r) => r,
            Err(e) => panic!("stalled run must succeed: {e}"),
        };
        assert!(stalled.faults_injected > 0);
        assert_eq!(stalled.options_lost, 0, "a stall delays but never loses work");
        assert_eq!(stalled.spreads, clean.spreads, "stalls must not change numerics");
        assert!(
            stalled.max_cycles > clean.max_cycles,
            "stall {} vs clean {}",
            stalled.max_cycles,
            clean.max_cycles
        );
    }
}
