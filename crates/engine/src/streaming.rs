//! Streaming deployment: quote-by-quote pricing with latency tracking.
//!
//! The paper's introduction motivates two regimes: batch processing and
//! "the ability to stream in data and generate immediate decisions"; its
//! conclusions propose combining the engine with Xilinx's Accelerated
//! Algorithmic Trading platform. This module realises the streaming
//! regime on the simulator: options arrive as a (Poisson) point process,
//! flow through the continuously-running dataflow region, and each
//! result's **latency** — arrival cycle to spread-out cycle — is
//! recorded, yielding the p50/p99 service latencies a trading deployment
//! would quote.

use crate::config::EngineConfig;
use crate::variants::dataflow::build_graph_with_arrivals;
use cds_quant::option::{CdsOption, MarketData};
use dataflow_sim::event_sim::EventSim;
use dataflow_sim::region::RegionMode;
use dataflow_sim::trace::Counters;
use dataflow_sim::Cycle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// Latency statistics of a streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingReport {
    /// Per-option `(arrival_cycle, completion_cycle)` in option order.
    pub spans: Vec<(Cycle, Cycle)>,
    /// Median latency in cycles.
    pub p50_cycles: Cycle,
    /// 99th-percentile latency in cycles.
    pub p99_cycles: Cycle,
    /// Worst latency in cycles.
    pub max_cycles: Cycle,
    /// Achieved throughput over the run, options/second.
    pub options_per_second: f64,
    /// Spreads, in option order.
    pub spreads: Vec<f64>,
    /// Run telemetry (occupancy high-water, backpressure events, and —
    /// when tracing is enabled — per-stage busy/stall cycles).
    pub counters: Counters,
}

impl StreamingReport {
    /// Median latency in microseconds under the engine clock.
    pub fn p50_us(&self, config: &EngineConfig) -> f64 {
        config.clock.seconds(self.p50_cycles) * 1e6
    }

    /// p99 latency in microseconds.
    pub fn p99_us(&self, config: &EngineConfig) -> f64 {
        config.clock.seconds(self.p99_cycles) * 1e6
    }
}

/// Draw Poisson arrival cycles for `n` options at `rate` options/second
/// under the engine clock (exponential inter-arrival times, fixed seed).
pub fn poisson_arrivals(config: &EngineConfig, rate: f64, n: usize, seed: u64) -> Vec<Cycle> {
    assert!(rate > 0.0, "arrival rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / rate;
        out.push(config.clock.cycles_for(t));
    }
    out
}

/// Analytic M/D/1 sojourn prediction for the streaming engine, in cycles.
///
/// The pipelined engine behaves as a single server with deterministic
/// service interval `service_ii` (cycles between successive results) and
/// a fixed pass-through latency `pipeline_latency` (fill). For Poisson
/// arrivals at `lambda` options/cycle, Pollaczek–Khinchine gives the mean
/// queueing wait `Wq = ρ·s / (2(1−ρ))`; the mean sojourn is
/// `Wq + pipeline_latency`. Returns `None` at or beyond saturation.
///
/// The test suite checks the discrete-event simulator against this
/// closed form — simulation and queueing theory agreeing from two
/// entirely different derivations.
pub fn md1_mean_sojourn_cycles(
    lambda_per_cycle: f64,
    service_ii: f64,
    pipeline_latency: f64,
) -> Option<f64> {
    let rho = lambda_per_cycle * service_ii;
    if rho >= 1.0 {
        return None;
    }
    let wq = rho * service_ii / (2.0 * (1.0 - rho));
    Some(wq + pipeline_latency)
}

/// Run a streaming session: options enter at `arrivals` cycles and flow
/// through a continuously-running engine.
///
/// # Panics
/// Panics if the configuration is per-option (streaming requires the
/// continuous region) or if arrivals and options differ in length.
pub fn run_streaming(
    market: Rc<MarketData<f64>>,
    config: &EngineConfig,
    options: &[CdsOption],
    arrivals: &[Cycle],
) -> StreamingReport {
    assert_eq!(
        config.region_mode,
        RegionMode::Continuous,
        "streaming requires the continuous region"
    );
    assert_eq!(options.len(), arrivals.len());
    let (g, sink) = build_graph_with_arrivals(market, config, options, 0, Some(arrivals));
    let mut sim = EventSim::new(g);
    let report = sim.run().expect("streaming CDS graph must not deadlock");

    let collected = sink.collected();
    assert_eq!(collected.len(), options.len(), "every option must produce a spread");
    let mut spans = Vec::with_capacity(options.len());
    let mut latencies = Vec::with_capacity(options.len());
    let mut spreads = Vec::with_capacity(options.len());
    for (tok, done_at) in &collected {
        let arrival = arrivals[tok.opt_idx as usize];
        spans.push((arrival, *done_at));
        latencies.push(done_at.saturating_sub(arrival));
        spreads.push(tok.spread_bps);
    }
    latencies.sort_unstable();
    let pct = |p: f64| -> Cycle {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    let span_seconds = config.clock.seconds(report.total_cycles);
    let trace = config.trace.clone().unwrap_or_default();
    let counters = Counters::from_run(&trace, &report);
    StreamingReport {
        p50_cycles: pct(0.50),
        p99_cycles: pct(0.99),
        max_cycles: *latencies.last().expect("non-empty run"),
        options_per_second: if span_seconds > 0.0 {
            options.len() as f64 / span_seconds
        } else {
            0.0
        },
        spans,
        spreads,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineVariant;
    use cds_quant::cds::CdsPricer;
    use cds_quant::option::{PaymentFrequency, PortfolioGenerator};

    fn market() -> Rc<MarketData<f64>> {
        Rc::new(MarketData::paper_workload(7))
    }

    fn options(n: usize) -> Vec<CdsOption> {
        PortfolioGenerator::uniform(n, 5.5, PaymentFrequency::Quarterly, 0.4)
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_rate_consistent() {
        let config = EngineVariant::Vectorised.config();
        let arrivals = poisson_arrivals(&config, 10_000.0, 500, 1);
        assert_eq!(arrivals.len(), 500);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        // Mean inter-arrival ≈ clock/rate = 30k cycles; allow wide noise.
        let span = (arrivals[499] - arrivals[0]) as f64;
        let mean = span / 499.0;
        assert!((15_000.0..60_000.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn light_load_latency_is_pipeline_latency() {
        // Arrivals far apart: each option sees an empty engine, so the
        // latency is the pipeline's fill (≈ one full scan plus tails),
        // not a queueing delay.
        let config = EngineVariant::InterOption.config();
        let opts = options(6);
        let arrivals: Vec<Cycle> = (0..6).map(|i| i * 2_000_000).collect();
        let report = run_streaming(market(), &config, &opts, &arrivals);
        // 22 points × 1024 cycles ≈ 22.5k, plus stage tails.
        assert!(
            report.p50_cycles > 20_000 && report.p50_cycles < 30_000,
            "p50 {}",
            report.p50_cycles
        );
        // No queueing: p99 ≈ p50.
        assert!(report.p99_cycles < report.p50_cycles + 2_000);
    }

    #[test]
    fn saturating_load_queues_and_matches_batch_throughput() {
        let config = EngineVariant::Vectorised.config();
        let opts = options(48);
        // Arrivals far above the engine's ~26.5k opts/s capacity.
        let arrivals = poisson_arrivals(&config, 200_000.0, 48, 3);
        let report = run_streaming(market(), &config, &opts, &arrivals);
        // Later arrivals wait behind earlier ones: p99 >> p50 of light load.
        assert!(report.p99_cycles > 5 * report.p50_cycles.min(30_000), "p99 {}", report.p99_cycles);
        // Throughput approaches the batch steady state.
        assert!(
            (20_000.0..30_000.0).contains(&report.options_per_second),
            "throughput {}",
            report.options_per_second
        );
    }

    #[test]
    fn vectorised_has_lower_latency_than_inter_option_under_load() {
        let opts = options(24);
        let inter = EngineVariant::InterOption.config();
        let vec_ = EngineVariant::Vectorised.config();
        let arrivals_i = poisson_arrivals(&inter, 13_000.0, 24, 5);
        let arrivals_v = arrivals_i.clone();
        let r_inter = run_streaming(market(), &inter, &opts, &arrivals_i);
        let r_vec = run_streaming(market(), &vec_, &opts, &arrivals_v);
        assert!(
            r_vec.p99_cycles < r_inter.p99_cycles,
            "vectorised p99 {} vs inter p99 {}",
            r_vec.p99_cycles,
            r_inter.p99_cycles
        );
    }

    #[test]
    fn simulated_mean_latency_tracks_md1_theory() {
        // Uniform 5.5y quarterly options on the vectorised engine: the
        // service interval is 22 points × 512 cycles ≈ 11.3k cycles and
        // the pipeline fill ≈ one replica scan + tails.
        let config = EngineVariant::Vectorised.config();
        let n = 200;
        let opts = options(n);
        let service_ii = 22.0 * 512.0;
        // Measure the fill directly: a lone option's latency.
        let lone = run_streaming(market(), &config, &opts[..1], &[0]);
        let fill = lone.p50_cycles as f64;

        // Moderate load: ρ = 0.6. The P-K formula is an asymptotic mean
        // and queue waits are heavy-tailed at this load, so one finite
        // run of 200 arrivals is noisy — pool several seeds before
        // comparing.
        let lambda = 0.6 / service_ii;
        let rate_per_s = lambda * config.clock.hz;
        let mut latency_sum = 0.0;
        let mut samples = 0usize;
        for seed in [11, 13, 17, 19, 23] {
            let arrivals = poisson_arrivals(&config, rate_per_s, n, seed);
            let report = run_streaming(market(), &config, &opts, &arrivals);
            latency_sum += report.spans.iter().map(|&(a, d)| (d - a) as f64).sum::<f64>();
            samples += n;
        }
        let mean_sim = latency_sum / samples as f64;
        let mean_theory =
            md1_mean_sojourn_cycles(lambda, service_ii, fill).expect("below saturation");
        let err = (mean_sim - mean_theory).abs() / mean_theory;
        assert!(err < 0.30, "DES mean {mean_sim} vs M/D/1 {mean_theory} ({:.0}% off)", err * 100.0);
    }

    #[test]
    fn md1_formula_properties() {
        // At zero load the sojourn is the pipeline fill.
        assert_eq!(md1_mean_sojourn_cycles(0.0, 100.0, 42.0), Some(42.0));
        // Saturated or oversaturated: undefined.
        assert_eq!(md1_mean_sojourn_cycles(0.01, 100.0, 0.0), None);
        assert_eq!(md1_mean_sojourn_cycles(0.02, 100.0, 0.0), None);
        // Monotone in load.
        let a = md1_mean_sojourn_cycles(0.004, 100.0, 0.0).unwrap();
        let b = md1_mean_sojourn_cycles(0.008, 100.0, 0.0).unwrap();
        assert!(b > a);
    }

    #[test]
    fn streaming_spreads_match_reference() {
        let m = market();
        let pricer = CdsPricer::new((*m).clone());
        let opts = PortfolioGenerator::new(9).portfolio(10);
        let config = EngineVariant::Vectorised.config();
        let arrivals = poisson_arrivals(&config, 20_000.0, 10, 7);
        let report = run_streaming(m, &config, &opts, &arrivals);
        for (o, s) in opts.iter().zip(&report.spreads) {
            let golden = pricer.price(o).spread_bps;
            assert!((s - golden).abs() < 1e-7 * (1.0 + golden), "{s} vs {golden}");
        }
    }

    #[test]
    fn overload_orders_percentiles_and_records_backpressure() {
        // Offered load far above capacity: the input FIFOs fill, rejected
        // pushes register as backpressure, and the latency percentiles
        // must be coherent (p50 ≤ p99 ≤ max).
        let config = EngineVariant::Vectorised.config();
        let opts = options(48);
        let arrivals = poisson_arrivals(&config, 200_000.0, 48, 3);
        let report = run_streaming(market(), &config, &opts, &arrivals);
        assert!(report.p50_cycles <= report.p99_cycles, "p50 > p99");
        assert!(report.p99_cycles <= report.max_cycles, "p99 > max");
        assert!(
            report.counters.backpressure_events > 0,
            "overload must produce backpressure events"
        );
        assert!(report.counters.stream_occupancy_high_water > 0);
    }

    #[test]
    #[should_panic(expected = "continuous region")]
    fn per_option_config_rejected() {
        let config = EngineVariant::OptimisedDataflow.config();
        let opts = options(2);
        let _ = run_streaming(market(), &config, &opts, &[0, 10]);
    }
}
