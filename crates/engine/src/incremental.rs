//! Incremental tick repricing over the dependency arrangement.
//!
//! ROADMAP item 1: a single hazard- or yield-curve point tick must not
//! force a full batch reprice of 1M+ resident options. The
//! [`IncrementalEngine`] holds the resident book in a
//! [`PortfolioState`] arrangement, ingests *value* ticks against
//! individual curve knots, computes the exact affected set from the
//! arrangement, reprices only those options through the lane kernel's
//! sparse entry point, and emits [`SpreadDelta`]s (old bits → new bits)
//! for the options whose quotes actually moved.
//!
//! # Bit-identity argument
//!
//! Every result the engine stores is required to be **bit-identical**
//! (`f64::to_bits`, not ULP) to a from-scratch full reprice under the
//! same epoch. That holds structurally, not statistically:
//!
//! 1. A spread is a deterministic pure function of `(engine, option)`,
//!    and the lane kernel is bit-identical to the scalar reference
//!    (pinned by the `lane_vs_scalar` suite).
//! 2. *Affected* options are repriced by that kernel against the
//!    freshly rebuilt engine — definitionally equal to the full
//!    reprice.
//! 3. *Unaffected* options' stored bits stay valid because a value tick
//!    moves no tenor: segment lookup structures depend only on tenors,
//!    interest interpolation at a time outside the ticked knot's
//!    [`crate::portfolio::interest_window`] touches only unchanged
//!    knots, and the cumulative-hazard prefix below the ticked knot is
//!    a left-to-right sum of unchanged terms, hence reproduced
//!    bit-for-bit by the rebuild. The arrangement windows are derived
//!    from the interpolator's own branch structure, so "outside the
//!    window" is exactly "reads no changed input".
//!
//! The differential fuzz suite and the `tick-storm` bench gate verify
//! the claim wholesale against real full reprices.

use crate::error::CdsError;
use crate::portfolio::PortfolioState;
use crate::report::{SpreadDelta, TickReport};
use cds_cpu::CpuCdsEngine;
use cds_quant::curve::{Curve, CurvePoint};
use cds_quant::option::{CdsOption, MarketData};

/// Which curve a tick targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurveKind {
    /// The interest (discount) curve.
    Interest,
    /// The hazard (default intensity) curve.
    Hazard,
}

impl CurveKind {
    /// Stable lower-case wire name (`interest` / `hazard`).
    pub fn as_str(self) -> &'static str {
        match self {
            CurveKind::Interest => "interest",
            CurveKind::Hazard => "hazard",
        }
    }
}

impl std::fmt::Display for CurveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for CurveKind {
    type Err = &'static str;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interest" => Ok(CurveKind::Interest),
            "hazard" => Ok(CurveKind::Hazard),
            _ => Err("curve must be `interest` or `hazard`"),
        }
    }
}

/// One curve point tick: replace the *value* at an existing knot.
/// Tenors are immutable — the term structure's shape is fixed at boot,
/// only levels move — which is what keeps unaffected quotes bit-stable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurveTick {
    /// Target curve.
    pub curve: CurveKind,
    /// Knot index into that curve's points.
    pub knot: usize,
    /// New value at the knot.
    pub value: f64,
}

/// Resident book plus current epoch's curves and pricing engine, with
/// incremental tick ingestion.
#[derive(Debug, Clone)]
pub struct IncrementalEngine {
    market: MarketData<f64>,
    engine: CpuCdsEngine,
    interest_tenors: Vec<f64>,
    hazard_tenors: Vec<f64>,
    portfolio: PortfolioState,
    /// Stored spread bits, indexed by portfolio id (stale for dead ids).
    spread_bits: Vec<u64>,
    epoch: u64,
    affected: Vec<u32>,
    repriced: Vec<f64>,
}

impl IncrementalEngine {
    /// Boot an empty book over `market` at epoch 0.
    pub fn new(market: MarketData<f64>) -> Self {
        let engine = CpuCdsEngine::new(&market);
        let interest_tenors = market.interest.points().iter().map(|p| p.tenor).collect();
        let hazard_tenors = market.hazard.points().iter().map(|p| p.tenor).collect();
        IncrementalEngine {
            market,
            engine,
            interest_tenors,
            hazard_tenors,
            portfolio: PortfolioState::new(),
            spread_bits: Vec::new(),
            epoch: 0,
            affected: Vec::new(),
            repriced: Vec::new(),
        }
    }

    /// The current epoch's market curves.
    pub fn market(&self) -> &MarketData<f64> {
        &self.market
    }

    /// Current epoch (0 at boot, +1 per ingested tick, including
    /// zero-delta ticks).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of resident options.
    pub fn len(&self) -> usize {
        self.portfolio.len()
    }

    /// True when the book is empty.
    pub fn is_empty(&self) -> bool {
        self.portfolio.is_empty()
    }

    /// The arrangement itself (read access, e.g. for knot selection).
    pub fn portfolio(&self) -> &PortfolioState {
        &self.portfolio
    }

    /// Tenors of one curve (immutable for the engine's lifetime).
    pub fn tenors(&self, curve: CurveKind) -> &[f64] {
        match curve {
            CurveKind::Interest => &self.interest_tenors,
            CurveKind::Hazard => &self.hazard_tenors,
        }
    }

    /// Current value at a curve knot, if the knot exists.
    pub fn curve_value(&self, curve: CurveKind, knot: usize) -> Option<f64> {
        let points = match curve {
            CurveKind::Interest => self.market.interest.points(),
            CurveKind::Hazard => self.market.hazard.points(),
        };
        points.get(knot).map(|p| p.value)
    }

    /// Insert one option, price it under the current epoch, and return
    /// its stable id.
    ///
    /// # Panics
    /// Panics on an invalid schedule (same wording as the kernels).
    pub fn insert(&mut self, option: CdsOption) -> u32 {
        let id = self.portfolio.insert(option);
        let bits = self.engine.price(&option).spread_bps.to_bits();
        if self.spread_bits.len() <= id as usize {
            self.spread_bits.resize(id as usize + 1, 0);
        }
        self.spread_bits[id as usize] = bits;
        id
    }

    /// Insert a batch, pricing through one lane-kernel pass (bit-equal
    /// to inserting one by one, far cheaper for large books). Returns
    /// the ids in option order.
    pub fn insert_batch(&mut self, options: &[CdsOption]) -> Vec<u32> {
        let ids: Vec<u32> = options.iter().map(|&o| self.portfolio.insert(o)).collect();
        if self.spread_bits.len() < self.portfolio.slab_len() {
            self.spread_bits.resize(self.portfolio.slab_len(), 0);
        }
        let mut kernel = self.engine.lane_kernel();
        kernel.price_indices_into(self.portfolio.raw_options(), &ids, &mut self.repriced);
        for (&id, &spread) in ids.iter().zip(&self.repriced) {
            self.spread_bits[id as usize] = spread.to_bits();
        }
        ids
    }

    /// Remove a resident option (its spread bits are dropped with it).
    pub fn remove(&mut self, id: u32) -> Option<CdsOption> {
        self.portfolio.remove(id)
    }

    /// Stored spread bits of a live option.
    pub fn spread_bits(&self, id: u32) -> Option<u64> {
        self.portfolio.option(id).map(|_| self.spread_bits[id as usize])
    }

    /// `(id, spread bits)` for every live option, in id order.
    pub fn spreads(&self) -> Vec<(u32, u64)> {
        self.portfolio.iter().map(|(id, _)| (id, self.spread_bits[id as usize])).collect()
    }

    /// Reprice the whole book from scratch (fresh engine, fresh kernel)
    /// and return `(id, spread bits)` in id order — the oracle the
    /// incremental state is measured against, and the slow path the
    /// tick-storm bench compares to.
    pub fn full_reprice(&self) -> Vec<(u32, u64)> {
        let engine = CpuCdsEngine::new(&self.market);
        let mut kernel = engine.lane_kernel();
        let ids: Vec<u32> = self.portfolio.iter().map(|(id, _)| id).collect();
        let mut out = Vec::new();
        kernel.price_indices_into(self.portfolio.raw_options(), &ids, &mut out);
        ids.into_iter().zip(out.into_iter().map(f64::to_bits)).collect()
    }

    /// Ingest one curve point tick: publish the new epoch, compute the
    /// affected set from the arrangement, reprice exactly those options
    /// and report the spread deltas.
    ///
    /// A tick whose value bits equal the current knot value is a
    /// **zero-delta tick**: the epoch still advances, but the affected
    /// set is empty by construction and nothing reprices.
    pub fn apply_tick(&mut self, tick: CurveTick) -> Result<TickReport, CdsError> {
        let tenors_len = self.tenors(tick.curve).len();
        if tick.knot >= tenors_len {
            return Err(CdsError::Tick {
                reason: format!(
                    "knot {} out of bounds for the {} curve ({} knots)",
                    tick.knot, tick.curve, tenors_len
                ),
            });
        }
        let old = match self.curve_value(tick.curve, tick.knot) {
            Some(v) => v,
            None => unreachable!("knot bounds checked above"),
        };
        if tick.value.to_bits() == old.to_bits() {
            self.epoch += 1;
            return Ok(TickReport {
                epoch: self.epoch,
                zero_delta: true,
                affected: 0,
                deltas: Vec::new(),
            });
        }

        // Publish: rebuild the ticked curve (re-validated) and the
        // pricing engine. Tenors are untouched, so the arrangement and
        // the unaffected options' stored bits both survive the swap.
        let target = match tick.curve {
            CurveKind::Interest => &self.market.interest,
            CurveKind::Hazard => &self.market.hazard,
        };
        let mut points: Vec<CurvePoint<f64>> = target.points().to_vec();
        points[tick.knot].value = tick.value;
        let rebuilt = Curve::new(points).map_err(|e| CdsError::Tick {
            reason: format!("curve rejected ticked value {}: {e}", tick.value),
        })?;
        match tick.curve {
            CurveKind::Interest => self.market.interest = rebuilt,
            CurveKind::Hazard => self.market.hazard = rebuilt,
        }
        self.engine = CpuCdsEngine::new(&self.market);

        let mut affected = std::mem::take(&mut self.affected);
        match tick.curve {
            CurveKind::Interest => {
                self.portfolio.affected_by_interest(&self.interest_tenors, tick.knot, &mut affected)
            }
            CurveKind::Hazard => {
                self.portfolio.affected_by_hazard(&self.hazard_tenors, tick.knot, &mut affected)
            }
        }
        let mut kernel = self.engine.lane_kernel();
        kernel.price_indices_into(self.portfolio.raw_options(), &affected, &mut self.repriced);
        let mut deltas = Vec::new();
        for (&id, &spread) in affected.iter().zip(&self.repriced) {
            let new_bits = spread.to_bits();
            let old_bits = self.spread_bits[id as usize];
            if new_bits != old_bits {
                deltas.push(SpreadDelta { id, old_bits, new_bits });
                self.spread_bits[id as usize] = new_bits;
            }
        }
        self.epoch += 1;
        let report =
            TickReport { epoch: self.epoch, zero_delta: false, affected: affected.len(), deltas };
        self.affected = affected;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_quant::option::PortfolioGenerator;

    fn book(seed: u64, residents: usize) -> IncrementalEngine {
        let mut eng = IncrementalEngine::new(MarketData::paper_workload_sized(seed, 64));
        let options = PortfolioGenerator::new(seed ^ 0x5EED).portfolio(residents);
        eng.insert_batch(&options);
        eng
    }

    fn assert_bits_match_full(eng: &IncrementalEngine, what: &str) {
        assert_eq!(eng.spreads(), eng.full_reprice(), "{what}");
    }

    #[test]
    fn insert_batch_matches_scalar_inserts() {
        let market = MarketData::paper_workload_sized(3, 64);
        let options = PortfolioGenerator::new(5).portfolio(33);
        let mut batched = IncrementalEngine::new(market.clone());
        batched.insert_batch(&options);
        let mut single = IncrementalEngine::new(market);
        for &o in &options {
            single.insert(o);
        }
        assert_eq!(batched.spreads(), single.spreads());
    }

    #[test]
    fn every_knot_tick_stays_bit_equal_to_full_reprice() {
        let mut eng = book(7, 257);
        let mut value_shift = 1.0001;
        for curve in [CurveKind::Interest, CurveKind::Hazard] {
            for knot in 0..eng.tenors(curve).len() {
                let old = eng.curve_value(curve, knot).unwrap_or(0.0);
                let tick = CurveTick { curve, knot, value: old * value_shift + 1e-6 };
                value_shift = -value_shift; // exercise sign changes on interest
                let tick = if curve == CurveKind::Hazard {
                    // Hazard values stay non-negative to keep survival sane.
                    CurveTick { value: old * 1.01 + 1e-6, ..tick }
                } else {
                    tick
                };
                let report = match eng.apply_tick(tick) {
                    Ok(r) => r,
                    Err(e) => panic!("tick {curve} knot {knot}: {e}"),
                };
                assert!(!report.zero_delta);
                assert_bits_match_full(&eng, &format!("{curve} knot {knot}"));
            }
        }
    }

    #[test]
    fn zero_delta_tick_is_empty_and_advances_the_epoch() {
        let mut eng = book(11, 64);
        let before = eng.spreads();
        let old = eng.curve_value(CurveKind::Interest, 17).unwrap_or(0.0);
        let report =
            match eng.apply_tick(CurveTick { curve: CurveKind::Interest, knot: 17, value: old }) {
                Ok(r) => r,
                Err(e) => panic!("{e}"),
            };
        assert!(report.zero_delta);
        assert_eq!(report.affected, 0);
        assert!(report.deltas.is_empty());
        assert_eq!(report.epoch, 1);
        assert_eq!(eng.spreads(), before);
    }

    #[test]
    fn deltas_carry_old_and_new_bits() {
        let mut eng = book(13, 128);
        let before = eng.spreads();
        let old = eng.curve_value(CurveKind::Hazard, 0).unwrap_or(0.0);
        let report =
            match eng.apply_tick(CurveTick { curve: CurveKind::Hazard, knot: 0, value: old * 2.0 })
            {
                Ok(r) => r,
                Err(e) => panic!("{e}"),
            };
        // A front-of-curve hazard tick moves (essentially) every quote.
        assert!(!report.deltas.is_empty());
        assert!(report.deltas.len() <= report.affected);
        let before: std::collections::HashMap<u32, u64> = before.into_iter().collect();
        for d in &report.deltas {
            assert_eq!(Some(&d.old_bits), before.get(&d.id));
            assert_eq!(Some(d.new_bits), eng.spread_bits(d.id));
            assert_ne!(d.old_bits, d.new_bits);
        }
    }

    #[test]
    fn removed_options_never_reappear_in_deltas() {
        let mut eng = book(17, 96);
        let victims: Vec<u32> = eng.spreads().iter().map(|&(id, _)| id).take(48).collect();
        for id in victims {
            assert!(eng.remove(id).is_some());
        }
        let old = eng.curve_value(CurveKind::Hazard, 0).unwrap_or(0.0);
        let report =
            match eng.apply_tick(CurveTick { curve: CurveKind::Hazard, knot: 0, value: old * 3.0 })
            {
                Ok(r) => r,
                Err(e) => panic!("{e}"),
            };
        let live: std::collections::HashSet<u32> =
            eng.spreads().iter().map(|&(id, _)| id).collect();
        for d in &report.deltas {
            assert!(live.contains(&d.id));
        }
        assert_bits_match_full(&eng, "after removals + tick");
    }

    #[test]
    fn invalid_ticks_are_typed_errors() {
        let mut eng = book(19, 8);
        let oob =
            eng.apply_tick(CurveTick { curve: CurveKind::Interest, knot: 10_000, value: 0.1 });
        assert!(matches!(oob, Err(CdsError::Tick { .. })), "{oob:?}");
        let nan = eng.apply_tick(CurveTick { curve: CurveKind::Hazard, knot: 0, value: f64::NAN });
        assert!(matches!(nan, Err(CdsError::Tick { .. })), "{nan:?}");
        // The failed ticks published nothing.
        assert_bits_match_full(&eng, "after rejected ticks");
    }

    #[test]
    fn curve_kind_wire_round_trip() {
        for kind in [CurveKind::Interest, CurveKind::Hazard] {
            assert_eq!(kind.as_str().parse::<CurveKind>(), Ok(kind));
        }
        assert!("INTEREST".parse::<CurveKind>().is_err());
    }
}
