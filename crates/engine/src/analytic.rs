//! Closed-form performance model of the engine variants.
//!
//! The discrete-event simulator is the source of truth; this module
//! predicts its steady-state behaviour analytically from the pipelined-
//! loop algebra, serving three purposes: (1) cross-checking the simulator
//! (tests assert agreement), (2) instant what-if estimates for parameter
//! sweeps without simulation, and (3) documentation of *why* each variant
//! performs as it does.

use crate::config::{EngineConfig, EngineVariant, FP_EXP_LATENCY_CYCLES};
use cds_quant::option::{CdsOption, MarketData};
use cds_quant::schedule::PaymentSchedule;
use dataflow_sim::region::RegionMode;
use dataflow_sim::Cycle;

/// Analytic estimate of kernel cycles for a batch.
pub fn estimate_kernel_cycles(
    market: &MarketData<f64>,
    config: &EngineConfig,
    options: &[CdsOption],
) -> Cycle {
    match config.variant {
        EngineVariant::XilinxBaseline => baseline_cycles(market, config, options),
        _ => dataflow_cycles(market, config, options),
    }
}

/// Analytic options/second including curve load and PCIe transfer.
pub fn estimate_options_per_second(
    market: &MarketData<f64>,
    config: &EngineConfig,
    options: &[CdsOption],
) -> f64 {
    let kernel = estimate_kernel_cycles(market, config, options);
    let load = config.memory.curve_load_cycles(market.hazard.len());
    let seconds = config.clock.seconds(kernel + load)
        + config.pcie.option_batch_seconds(options.len() as u64);
    if seconds > 0.0 {
        options.len() as f64 / seconds
    } else {
        0.0
    }
}

fn schedule_points(option: &CdsOption) -> Vec<f64> {
    match PaymentSchedule::<f64>::generate(option.maturity, option.frequency.per_year()) {
        Ok(s) => s.points().to_vec(),
        Err(e) => panic!("option failed schedule generation: {e}"),
    }
}

/// The baseline runs its loops sequentially per option: the II=7 prefix
/// accumulation dominates, followed by the two interpolation scans.
fn baseline_cycles(
    market: &MarketData<f64>,
    config: &EngineConfig,
    options: &[CdsOption],
) -> Cycle {
    let ii = config.hazard_ii.ii();
    let mut total: Cycle = 0;
    for option in options {
        let points = schedule_points(option);
        let mut per_option: Cycle = 4 + points.len() as Cycle; // time-point generation
        for &t in &points {
            let (_, scanned) = market.hazard.scan_integral(t);
            per_option += 7 + (scanned as Cycle).saturating_sub(1) * ii + FP_EXP_LATENCY_CYCLES;
            let (_, scanned_t) = market.interest.scan_value_at(t);
            per_option += 4 + scanned_t as Cycle - 1 + FP_EXP_LATENCY_CYCLES;
            let (_, scanned_m) = market.interest.scan_value_at(t * 1.0 - 0.0);
            // Mid-point scan is marginally shorter; approximate with the
            // payment-date scan (within a knot or two).
            per_option += 4 + scanned_m as Cycle - 1 + FP_EXP_LATENCY_CYCLES;
        }
        per_option += 7 + (points.len() as Cycle - 1) * 7; // leg accumulation
        per_option += 16 + 16; // combination + loop control
        total += per_option;
    }
    total
}

/// The dataflow variants are bottlenecked by the slowest stage — the full
/// static-bound curve scan per time point — plus fill/drain and, in
/// per-option mode, the region restart.
fn dataflow_cycles(
    market: &MarketData<f64>,
    config: &EngineConfig,
    options: &[CdsOption],
) -> Cycle {
    let v = config.vector_factor.max(1) as Cycle;
    // Aggregate scan initiation interval per time point after replication,
    // URAM port sharing and datapath precision.
    let scan = config.replica_scan_cycles(market.hazard.len());
    let per_point = scan * config.hazard_ii.ii() / v;
    // Pipeline fill: one scan plus the arithmetic tails down the chain.
    let fill: Cycle = scan + 49 + FP_EXP_LATENCY_CYCLES + 8 * 4 + 51 + 22;
    // Fixed per-invocation dataflow process count (V=1 graph: 14 stages).
    let processes = if config.vector_factor > 1 { 14 + 3 * (config.vector_factor + 1) } else { 14 };
    match config.region_mode {
        RegionMode::Continuous => {
            let steady: Cycle =
                options.iter().map(|o| schedule_points(o).len() as Cycle * per_point).sum();
            steady + fill + config.region_cost.invocation_overhead(processes)
        }
        RegionMode::PerOption => options
            .iter()
            .map(|o| {
                schedule_points(o).len() as Cycle * per_point
                    + fill
                    + config.region_cost.invocation_overhead(processes)
            })
            .sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FpgaCdsEngine;
    use cds_quant::option::{PaymentFrequency, PortfolioGenerator};

    fn market() -> MarketData<f64> {
        MarketData::paper_workload(7)
    }

    fn options(n: usize) -> Vec<CdsOption> {
        PortfolioGenerator::uniform(n, 5.5, PaymentFrequency::Quarterly, 0.4)
    }

    #[test]
    fn analytic_tracks_simulator_within_tolerance() {
        let market = market();
        let opts = options(8);
        for variant in EngineVariant::ALL {
            let config = variant.config();
            let engine = FpgaCdsEngine::new(market.clone(), config.clone());
            let simulated = engine.price_batch(&opts).kernel_cycles as f64;
            let predicted = estimate_kernel_cycles(&market, &config, &opts) as f64;
            let err = (predicted - simulated).abs() / simulated;
            assert!(
                err < 0.15,
                "{variant:?}: analytic {predicted} vs simulated {simulated} ({:.1}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn analytic_preserves_variant_ordering() {
        let market = market();
        let opts = options(16);
        let rate = |v: EngineVariant| estimate_options_per_second(&market, &v.config(), &opts);
        assert!(rate(EngineVariant::XilinxBaseline) < rate(EngineVariant::OptimisedDataflow));
        assert!(rate(EngineVariant::OptimisedDataflow) < rate(EngineVariant::InterOption));
        assert!(rate(EngineVariant::InterOption) < rate(EngineVariant::Vectorised));
    }

    #[test]
    fn estimate_scales_linearly_in_batch() {
        let market = market();
        let config = EngineVariant::InterOption.config();
        let a = estimate_kernel_cycles(&market, &config, &options(10));
        let b = estimate_kernel_cycles(&market, &config, &options(20));
        let ratio = b as f64 / a as f64;
        assert!(ratio > 1.8 && ratio < 2.1, "ratio {ratio}");
    }
}
