//! Resident portfolio state with a dependency-indexed arrangement.
//!
//! The paper's dataflow engines stream *every* option through the full
//! pricing pipeline on each run; this module is the enabling refactor
//! for incremental tick repricing (ROADMAP item 1): it separates the
//! resident portfolio — which options are held, and *which curve knots
//! each of them reads* — from the pricing pass itself.
//!
//! The index is a differential-dataflow-style **arrangement**: for each
//! curve knot we can produce the exact set of resident options whose
//! discount factors or survival probabilities read that knot. The read
//! sets are derived from the same schedule arithmetic the lane kernel
//! executes (`cds_cpu::lanes::full_points`, `Δ·j` computed in f64), so
//! the arrangement is exact by construction, not approximate:
//!
//! * **Interest curve.** `discount_factor(t)` interpolates linearly, so
//!   a read at time `t` touches knot `i` iff `t` falls in that knot's
//!   [`interest_window`]. An option of frequency Δ with `k` full points
//!   reads the shared lattice times `Δ·1 … Δ·k` and the period
//!   midpoints, plus two per-option stub times: the maturity `m` and
//!   the stub midpoint `0.5·(Δ·k + m)`. Lattice reads are shared by
//!   every option of the same frequency with at least that many points,
//!   so they are indexed as per-frequency buckets keyed by `k`; the two
//!   stub reads are indexed in order-preserving `f64::to_bits` B-trees
//!   for range queries.
//! * **Hazard curve.** `cumulative_hazard(t)` accumulates a *prefix* of
//!   the curve, so a read at `t` touches knot `i` iff `t > tenor[i-1]`
//!   ([`hazard_window`]). An option's largest hazard read is its
//!   maturity, hence the affected set of a hazard tick is exactly the
//!   options with `m > tenor[i-1]` — one maturity range query.
//!
//! Everything here is about *which* options to reprice; the repricing
//! itself stays in the lane kernel
//! ([`cds_cpu::LaneKernel::price_indices_into`]), preserving the
//! kernel's bit-identity with the scalar reference.

use cds_cpu::lanes::{freq_slot, full_points};
use cds_quant::option::CdsOption;
use std::collections::BTreeSet;
use std::ops::Bound;

/// Frequencies per grid slot, in [`freq_slot`] order.
const SLOT_PER_YEAR: [u32; 4] = [1, 2, 4, 12];

/// The half-open(ish) time window within which a curve read touches one
/// specific knot: `lo < t` and `t < hi` or `t <= hi` depending on
/// [`ReadWindow::hi_inclusive`].
///
/// The asymmetry mirrors `SegmentIndex::interpolate` exactly: its
/// binary search resolves a read at `t = tenor[i+1]` to the segment
/// *ending* there (inclusive right edge), but the flat-extrapolation
/// branch `t >= tenor[last]` short-circuits first and reads only the
/// last knot — so the second-to-last knot's window excludes its right
/// edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadWindow {
    /// Exclusive lower bound (reads at exactly `lo` do not touch the knot).
    pub lo: f64,
    /// Upper bound; `f64::INFINITY` for the last knot.
    pub hi: f64,
    /// Whether a read at exactly `hi` touches the knot.
    pub hi_inclusive: bool,
}

impl ReadWindow {
    /// Does a curve read at time `t` touch the knot this window belongs to?
    pub fn contains(&self, t: f64) -> bool {
        t > self.lo && if self.hi_inclusive { t <= self.hi } else { t < self.hi }
    }
}

/// The window of read times that touch interest-curve knot `knot`.
///
/// Derived from the linear-interpolation branches: `t <= tenor[0]`
/// reads knot 0 only, `t >= tenor[last]` reads the last knot only, and
/// an interior read resolves to the segment `tenor[i] < t <=
/// tenor[i+1]`, touching knots `i` and `i+1`.
///
/// # Panics
/// Panics if `knot` is out of bounds (curves hold at least two knots).
pub fn interest_window(tenors: &[f64], knot: usize) -> ReadWindow {
    let last = tenors.len() - 1;
    assert!(knot <= last, "knot {knot} out of bounds for {} tenors", tenors.len());
    let lo = if knot == 0 { f64::NEG_INFINITY } else { tenors[knot - 1] };
    if knot == last {
        ReadWindow { lo, hi: f64::INFINITY, hi_inclusive: true }
    } else {
        // Right edge at tenor[last] belongs to the flat-extrapolation
        // branch, which reads only the last knot.
        ReadWindow { lo, hi: tenors[knot + 1], hi_inclusive: knot + 1 < last }
    }
}

/// The window of read times that touch hazard-curve knot `knot`.
///
/// `cumulative_hazard` is a running integral: a read at `t` consumes the
/// stored prefix through its segment, i.e. every knot `i` with
/// `tenor[i-1] < t`. The window is therefore unbounded above.
///
/// # Panics
/// Panics if `knot` is out of bounds.
pub fn hazard_window(tenors: &[f64], knot: usize) -> ReadWindow {
    assert!(knot < tenors.len(), "knot {knot} out of bounds for {} tenors", tenors.len());
    let lo = if knot == 0 { 0.0 } else { tenors[knot - 1] };
    ReadWindow { lo, hi: f64::INFINITY, hi_inclusive: true }
}

/// The stub-midpoint read time of an option with `k` full points, using
/// the lane kernel's exact expression (`prev_t` is the shared grid time
/// `Δ·k` computed in f64).
fn stub_mid(delta: f64, k: usize, maturity: f64) -> f64 {
    0.5 * (delta * k as f64 + maturity)
}

/// Does this option's pricing pass read interest-curve time window `w`?
/// Single-option reference version of the arrangement query (the index
/// answers the same question for all residents at once); also used by
/// `cds-server` to classify cached quotes against a published
/// invalidation window.
pub fn option_reads_interest(option: &CdsOption, w: &ReadWindow) -> bool {
    let k = full_points(option);
    let delta = 1.0 / option.frequency.per_year() as f64;
    if lattice_reads_window(delta, k, w) {
        return true;
    }
    w.contains(option.maturity) || w.contains(stub_mid(delta, k, option.maturity))
}

/// Does this option's pricing pass read hazard-curve time window `w`?
/// Hazard windows are prefix windows, so the maturity (the option's
/// largest hazard read) decides.
pub fn option_reads_hazard(option: &CdsOption, w: &ReadWindow) -> bool {
    option.maturity > w.lo
}

/// Does the shared payment lattice of frequency `Δ`, truncated at `k`
/// full points, read inside `w`? Checks the full-point times `Δ·j` and
/// the period midpoints `0.5·(Δ·(j-1) + Δ·j)` for `j = 1..=k`, with the
/// kernel's f64 expressions.
fn lattice_reads_window(delta: f64, k: usize, w: &ReadWindow) -> bool {
    first_lattice_point_in(delta, k, w).is_some()
}

/// Smallest `j in 1..=k` whose full point or midpoint lands in `w`, if
/// any. Every option of this frequency with at least `j` full points
/// shares that read.
fn first_lattice_point_in(delta: f64, k: usize, w: &ReadWindow) -> Option<usize> {
    for j in 1..=k {
        let t = delta * j as f64;
        let mid = 0.5 * (delta * (j - 1) as f64 + t);
        if w.contains(mid) || w.contains(t) {
            return Some(j);
        }
        // Lattice times increase with j; once the midpoint has passed
        // the window there is nothing left to find.
        if mid > w.hi {
            return None;
        }
    }
    None
}

/// Per-option metadata kept alongside the slab.
#[derive(Debug, Clone, Copy)]
struct Meta {
    /// Full schedule points before the stub (`cds_cpu::lanes::full_points`).
    k: u32,
    /// Frequency slot (index into the per-frequency buckets).
    slot: u8,
    /// Whether the id is resident (false while on the free list).
    live: bool,
    /// Position inside `buckets[slot][k]`, for O(1) swap-removal.
    bucket_pos: u32,
    /// Cached stub-midpoint read time.
    stub_mid: f64,
}

/// Resident portfolio state: a stable-id slab of options plus the
/// dependency arrangement over their curve reads.
///
/// Ids are dense `u32` slab indices, stable for the lifetime of the
/// option and recycled after removal; the slab doubles as the
/// `&[CdsOption]` the sparse lane-kernel entry point prices from.
#[derive(Debug, Clone, Default)]
pub struct PortfolioState {
    /// Option storage, indexed by id. Freed slots retain stale data and
    /// are never handed out by queries.
    options: Vec<CdsOption>,
    meta: Vec<Meta>,
    free: Vec<u32>,
    live: usize,
    /// `buckets[slot][k]` = ids of live options with exactly `k` full
    /// points at that frequency. A tick whose window first touches the
    /// shared lattice at point `j` affects every bucket with `k >= j`.
    buckets: [Vec<Vec<u32>>; 4],
    /// Live ids keyed by `maturity.to_bits()` (order-preserving for the
    /// positive maturities validation guarantees).
    by_maturity: BTreeSet<(u64, u32)>,
    /// Live ids keyed by `stub_mid.to_bits()`.
    by_stub_mid: BTreeSet<(u64, u32)>,
    /// Generation stamps for O(1) dedup during affected-set collection.
    stamp: Vec<u64>,
    generation: u64,
}

impl PortfolioState {
    /// Empty portfolio.
    pub fn new() -> Self {
        PortfolioState::default()
    }

    /// Number of resident options.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no options are resident.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Highest id ever allocated plus one (the slab length). Freed ids
    /// below this may be recycled by future inserts.
    pub fn slab_len(&self) -> usize {
        self.options.len()
    }

    /// The raw option slab, indexed by id — the slice
    /// [`cds_cpu::LaneKernel::price_indices_into`] gathers from. Freed
    /// slots hold stale options; only index it with live ids.
    pub fn raw_options(&self) -> &[CdsOption] {
        &self.options
    }

    /// The option behind a live id.
    pub fn option(&self, id: u32) -> Option<&CdsOption> {
        let meta = self.meta.get(id as usize)?;
        meta.live.then(|| &self.options[id as usize])
    }

    /// Iterate `(id, option)` over live residents in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &CdsOption)> + '_ {
        self.meta
            .iter()
            .enumerate()
            .filter(|(_, m)| m.live)
            .map(move |(id, _)| (id as u32, &self.options[id]))
    }

    /// Insert an option, indexing every curve read it will perform.
    /// Returns its stable id (freed ids are recycled).
    ///
    /// # Panics
    /// Panics on an invalid schedule, with the same wording as the
    /// pricing kernels.
    pub fn insert(&mut self, option: CdsOption) -> u32 {
        let k = full_points(&option);
        let slot = freq_slot(option.frequency);
        let delta = 1.0 / SLOT_PER_YEAR[slot] as f64;
        let mid = stub_mid(delta, k, option.maturity);
        let id = match self.free.pop() {
            Some(id) => {
                self.options[id as usize] = option;
                id
            }
            None => {
                self.options.push(option);
                self.meta.push(Meta { k: 0, slot: 0, live: false, bucket_pos: 0, stub_mid: 0.0 });
                self.stamp.push(0);
                (self.options.len() - 1) as u32
            }
        };
        let bucket_by_k = &mut self.buckets[slot];
        if bucket_by_k.len() <= k {
            bucket_by_k.resize(k + 1, Vec::new());
        }
        let bucket = &mut bucket_by_k[k];
        bucket.push(id);
        self.meta[id as usize] = Meta {
            k: k as u32,
            slot: slot as u8,
            live: true,
            bucket_pos: (bucket.len() - 1) as u32,
            stub_mid: mid,
        };
        self.by_maturity.insert((option.maturity.to_bits(), id));
        self.by_stub_mid.insert((mid.to_bits(), id));
        self.live += 1;
        id
    }

    /// Remove a resident option, dropping every index entry it owns.
    /// Returns the option, or `None` if the id is not live.
    pub fn remove(&mut self, id: u32) -> Option<CdsOption> {
        let meta = *self.meta.get(id as usize)?;
        if !meta.live {
            return None;
        }
        let bucket = &mut self.buckets[meta.slot as usize][meta.k as usize];
        let pos = meta.bucket_pos as usize;
        bucket.swap_remove(pos);
        if let Some(&moved) = bucket.get(pos) {
            self.meta[moved as usize].bucket_pos = pos as u32;
        }
        let option = self.options[id as usize];
        self.by_maturity.remove(&(option.maturity.to_bits(), id));
        self.by_stub_mid.remove(&(meta.stub_mid.to_bits(), id));
        self.meta[id as usize].live = false;
        self.free.push(id);
        self.live -= 1;
        Some(option)
    }

    /// Total entries across all index structures — for leak tests: must
    /// equal `2 * len()` for the B-trees plus `len()` across buckets.
    pub fn index_entries(&self) -> usize {
        let bucketed: usize = self.buckets.iter().flat_map(|by_k| by_k.iter().map(Vec::len)).sum();
        bucketed + self.by_maturity.len() + self.by_stub_mid.len()
    }

    /// Ids of live options affected by a value change at interest-curve
    /// knot `knot`: shared-lattice readers (per-frequency buckets) plus
    /// maturity and stub-midpoint range hits, deduplicated and sorted.
    ///
    /// # Panics
    /// Panics if `knot` is out of bounds for `tenors`.
    pub fn affected_by_interest(&mut self, tenors: &[f64], knot: usize, out: &mut Vec<u32>) {
        let w = interest_window(tenors, knot);
        out.clear();
        self.generation += 1;
        let generation = self.generation;
        for (by_k, &per_year) in self.buckets.iter().zip(SLOT_PER_YEAR.iter()) {
            if by_k.is_empty() {
                continue;
            }
            let delta = 1.0 / per_year as f64;
            if let Some(j) = first_lattice_point_in(delta, by_k.len() - 1, &w) {
                for bucket in &by_k[j..] {
                    for &id in bucket {
                        if self.stamp[id as usize] != generation {
                            self.stamp[id as usize] = generation;
                            out.push(id);
                        }
                    }
                }
            }
        }
        for &(_, id) in range_in_window(&self.by_maturity, &w) {
            if self.stamp[id as usize] != generation {
                self.stamp[id as usize] = generation;
                out.push(id);
            }
        }
        for &(_, id) in range_in_window(&self.by_stub_mid, &w) {
            if self.stamp[id as usize] != generation {
                self.stamp[id as usize] = generation;
                out.push(id);
            }
        }
        out.sort_unstable();
    }

    /// Ids of live options affected by a value change at hazard-curve
    /// knot `knot`: exactly the residents whose maturity exceeds the
    /// previous tenor (the cumulative hazard is a prefix integral).
    /// Sorted ascending.
    ///
    /// # Panics
    /// Panics if `knot` is out of bounds for `tenors`.
    pub fn affected_by_hazard(&mut self, tenors: &[f64], knot: usize, out: &mut Vec<u32>) {
        let w = hazard_window(tenors, knot);
        out.clear();
        out.extend(range_in_window(&self.by_maturity, &w).map(|&(_, id)| id));
        out.sort_unstable();
    }

    /// Interest knots whose window contains no shared-lattice read of
    /// any resident frequency — ticks there touch only per-option stub
    /// reads, the regime where incremental repricing wins by orders of
    /// magnitude. (Knots under the payment lattice inherently invalidate
    /// a large slice of the book; see docs/PERFORMANCE.md.)
    pub fn lattice_free_interest_knots(&self, tenors: &[f64]) -> Vec<usize> {
        (0..tenors.len())
            .filter(|&knot| {
                let w = interest_window(tenors, knot);
                (0..4).all(|slot| {
                    let by_k = &self.buckets[slot];
                    by_k.is_empty() || {
                        let delta = 1.0 / SLOT_PER_YEAR[slot] as f64;
                        first_lattice_point_in(delta, by_k.len() - 1, &w).is_none()
                    }
                })
            })
            .collect()
    }
}

/// Range query over a `to_bits`-keyed index: live ids whose key time
/// lies inside the window. Keys are positive finite f64s, for which the
/// `to_bits` order matches the numeric order.
fn range_in_window<'s>(
    index: &'s BTreeSet<(u64, u32)>,
    w: &ReadWindow,
) -> impl Iterator<Item = &'s (u64, u32)> {
    let start = if w.lo <= 0.0 || w.lo == f64::NEG_INFINITY {
        Bound::Unbounded
    } else {
        Bound::Excluded((w.lo.to_bits(), u32::MAX))
    };
    let end = if w.hi == f64::INFINITY {
        Bound::Unbounded
    } else if w.hi_inclusive {
        Bound::Included((w.hi.to_bits(), u32::MAX))
    } else {
        Bound::Excluded((w.hi.to_bits(), 0))
    };
    index.range((start, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_quant::option::{MarketData, PaymentFrequency, PortfolioGenerator};

    fn tenors(curve: &cds_quant::curve::Curve) -> Vec<f64> {
        curve.points().iter().map(|p| p.tenor).collect()
    }

    #[test]
    fn interest_windows_partition_reads_like_the_interpolator() {
        let market = MarketData::paper_workload(3);
        let ts = tenors(&market.interest);
        let n = ts.len();
        // Probe times across every branch of the interpolator: below the
        // curve, on knots, between knots, on/beyond the last knot.
        let mut probes = vec![0.001, ts[0], ts[n - 1], ts[n - 1] + 1.0, 1e6];
        for i in 0..n - 1 {
            probes.push(ts[i]);
            probes.push(0.5 * (ts[i] + ts[i + 1]));
        }
        for &t in &probes {
            let touched: Vec<usize> =
                (0..n).filter(|&i| interest_window(&ts, i).contains(t)).collect();
            // Which knots does the real interpolation branch read?
            let expected: Vec<usize> = if t >= ts[n - 1] {
                vec![n - 1]
            } else if t <= ts[0] {
                vec![0]
            } else {
                let lo = (0..n - 1).find(|&i| ts[i] < t && t <= ts[i + 1]).unwrap_or(0);
                vec![lo, lo + 1]
            };
            assert_eq!(touched, expected, "read at t={t}");
        }
    }

    #[test]
    fn hazard_windows_are_prefix_windows() {
        let ts = [0.5, 1.0, 2.0, 5.0];
        assert!(hazard_window(&ts, 0).contains(0.1));
        assert!(hazard_window(&ts, 0).contains(10.0));
        assert!(!hazard_window(&ts, 1).contains(0.5));
        assert!(hazard_window(&ts, 1).contains(0.500_000_1));
        assert!(!hazard_window(&ts, 3).contains(2.0));
        assert!(hazard_window(&ts, 3).contains(2.5));
    }

    #[test]
    fn affected_sets_match_the_single_option_predicates() {
        let market = MarketData::paper_workload_sized(5, 48);
        let its = tenors(&market.interest);
        let hts = tenors(&market.hazard);
        let options = PortfolioGenerator::new(17).portfolio(64);
        let mut state = PortfolioState::new();
        let ids: Vec<u32> = options.iter().map(|&o| state.insert(o)).collect();
        let mut affected = Vec::new();
        for knot in 0..its.len() {
            state.affected_by_interest(&its, knot, &mut affected);
            let w = interest_window(&its, knot);
            for (&id, option) in ids.iter().zip(&options) {
                assert_eq!(
                    affected.contains(&id),
                    option_reads_interest(option, &w),
                    "interest knot {knot}, option {option:?}"
                );
            }
        }
        for knot in 0..hts.len() {
            state.affected_by_hazard(&hts, knot, &mut affected);
            let w = hazard_window(&hts, knot);
            for (&id, option) in ids.iter().zip(&options) {
                assert_eq!(
                    affected.contains(&id),
                    option_reads_hazard(option, &w),
                    "hazard knot {knot}, option {option:?}"
                );
            }
        }
    }

    #[test]
    fn remove_recycles_ids_and_keeps_indexes_tight() {
        let options = PortfolioGenerator::new(9).portfolio(32);
        let mut state = PortfolioState::new();
        let ids: Vec<u32> = options.iter().map(|&o| state.insert(o)).collect();
        assert_eq!(state.len(), 32);
        assert_eq!(state.index_entries(), 3 * 32);
        for &id in &ids[..16] {
            assert!(state.remove(id).is_some());
            assert!(state.remove(id).is_none(), "double remove must be None");
        }
        assert_eq!(state.len(), 16);
        assert_eq!(state.index_entries(), 3 * 16);
        // Recycled ids come back from the free list.
        let recycled = state.insert(options[0]);
        assert!(ids[..16].contains(&recycled));
        assert_eq!(state.len(), 17);
        assert_eq!(state.index_entries(), 3 * 17);
    }

    #[test]
    fn lattice_free_knots_affect_only_stub_readers() {
        let market = MarketData::paper_workload(2);
        let its = tenors(&market.interest);
        let mut state = PortfolioState::new();
        for o in PortfolioGenerator::new(4).portfolio(4096) {
            state.insert(o);
        }
        let free_knots = state.lattice_free_interest_knots(&its);
        assert!(!free_knots.is_empty(), "a 1024-knot paper curve must contain off-lattice knots");
        let mut affected = Vec::new();
        for &knot in &free_knots {
            state.affected_by_interest(&its, knot, &mut affected);
            let w = interest_window(&its, knot);
            for &id in &affected {
                let o = state.option(id).expect("affected id must be live");
                let k = full_points(o);
                let delta = 1.0 / o.frequency.per_year() as f64;
                assert!(
                    w.contains(o.maturity) || w.contains(stub_mid(delta, k, o.maturity)),
                    "knot {knot} claimed lattice-free but option {o:?} hit via the lattice"
                );
            }
        }
    }

    #[test]
    fn monthly_frequency_uses_the_monthly_bucket() {
        let mut state = PortfolioState::new();
        let o = CdsOption::new(1.0, PaymentFrequency::Monthly, 0.4);
        state.insert(o);
        assert_eq!(state.buckets[3].iter().map(Vec::len).sum::<usize>(), 1);
    }
}
