//! # cds-engine — the paper's FPGA Credit Default Swap engines
//!
//! Implements every engine variant of *"Optimisation of an FPGA Credit
//! Default Swap engine by embracing dataflow techniques"* (CLUSTER 2021)
//! on top of the [`dataflow_sim`] substrate, producing **real spreads**
//! (validated against the [`cds_quant`] reference pricer) together with
//! **cycle-accurate timing** under the declared cost model:
//!
//! | Variant | Paper section | Structure |
//! |---|---|---|
//! | `XilinxBaseline` | Fig 1, Table I row 2 | sequential pipelined loops, II=7 hazard accumulation, prefix scans |
//! | `OptimisedDataflow` | §III, Table I row 3 | concurrent stream-connected stages, Listing-1 accumulator, region restart per option |
//! | `InterOption` | §III, Table I row 4 | options stream through a continuously-running region |
//! | `Vectorised` | Fig 3, Table I row 5 | hazard/interpolation stages replicated with round-robin scheduling |
//! | [`multi::MultiEngine`] | §IV, Table II | N engines over option chunks, U280 resource-gated |
//!
//! The single entry point is [`FpgaCdsEngine`]:
//!
//! ```
//! use cds_engine::prelude::*;
//! use cds_quant::prelude::*;
//!
//! let market = MarketData::paper_workload(42);
//! let options = PortfolioGenerator::uniform(8, 5.5, PaymentFrequency::Quarterly, 0.4);
//! let engine = FpgaCdsEngine::new(market.clone(), EngineVariant::Vectorised.config());
//! let report = engine.price_batch(&options);
//! assert_eq!(report.spreads.len(), 8);
//! let golden = CdsPricer::new(market).price(&options[0]).spread_bps;
//! assert!((report.spreads[0] - golden).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod analytic;
pub mod checkpoint;
pub mod config;
pub mod error;
pub mod host;
pub mod incremental;
pub mod journal_io;
pub mod multi;
pub mod portfolio;
pub mod report;
pub mod retry;
pub mod route;
pub mod scrub;
pub mod stages;
pub mod streaming;
pub mod tokens;
pub mod variants;

pub use config::{EngineConfig, EngineVariant, HazardIiMode};
pub use error::CdsError;
pub use report::EngineRunReport;

use cds_quant::option::{CdsOption, MarketData};
use std::rc::Rc;

/// One FPGA CDS engine instance: market data (the constant inputs held in
/// UltraRAM) plus a configuration selecting the paper's variant.
pub struct FpgaCdsEngine {
    market: Rc<MarketData<f64>>,
    config: EngineConfig,
}

impl FpgaCdsEngine {
    /// Create an engine over the given market data and configuration.
    pub fn new(market: MarketData<f64>, config: EngineConfig) -> Self {
        FpgaCdsEngine { market: Rc::new(market), config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The constant market data.
    pub fn market(&self) -> &MarketData<f64> {
        &self.market
    }

    /// Price a batch of options, returning spreads plus the full timing
    /// report (kernel cycles, PCIe transfer, options/second).
    pub fn price_batch(&self, options: &[CdsOption]) -> EngineRunReport {
        match self.config.variant {
            EngineVariant::XilinxBaseline => {
                variants::xilinx::run(&self.market, &self.config, options)
            }
            _ => variants::dataflow::run(self.market.clone(), &self.config, options),
        }
    }
}

/// Convenient glob import.
pub mod prelude {
    pub use crate::checkpoint::{streaming_checkpoints, Checkpoint, CompletedOption};
    pub use crate::config::{EngineConfig, EngineVariant, HazardIiMode};
    pub use crate::error::CdsError;
    pub use crate::incremental::{CurveKind, CurveTick, IncrementalEngine};
    pub use crate::journal_io::{
        enumerate_crash_states, sync_ordering_held, CrashPlan, CrashState, FaultyJournalIo,
        JournalIo, JournalOp, OsJournalIo, RecordingJournalIo, StorageFaultPlan,
    };
    pub use crate::multi::MultiEngine;
    pub use crate::portfolio::{
        hazard_window, interest_window, option_reads_hazard, option_reads_interest, PortfolioState,
        ReadWindow,
    };
    pub use crate::report::{EngineRunReport, SpreadDelta, TickReport};
    pub use crate::retry::{RetryPolicy, RetryPolicyError};
    pub use crate::route::PriceRoute;
    pub use crate::scrub::{scrub_spreads, QuarantineRecord, ScrubPolicy, ScrubReport};
    pub use crate::streaming::{
        poisson_arrivals, resume_streaming_from, run_streaming, run_streaming_checkpointed,
        run_streaming_with, AdmissionControl, StreamingPolicy, StreamingReport,
    };
    pub use crate::FpgaCdsEngine;
}
