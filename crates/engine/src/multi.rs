//! Multi-engine scaling (paper §IV, Table II).
//!
//! "We scaled up the number of CDS engines on the FPGA, being able to fit
//! five onto the Alveo U280. There are no dependencies between
//! calculations involving different options, and as such we decomposed
//! based upon the options themselves, splitting the entire set up into N
//! chunks … All engines require the full interest and hazard rate data,
//! which is read in upon initialisation of the engine and stored in
//! UltraRAM."

use crate::checkpoint::{checkpoint_stream, Checkpoint, CompletedOption};
use crate::config::{EngineConfig, EnginePrecision, EngineVariant};
use crate::report::EngineRunReport;
use crate::retry::RetryPolicy;
use crate::scrub::{scrub_spreads, ScrubPolicy, ScrubReport};
use crate::FpgaCdsEngine;
use cds_quant::option::{CdsOption, MarketData};
use dataflow_sim::fault::{FaultKind, FaultPlan};
use dataflow_sim::resource::{op_cost, uram_for_curve, Device, ResourceUsage};
use dataflow_sim::trace::Counters;

/// Checkpoint cadence plus the sink receiving each emitted checkpoint.
type JournalSink<'a> = (u32, &'a mut dyn FnMut(&Checkpoint));

/// Per-extra-engine slowdown from shared memory interconnect and host
/// sequencing — the linear coefficient of the contention model.
///
/// **Calibrated constant** (DESIGN.md §5): the paper measures 1.943× at
/// two engines and 4.124× at five. The overhead per extra engine is not
/// flat — each additional engine sharing the HBM interconnect costs
/// slightly more than the last — so the model is quadratic in the number
/// of extra engines:
///
/// ```text
/// speedup(n) = n / (1 + (n−1)·(MULTI_ENGINE_CONTENTION
///                             + (n−1)·MULTI_ENGINE_CONTENTION_GROWTH))
/// ```
///
/// The two coefficients are the exact two-point fit through the paper's
/// measurements, reproducing both 1.943×@2 and 4.124×@5 to better than
/// 0.01% (a single flat coefficient can only fit one of the two points;
/// the best single-constant compromise, `f ≈ 0.053`, is 2.2% off at two
/// engines).
pub const MULTI_ENGINE_CONTENTION: f64 = 0.021_413_5;

/// Growth of the per-extra-engine contention with each further engine —
/// the quadratic coefficient of the model above (see
/// [`MULTI_ENGINE_CONTENTION`]).
pub const MULTI_ENGINE_CONTENTION_GROWTH: f64 = 0.007_922_6;

/// Contention multiplier on the makespan at `n` engines:
/// `1 + (n−1)·(α + (n−1)·β)` with the two calibrated coefficients.
pub fn contention_factor(n: usize) -> f64 {
    let extra = n.saturating_sub(1) as f64;
    1.0 + extra * (MULTI_ENGINE_CONTENTION + extra * MULTI_ENGINE_CONTENTION_GROWTH)
}

/// Errors constructing a multi-engine deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiEngineError {
    /// Zero engines requested.
    NoEngines,
    /// The requested engine count does not fit on the device.
    DoesNotFit {
        /// Engines requested.
        requested: usize,
        /// Maximum that fit.
        max: usize,
    },
}

impl std::fmt::Display for MultiEngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiEngineError::NoEngines => write!(f, "need at least one engine"),
            MultiEngineError::DoesNotFit { requested, max } => {
                write!(f, "{requested} engines requested but only {max} fit on the device")
            }
        }
    }
}

impl std::error::Error for MultiEngineError {}

/// Estimated FPGA resources of one engine under the given configuration.
///
/// The vectorised engine replicates the hazard and two interpolation
/// functions `V` times; each function keeps its own dual-ported URAM copy
/// of the constant curve data.
pub fn engine_resource_usage(config: &EngineConfig, curve_entries: usize) -> ResourceUsage {
    let v = config.vector_factor.max(1) as u64;
    // The replicated datapath follows the configured precision (the
    // further-work f32 mode roughly halves it); the narrow fixed stages
    // stay double precision in mixed mode.
    let (add, mul, exp) = match config.precision {
        EnginePrecision::Double => (op_cost::DADD, op_cost::DMUL, op_cost::DEXP),
        EnginePrecision::Single => (op_cost::SADD, op_cost::SMUL, op_cost::SEXP),
    };
    // Hazard replica: seven unrolled adders (Listing 1), exp core, two
    // multipliers for the integrand.
    let hazard_replica = add.times(7).plus(exp).plus(mul.times(2));
    // Interpolation replica: segment arithmetic plus discounting exp.
    let interp_replica = add.times(2).plus(mul.times(2)).plus(exp);
    let replicated = hazard_replica.plus(interp_replica.times(2)).times(v);
    // Fixed stages: time-point generation, three calculation stages, two
    // tees, three accumulators (7 adders each), combine (divider), I/O.
    let fixed = op_cost::STAGE_OVERHEAD
        .times(14)
        .plus(op_cost::DADD.times(3 * 7 + 4))
        .plus(op_cost::DMUL.times(5))
        .plus(op_cost::DDIV);
    // Split/merge schedulers when vectorised — lightweight round-robin
    // muxes, roughly half a full stage each.
    let schedulers =
        if v > 1 { op_cost::STAGE_OVERHEAD.times(3) } else { ResourceUsage::default() };
    let uram = ResourceUsage {
        uram: uram_for_curve(curve_entries, 3), // one copy per replicated function
        ..ResourceUsage::default()
    };
    replicated.plus(fixed).plus(schedulers).plus(uram)
}

/// `N` CDS engines on one device, processing option chunks independently.
pub struct MultiEngine {
    market: MarketData<f64>,
    config: EngineConfig,
    device: Device,
    n_engines: usize,
}

/// Report of a multi-engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiEngineReport {
    /// Spreads in original option order.
    pub spreads: Vec<f64>,
    /// Engine count used.
    pub engines: usize,
    /// Wall-clock seconds (slowest engine, with interconnect contention,
    /// plus shared PCIe transfer).
    pub total_seconds: f64,
    /// The paper's headline metric.
    pub options_per_second: f64,
    /// Largest per-engine kernel seconds before contention.
    pub slowest_engine_seconds: f64,
    /// Merged telemetry across all engines (stream high-water is the max,
    /// busy/stall cycles and backpressure events sum).
    pub counters: Counters,
    /// Total faults injected during the run (zero without a fault plan).
    pub faults_injected: u64,
    /// Options re-priced on surviving engines after an engine death or a
    /// lost token.
    pub options_retried: u64,
    /// Options abandoned (only possible when recovery is exhausted).
    pub options_shed: u64,
    /// True when the run survived an engine death or fell back to the CPU
    /// engine — the result is complete but the deployment is impaired.
    pub degraded: bool,
    /// Scrubber outcome when a [`ScrubPolicy`] was supplied.
    pub scrub: Option<ScrubReport>,
}

impl MultiEngine {
    /// Deploy `n_engines` vectorised engines on an Alveo U280.
    ///
    /// ```
    /// use cds_engine::multi::MultiEngine;
    /// use cds_quant::prelude::*;
    ///
    /// let market = MarketData::paper_workload(1);
    /// // Five engines fit the U280 (paper §IV); six do not.
    /// assert!(MultiEngine::new(market.clone(), 5).is_ok());
    /// assert!(MultiEngine::new(market, 6).is_err());
    /// ```
    pub fn new(market: MarketData<f64>, n_engines: usize) -> Result<Self, MultiEngineError> {
        Self::with_config(
            market,
            EngineVariant::Vectorised.config(),
            Device::alveo_u280(),
            n_engines,
        )
    }

    /// Deploy with an explicit configuration and device.
    pub fn with_config(
        market: MarketData<f64>,
        config: EngineConfig,
        device: Device,
        n_engines: usize,
    ) -> Result<Self, MultiEngineError> {
        if n_engines == 0 {
            return Err(MultiEngineError::NoEngines);
        }
        let max =
            device.max_instances(engine_resource_usage(&config, market.hazard.len())) as usize;
        if n_engines > max {
            return Err(MultiEngineError::DoesNotFit { requested: n_engines, max });
        }
        Ok(MultiEngine { market, config, device, n_engines })
    }

    /// Maximum engines of this configuration that fit on the device.
    pub fn max_engines(market: &MarketData<f64>, config: &EngineConfig, device: &Device) -> usize {
        device.max_instances(engine_resource_usage(config, market.hazard.len())) as usize
    }

    /// Number of engines deployed.
    pub fn engines(&self) -> usize {
        self.n_engines
    }

    /// The device hosting the engines.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Contention-adjusted speedup over one engine at `n` engines.
    pub fn model_speedup(n: usize) -> f64 {
        n as f64 / contention_factor(n)
    }

    /// Price a batch across the engines: options are split into `N`
    /// contiguous chunks, each engine prices its chunk independently, and
    /// the wall-clock is set by the slowest engine.
    pub fn price_batch(&self, options: &[CdsOption]) -> MultiEngineReport {
        let n = self.n_engines;
        if options.is_empty() {
            return MultiEngineReport {
                spreads: Vec::new(),
                engines: n,
                total_seconds: 0.0,
                options_per_second: 0.0,
                slowest_engine_seconds: 0.0,
                counters: Counters::default(),
                faults_injected: 0,
                options_retried: 0,
                options_shed: 0,
                degraded: false,
                scrub: None,
            };
        }
        let chunk_size = options.len().div_ceil(n);
        let mut spreads = Vec::with_capacity(options.len());
        let mut slowest = 0.0f64;
        let mut counters = Counters::default();
        for chunk in options.chunks(chunk_size) {
            let engine = FpgaCdsEngine::new(self.market.clone(), self.config.clone());
            let report: EngineRunReport = engine.price_batch(chunk);
            slowest = slowest.max(report.kernel_seconds);
            counters.merge(&report.counters);
            spreads.extend(report.spreads);
        }
        // Engines run concurrently; the shared interconnect adds the
        // calibrated contention; one PCIe batch serves all engines.
        let contention = contention_factor(n);
        let transfer = self.config.pcie.option_batch_seconds(options.len() as u64);
        let total_seconds = slowest * contention + transfer;
        MultiEngineReport {
            engines: n,
            total_seconds,
            options_per_second: options.len() as f64 / total_seconds,
            slowest_engine_seconds: slowest,
            spreads,
            counters,
            faults_injected: 0,
            options_retried: 0,
            options_shed: 0,
            degraded: false,
            scrub: None,
        }
    }
}

impl MultiEngine {
    /// Price a batch with all `N` engines instantiated in a **single
    /// discrete-event simulation**: every engine's stages and streams are
    /// built into one graph (name-prefixed per engine) and run
    /// concurrently, so the makespan — the slowest engine — emerges from
    /// the simulation itself rather than from taking a max over separate
    /// runs. The calibrated interconnect contention and the shared PCIe
    /// transfer are applied to the simulated kernel time as usual.
    pub fn price_batch_simulated(&self, options: &[CdsOption]) -> MultiEngineReport {
        use crate::variants::dataflow::build_graph_into;
        use dataflow_sim::event_sim::EventSim;
        use dataflow_sim::graph::GraphBuilder;
        use std::rc::Rc;

        let n = self.n_engines;
        if options.is_empty() {
            return self.price_batch(options);
        }
        assert_eq!(
            self.config.region_mode,
            dataflow_sim::region::RegionMode::Continuous,
            "single-simulation deployment requires continuous engines"
        );
        let market = Rc::new(self.market.clone());
        let chunk_size = options.len().div_ceil(n);
        let mut g = GraphBuilder::new();
        let mut sinks = Vec::with_capacity(n);
        let mut base_idx = 0u32;
        for (k, chunk) in options.chunks(chunk_size).enumerate() {
            let sink = build_graph_into(
                &mut g,
                &format!("e{k}."),
                market.clone(),
                &self.config,
                chunk,
                base_idx,
                None,
            );
            sinks.push((sink, chunk.len()));
            base_idx += chunk.len() as u32;
        }
        let processes = g.process_count();
        let mut sim = EventSim::new(g);
        let report = match sim.run() {
            Ok(r) => r,
            Err(e) => panic!("multi-engine CDS graph must not deadlock: {e}"),
        };
        let kernel =
            report.total_cycles + self.config.region_cost.invocation_overhead(processes / n.max(1));
        let curve_load = self
            .config
            .memory
            .curve_load_cycles(self.market.hazard.len().max(self.market.interest.len()));

        let mut spreads = Vec::with_capacity(options.len());
        for (sink, expected) in sinks {
            let collected = sink.values();
            assert_eq!(collected.len(), expected);
            spreads.extend(collected.into_iter().map(|tok| tok.spread_bps));
        }
        let contention = contention_factor(n);
        let kernel_seconds = self.config.clock.seconds(kernel + curve_load);
        let transfer = self.config.pcie.option_batch_seconds(options.len() as u64);
        let total_seconds = kernel_seconds * contention + transfer;
        let trace = self.config.trace.clone().unwrap_or_default();
        MultiEngineReport {
            engines: n,
            total_seconds,
            options_per_second: options.len() as f64 / total_seconds,
            slowest_engine_seconds: kernel_seconds,
            spreads,
            counters: Counters::from_run(&trace, &report),
            faults_injected: 0,
            options_retried: 0,
            options_shed: 0,
            degraded: false,
            scrub: None,
        }
    }

    /// Price a batch under an explicit staggered-DMA schedule: chunk
    /// inputs stream to the card one after another over the single PCIe
    /// DMA engine, each engine starts as soon as its chunk lands, and
    /// result transfers serialise likewise (see [`crate::host`] for the
    /// single-engine version of this model). Slightly more pessimistic —
    /// and more faithful — than [`MultiEngine::price_batch`]'s idealised
    /// one-shot transfer.
    pub fn price_batch_staggered(&self, options: &[CdsOption]) -> MultiEngineReport {
        let n = self.n_engines;
        if options.is_empty() {
            return self.price_batch(options);
        }
        let chunk_size = options.len().div_ceil(n);
        let contention = contention_factor(n);
        let mut spreads = Vec::with_capacity(options.len());
        let mut in_done = 0.0f64;
        let mut slowest = 0.0f64;
        let mut makespan = 0.0f64;
        let mut counters = Counters::default();
        for chunk in options.chunks(chunk_size) {
            let engine = FpgaCdsEngine::new(self.market.clone(), self.config.clone());
            let report = engine.price_batch(chunk);
            in_done += self.config.pcie.transfer_seconds(chunk.len() as u64 * 24);
            let compute_done = in_done + report.kernel_seconds * contention;
            let out = self.config.pcie.transfer_seconds(chunk.len() as u64 * 8);
            makespan = makespan.max(compute_done) + out;
            slowest = slowest.max(report.kernel_seconds);
            counters.merge(&report.counters);
            spreads.extend(report.spreads);
        }
        MultiEngineReport {
            engines: n,
            total_seconds: makespan,
            options_per_second: options.len() as f64 / makespan,
            slowest_engine_seconds: slowest,
            spreads,
            counters,
            faults_injected: 0,
            options_retried: 0,
            options_shed: 0,
            degraded: false,
            scrub: None,
        }
    }

    /// Price a batch fault-tolerantly: one single-simulation round with an
    /// optional [`FaultPlan`] injected, followed by bounded recovery.
    ///
    /// Engine `k`'s processes are name-prefixed `e{k}.`, so a plan built
    /// with [`FaultPlan::kill_region`]`("e2.", cycle)` kills exactly that
    /// engine mid-run. After the faulted round, any engine that delivered
    /// fewer spreads than its chunk is treated as failed; its unpriced
    /// options are **re-sharded across the surviving engines** in up to
    /// `max_attempts` fault-free retry rounds. If no engine survives, the
    /// run **degrades gracefully to the CPU engine** ([`cds_cpu`]), with
    /// the retried options' wall-clock taken from the calibrated Xeon
    /// model. Pricing is deterministic, so recovered spreads are identical
    /// to a fault-free run's.
    ///
    /// Returns [`crate::error::CdsError::Exhausted`] if options remain unpriced after
    /// the final attempt (only reachable with `max_attempts == 0`, since
    /// retry rounds are fault-free).
    pub fn price_batch_resilient(
        &self,
        options: &[CdsOption],
        plan: Option<&FaultPlan>,
        max_attempts: usize,
    ) -> Result<MultiEngineReport, crate::error::CdsError> {
        self.price_batch_resilient_core(options, plan, max_attempts, None, None)
    }

    /// [`MultiEngine::price_batch_resilient`] under a validated
    /// [`RetryPolicy`] — the same policy type the `cds-server` serving
    /// layer consumes, so batch failover and quote serving share one
    /// source of retry budgets instead of per-call-site magic numbers.
    /// The policy's `max_attempts` bounds the fault-free re-shard
    /// rounds; an invalid policy is rejected up front with the typed
    /// [`crate::retry::RetryPolicyError`] (as [`crate::error::CdsError::Config`]).
    pub fn price_batch_resilient_with(
        &self,
        options: &[CdsOption],
        plan: Option<&FaultPlan>,
        policy: &RetryPolicy,
    ) -> Result<MultiEngineReport, crate::error::CdsError> {
        policy.validate()?;
        self.price_batch_resilient_core(options, plan, policy.max_attempts, None, None)
    }

    /// [`MultiEngine::price_batch_resilient_scrubbed`] under a validated
    /// [`RetryPolicy`] (see [`MultiEngine::price_batch_resilient_with`]).
    pub fn price_batch_resilient_scrubbed_with(
        &self,
        options: &[CdsOption],
        plan: Option<&FaultPlan>,
        policy: &RetryPolicy,
        scrub: &ScrubPolicy,
    ) -> Result<MultiEngineReport, crate::error::CdsError> {
        policy.validate()?;
        self.price_batch_resilient_core(options, plan, policy.max_attempts, Some(scrub), None)
    }

    /// [`MultiEngine::price_batch_resilient`] with the result-integrity
    /// scrubber enabled: every spread is guarded against its option's
    /// invariants, options named by corruption fault events are
    /// quarantined, and quarantined spreads are repriced on the CPU
    /// fallback engine (see [`crate::scrub`]).
    pub fn price_batch_resilient_scrubbed(
        &self,
        options: &[CdsOption],
        plan: Option<&FaultPlan>,
        max_attempts: usize,
        scrub: &ScrubPolicy,
    ) -> Result<MultiEngineReport, crate::error::CdsError> {
        self.price_batch_resilient_core(options, plan, max_attempts, Some(scrub), None)
    }

    /// [`MultiEngine::price_batch_resilient`] with a write-ahead run
    /// journal: a cumulative [`Checkpoint`] is handed to `sink` after
    /// every `cadence` completed options (in completion order), plus a
    /// terminal commit record. Checkpoints are emitted even when the run
    /// ends in [`crate::error::CdsError::Exhausted`], so
    /// [`MultiEngine::resume_batch_resilient`] can finish the work.
    pub fn price_batch_resilient_checkpointed(
        &self,
        options: &[CdsOption],
        plan: Option<&FaultPlan>,
        max_attempts: usize,
        scrub: Option<&ScrubPolicy>,
        cadence: u32,
        mut sink: impl FnMut(&Checkpoint),
    ) -> Result<MultiEngineReport, crate::error::CdsError> {
        self.price_batch_resilient_core(
            options,
            plan,
            max_attempts,
            scrub,
            Some((cadence, &mut sink)),
        )
    }

    /// Resume a batch from a [`Checkpoint`]: options the checkpoint has
    /// seen complete are taken verbatim (bit-exact), the remainder is
    /// priced fault-free across the engines. Timing and counters
    /// describe the resumed portion only; the report is marked degraded
    /// when the checkpoint was incomplete (the original run failed).
    pub fn resume_batch_resilient(
        &self,
        options: &[CdsOption],
        checkpoint: &Checkpoint,
        max_attempts: usize,
    ) -> Result<MultiEngineReport, crate::error::CdsError> {
        use crate::error::CdsError;
        checkpoint.validate()?;
        if checkpoint.total_options as usize != options.len() {
            return Err(CdsError::Journal {
                reason: format!(
                    "checkpoint covers {} options but the batch has {}",
                    checkpoint.total_options,
                    options.len()
                ),
            });
        }
        if !checkpoint.shed.is_empty() {
            return Err(CdsError::Journal {
                reason: "a batch deployment admits everything; shed options mean this checkpoint \
                         belongs to a streaming run"
                    .to_string(),
            });
        }
        let done: std::collections::BTreeSet<u32> =
            checkpoint.completed.iter().map(|c| c.index).collect();
        let missing: Vec<usize> =
            (0..options.len()).filter(|&i| !done.contains(&(i as u32))).collect();
        let mut spreads = vec![0.0f64; options.len()];
        for c in &checkpoint.completed {
            spreads[c.index as usize] = c.spread_bps;
        }
        if missing.is_empty() {
            return Ok(MultiEngineReport {
                spreads,
                engines: self.n_engines,
                total_seconds: 0.0,
                options_per_second: 0.0,
                slowest_engine_seconds: 0.0,
                counters: Counters::default(),
                faults_injected: 0,
                options_retried: 0,
                options_shed: 0,
                degraded: false,
                scrub: None,
            });
        }
        let missing_opts: Vec<CdsOption> = missing.iter().map(|&i| options[i]).collect();
        let sub = self.price_batch_resilient(&missing_opts, None, max_attempts)?;
        for (&i, &s) in missing.iter().zip(&sub.spreads) {
            spreads[i] = s;
        }
        Ok(MultiEngineReport {
            spreads,
            engines: sub.engines,
            total_seconds: sub.total_seconds,
            options_per_second: if sub.total_seconds > 0.0 {
                options.len() as f64 / sub.total_seconds
            } else {
                0.0
            },
            slowest_engine_seconds: sub.slowest_engine_seconds,
            counters: sub.counters,
            faults_injected: sub.faults_injected,
            options_retried: missing.len() as u64,
            options_shed: 0,
            degraded: true, // resuming means the original deployment died mid-run
            scrub: sub.scrub,
        })
    }

    fn price_batch_resilient_core(
        &self,
        options: &[CdsOption],
        plan: Option<&FaultPlan>,
        max_attempts: usize,
        scrub: Option<&ScrubPolicy>,
        mut journal: Option<JournalSink<'_>>,
    ) -> Result<MultiEngineReport, crate::error::CdsError> {
        use crate::error::CdsError;
        use crate::tokens::{OptionTok, SpreadTok, TimePointTok, Tok};
        use crate::variants::dataflow::build_graph_into;
        use dataflow_sim::event_sim::EventSim;
        use dataflow_sim::graph::GraphBuilder;
        use std::rc::Rc;

        if let Some((cadence, _)) = &journal {
            if *cadence == 0 {
                return Err(CdsError::Config { reason: "checkpoint cadence must be at least 1" });
            }
        }
        let n = self.n_engines;
        if options.is_empty() {
            return Ok(self.price_batch(options));
        }
        if self.config.region_mode != dataflow_sim::region::RegionMode::Continuous {
            return Err(CdsError::Config {
                reason: "resilient deployment requires continuous engines",
            });
        }
        for o in options {
            CdsOption::validated(o.maturity, o.frequency, o.recovery_rate)?;
        }

        let market = Rc::new(self.market.clone());
        let chunk_size = options.len().div_ceil(n);
        let mut g = GraphBuilder::new();
        if let Some(p) = plan {
            // Tag every token type with its owning (global) option index,
            // so fault events name the option the scrubber quarantines.
            let p = p
                .clone()
                .identify::<OptionTok>(|t| Some(t.opt_idx))
                .identify::<TimePointTok>(|t| Some(t.opt_idx))
                .identify::<Tok>(|t| Some(t.opt_idx))
                .identify::<SpreadTok>(|t| Some(t.opt_idx));
            g.set_fault_plan(p);
        }
        let mut sinks = Vec::with_capacity(n);
        let mut base_idx = 0u32;
        for (k, chunk) in options.chunks(chunk_size).enumerate() {
            let sink = build_graph_into(
                &mut g,
                &format!("e{k}."),
                market.clone(),
                &self.config,
                chunk,
                base_idx,
                None,
            );
            sinks.push((sink, chunk.len()));
            base_idx += chunk.len() as u32;
        }
        let processes = g.process_count();
        let mut sim = EventSim::new(g);
        let report = sim.run().map_err(CdsError::Sim)?;
        let faults_injected = report.faults.total();

        // Harvest round 0: an engine that under-delivered its chunk is
        // treated as dead for the rest of the run. Completion cycles are
        // kept for the write-ahead journal.
        let mut spreads_by_idx: Vec<Option<f64>> = vec![None; options.len()];
        let mut completions: Vec<CompletedOption> = Vec::with_capacity(options.len());
        let mut survivors: Vec<usize> = Vec::with_capacity(n);
        for (k, (sink, expected)) in sinks.iter().enumerate() {
            let collected = sink.collected();
            if collected.len() == *expected {
                survivors.push(k);
            }
            for (tok, done_at) in collected {
                spreads_by_idx[tok.opt_idx as usize] = Some(tok.spread_bps);
                completions.push(CompletedOption {
                    index: tok.opt_idx,
                    done_cycle: done_at,
                    spread_bps: tok.spread_bps,
                });
            }
        }
        completions.sort_by_key(|c| (c.done_cycle, c.index));
        let mut cycle_base = report.total_cycles;
        // Options whose tokens a corruption fault mutated (global indices).
        let tainted: Vec<u32> = report
            .fault_events
            .iter()
            .filter(|e| e.kind == FaultKind::Corrupt)
            .filter_map(|e| e.opt_idx)
            .collect();

        let kernel =
            report.total_cycles + self.config.region_cost.invocation_overhead(processes / n.max(1));
        let curve_load = self
            .config
            .memory
            .curve_load_cycles(self.market.hazard.len().max(self.market.interest.len()));
        let mut compute_seconds =
            self.config.clock.seconds(kernel + curve_load) * contention_factor(n);
        let slowest_engine_seconds = self.config.clock.seconds(kernel + curve_load);
        let trace = self.config.trace.clone().unwrap_or_default();
        let mut counters = Counters::from_run(&trace, &report);

        // Bounded recovery: re-shard missing options over the survivors
        // (fault-free), or degrade to the CPU engine when none remain.
        let mut options_retried = 0u64;
        let mut degraded = survivors.len() < n;
        let mut attempts = 0usize;
        while attempts < max_attempts {
            let missing: Vec<usize> =
                (0..options.len()).filter(|&i| spreads_by_idx[i].is_none()).collect();
            if missing.is_empty() {
                break;
            }
            attempts += 1;
            options_retried += missing.len() as u64;
            let retry_opts: Vec<CdsOption> = missing.iter().map(|&i| options[i]).collect();
            if survivors.is_empty() {
                // Every FPGA engine is down: fall back to the CPU engine.
                degraded = true;
                let cpu = cds_cpu::CpuCdsEngine::new(&self.market);
                for (&i, spread) in missing.iter().zip(cpu.price_batch(&retry_opts)) {
                    spreads_by_idx[i] = Some(spread);
                    completions.push(CompletedOption {
                        index: i as u32,
                        done_cycle: cycle_base,
                        spread_bps: spread,
                    });
                }
                compute_seconds +=
                    cds_cpu::CpuPerfModel::xeon_8260m().batch_seconds(retry_opts.len() as u64, 24);
                break;
            }
            let retry_chunk = retry_opts.len().div_ceil(survivors.len());
            let mut rg = GraphBuilder::new();
            let mut retry_sinks = Vec::with_capacity(survivors.len());
            for (k, chunk) in retry_opts.chunks(retry_chunk).enumerate() {
                let sink = build_graph_into(
                    &mut rg,
                    &format!("r{attempts}e{k}."),
                    market.clone(),
                    &self.config,
                    chunk,
                    (retry_chunk * k) as u32,
                    None,
                );
                retry_sinks.push(sink);
            }
            let retry_processes = rg.process_count();
            let mut retry_sim = EventSim::new(rg);
            let retry_report = retry_sim.run().map_err(CdsError::Sim)?;
            for sink in retry_sinks {
                for (tok, done_at) in sink.collected() {
                    let orig = missing[tok.opt_idx as usize];
                    spreads_by_idx[orig] = Some(tok.spread_bps);
                    completions.push(CompletedOption {
                        index: orig as u32,
                        done_cycle: cycle_base + done_at,
                        spread_bps: tok.spread_bps,
                    });
                }
            }
            cycle_base += retry_report.total_cycles;
            let retry_kernel = retry_report.total_cycles
                + self.config.region_cost.invocation_overhead(retry_processes / survivors.len());
            compute_seconds +=
                self.config.clock.seconds(retry_kernel) * contention_factor(survivors.len());
            counters.merge(&Counters::from_run(&trace, &retry_report));
        }

        // Result-integrity scrub: guard every priced spread, quarantine
        // tainted options, reprice on the CPU fallback. The journal
        // records scrubbed values, so a resume reproduces clean spreads.
        let mut scrub_report = None;
        if let Some(sp) = scrub {
            let mut priced: Vec<(u32, f64)> = spreads_by_idx
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.map(|v| (i as u32, v)))
                .collect();
            let sr = scrub_spreads(&self.market, options, &mut priced, &tainted, sp)?;
            for &(i, v) in &priced {
                spreads_by_idx[i as usize] = Some(v);
            }
            for c in &mut completions {
                if let Some(Some(v)) = spreads_by_idx.get(c.index as usize) {
                    c.spread_bps = *v;
                }
            }
            scrub_report = Some(sr);
        }

        // Write-ahead journal: cumulative cadence-aligned checkpoints in
        // completion order, emitted even if recovery was exhausted below.
        if let Some((cadence, emit)) = journal.as_mut() {
            let admitted: Vec<u32> = (0..options.len() as u32).collect();
            let fault_seed = plan.map(FaultPlan::seed);
            for checkpoint in checkpoint_stream(
                options.len() as u32,
                *cadence,
                fault_seed,
                None, // batch deployments run no named scenario
                &admitted,
                &[],
                &completions,
            )? {
                emit(&checkpoint);
            }
        }

        let unpriced = spreads_by_idx.iter().filter(|s| s.is_none()).count();
        if unpriced > 0 {
            return Err(CdsError::Exhausted { attempts, unpriced });
        }
        let spreads: Vec<f64> = spreads_by_idx
            .into_iter()
            .map(|s| match s {
                Some(v) => v,
                None => unreachable!("unpriced options returned Exhausted above"),
            })
            .collect();
        let transfer = self.config.pcie.option_batch_seconds(options.len() as u64);
        let total_seconds = compute_seconds + transfer;
        Ok(MultiEngineReport {
            engines: n,
            total_seconds,
            options_per_second: options.len() as f64 / total_seconds,
            slowest_engine_seconds,
            spreads,
            counters,
            faults_injected,
            options_retried,
            options_shed: 0,
            degraded,
            scrub: scrub_report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok<T, E: std::fmt::Display>(r: Result<T, E>) -> T {
        match r {
            Ok(v) => v,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    use cds_quant::cds::CdsPricer;
    use cds_quant::option::{PaymentFrequency, PortfolioGenerator};

    fn market() -> MarketData<f64> {
        MarketData::paper_workload(7)
    }

    #[test]
    fn exactly_five_engines_fit_on_u280() {
        // The paper: "being able to fit five onto the Alveo U280".
        let config = EngineVariant::Vectorised.config();
        let max = MultiEngine::max_engines(&market(), &config, &Device::alveo_u280());
        assert_eq!(max, 5, "expected exactly 5 engines to fit");
    }

    #[test]
    fn six_engines_rejected() {
        match MultiEngine::new(market(), 6) {
            Err(MultiEngineError::DoesNotFit { requested: 6, max: 5 }) => {}
            Err(other) => panic!("expected DoesNotFit(6, 5), got {other:?}"),
            Ok(_) => panic!("six engines unexpectedly fit"),
        }
        assert!(matches!(MultiEngine::new(market(), 0), Err(MultiEngineError::NoEngines)));
    }

    #[test]
    fn spreads_match_reference_across_chunks() {
        let market = market();
        let pricer = CdsPricer::new(market.clone());
        let options = PortfolioGenerator::new(5).portfolio(13); // uneven split
        let multi = ok(MultiEngine::new(market, 3));
        let report = multi.price_batch(&options);
        assert_eq!(report.spreads.len(), 13);
        for (o, s) in options.iter().zip(&report.spreads) {
            let golden = pricer.price(o).spread_bps;
            assert!((s - golden).abs() < 1e-7 * (1.0 + golden.abs()));
        }
    }

    #[test]
    fn scaling_matches_contention_model() {
        // Large enough batch that the per-engine fixed costs (region
        // start, pipeline fill, curve load) amortise, as in the paper's
        // full-set runs.
        let market = market();
        let options = PortfolioGenerator::uniform(250, 5.5, PaymentFrequency::Quarterly, 0.4);
        let r1 = ok(MultiEngine::new(market.clone(), 1)).price_batch(&options);
        let r5 = ok(MultiEngine::new(market.clone(), 5)).price_batch(&options);
        let speedup = r5.options_per_second / r1.options_per_second;
        let model = MultiEngine::model_speedup(5) / MultiEngine::model_speedup(1);
        assert!((speedup - model).abs() / model < 0.10, "speedup {speedup} vs model {model}");
    }

    #[test]
    fn model_speedup_fits_paper_points() {
        // Paper: 53763.86/27675.67 = 1.943 at n=2; 114115.92/27675.67 =
        // 4.124 at n=5. The two contention coefficients are the exact
        // two-point fit, so both must reproduce within 1%.
        let s2 = MultiEngine::model_speedup(2);
        let s5 = MultiEngine::model_speedup(5);
        assert!((s2 - 1.943).abs() / 1.943 < 0.01, "s2 {s2}");
        assert!((s5 - 4.124).abs() / 4.124 < 0.01, "s5 {s5}");
        // Sanity at the untuned points: monotone and below linear.
        assert_eq!(MultiEngine::model_speedup(1), 1.0);
        let s3 = MultiEngine::model_speedup(3);
        let s4 = MultiEngine::model_speedup(4);
        assert!(s2 < s3 && s3 < s4 && s4 < s5);
        assert!(s3 < 3.0 && s4 < 4.0);
    }

    #[test]
    fn single_simulation_deployment_matches_per_engine_model() {
        let market = market();
        let options = PortfolioGenerator::uniform(60, 5.5, PaymentFrequency::Quarterly, 0.4);
        let multi = ok(MultiEngine::new(market, 3));
        let modelled = multi.price_batch(&options);
        let simulated = multi.price_batch_simulated(&options);
        assert_eq!(modelled.spreads, simulated.spreads, "numerics must agree");
        // All three engines run concurrently inside one DES; the makespan
        // must agree with the max-over-engines model within a few percent
        // (overheads are accounted slightly differently).
        let ratio = simulated.options_per_second / modelled.options_per_second;
        assert!((0.90..1.10).contains(&ratio), "simulated/modelled {ratio}");
    }

    #[test]
    fn staggered_schedule_close_to_ideal_but_not_faster() {
        let market = market();
        let options = PortfolioGenerator::uniform(120, 5.5, PaymentFrequency::Quarterly, 0.4);
        let multi = ok(MultiEngine::new(market, 5));
        let ideal = multi.price_batch(&options);
        let staggered = multi.price_batch_staggered(&options);
        assert_eq!(ideal.spreads, staggered.spreads);
        assert!(staggered.options_per_second <= ideal.options_per_second * 1.001);
        // Transfers are a small share: within a few percent of ideal.
        assert!(
            staggered.options_per_second > ideal.options_per_second * 0.90,
            "staggered {} vs ideal {}",
            staggered.options_per_second,
            ideal.options_per_second
        );
    }

    #[test]
    fn engine_death_mid_run_recovers_on_survivors() {
        // The acceptance scenario: the 5-engine Table II deployment with
        // one engine killed mid-run still completes every option, with
        // spreads identical to the fault-free run.
        let market = market();
        let options = PortfolioGenerator::uniform(50, 5.5, PaymentFrequency::Quarterly, 0.4);
        let multi = ok(MultiEngine::new(market, 5));
        let clean = multi.price_batch_simulated(&options);
        let plan = FaultPlan::new(0xC0FFEE).kill_region("e2.", 60_000);
        let report = match multi.price_batch_resilient(&options, Some(&plan), 3) {
            Ok(r) => r,
            Err(e) => panic!("resilient run must recover: {e}"),
        };
        assert_eq!(report.spreads, clean.spreads, "recovered spreads must be identical");
        assert!(report.degraded, "an engine died: the run is degraded");
        assert!(report.options_retried > 0, "the dead engine's chunk must be retried");
        assert!(report.faults_injected > 0);
        assert_eq!(report.options_shed, 0);
        // Recovery costs time: slower than the fault-free deployment.
        assert!(report.total_seconds > clean.total_seconds);
    }

    #[test]
    fn all_engines_dead_degrades_to_cpu() {
        let market = market();
        let pricer = CdsPricer::new(market.clone());
        let options = PortfolioGenerator::uniform(20, 5.5, PaymentFrequency::Quarterly, 0.4);
        let multi = ok(MultiEngine::new(market, 3));
        let mut plan = FaultPlan::new(9);
        for k in 0..3 {
            plan = plan.kill_region(format!("e{k}."), 10_000);
        }
        let report = match multi.price_batch_resilient(&options, Some(&plan), 2) {
            Ok(r) => r,
            Err(e) => panic!("CPU fallback must price everything: {e}"),
        };
        assert!(report.degraded);
        assert_eq!(report.spreads.len(), options.len());
        assert_eq!(report.options_retried, options.len() as u64);
        // The CPU engine is numerically identical to the reference pricer.
        for (o, s) in options.iter().zip(&report.spreads) {
            let golden = pricer.price(o).spread_bps;
            assert!((s - golden).abs() < 1e-9 * (1.0 + golden.abs()), "{s} vs {golden}");
        }
    }

    #[test]
    fn resilient_scrub_restores_corrupted_spreads() {
        // Corrupt one spread token on engine 1's output blatantly and one
        // on engine 0's subtly; the scrubber must quarantine both (guard
        // + taint) and converge to the fault-free spreads.
        use crate::tokens::SpreadTok;
        let market = market();
        let options = PortfolioGenerator::uniform(24, 5.5, PaymentFrequency::Quarterly, 0.4);
        let multi = ok(MultiEngine::new(market, 3));
        let clean = multi.price_batch_simulated(&options);
        let plan = FaultPlan::new(0xBAD)
            .corrupt_nth::<SpreadTok>("e1.spreads", 3, |t| SpreadTok { spread_bps: f64::NAN, ..t })
            .corrupt_nth::<SpreadTok>("e0.spreads", 1, |t| SpreadTok {
                spread_bps: t.spread_bps + 0.25,
                ..t
            });
        let report = match multi.price_batch_resilient_scrubbed(
            &options,
            Some(&plan),
            2,
            &ScrubPolicy { cross_check_every: 0 },
        ) {
            Ok(r) => r,
            Err(e) => panic!("scrubbed run must succeed: {e}"),
        };
        let scrub = match &report.scrub {
            Some(s) => s,
            None => panic!("scrub policy must produce a scrub report"),
        };
        assert_eq!(scrub.options_quarantined, 2, "{:?}", scrub.quarantined);
        assert_eq!(report.spreads.len(), clean.spreads.len());
        for (i, (s, c)) in report.spreads.iter().zip(&clean.spreads).enumerate() {
            assert!((s - c).abs() < 1e-6 * (1.0 + c.abs()), "option {i}: {s} vs {c}");
        }
    }

    #[test]
    fn exhausted_run_checkpoints_and_resumes_bit_identically() {
        // Engine death with zero retries: the run fails with Exhausted,
        // but the write-ahead journal still holds every completion, and
        // the resume finishes the work bit-identically to a clean run.
        use crate::error::CdsError;
        let market = market();
        let options = PortfolioGenerator::uniform(30, 5.5, PaymentFrequency::Quarterly, 0.4);
        let multi = ok(MultiEngine::new(market, 3));
        let clean = multi.price_batch_simulated(&options);

        let plan = FaultPlan::new(7).kill_region("e1.", 40_000);
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let err =
            multi.price_batch_resilient_checkpointed(&options, Some(&plan), 0, None, 4, |c| {
                checkpoints.push(c.clone())
            });
        assert!(matches!(err, Err(CdsError::Exhausted { .. })), "got {err:?}");
        let last = match checkpoints.last() {
            Some(c) => c.clone(),
            None => panic!("failed run must still emit its journal"),
        };
        assert!(!last.is_complete(), "engine death must leave work unfinished");
        assert!(!last.completed.is_empty(), "survivors' completions must be journaled");

        let restored = match Checkpoint::parse(&last.to_text()) {
            Ok(c) => c,
            Err(e) => panic!("checkpoint round trip failed: {e}"),
        };
        let resumed = match multi.resume_batch_resilient(&options, &restored, 2) {
            Ok(r) => r,
            Err(e) => panic!("resume must succeed: {e}"),
        };
        assert!(resumed.degraded);
        assert_eq!(resumed.options_retried as usize, options.len() - last.completed.len());
        assert_eq!(resumed.spreads.len(), clean.spreads.len());
        for (i, (a, b)) in resumed.spreads.iter().zip(&clean.spreads).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "option {i}: resumed {a} vs clean {b}");
        }
    }

    #[test]
    fn resume_from_complete_checkpoint_runs_nothing() {
        let market = market();
        let options = PortfolioGenerator::uniform(10, 5.5, PaymentFrequency::Quarterly, 0.4);
        let multi = ok(MultiEngine::new(market, 2));
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let full = match multi.price_batch_resilient_checkpointed(&options, None, 1, None, 4, |c| {
            checkpoints.push(c.clone())
        }) {
            Ok(r) => r,
            Err(e) => panic!("clean run must succeed: {e}"),
        };
        let last = match checkpoints.last() {
            Some(c) => c.clone(),
            None => panic!("expected checkpoints"),
        };
        assert!(last.is_complete());
        let resumed = match multi.resume_batch_resilient(&options, &last, 1) {
            Ok(r) => r,
            Err(e) => panic!("resume must succeed: {e}"),
        };
        assert!(!resumed.degraded);
        assert_eq!(resumed.options_retried, 0);
        assert_eq!(resumed.total_seconds, 0.0, "nothing left to price");
        for (a, b) in resumed.spreads.iter().zip(&full.spreads) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn resilient_without_faults_matches_simulated() {
        let market = market();
        let options = PortfolioGenerator::new(3).portfolio(24);
        let multi = ok(MultiEngine::new(market, 4));
        let simulated = multi.price_batch_simulated(&options);
        let resilient = match multi.price_batch_resilient(&options, None, 2) {
            Ok(r) => r,
            Err(e) => panic!("fault-free resilient run must succeed: {e}"),
        };
        assert_eq!(resilient.spreads, simulated.spreads);
        assert!(!resilient.degraded);
        assert_eq!(resilient.options_retried, 0);
        assert_eq!(resilient.faults_injected, 0);
    }

    #[test]
    fn zero_attempts_with_death_is_exhausted() {
        use crate::error::CdsError;
        let market = market();
        let options = PortfolioGenerator::uniform(20, 5.5, PaymentFrequency::Quarterly, 0.4);
        let multi = ok(MultiEngine::new(market, 2));
        let plan = FaultPlan::new(1).kill_region("e1.", 5_000);
        match multi.price_batch_resilient(&options, Some(&plan), 0) {
            Err(CdsError::Exhausted { attempts: 0, unpriced }) => assert!(unpriced > 0),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn resilient_rejects_invalid_option_at_ingress() {
        use crate::error::CdsError;
        let market = market();
        let mut options = PortfolioGenerator::uniform(4, 5.5, PaymentFrequency::Quarterly, 0.4);
        options[1].recovery_rate = 1.5;
        let multi = ok(MultiEngine::new(market, 2));
        match multi.price_batch_resilient(&options, None, 1) {
            Err(CdsError::Quant(_)) => {}
            other => panic!("expected Quant error, got {other:?}"),
        }
    }

    #[test]
    fn empty_batch() {
        let multi = ok(MultiEngine::new(market(), 2));
        let r = multi.price_batch(&[]);
        assert!(r.spreads.is_empty());
        assert_eq!(r.options_per_second, 0.0);
    }

    #[test]
    fn resource_estimate_scales_with_vector_factor() {
        let v1 = {
            let mut c = EngineVariant::InterOption.config();
            c.vector_factor = 1;
            engine_resource_usage(&c, 1024)
        };
        let v6 = engine_resource_usage(&EngineVariant::Vectorised.config(), 1024);
        assert!(v6.dsps > 3 * v1.dsps);
        assert!(v6.luts > 2 * v1.luts);
        assert_eq!(v6.uram, v1.uram, "URAM copies are per function, not per replica");
    }
}
