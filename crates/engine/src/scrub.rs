//! Result-integrity scrubber: guard, quarantine and reprice.
//!
//! The dataflow engine's spread outputs pass through three independent
//! defences before they are reported:
//!
//! 1. **Invariant guards** ([`cds_quant::invariant`]) — every spread must
//!    be finite, non-negative and inside the recovery-adjusted hazard
//!    envelope of its own option. A violation is not a plausible pricing
//!    output; it is corruption.
//! 2. **Taint tracking** — corruption faults recorded by the dataflow
//!    simulator carry the identity of the option whose token they
//!    mutated ([`dataflow_sim::fault::FaultEvent`]), so even a *subtle*
//!    corruption that stays inside the envelope is quarantined.
//! 3. **Sampled cross-checks** — every `k`-th output is re-priced on the
//!    CPU reference path and compared, catching systematic numerical
//!    drift that neither of the above can see.
//!
//! Quarantined options are **repriced on the CPU fallback engine**
//! ([`cds_cpu::CpuCdsEngine`]) — the same independent implementation the
//! multi-engine failover uses — and the repriced value replaces the
//! corrupt one, so a chaos run with corruption faults converges to the
//! fault-free spreads.

use crate::error::CdsError;
use cds_cpu::CpuCdsEngine;
use cds_quant::invariant::{check_result, check_spread_bps, spread_envelope_bps};
use cds_quant::option::{CdsOption, MarketData};

/// Relative tolerance of the sampled CPU cross-check. Both the dataflow
/// engine and the CPU engine agree with the reference pricer within
/// `1e-7·(1+s)`, so an honest pair differs by at most twice that.
pub const CROSS_CHECK_REL_TOL: f64 = 1e-6;

/// Configuration of the scrubber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubPolicy {
    /// Cross-check every `k`-th completed option against the CPU
    /// reference path even when every guard passes (`0` disables the
    /// sampled cross-check; guards and taint tracking still run).
    pub cross_check_every: usize,
}

impl Default for ScrubPolicy {
    fn default() -> Self {
        ScrubPolicy { cross_check_every: 16 }
    }
}

/// One quarantined option: why it was rejected and what replaced it.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineRecord {
    /// Original index of the quarantined option.
    pub option_index: u32,
    /// Human-readable reason (guard violation, taint, or cross-check).
    pub reason: String,
    /// The spread the engine produced.
    pub engine_bps: f64,
    /// The CPU-repriced spread that replaced it.
    pub repriced_bps: f64,
}

/// Outcome of one scrub pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScrubReport {
    /// Options whose spreads were guarded.
    pub options_checked: u64,
    /// Options re-priced on the CPU path by the sampled cross-check.
    pub cross_checked: u64,
    /// Options quarantined and repriced (`quarantined.len()`).
    pub options_quarantined: u64,
    /// Per-option quarantine details.
    pub quarantined: Vec<QuarantineRecord>,
}

impl ScrubReport {
    /// Original indices of the quarantined options, ascending.
    #[must_use]
    pub fn quarantined_indices(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.quarantined.iter().map(|q| q.option_index).collect();
        v.sort_unstable();
        v
    }
}

/// Scrub a set of priced options in place.
///
/// `priced` holds `(original option index, spread_bps)` pairs; `tainted`
/// lists original indices named by corruption fault events. Each entry is
/// guarded against its option's invariants, quarantined if tainted, and
/// sampled for a CPU cross-check; quarantined entries are overwritten
/// with the CPU reprice.
pub fn scrub_spreads(
    market: &MarketData<f64>,
    options: &[CdsOption],
    priced: &mut [(u32, f64)],
    tainted: &[u32],
    policy: &ScrubPolicy,
) -> Result<ScrubReport, CdsError> {
    let cpu = CpuCdsEngine::new(market);
    let mut report = ScrubReport::default();
    for (slot, entry) in priced.iter_mut().enumerate() {
        let (idx, spread) = *entry;
        let option = options
            .get(idx as usize)
            .ok_or(CdsError::Config { reason: "scrubbed option index out of range" })?;
        report.options_checked += 1;

        let envelope = spread_envelope_bps(market, option);
        let mut reason: Option<String> = None;
        if let Err(violation) = check_spread_bps(spread, envelope) {
            reason = Some(violation.to_string());
        } else if tainted.contains(&idx) {
            reason = Some("corruption fault recorded on this option's tokens".to_string());
        }

        let sampled = policy.cross_check_every > 0 && slot % policy.cross_check_every == 0;
        if reason.is_none() && !sampled {
            continue;
        }

        // CPU reprice: both the cross-check reference and the fallback
        // value. Validate it against its own legs before trusting it.
        let repriced = cpu.price(option);
        if check_result(&repriced, option.recovery_rate).is_err() {
            return Err(CdsError::Config { reason: "CPU reprice failed its own invariants" });
        }
        if reason.is_none() {
            report.cross_checked += 1;
            let tol = CROSS_CHECK_REL_TOL * (1.0 + repriced.spread_bps.abs());
            if (spread - repriced.spread_bps).abs() > tol {
                reason = Some(format!(
                    "cross-check mismatch: engine {spread} vs cpu {} bps",
                    repriced.spread_bps
                ));
            }
        }
        if let Some(reason) = reason {
            entry.1 = repriced.spread_bps;
            report.quarantined.push(QuarantineRecord {
                option_index: idx,
                reason,
                engine_bps: spread,
                repriced_bps: repriced.spread_bps,
            });
        }
    }
    report.options_quarantined = report.quarantined.len() as u64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_quant::cds::CdsPricer;
    use cds_quant::option::{PaymentFrequency, PortfolioGenerator};

    fn ok<T>(r: Result<T, CdsError>) -> T {
        match r {
            Ok(v) => v,
            Err(e) => panic!("unexpected scrub error: {e}"),
        }
    }

    fn workload(n: usize) -> (MarketData<f64>, Vec<CdsOption>, Vec<(u32, f64)>) {
        let market = MarketData::paper_workload(42);
        let options = PortfolioGenerator::uniform(n, 5.5, PaymentFrequency::Quarterly, 0.40);
        let pricer = CdsPricer::new(market.clone());
        let priced = options
            .iter()
            .enumerate()
            .map(|(i, o)| (i as u32, pricer.price(o).spread_bps))
            .collect();
        (market, options, priced)
    }

    #[test]
    fn clean_run_passes_unquarantined() {
        let (market, options, mut priced) = workload(16);
        let before = priced.clone();
        let report =
            ok(scrub_spreads(&market, &options, &mut priced, &[], &ScrubPolicy::default()));
        assert_eq!(report.options_checked, 16);
        assert_eq!(report.options_quarantined, 0);
        assert!(report.cross_checked >= 1, "default policy samples slot 0");
        assert_eq!(priced, before, "clean spreads must pass through untouched");
    }

    #[test]
    fn guard_violation_is_quarantined_and_repriced() {
        let (market, options, mut priced) = workload(8);
        let golden = priced[3].1;
        priced[3].1 = -golden; // Negative spread: impossible output.
        let report =
            ok(scrub_spreads(&market, &options, &mut priced, &[], &ScrubPolicy::default()));
        assert_eq!(report.quarantined_indices(), vec![3]);
        assert!(report.quarantined[0].reason.contains("negative"));
        assert!((priced[3].1 - golden).abs() < 1e-6 * (1.0 + golden), "repriced to golden");
    }

    #[test]
    fn tainted_option_is_repriced_even_when_plausible() {
        let (market, options, mut priced) = workload(8);
        let golden = priced[5].1;
        priced[5].1 = golden + 0.5; // Inside the envelope: guards can't see it.
        let no_taint = ok(scrub_spreads(
            &market,
            &options,
            &mut priced.clone(),
            &[],
            &ScrubPolicy { cross_check_every: 0 },
        ));
        assert_eq!(no_taint.options_quarantined, 0, "subtle corruption evades the guards");
        let report = ok(scrub_spreads(
            &market,
            &options,
            &mut priced,
            &[5],
            &ScrubPolicy { cross_check_every: 0 },
        ));
        assert_eq!(report.quarantined_indices(), vec![5]);
        assert!((priced[5].1 - golden).abs() < 1e-6 * (1.0 + golden));
    }

    #[test]
    fn sampled_cross_check_catches_subtle_corruption() {
        let (market, options, mut priced) = workload(4);
        let golden = priced[0].1;
        priced[0].1 = golden + 0.5;
        let report = ok(scrub_spreads(
            &market,
            &options,
            &mut priced,
            &[],
            &ScrubPolicy { cross_check_every: 1 },
        ));
        assert_eq!(report.quarantined_indices(), vec![0]);
        assert!(report.quarantined[0].reason.contains("cross-check"));
        assert_eq!(report.cross_checked, 4, "every slot is sampled at cadence 1");
    }

    #[test]
    fn out_of_range_index_is_a_typed_error() {
        let (market, options, _) = workload(2);
        let mut priced = vec![(9u32, 100.0f64)];
        let err = scrub_spreads(&market, &options, &mut priced, &[], &ScrubPolicy::default());
        assert!(matches!(err, Err(CdsError::Config { .. })), "got {err:?}");
    }
}
