//! [`PriceRoute`] — a uniform enumeration of every compute path that can
//! turn a batch of options into spreads.
//!
//! The repository has grown five ways to price a batch (the four Table-I
//! engine variants, the multi-engine deployment in three simulation
//! fidelities, the streaming ingress, and the four CPU engines), plus
//! the robustness layers wrapped around them (resilient re-sharding,
//! result scrubbing, write-ahead checkpoint/resume). Every one of them
//! must produce the same spreads, which means every one of them must be
//! *enumerable* by correctness tooling. `PriceRoute` names each path and
//! exposes a single fallible [`PriceRoute::price`] so a differential
//! fuzzer — `crates/conformance` — can drive all of them through one
//! loop instead of hand-writing a call site per path.

use crate::checkpoint::Checkpoint;
use crate::config::EngineVariant;
use crate::error::CdsError;
use crate::multi::MultiEngine;
use crate::retry::RetryPolicy;
use crate::scrub::ScrubPolicy;
use crate::streaming::{run_streaming_checkpointed, run_streaming_with, StreamingPolicy};
use crate::FpgaCdsEngine;
use cds_cpu::{price_batch_soa, price_parallel, CpuCdsEngine};
use cds_quant::option::{CdsOption, MarketData};
use dataflow_sim::fault::FaultPlan;
use dataflow_sim::Cycle;
use std::rc::Rc;

/// Engines deployed by the multi-engine routes: the paper's full U280
/// complement, so contention and sharding paths are exercised.
const MULTI_ENGINES: usize = 5;

/// Arrival cadence of the streaming routes, in kernel cycles — fast
/// enough to keep the region busy, slow enough that nothing queues
/// unboundedly without admission control.
const STREAM_ARRIVAL_STEP: Cycle = 30_000;

/// Checkpoint cadence (completed options) of the checkpoint/resume
/// routes; small so even short conformance batches cross several
/// checkpoint boundaries.
const RESUME_CADENCE: u32 = 3;

/// Cycle at which the resilient routes' fault plan kills engine `e1.`,
/// forcing the re-shard/recovery machinery to actually run.
const KILL_CYCLE: Cycle = 40_000;

/// One end-to-end path from a batch of options to a vector of spreads.
///
/// [`PriceRoute::ALL`] enumerates every path; [`PriceRoute::price`]
/// executes one. All routes are deterministic, validate their inputs,
/// and return spreads in original option order — so for any two routes
/// the outputs are directly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriceRoute {
    /// A single FPGA engine of the named Table-I variant.
    Variant(EngineVariant),
    /// Five engines, analytic contention model (the Table-II rows).
    MultiModelled,
    /// Five engines instantiated concurrently in one discrete-event
    /// simulation.
    MultiSimulated,
    /// Five engines with staggered batch hand-off.
    MultiStaggered,
    /// Resilient deployment that loses engine `e1.` mid-run and
    /// re-shards its work across the survivors.
    ResilientEngineLoss,
    /// Resilient deployment with the result-integrity scrubber enabled
    /// (guards + sampled CPU cross-check).
    ResilientScrubbed,
    /// Checkpointed run interrupted at a mid-run checkpoint, then
    /// resumed from the journal — the merged spreads are the output.
    CheckpointResume,
    /// Streaming ingress with evenly spaced arrivals.
    Streaming,
    /// Streaming ingress with the scrubber enabled on completion.
    StreamingScrubbed,
    /// Streaming run journalled at `RESUME_CADENCE` (every 3 chunks),
    /// cut at a mid-run
    /// checkpoint and resumed.
    StreamingResume,
    /// The single-threaded CPU reference engine (per-option scalar loop).
    CpuScalar,
    /// The zero-allocation lane-parallel CPU batch kernel (shared
    /// schedule grids + 8-wide stub lanes), bit-identical to the scalar
    /// reference.
    CpuLanes,
    /// The chunked multi-threaded CPU engine (three threads).
    CpuParallel,
    /// The structure-of-arrays fused-lane CPU engine.
    CpuSoa,
}

impl PriceRoute {
    /// Every route, in a stable order: the four engine variants first,
    /// then the multi-engine deployments, the robustness layers, the
    /// streaming paths, and the CPU engines.
    pub const ALL: [PriceRoute; 17] = [
        PriceRoute::Variant(EngineVariant::XilinxBaseline),
        PriceRoute::Variant(EngineVariant::OptimisedDataflow),
        PriceRoute::Variant(EngineVariant::InterOption),
        PriceRoute::Variant(EngineVariant::Vectorised),
        PriceRoute::MultiModelled,
        PriceRoute::MultiSimulated,
        PriceRoute::MultiStaggered,
        PriceRoute::ResilientEngineLoss,
        PriceRoute::ResilientScrubbed,
        PriceRoute::CheckpointResume,
        PriceRoute::Streaming,
        PriceRoute::StreamingScrubbed,
        PriceRoute::StreamingResume,
        PriceRoute::CpuScalar,
        PriceRoute::CpuLanes,
        PriceRoute::CpuParallel,
        PriceRoute::CpuSoa,
    ];

    /// Stable machine-readable label (used in reports and corpus files).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PriceRoute::Variant(EngineVariant::XilinxBaseline) => "fpga/xilinx-baseline",
            PriceRoute::Variant(EngineVariant::OptimisedDataflow) => "fpga/optimised-dataflow",
            PriceRoute::Variant(EngineVariant::InterOption) => "fpga/inter-option",
            PriceRoute::Variant(EngineVariant::Vectorised) => "fpga/vectorised",
            PriceRoute::MultiModelled => "multi/modelled",
            PriceRoute::MultiSimulated => "multi/simulated",
            PriceRoute::MultiStaggered => "multi/staggered",
            PriceRoute::ResilientEngineLoss => "resilient/engine-loss",
            PriceRoute::ResilientScrubbed => "resilient/scrubbed",
            PriceRoute::CheckpointResume => "resilient/checkpoint-resume",
            PriceRoute::Streaming => "streaming/plain",
            PriceRoute::StreamingScrubbed => "streaming/scrubbed",
            PriceRoute::StreamingResume => "streaming/checkpoint-resume",
            PriceRoute::CpuScalar => "cpu/scalar",
            PriceRoute::CpuLanes => "cpu/lanes",
            PriceRoute::CpuParallel => "cpu/parallel",
            PriceRoute::CpuSoa => "cpu/soa",
        }
    }

    /// Find a route by its [`PriceRoute::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<PriceRoute> {
        PriceRoute::ALL.into_iter().find(|r| r.label() == label)
    }

    /// Price `options` under `market` through this route.
    ///
    /// Returns one spread per option, in input order. Every route
    /// re-validates the options at its own ingress; routes whose
    /// underlying path can shed or lose work are configured here so that
    /// nothing is shed (conformance requires a spread for every option)
    /// and report an error if work is lost anyway.
    pub fn price(
        &self,
        market: &MarketData<f64>,
        options: &[CdsOption],
    ) -> Result<Vec<f64>, CdsError> {
        for o in options {
            CdsOption::validated(o.maturity, o.frequency, o.recovery_rate)?;
        }
        // Degenerate empty batch: every route agrees on the empty answer
        // rather than exercising per-path "no work" edge behaviour.
        if options.is_empty() {
            return Ok(Vec::new());
        }
        match self {
            PriceRoute::Variant(variant) => {
                let engine = FpgaCdsEngine::new(market.clone(), variant.config());
                Ok(engine.price_batch(options).spreads)
            }
            PriceRoute::MultiModelled => Ok(self.multi(market)?.price_batch(options).spreads),
            PriceRoute::MultiSimulated => {
                Ok(self.multi(market)?.price_batch_simulated(options).spreads)
            }
            PriceRoute::MultiStaggered => {
                Ok(self.multi(market)?.price_batch_staggered(options).spreads)
            }
            PriceRoute::ResilientEngineLoss => {
                let plan = FaultPlan::new(1).kill_region("e1.", KILL_CYCLE);
                let report = self.multi(market)?.price_batch_resilient_with(
                    options,
                    Some(&plan),
                    &RetryPolicy::batch_failover(),
                )?;
                Self::complete_spreads(report.spreads, options.len())
            }
            PriceRoute::ResilientScrubbed => {
                let report = self.multi(market)?.price_batch_resilient_scrubbed_with(
                    options,
                    None,
                    &RetryPolicy::batch_failover(),
                    &ScrubPolicy::default(),
                )?;
                Self::complete_spreads(report.spreads, options.len())
            }
            PriceRoute::CheckpointResume => {
                let multi = self.multi(market)?;
                let mut checkpoints: Vec<Checkpoint> = Vec::new();
                multi.price_batch_resilient_checkpointed(
                    options,
                    None,
                    RetryPolicy::batch_failover().max_attempts,
                    None,
                    RESUME_CADENCE,
                    |c| checkpoints.push(c.clone()),
                )?;
                // Resume from a mid-run checkpoint (not the terminal
                // commit), so the merge path genuinely runs.
                let cut = checkpoints
                    .get(checkpoints.len().saturating_sub(2) / 2)
                    .or_else(|| checkpoints.first())
                    .ok_or(CdsError::Config { reason: "checkpointed run emitted no journal" })?;
                let report = multi.resume_batch_resilient(
                    options,
                    cut,
                    RetryPolicy::batch_failover().max_attempts,
                )?;
                Self::complete_spreads(report.spreads, options.len())
            }
            PriceRoute::Streaming | PriceRoute::StreamingScrubbed => {
                let policy = match self {
                    PriceRoute::StreamingScrubbed => StreamingPolicy {
                        scrub: Some(ScrubPolicy::default()),
                        ..StreamingPolicy::default()
                    },
                    _ => StreamingPolicy::default(),
                };
                let config = EngineVariant::Vectorised.config();
                let arrivals = Self::arrivals(options.len());
                let report = run_streaming_with(
                    Rc::new(market.clone()),
                    &config,
                    options,
                    &arrivals,
                    &policy,
                )?;
                Self::complete_spreads(report.spreads, options.len())
            }
            PriceRoute::StreamingResume => {
                let config = EngineVariant::Vectorised.config();
                let arrivals = Self::arrivals(options.len());
                let policy = StreamingPolicy::default();
                let market = Rc::new(market.clone());
                let mut checkpoints: Vec<Checkpoint> = Vec::new();
                run_streaming_checkpointed(
                    market.clone(),
                    &config,
                    options,
                    &arrivals,
                    &policy,
                    RESUME_CADENCE,
                    |c| checkpoints.push(c.clone()),
                )?;
                let cut = checkpoints
                    .get(checkpoints.len().saturating_sub(2) / 2)
                    .or_else(|| checkpoints.first())
                    .ok_or(CdsError::Config { reason: "streaming run emitted no journal" })?;
                let report = crate::streaming::resume_streaming_from(
                    market, &config, options, &arrivals, &policy, cut,
                )?;
                Self::complete_spreads(report.spreads, options.len())
            }
            PriceRoute::CpuScalar => Ok(CpuCdsEngine::new(market).price_batch_scalar(options)),
            PriceRoute::CpuLanes => Ok(CpuCdsEngine::new(market).price_batch(options)),
            PriceRoute::CpuParallel => Ok(price_parallel(&CpuCdsEngine::new(market), options, 3)),
            PriceRoute::CpuSoa => Ok(price_batch_soa(&CpuCdsEngine::new(market), options)),
        }
    }

    /// The shared multi-engine deployment of the `multi/*` and
    /// `resilient/*` routes.
    fn multi(&self, market: &MarketData<f64>) -> Result<MultiEngine, CdsError> {
        MultiEngine::new(market.clone(), MULTI_ENGINES)
            .map_err(|_| CdsError::Config { reason: "multi-engine deployment does not fit" })
    }

    /// Evenly spaced arrival cycles for the streaming routes.
    fn arrivals(n: usize) -> Vec<Cycle> {
        (0..n as Cycle).map(|i| i * STREAM_ARRIVAL_STEP).collect()
    }

    /// A conformance route must price *everything*: a short spread
    /// vector means the underlying path shed or lost work, which is a
    /// route failure, not a comparison to make.
    fn complete_spreads(spreads: Vec<f64>, expected: usize) -> Result<Vec<f64>, CdsError> {
        if spreads.len() == expected {
            Ok(spreads)
        } else {
            Err(CdsError::Config { reason: "route lost options (incomplete spread vector)" })
        }
    }
}

impl std::fmt::Display for PriceRoute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_quant::cds::CdsPricer;
    use cds_quant::option::{PaymentFrequency, PortfolioGenerator};
    use cds_quant::ulp::UlpComparator;

    fn ok<T>(r: Result<T, CdsError>) -> T {
        match r {
            Ok(v) => v,
            Err(e) => panic!("route failed: {e}"),
        }
    }

    #[test]
    fn labels_are_unique_and_round_trip() {
        let mut seen = std::collections::BTreeSet::new();
        for route in PriceRoute::ALL {
            assert!(seen.insert(route.label()), "duplicate label {}", route.label());
            assert_eq!(PriceRoute::from_label(route.label()), Some(route));
        }
        assert_eq!(PriceRoute::from_label("no-such-route"), None);
    }

    #[test]
    fn every_route_prices_a_small_batch_identically() {
        let market = MarketData::paper_workload(11);
        let options = PortfolioGenerator::new(3).portfolio(7);
        let pricer = CdsPricer::new(market.clone());
        let golden: Vec<f64> = options.iter().map(|o| pricer.price(o).spread_bps).collect();
        for route in PriceRoute::ALL {
            let spreads = ok(route.price(&market, &options));
            assert_eq!(spreads.len(), golden.len(), "{route}");
            if let Err((i, m)) = UlpComparator::ENGINE_F64.check_all(&spreads, &golden) {
                panic!("{route}[{i}]: {m}");
            }
        }
    }

    #[test]
    fn routes_reject_invalid_options() {
        let market = MarketData::flat(0.02, 0.015, 64);
        let bad =
            CdsOption { maturity: -1.0, ..CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.4) };
        for route in [PriceRoute::CpuScalar, PriceRoute::Variant(EngineVariant::Vectorised)] {
            assert!(route.price(&market, &[bad]).is_err(), "{route}");
        }
    }

    #[test]
    fn empty_batch_is_empty_everywhere() {
        let market = MarketData::flat(0.02, 0.015, 64);
        for route in [
            PriceRoute::CpuScalar,
            PriceRoute::CpuLanes,
            PriceRoute::CpuSoa,
            PriceRoute::Variant(EngineVariant::XilinxBaseline),
            PriceRoute::MultiModelled,
        ] {
            assert!(ok(route.price(&market, &[])).is_empty(), "{route}");
        }
    }
}
