//! Host-side batch scheduling: overlapping PCIe transfers with kernel
//! compute.
//!
//! The paper includes the transfer overhead in every figure but processes
//! one monolithic batch; a production deployment splits a large book into
//! sub-batches and **double-buffers** — while batch *i* computes, batch
//! *i+1*'s inputs stream in and batch *i−1*'s results stream out. This
//! module models both schedules over the engine's timing reports, giving
//! the classic software-pipelining makespan and the break-even sub-batch
//! size.

use crate::config::EngineConfig;
use crate::FpgaCdsEngine;
use cds_quant::option::CdsOption;

/// Timing of one sub-batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchTiming {
    /// Host→card input transfer seconds.
    pub in_s: f64,
    /// Kernel compute seconds.
    pub compute_s: f64,
    /// Card→host result transfer seconds.
    pub out_s: f64,
}

/// Makespan of a serial schedule: each batch transfers in, computes, and
/// transfers out before the next begins.
pub fn serial_makespan(batches: &[BatchTiming]) -> f64 {
    batches.iter().map(|b| b.in_s + b.compute_s + b.out_s).sum()
}

/// Makespan of a double-buffered schedule: transfers overlap compute of
/// the neighbouring batches (one transfer engine each way, one compute
/// engine — the classic three-stage software pipeline).
pub fn pipelined_makespan(batches: &[BatchTiming]) -> f64 {
    // Stage completion times: t_in[i] ≥ t_in[i-1] + in_i (transfers
    // serialise on the DMA engine); compute starts when its input is in
    // and the previous compute finished; output likewise.
    let mut in_done = 0.0f64;
    let mut compute_done = 0.0f64;
    let mut out_done = 0.0f64;
    for b in batches {
        in_done += b.in_s;
        compute_done = in_done.max(compute_done) + b.compute_s;
        out_done = compute_done.max(out_done) + b.out_s;
    }
    out_done
}

/// Split a book into `n_batches` and time each on the engine, returning
/// `(serial, pipelined)` makespans in seconds.
pub fn schedule_book(
    engine: &FpgaCdsEngine,
    config: &EngineConfig,
    book: &[CdsOption],
    n_batches: usize,
) -> (f64, f64) {
    assert!(n_batches >= 1);
    let chunk = book.len().div_ceil(n_batches).max(1);
    let timings: Vec<BatchTiming> = book
        .chunks(chunk)
        .map(|batch| {
            let report = engine.price_batch(batch);
            BatchTiming {
                in_s: config.pcie.transfer_seconds(batch.len() as u64 * 24),
                compute_s: report.kernel_seconds,
                out_s: config.pcie.transfer_seconds(batch.len() as u64 * 8),
            }
        })
        .collect();
    (serial_makespan(&timings), pipelined_makespan(&timings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineVariant;
    use cds_quant::option::{MarketData, PaymentFrequency, PortfolioGenerator};

    fn b(in_s: f64, compute_s: f64, out_s: f64) -> BatchTiming {
        BatchTiming { in_s, compute_s, out_s }
    }

    #[test]
    fn single_batch_schedules_agree() {
        let batches = [b(1.0, 5.0, 0.5)];
        assert_eq!(serial_makespan(&batches), 6.5);
        assert_eq!(pipelined_makespan(&batches), 6.5);
    }

    #[test]
    fn compute_bound_pipeline_hides_transfers() {
        // Transfers much shorter than compute: makespan → first input +
        // Σ compute + last output.
        let batches = vec![b(0.1, 2.0, 0.1); 10];
        let serial = serial_makespan(&batches);
        let pipe = pipelined_makespan(&batches);
        assert!((serial - 22.0).abs() < 1e-12);
        assert!((pipe - (0.1 + 20.0 + 0.1)).abs() < 1e-9, "pipe {pipe}");
    }

    #[test]
    fn transfer_bound_pipeline_limited_by_dma() {
        let batches = vec![b(3.0, 0.5, 0.1); 4];
        let pipe = pipelined_makespan(&batches);
        // Inputs serialise: 12s dominates.
        assert!((12.0..13.0).contains(&pipe), "pipe {pipe}");
    }

    #[test]
    fn pipelining_never_slower() {
        let batches = [b(0.5, 1.0, 0.25), b(0.1, 3.0, 0.9), b(2.0, 0.2, 0.2)];
        assert!(pipelined_makespan(&batches) <= serial_makespan(&batches) + 1e-12);
    }

    #[test]
    fn engine_book_schedule_shows_overlap_gain() {
        let market = MarketData::paper_workload(42);
        let config = EngineVariant::Vectorised.config();
        let engine = FpgaCdsEngine::new(market, config.clone());
        let book = PortfolioGenerator::uniform(96, 5.5, PaymentFrequency::Quarterly, 0.4);
        let (serial, pipelined) = schedule_book(&engine, &config, &book, 4);
        assert!(pipelined < serial, "pipelined {pipelined} vs serial {serial}");
        // Compute-dominated workload: overlap gain is real but modest.
        assert!(pipelined > serial * 0.8);
    }
}
