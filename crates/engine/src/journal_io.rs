//! Storage I/O abstraction, seeded storage-fault injection, and
//! crash-state enumeration for the journal/checkpoint layer.
//!
//! Every durability proof in the engine and server previously assumed a
//! perfect filesystem: appends always land, `rename` is atomic *and*
//! durable, and `fsync` never lies. This module makes the storage
//! substrate explicit so those assumptions become testable:
//!
//! - [`JournalIo`] — the small trait (create/append/fsync/close/
//!   rename/dir-sync) every journal and checkpoint write path goes
//!   through,
//! - [`OsJournalIo`] — the real filesystem,
//! - [`RecordingJournalIo`] — a pass-through that records the
//!   *effective* operation trace ([`JournalOp`]) for later crash-state
//!   enumeration and sync-ordering assertions,
//! - [`FaultyJournalIo`] + [`StorageFaultPlan`] — seeded, one-shot
//!   fault injection (ENOSPC, EIO, short writes, fsync-that-lies) in
//!   the style of `dataflow_sim::fault::FaultPlan`, with attributable
//!   [`StorageFaultEvent`]s and [`StorageFaultCounters`],
//! - [`enumerate_crash_states`] — the power-loss simulator: for a
//!   recorded trace it enumerates every reachable post-crash
//!   filesystem image (unsynced-write prefixes, torn tail blocks at
//!   configurable granularity, rename-before-backing-data reordering)
//!   as [`CrashState`]s that can be materialised into a scratch
//!   directory and driven through a resume path,
//! - [`sync_ordering_held`] — the write-discipline check (data fsync
//!   before rename, parent-dir sync after rename) that makes the
//!   fsync-ordering fix visible to the `storage-chaos` gate.
//!
//! ## Durability model
//!
//! The enumerator replays a trace against a simulated filesystem with a
//! *durable* image plus an ordered *pending* queue:
//!
//! | op | effect |
//! |---|---|
//! | `Create` | durable immediately (empty file); truncates pending appends |
//! | `Append` | pending |
//! | `Fsync(f)` | flushes `f`'s pending appends, in order |
//! | `Rename` | pending |
//! | `SyncDir` | flushes pending renames (pending appends follow the new name) |
//!
//! A crash at any point may persist the durable image plus any
//! *prefix* of the pending queue; additionally the last flushed append
//! may be torn at block granularity, and a pending rename may land
//! *without* the pending appends that precede it (metadata journaled
//! before data — the classic rename-before-backing-data reordering).
//! `Create` being durable immediately is a deliberate simplification
//! (ext4-ordered-style metadata journaling); it is conservative for
//! every bug class this module hunts, all of which live in file
//! *content* and rename/data ordering.

use dataflow_sim::fault::splitmix64;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Opaque handle to a file opened through a [`JournalIo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(u64);

/// The storage operations the journal/checkpoint layer is allowed to
/// perform. Everything is `&self` (interior mutability) so one
/// implementation can be shared across the writer and its observers.
pub trait JournalIo: Send + Sync {
    /// Create (truncating) a file for appending.
    fn create(&self, path: &Path) -> std::io::Result<FileId>;
    /// Append bytes to an open file. On error a *prefix* of `bytes` may
    /// already have reached the file (short-write semantics).
    fn append(&self, file: FileId, bytes: &[u8]) -> std::io::Result<()>;
    /// Flush an open file's data to durable storage.
    fn fsync(&self, file: FileId) -> std::io::Result<()>;
    /// Close an open file handle.
    fn close(&self, file: FileId) -> std::io::Result<()>;
    /// Atomically replace `to` with `from`.
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;
    /// Flush a directory's entries (the rename) to durable storage.
    fn sync_dir(&self, dir: &Path) -> std::io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Default)]
pub struct OsJournalIo {
    files: Mutex<HashMap<FileId, File>>,
    next: AtomicU64,
}

impl OsJournalIo {
    /// A fresh handle table over the real filesystem.
    pub fn new() -> OsJournalIo {
        OsJournalIo::default()
    }

    fn with_file<R>(
        &self,
        file: FileId,
        f: impl FnOnce(&mut File) -> std::io::Result<R>,
    ) -> std::io::Result<R> {
        let mut files = lock_recover(&self.files);
        match files.get_mut(&file) {
            Some(handle) => f(handle),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("unknown journal file handle {file:?}"),
            )),
        }
    }
}

impl JournalIo for OsJournalIo {
    fn create(&self, path: &Path) -> std::io::Result<FileId> {
        let file = OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
        let id = FileId(self.next.fetch_add(1, Ordering::Relaxed));
        lock_recover(&self.files).insert(id, file);
        Ok(id)
    }

    fn append(&self, file: FileId, bytes: &[u8]) -> std::io::Result<()> {
        self.with_file(file, |f| f.write_all(bytes))
    }

    fn fsync(&self, file: FileId) -> std::io::Result<()> {
        self.with_file(file, |f| f.sync_all())
    }

    fn close(&self, file: FileId) -> std::io::Result<()> {
        lock_recover(&self.files).remove(&file);
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        File::open(dir)?.sync_all()
    }
}

/// One effective storage operation, as recorded by
/// [`RecordingJournalIo`]. `close` is not recorded — it has no
/// durability effect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalOp {
    /// A file was created (truncated) at `path`.
    Create {
        /// The created file's path.
        path: PathBuf,
    },
    /// Bytes were appended to the file at `path`.
    Append {
        /// The appended file's path (at append time).
        path: PathBuf,
        /// The appended bytes.
        bytes: Vec<u8>,
    },
    /// The file at `path` was fsynced.
    Fsync {
        /// The synced file's path.
        path: PathBuf,
    },
    /// `from` was renamed over `to`.
    Rename {
        /// Source path.
        from: PathBuf,
        /// Destination path.
        to: PathBuf,
    },
    /// The directory `dir` was fsynced.
    SyncDir {
        /// The synced directory.
        dir: PathBuf,
    },
}

impl fmt::Display for JournalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalOp::Create { path } => write!(f, "create {}", path.display()),
            JournalOp::Append { path, bytes } => {
                write!(f, "append {} ({} bytes)", path.display(), bytes.len())
            }
            JournalOp::Fsync { path } => write!(f, "fsync {}", path.display()),
            JournalOp::Rename { from, to } => {
                write!(f, "rename {} -> {}", from.display(), to.display())
            }
            JournalOp::SyncDir { dir } => write!(f, "syncdir {}", dir.display()),
        }
    }
}

/// Pass-through [`JournalIo`] that records the *effective* operation
/// trace. Stack it **under** a [`FaultyJournalIo`] so the trace holds
/// what actually reached the substrate: a lying fsync never reaches the
/// recorder, so the enumerator correctly treats the data as volatile,
/// and a short write records only the prefix that landed.
pub struct RecordingJournalIo {
    inner: Arc<dyn JournalIo>,
    paths: Mutex<HashMap<FileId, PathBuf>>,
    trace: Mutex<Vec<JournalOp>>,
}

impl fmt::Debug for RecordingJournalIo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecordingJournalIo")
            .field("ops", &lock_recover(&self.trace).len())
            .finish_non_exhaustive()
    }
}

impl RecordingJournalIo {
    /// Record every effective operation passing through to `inner`.
    pub fn over(inner: Arc<dyn JournalIo>) -> RecordingJournalIo {
        RecordingJournalIo {
            inner,
            paths: Mutex::new(HashMap::new()),
            trace: Mutex::new(Vec::new()),
        }
    }

    /// Snapshot of the recorded trace so far.
    pub fn trace(&self) -> Vec<JournalOp> {
        lock_recover(&self.trace).clone()
    }

    fn path_of(&self, file: FileId) -> PathBuf {
        lock_recover(&self.paths).get(&file).cloned().unwrap_or_else(|| PathBuf::from("?"))
    }

    fn record(&self, op: JournalOp) {
        lock_recover(&self.trace).push(op);
    }
}

impl JournalIo for RecordingJournalIo {
    fn create(&self, path: &Path) -> std::io::Result<FileId> {
        let id = self.inner.create(path)?;
        lock_recover(&self.paths).insert(id, path.to_path_buf());
        self.record(JournalOp::Create { path: path.to_path_buf() });
        Ok(id)
    }

    fn append(&self, file: FileId, bytes: &[u8]) -> std::io::Result<()> {
        self.inner.append(file, bytes)?;
        self.record(JournalOp::Append { path: self.path_of(file), bytes: bytes.to_vec() });
        Ok(())
    }

    fn fsync(&self, file: FileId) -> std::io::Result<()> {
        self.inner.fsync(file)?;
        self.record(JournalOp::Fsync { path: self.path_of(file) });
        Ok(())
    }

    fn close(&self, file: FileId) -> std::io::Result<()> {
        self.inner.close(file)?;
        lock_recover(&self.paths).remove(&file);
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        self.inner.rename(from, to)?;
        for path in lock_recover(&self.paths).values_mut() {
            if path == from {
                *path = to.to_path_buf();
            }
        }
        self.record(JournalOp::Rename { from: from.to_path_buf(), to: to.to_path_buf() });
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        self.inner.sync_dir(dir)?;
        self.record(JournalOp::SyncDir { dir: dir.to_path_buf() });
        Ok(())
    }
}

/// The storage fault classes [`FaultyJournalIo`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFaultKind {
    /// `append` fails with `ErrorKind::StorageFull`, no bytes land.
    Enospc,
    /// `append` fails with a generic I/O error, no bytes land.
    Eio,
    /// `append` lands a seeded proper prefix of the bytes, then fails.
    ShortWrite,
    /// `fsync` reports success without flushing anything.
    LyingFsync,
}

impl fmt::Display for StorageFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StorageFaultKind::Enospc => "enospc",
            StorageFaultKind::Eio => "eio",
            StorageFaultKind::ShortWrite => "short-write",
            StorageFaultKind::LyingFsync => "lying-fsync",
        })
    }
}

/// One injected fault, attributable after the fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageFaultEvent {
    /// What was injected.
    pub kind: StorageFaultKind,
    /// The per-class operation index it fired at (append index for the
    /// write faults, fsync index for the lying fsync).
    pub op_index: u64,
    /// The file the faulted operation targeted.
    pub path: PathBuf,
}

impl fmt::Display for StorageFaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at op {} on {}", self.kind, self.op_index, self.path.display())
    }
}

/// How many of each fault class actually fired.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StorageFaultCounters {
    /// Injected ENOSPC append failures.
    pub enospc: u64,
    /// Injected EIO append failures.
    pub eio: u64,
    /// Injected short writes.
    pub short_writes: u64,
    /// Fsyncs that lied.
    pub lying_fsyncs: u64,
}

impl StorageFaultCounters {
    /// Total faults fired.
    pub fn total(&self) -> u64 {
        self.enospc + self.eio + self.short_writes + self.lying_fsyncs
    }

    /// True when any fault fired.
    pub fn any(&self) -> bool {
        self.total() > 0
    }
}

/// A seeded storage-fault schedule, in the fluent one-shot style of
/// `dataflow_sim::fault::FaultPlan`: write faults fire at absolute
/// *append* indices (0-based, counted across the whole [`JournalIo`]),
/// the lying fsync applies to every fsync from an absolute *fsync*
/// index onward. The seed only places the short-write cut points.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageFaultPlan {
    seed: u64,
    enospc: Vec<u64>,
    eio: Vec<u64>,
    short_writes: Vec<u64>,
    lying_fsync_from: Option<u64>,
}

impl StorageFaultPlan {
    /// An empty plan (no faults) deriving cut points from `seed`.
    pub fn new(seed: u64) -> StorageFaultPlan {
        StorageFaultPlan { seed, ..StorageFaultPlan::default() }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fail the `index`-th append with ENOSPC (once).
    #[must_use]
    pub fn enospc_at(mut self, index: u64) -> StorageFaultPlan {
        self.enospc.push(index);
        self
    }

    /// Fail the `index`-th append with EIO (once).
    #[must_use]
    pub fn eio_at(mut self, index: u64) -> StorageFaultPlan {
        self.eio.push(index);
        self
    }

    /// Tear the `index`-th append: land a seeded proper prefix, then
    /// fail (once).
    #[must_use]
    pub fn short_write_at(mut self, index: u64) -> StorageFaultPlan {
        self.short_writes.push(index);
        self
    }

    /// Make every fsync from the `index`-th onward report success
    /// without flushing.
    #[must_use]
    pub fn lying_fsync_from(mut self, index: u64) -> StorageFaultPlan {
        self.lying_fsync_from = Some(index);
        self
    }
}

#[derive(Debug, Default)]
struct FaultProgress {
    appends: u64,
    fsyncs: u64,
}

/// A [`JournalIo`] that injects the faults of a [`StorageFaultPlan`]
/// and passes everything else through. Stack it **over** a
/// [`RecordingJournalIo`] so the recorded trace holds only what truly
/// reached the substrate.
pub struct FaultyJournalIo {
    inner: Arc<dyn JournalIo>,
    plan: StorageFaultPlan,
    progress: Mutex<FaultProgress>,
    counters: Mutex<StorageFaultCounters>,
    events: Mutex<Vec<StorageFaultEvent>>,
    paths: Mutex<HashMap<FileId, PathBuf>>,
}

impl fmt::Debug for FaultyJournalIo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyJournalIo").field("plan", &self.plan).finish_non_exhaustive()
    }
}

impl FaultyJournalIo {
    /// Inject `plan` over `inner`.
    pub fn over(inner: Arc<dyn JournalIo>, plan: StorageFaultPlan) -> FaultyJournalIo {
        FaultyJournalIo {
            inner,
            plan,
            progress: Mutex::new(FaultProgress::default()),
            counters: Mutex::new(StorageFaultCounters::default()),
            events: Mutex::new(Vec::new()),
            paths: Mutex::new(HashMap::new()),
        }
    }

    /// Faults fired so far.
    pub fn counters(&self) -> StorageFaultCounters {
        *lock_recover(&self.counters)
    }

    /// Attributable record of every fault fired so far.
    pub fn events(&self) -> Vec<StorageFaultEvent> {
        lock_recover(&self.events).clone()
    }

    fn path_of(&self, file: FileId) -> PathBuf {
        lock_recover(&self.paths).get(&file).cloned().unwrap_or_else(|| PathBuf::from("?"))
    }

    fn fire(&self, kind: StorageFaultKind, op_index: u64, path: PathBuf) {
        let mut counters = lock_recover(&self.counters);
        match kind {
            StorageFaultKind::Enospc => counters.enospc += 1,
            StorageFaultKind::Eio => counters.eio += 1,
            StorageFaultKind::ShortWrite => counters.short_writes += 1,
            StorageFaultKind::LyingFsync => counters.lying_fsyncs += 1,
        }
        lock_recover(&self.events).push(StorageFaultEvent { kind, op_index, path });
    }
}

impl JournalIo for FaultyJournalIo {
    fn create(&self, path: &Path) -> std::io::Result<FileId> {
        let id = self.inner.create(path)?;
        lock_recover(&self.paths).insert(id, path.to_path_buf());
        Ok(id)
    }

    fn append(&self, file: FileId, bytes: &[u8]) -> std::io::Result<()> {
        let idx = {
            let mut p = lock_recover(&self.progress);
            let idx = p.appends;
            p.appends += 1;
            idx
        };
        let path = self.path_of(file);
        if self.plan.enospc.contains(&idx) {
            self.fire(StorageFaultKind::Enospc, idx, path);
            return Err(std::io::Error::new(
                std::io::ErrorKind::StorageFull,
                format!("injected ENOSPC at append {idx}"),
            ));
        }
        if self.plan.eio.contains(&idx) {
            self.fire(StorageFaultKind::Eio, idx, path);
            return Err(std::io::Error::other(format!("injected EIO at append {idx}")));
        }
        if self.plan.short_writes.contains(&idx) && bytes.len() >= 2 {
            let cut =
                1 + (splitmix64(self.plan.seed ^ (0x5403 + idx)) as usize) % (bytes.len() - 1);
            self.fire(StorageFaultKind::ShortWrite, idx, path);
            self.inner.append(file, &bytes[..cut])?;
            return Err(std::io::Error::other(format!(
                "injected short write at append {idx}: {cut} of {} bytes landed",
                bytes.len()
            )));
        }
        self.inner.append(file, bytes)
    }

    fn fsync(&self, file: FileId) -> std::io::Result<()> {
        let idx = {
            let mut p = lock_recover(&self.progress);
            let idx = p.fsyncs;
            p.fsyncs += 1;
            idx
        };
        if self.plan.lying_fsync_from.is_some_and(|from| idx >= from) {
            self.fire(StorageFaultKind::LyingFsync, idx, self.path_of(file));
            return Ok(()); // the lie: success without reaching the substrate
        }
        self.inner.fsync(file)
    }

    fn close(&self, file: FileId) -> std::io::Result<()> {
        self.inner.close(file)?;
        lock_recover(&self.paths).remove(&file);
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        self.inner.rename(from, to)?;
        for path in lock_recover(&self.paths).values_mut() {
            if path == from {
                *path = to.to_path_buf();
            }
        }
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        self.inner.sync_dir(dir)
    }
}

/// Publish `bytes` at `path` with the full crash-consistent discipline:
/// write to `<path>.tmp`, fsync the tmp file, rename it over `path`,
/// then sync the parent directory so the rename itself is durable. A
/// failure part-way leaves at worst a stale `<path>.tmp` (never a torn
/// `path`).
///
/// # Errors
/// Any failing step's I/O error; the tmp handle is closed best-effort
/// first.
pub fn atomic_publish(io: &dyn JournalIo, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    };
    let id = io.create(&tmp)?;
    let written = io.append(id, bytes).and_then(|()| io.fsync(id));
    let closed = io.close(id);
    written?;
    closed?;
    io.rename(&tmp, path)?;
    io.sync_dir(&parent_dir(path))
}

fn parent_dir(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

/// Granularity knobs for [`enumerate_crash_states`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Byte granularity at which the last unsynced append may tear
    /// (a torn variant is produced at every multiple below the append's
    /// length). Clamped to at least 1.
    pub torn_granularity: usize,
}

impl Default for CrashPlan {
    fn default() -> Self {
        CrashPlan { torn_granularity: 16 }
    }
}

/// One reachable post-crash filesystem image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashState {
    /// Surviving file content by (recorded) path.
    pub files: BTreeMap<PathBuf, Vec<u8>>,
    /// How this state arises (for triage; not part of state identity).
    pub label: String,
}

impl CrashState {
    /// Write this image under `target_root`, re-rooting every recorded
    /// path from `recorded_root`.
    ///
    /// # Errors
    /// Paths outside `recorded_root`, or filesystem failures.
    pub fn materialize(&self, recorded_root: &Path, target_root: &Path) -> std::io::Result<()> {
        for (path, bytes) in &self.files {
            let rel = path.strip_prefix(recorded_root).map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!(
                        "recorded path {} is outside trace root {}",
                        path.display(),
                        recorded_root.display()
                    ),
                )
            })?;
            let dest = target_root.join(rel);
            if let Some(parent) = dest.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(dest, bytes)?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
enum Pending {
    Append { path: PathBuf, bytes: Vec<u8> },
    Rename { from: PathBuf, to: PathBuf },
}

#[derive(Debug, Default, Clone)]
struct SimFs {
    durable: BTreeMap<PathBuf, Vec<u8>>,
    pending: Vec<Pending>,
}

fn apply_append(map: &mut BTreeMap<PathBuf, Vec<u8>>, path: &Path, bytes: &[u8]) {
    map.entry(path.to_path_buf()).or_default().extend_from_slice(bytes);
}

fn apply_rename(map: &mut BTreeMap<PathBuf, Vec<u8>>, from: &Path, to: &Path) {
    let content = map.remove(from).unwrap_or_default();
    map.insert(to.to_path_buf(), content);
}

impl SimFs {
    fn apply(&mut self, op: &JournalOp) {
        match op {
            JournalOp::Create { path } => {
                self.durable.insert(path.clone(), Vec::new());
                self.pending.retain(|p| !matches!(p, Pending::Append { path: q, .. } if q == path));
            }
            JournalOp::Append { path, bytes } => {
                self.pending.push(Pending::Append { path: path.clone(), bytes: bytes.clone() });
            }
            JournalOp::Fsync { path } => {
                let mut rest = Vec::with_capacity(self.pending.len());
                for p in self.pending.drain(..) {
                    match p {
                        Pending::Append { path: q, bytes } if q == *path => {
                            apply_append(&mut self.durable, &q, &bytes);
                        }
                        other => rest.push(other),
                    }
                }
                self.pending = rest;
            }
            JournalOp::Rename { from, to } => {
                self.pending.push(Pending::Rename { from: from.clone(), to: to.clone() });
            }
            JournalOp::SyncDir { .. } => {
                let mut rest: Vec<Pending> = Vec::with_capacity(self.pending.len());
                for p in self.pending.drain(..) {
                    match p {
                        Pending::Rename { from, to } => {
                            apply_rename(&mut self.durable, &from, &to);
                            // Appends to the renamed inode follow its
                            // new name.
                            for r in &mut rest {
                                if let Pending::Append { path, .. } = r {
                                    if *path == from {
                                        *path = to.clone();
                                    }
                                }
                            }
                        }
                        other => rest.push(other),
                    }
                }
                self.pending = rest;
            }
        }
    }
}

/// Enumerate every post-crash filesystem image reachable from a
/// recorded write trace under the module's durability model: at every
/// point in the trace, the durable image plus each in-order prefix of
/// the pending queue, torn-tail variants of the last flushed append at
/// [`CrashPlan::torn_granularity`], and each pending rename applied
/// *without* the pending appends before it (rename-before-backing-data
/// reordering). States are deduplicated by content; labels describe the
/// first way each state arises.
pub fn enumerate_crash_states(ops: &[JournalOp], plan: &CrashPlan) -> Vec<CrashState> {
    let granularity = plan.torn_granularity.max(1);
    let mut seen: BTreeSet<BTreeMap<PathBuf, Vec<u8>>> = BTreeSet::new();
    let mut out: Vec<CrashState> = Vec::new();
    let mut push = |files: BTreeMap<PathBuf, Vec<u8>>, label: String| {
        if seen.insert(files.clone()) {
            out.push(CrashState { files, label });
        }
    };

    let mut sim = SimFs::default();
    for cut in 0..=ops.len() {
        // All in-order flush prefixes of the pending queue.
        for flushed in 0..=sim.pending.len() {
            let mut files = sim.durable.clone();
            for p in &sim.pending[..flushed] {
                match p {
                    Pending::Append { path, bytes } => apply_append(&mut files, path, bytes),
                    Pending::Rename { from, to } => apply_rename(&mut files, from, to),
                }
            }
            push(files, format!("crash after op {cut} with {flushed} pending flushed"));
            // Torn variants of the last flushed append.
            if flushed > 0 {
                if let Pending::Append { path, bytes } = &sim.pending[flushed - 1] {
                    let mut torn_at = granularity;
                    while torn_at < bytes.len() {
                        let mut files = sim.durable.clone();
                        for p in &sim.pending[..flushed - 1] {
                            match p {
                                Pending::Append { path, bytes } => {
                                    apply_append(&mut files, path, bytes);
                                }
                                Pending::Rename { from, to } => apply_rename(&mut files, from, to),
                            }
                        }
                        apply_append(&mut files, path, &bytes[..torn_at]);
                        push(
                            files,
                            format!(
                                "crash after op {cut}, append {} torn at byte {torn_at}",
                                flushed - 1
                            ),
                        );
                        torn_at += granularity;
                    }
                }
            }
        }
        // Rename-before-backing-data: a pending rename's metadata lands
        // while every pending append (its backing data included) is
        // lost.
        for (j, p) in sim.pending.iter().enumerate() {
            if matches!(p, Pending::Rename { .. }) {
                let mut files = sim.durable.clone();
                for q in &sim.pending[..=j] {
                    if let Pending::Rename { from, to } = q {
                        apply_rename(&mut files, from, to);
                    }
                }
                push(files, format!("crash after op {cut}, rename {j} before its backing data"));
            }
        }
        if cut < ops.len() {
            sim.apply(&ops[cut]);
        }
    }
    out
}

/// Check the crash-consistent write discipline on a recorded trace:
/// every rename's source file must have no unsynced appends at rename
/// time (data fsync before rename), and every rename must eventually be
/// followed by a sync of its destination's parent directory. This is
/// the trace-level assertion that makes the fsync-ordering fix visible
/// — and its revert loud — in the `storage-chaos` gate.
pub fn sync_ordering_held(ops: &[JournalOp]) -> bool {
    for (r, op) in ops.iter().enumerate() {
        let JournalOp::Rename { from, to } = op else { continue };
        // (1) Data before rename: every append to `from` earlier in the
        // trace is covered by an fsync of `from` before the rename.
        for (a, earlier) in ops[..r].iter().enumerate() {
            if matches!(earlier, JournalOp::Append { path, .. } if path == from) {
                let synced = ops[a + 1..r]
                    .iter()
                    .any(|o| matches!(o, JournalOp::Fsync { path } if path == from));
                if !synced {
                    return false;
                }
            }
        }
        // (2) Rename made durable: a parent-directory sync follows.
        let dir = parent_dir(to);
        let dir_synced =
            ops[r + 1..].iter().any(|o| matches!(o, JournalOp::SyncDir { dir: d } if *d == dir));
        if !dir_synced {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("cds-engine-journal-io-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn recorder_traces_effective_ops_in_order() {
        let dir = scratch("recorder");
        let rec = Arc::new(RecordingJournalIo::over(Arc::new(OsJournalIo::new())));
        let path = dir.join("j.log");
        let id = rec.create(&path).expect("create");
        rec.append(id, b"hello ").expect("append");
        rec.append(id, b"world\n").expect("append");
        rec.fsync(id).expect("fsync");
        rec.close(id).expect("close");
        let trace = rec.trace();
        assert_eq!(trace.len(), 4);
        assert!(matches!(&trace[0], JournalOp::Create { path: p } if *p == path));
        assert!(matches!(&trace[2], JournalOp::Append { bytes, .. } if bytes == b"world\n"));
        assert!(matches!(&trace[3], JournalOp::Fsync { path: p } if *p == path));
        assert_eq!(std::fs::read(&path).expect("read back"), b"hello world\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faults_fire_once_at_their_indices_and_are_attributed() {
        let dir = scratch("faults");
        let rec = Arc::new(RecordingJournalIo::over(Arc::new(OsJournalIo::new())));
        let plan = StorageFaultPlan::new(7).enospc_at(1).short_write_at(3).lying_fsync_from(1);
        let io = FaultyJournalIo::over(rec.clone(), plan);
        let path = dir.join("j.log");
        let id = io.create(&path).expect("create");
        io.append(id, b"a line that is long enough to tear\n").expect("append 0");
        let err = io.append(id, b"doomed\n").expect_err("append 1 must ENOSPC");
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        io.append(id, b"after\n").expect("append 2");
        let err = io.append(id, b"short write victim line\n").expect_err("append 3 torn");
        assert!(err.to_string().contains("short write"), "{err}");
        io.fsync(id).expect("fsync 0 is honest");
        io.fsync(id).expect("fsync 1 lies");
        let counters = io.counters();
        assert_eq!((counters.enospc, counters.short_writes, counters.lying_fsyncs), (1, 1, 1));
        assert_eq!(counters.total(), 3);
        let events = io.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, StorageFaultKind::Enospc);
        assert!(events.iter().all(|e| e.path == path), "{events:?}");
        // The recorder saw only what landed: no ENOSPC'd bytes, a
        // prefix for the short write, and exactly one (honest) fsync.
        let trace = rec.trace();
        let appended: Vec<&[u8]> = trace
            .iter()
            .filter_map(|op| match op {
                JournalOp::Append { bytes, .. } => Some(bytes.as_slice()),
                _ => None,
            })
            .collect();
        assert_eq!(appended.len(), 3);
        assert!(appended[2].len() < b"short write victim line\n".len());
        assert!(b"short write victim line\n".starts_with(appended[2]));
        let fsyncs = trace.iter().filter(|op| matches!(op, JournalOp::Fsync { .. })).count();
        assert_eq!(fsyncs, 1, "the lying fsync must not reach the recorder");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn enumerator_covers_prefixes_torn_tails_and_rename_reorder() {
        let ops = vec![
            JournalOp::Create { path: p("/t/wal") },
            JournalOp::Append { path: p("/t/wal"), bytes: b"abcdefgh".to_vec() },
            JournalOp::Create { path: p("/t/ck.tmp") },
            JournalOp::Append { path: p("/t/ck.tmp"), bytes: b"CKPT".to_vec() },
            JournalOp::Rename { from: p("/t/ck.tmp"), to: p("/t/ck") },
        ];
        let states = enumerate_crash_states(&ops, &CrashPlan { torn_granularity: 4 });
        let has = |want: &[(&str, &[u8])]| {
            let want: BTreeMap<PathBuf, Vec<u8>> =
                want.iter().map(|(k, v)| (p(k), v.to_vec())).collect();
            states.iter().any(|s| s.files == want)
        };
        // Nothing yet / bare created files.
        assert!(has(&[]));
        assert!(has(&[("/t/wal", b"")]));
        // The unsynced journal append as a flushed prefix, and torn.
        assert!(has(&[("/t/wal", b"abcdefgh")]));
        assert!(has(&[("/t/wal", b"abcd")]));
        // Rename before backing data: `ck` exists but is empty while
        // the journal append also vanished.
        assert!(has(&[("/t/wal", b""), ("/t/ck", b"")]));
        // Fully flushed final state.
        assert!(has(&[("/t/wal", b"abcdefgh"), ("/t/ck", b"CKPT")]));
        // Dedup: every state is unique.
        let mut uniq = BTreeSet::new();
        for s in &states {
            assert!(uniq.insert(s.files.clone()), "duplicate state {}", s.label);
        }
    }

    #[test]
    fn fsync_makes_appends_survive_every_crash_state() {
        let ops = vec![
            JournalOp::Create { path: p("/t/wal") },
            JournalOp::Append { path: p("/t/wal"), bytes: b"line\n".to_vec() },
            JournalOp::Fsync { path: p("/t/wal") },
        ];
        let states = enumerate_crash_states(&ops, &CrashPlan::default());
        // After the fsync (last op), the append is durable in every
        // state enumerated from the final point; the full-content state
        // must exist and no state may hold a torn line *after* sync.
        assert!(states
            .iter()
            .any(|s| s.files.get(&p("/t/wal")).map(Vec::as_slice) == Some(b"line\n".as_slice())));
    }

    #[test]
    fn atomic_publish_trace_passes_sync_ordering_and_omissions_fail_it() {
        let dir = scratch("publish");
        let rec = Arc::new(RecordingJournalIo::over(Arc::new(OsJournalIo::new())));
        let target = dir.join("ck");
        atomic_publish(rec.as_ref(), &target, b"payload").expect("publish");
        assert_eq!(std::fs::read(&target).expect("published"), b"payload");
        let trace = rec.trace();
        assert!(sync_ordering_held(&trace), "{trace:?}");
        // Drop the fsync: data-before-rename is violated.
        let no_fsync: Vec<JournalOp> =
            trace.iter().filter(|op| !matches!(op, JournalOp::Fsync { .. })).cloned().collect();
        assert!(!sync_ordering_held(&no_fsync));
        // Drop the dir sync: the rename is never made durable.
        let no_dirsync: Vec<JournalOp> =
            trace.iter().filter(|op| !matches!(op, JournalOp::SyncDir { .. })).cloned().collect();
        assert!(!sync_ordering_held(&no_dirsync));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_states_materialize_under_a_new_root() {
        let dir = scratch("materialize");
        let state = CrashState {
            files: BTreeMap::from([
                (p("/t/wal"), b"abc".to_vec()),
                (p("/t/wal.ckpt"), b"xyz".to_vec()),
            ]),
            label: "test".to_string(),
        };
        state.materialize(&p("/t"), &dir).expect("materialize");
        assert_eq!(std::fs::read(dir.join("wal")).expect("wal"), b"abc");
        assert_eq!(std::fs::read(dir.join("wal.ckpt")).expect("ckpt"), b"xyz");
        let foreign = CrashState {
            files: BTreeMap::from([(p("/elsewhere/x"), Vec::new())]),
            label: String::new(),
        };
        assert!(foreign.materialize(&p("/t"), &dir).is_err(), "foreign roots must be rejected");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
