//! Engine configuration: variant selection, timing parameters, and the
//! calibrated constants documented in `DESIGN.md` §5.

use dataflow_sim::clock::ClockModel;
use dataflow_sim::hbm::{MemoryModel, PcieModel};
use dataflow_sim::region::{RegionCost, RegionMode};
use dataflow_sim::trace::TraceRecorder;
use dataflow_sim::Cycle;

/// The initiation interval regime of the hazard accumulation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardIiMode {
    /// Loop-carried dependency on the accumulated double: II = 7 (the
    /// Xilinx library behaviour the paper diagnoses).
    DependencyChained,
    /// Listing-1 restructuring with seven partial sums: effective II = 1.
    PartialSums,
}

impl HazardIiMode {
    /// Effective initiation interval of one accumulation step.
    pub fn ii(self) -> Cycle {
        match self {
            HazardIiMode::DependencyChained => FP_ADD_LATENCY_CYCLES,
            HazardIiMode::PartialSums => 1,
        }
    }
}

/// Hardware latency of a double-precision add (paper §III: "the
/// accumulation, a double precision add, requires seven cycles").
pub const FP_ADD_LATENCY_CYCLES: Cycle = 7;

/// Numeric precision of the engine datapath.
///
/// The paper's conclusions name "reduced precision, especially within the
/// context of the future Xilinx Versal ACAP" as further work; `Single`
/// realises it: 32-bit operands halve the URAM word footprint of a curve
/// knot (doubling scan bandwidth per port), shorten the arithmetic cores,
/// and roughly halve the logic — at the accuracy cost quantified by the
/// precision ablation (~1e-4 bps on realistic spreads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnginePrecision {
    /// IEEE binary64 throughout — paper-faithful.
    Double,
    /// IEEE binary32 throughout — the further-work exploration.
    Single,
}

impl EnginePrecision {
    /// Curve knots deliverable per URAM port per cycle: an f64 knot pair
    /// is two 72-bit words, an f32 pair fits one.
    pub fn knots_per_port_cycle(self) -> Cycle {
        match self {
            EnginePrecision::Double => 1,
            EnginePrecision::Single => 2,
        }
    }

    /// Latency of the exponential core.
    pub fn exp_latency(self) -> Cycle {
        match self {
            EnginePrecision::Double => FP_EXP_LATENCY_CYCLES,
            EnginePrecision::Single => 18,
        }
    }

    /// Latency (and dependency-chained II) of the adder.
    pub fn add_latency(self) -> Cycle {
        match self {
            EnginePrecision::Double => FP_ADD_LATENCY_CYCLES,
            EnginePrecision::Single => 4,
        }
    }
}

/// Latency of the double-precision exponential core used for discount
/// factors and survival probabilities.
pub const FP_EXP_LATENCY_CYCLES: Cycle = 30;

/// Latency of a double-precision divide (spread combination).
pub const FP_DIV_LATENCY_CYCLES: Cycle = 14;

/// Region restart overhead per option in per-option dataflow mode, in
/// kernel cycles.
///
/// **Calibrated constant** (DESIGN.md §5): the paper reports the
/// *effect* of eliminating per-option restart (13298.70 / 7368.42 ≈ 1.80×)
/// but not the cost itself. At a 300 MHz kernel clock the implied
/// overhead is `300e6/7368.42 − 300e6/13298.70 ≈ 18.2k` cycles per option
/// (≈ 61 µs — region control plus full pipeline fill/drain and host-side
/// sequencing). We use that directly.
pub const CALIBRATED_REGION_RESTART: Cycle = 18_200;

/// The engine variants of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineVariant {
    /// The open-source Vitis library engine (Fig 1).
    XilinxBaseline,
    /// "Optimised Dataflow CDS engine": explicit dataflow, Listing-1
    /// accumulator, but the region restarts per option.
    OptimisedDataflow,
    /// "Dataflow inter-options": the region runs continuously.
    InterOption,
    /// "Vectorisation of dataflow engine": hazard/interpolation stages
    /// replicated six-fold, round-robin scheduled.
    Vectorised,
}

impl EngineVariant {
    /// The paper-faithful configuration preset for this variant.
    pub fn config(self) -> EngineConfig {
        let base = EngineConfig {
            variant: self,
            clock: ClockModel::u280_default(),
            hazard_ii: HazardIiMode::PartialSums,
            region_mode: RegionMode::Continuous,
            vector_factor: 1,
            uram_ports_per_function: 2,
            stream_depth: 4,
            accrual_fifo_depth: None,
            precision: EnginePrecision::Double,
            trace: None,
            region_cost: RegionCost::new(CALIBRATED_REGION_RESTART, 6),
            memory: MemoryModel::hbm2_512(),
            pcie: PcieModel::gen3_x16(),
        };
        match self {
            EngineVariant::XilinxBaseline => EngineConfig {
                hazard_ii: HazardIiMode::DependencyChained,
                region_mode: RegionMode::PerOption,
                // The baseline's sequential loops restart per option but
                // pay only loop-control overhead, not a dataflow-region
                // relaunch.
                region_cost: RegionCost::new(16, 0),
                ..base
            },
            EngineVariant::OptimisedDataflow => {
                EngineConfig { region_mode: RegionMode::PerOption, ..base }
            }
            EngineVariant::InterOption => base,
            EngineVariant::Vectorised => EngineConfig { vector_factor: 6, ..base },
        }
    }

    /// All variants in Table I order.
    pub const ALL: [EngineVariant; 4] = [
        EngineVariant::XilinxBaseline,
        EngineVariant::OptimisedDataflow,
        EngineVariant::InterOption,
        EngineVariant::Vectorised,
    ];

    /// The row label used in the paper's Table I.
    pub fn paper_label(self) -> &'static str {
        match self {
            EngineVariant::XilinxBaseline => "Xilinx Vitis library CDS engine",
            EngineVariant::OptimisedDataflow => "Optimised Dataflow CDS engine",
            EngineVariant::InterOption => "Dataflow inter-options",
            EngineVariant::Vectorised => "Vectorisation of dataflow engine",
        }
    }

    /// The options/second the paper measured for this variant (Table I).
    pub fn paper_options_per_second(self) -> f64 {
        match self {
            EngineVariant::XilinxBaseline => 3462.53,
            EngineVariant::OptimisedDataflow => 7368.42,
            EngineVariant::InterOption => 13298.70,
            EngineVariant::Vectorised => 27675.67,
        }
    }
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Which Table-I variant this engine realises.
    pub variant: EngineVariant,
    /// Kernel clock.
    pub clock: ClockModel,
    /// Hazard accumulation II regime.
    pub hazard_ii: HazardIiMode,
    /// Per-option vs continuous region invocation.
    pub region_mode: RegionMode,
    /// Replication factor of the hazard/interpolation stages (Fig 3);
    /// 1 = no vectorisation.
    pub vector_factor: usize,
    /// URAM read ports available to each replicated function's constant
    /// data (a dual-ported URAM copy per function ⇒ 2). The replicas of
    /// one function share these ports, which bounds the vectorisation
    /// gain — the mechanism behind the paper's "replicated … six times,
    /// which doubled performance".
    pub uram_ports_per_function: usize,
    /// Depth of the inter-stage HLS streams.
    pub stream_depth: usize,
    /// Override for the accrual-path (`half_delta`) FIFO depth. `None`
    /// auto-sizes it to cover the replica count plus the pipeline lag
    /// (`4·V + 8`); forcing it shallow throttles the in-flight window
    /// below `V` and starves the replicated stages — an instructive
    /// failure mode exposed for ablation.
    pub accrual_fifo_depth: Option<usize>,
    /// Dataflow-region start/stop cost.
    pub region_cost: RegionCost,
    /// External-memory model for constant-data loading.
    pub memory: MemoryModel,
    /// Host transfer model (included in all reported figures, as in the
    /// paper).
    pub pcie: PcieModel,
    /// Datapath precision (f64 is paper-faithful; f32 explores §V's
    /// further work). Applies to the dataflow variants; the baseline is
    /// always double precision, as the library engine was.
    pub precision: EnginePrecision,
    /// Optional busy-span recorder: when set, the hazard/interpolation
    /// stages log their activity for occupancy ("stalls frequently
    /// occurred") analysis. Shared by clone, so the caller keeps a handle.
    pub trace: Option<TraceRecorder>,
}

impl EngineConfig {
    /// Effective per-knot scan initiation interval of one replica of a
    /// replicated function, accounting for URAM port sharing: `V` replicas
    /// over `P` ports sustain `P` reads/cycle in aggregate.
    pub fn replica_scan_ii(&self) -> Cycle {
        let v = self.vector_factor.max(1) as u64;
        let p = self.uram_ports_per_function.max(1) as u64;
        v.div_ceil(p).max(1)
    }

    /// Cycles for one replica to scan the whole constant table once,
    /// accounting for precision (knots per port read) and port sharing.
    pub fn replica_scan_cycles(&self, curve_len: usize) -> Cycle {
        let knots = curve_len as Cycle;
        (knots * self.replica_scan_ii()).div_ceil(self.precision.knots_per_port_cycle())
    }

    /// Steady-state cycles between successive *time points* leaving the
    /// replicated hazard unit: one replica's full-table scan (times the
    /// accumulation II regime), amortised over the `V` replicas working
    /// round-robin. This is the engine's aggregate service interval per
    /// point — multiply by an option's payment count to get the
    /// deterministic per-option service interval used by the M/D/1
    /// admission model.
    pub fn steady_state_point_cycles(&self, curve_len: usize) -> Cycle {
        let v = self.vector_factor.max(1) as Cycle;
        (self.replica_scan_cycles(curve_len) * self.hazard_ii.ii()).div_ceil(v).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_structure() {
        let x = EngineVariant::XilinxBaseline.config();
        assert_eq!(x.hazard_ii, HazardIiMode::DependencyChained);
        assert_eq!(x.region_mode, RegionMode::PerOption);

        let o = EngineVariant::OptimisedDataflow.config();
        assert_eq!(o.hazard_ii, HazardIiMode::PartialSums);
        assert_eq!(o.region_mode, RegionMode::PerOption);
        assert_eq!(o.vector_factor, 1);

        let i = EngineVariant::InterOption.config();
        assert_eq!(i.region_mode, RegionMode::Continuous);

        let v = EngineVariant::Vectorised.config();
        assert_eq!(v.vector_factor, 6);
        assert_eq!(v.region_mode, RegionMode::Continuous);
    }

    #[test]
    fn hazard_ii_values() {
        assert_eq!(HazardIiMode::DependencyChained.ii(), 7);
        assert_eq!(HazardIiMode::PartialSums.ii(), 1);
    }

    #[test]
    fn replica_scan_ii_models_port_sharing() {
        let mut c = EngineVariant::Vectorised.config();
        assert_eq!(c.replica_scan_ii(), 3); // 6 replicas / 2 ports
        c.vector_factor = 2;
        assert_eq!(c.replica_scan_ii(), 1);
        c.vector_factor = 1;
        assert_eq!(c.replica_scan_ii(), 1);
        c.vector_factor = 5;
        assert_eq!(c.replica_scan_ii(), 3); // ceil(5/2)
    }

    #[test]
    fn steady_state_point_cycles_matches_known_variants() {
        // Vectorised: 1024 knots × ceil(6/2) = 3072 scan cycles, II 1,
        // amortised over 6 replicas → 512 cycles/point.
        assert_eq!(EngineVariant::Vectorised.config().steady_state_point_cycles(1024), 512);
        // Inter-option: single replica scans 1024 knots at II 1.
        assert_eq!(EngineVariant::InterOption.config().steady_state_point_cycles(1024), 1024);
    }

    #[test]
    fn calibrated_restart_matches_paper_delta() {
        // 300 MHz: cycles/option at 7368.42 minus at 13298.70.
        let implied = 300e6 / 7368.42 - 300e6 / 13298.70;
        assert!(
            (CALIBRATED_REGION_RESTART as f64 - implied).abs() < 250.0,
            "calibrated {CALIBRATED_REGION_RESTART} vs implied {implied}"
        );
    }

    #[test]
    fn paper_labels_and_rates() {
        assert_eq!(EngineVariant::ALL.len(), 4);
        for v in EngineVariant::ALL {
            assert!(!v.paper_label().is_empty());
            assert!(v.paper_options_per_second() > 1000.0);
        }
    }
}
