//! Write-ahead run journal: checkpoints and deterministic resume.
//!
//! A streaming or multi-engine run emits a [`Checkpoint`] after every
//! `cadence` completed options (plus a terminal commit record). Each
//! checkpoint is a self-contained watermark — the admitted and shed
//! option sets, the fault-plan seed, and every completion so far with
//! its cycle and **bit-exact** spread (serialized as raw `f64` bits) —
//! so an engine that dies mid-run loses at most one checkpoint interval:
//! [`crate::streaming::resume_streaming_from`] replays only the work
//! after the watermark, and because per-option pricing is independent of
//! batch composition the resumed spreads are bit-identical to an
//! uninterrupted run.
//!
//! The serialization is a deliberately simple line-based text format
//! (`cds-checkpoint v1`, one `key=value` per line) parsed with typed
//! [`CdsError::Journal`] errors — checkpoint IO never panics. The final
//! line is a commit marker (`commit=<completion count>`): a journal cut
//! short mid-write — dropping whole lines or a tail of the completion
//! list — fails parsing instead of silently passing for a checkpoint
//! with fewer completions.

use crate::error::CdsError;
use crate::streaming::StreamingReport;
use dataflow_sim::Cycle;

/// Magic first line of the text serialization.
pub const CHECKPOINT_MAGIC: &str = "cds-checkpoint v1";

/// Current checkpoint schema version.
pub const CHECKPOINT_SCHEMA_VERSION: u32 = 1;

/// One completed option recorded in a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedOption {
    /// Original index of the option.
    pub index: u32,
    /// Cycle at which its spread left the engine.
    pub done_cycle: Cycle,
    /// The spread, preserved bit-exactly across serialization.
    pub spread_bps: f64,
}

/// A self-contained watermark of a partially completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Serialization schema version.
    pub schema_version: u32,
    /// Total options in the original workload.
    pub total_options: u32,
    /// Completions between checkpoints when this was emitted.
    pub cadence: u32,
    /// Completion cycle of the latest option included.
    pub watermark_cycle: Cycle,
    /// Seed of the active fault plan, if any.
    pub fault_seed: Option<u64>,
    /// Name of the scenario the run was recorded under (e.g. a harness
    /// fault scenario, or a serving-layer journal label). `None` for
    /// unlabelled runs; when set, [`crate::streaming::resume_streaming_from`]
    /// refuses to resume under a *different* requested scenario instead
    /// of silently replaying the wrong journal.
    pub scenario: Option<String>,
    /// Original indices admitted past the ingress, ascending.
    pub admitted: Vec<u32>,
    /// Original indices shed by admission control, ascending.
    pub shed: Vec<u32>,
    /// Completions up to the watermark, in completion order.
    pub completed: Vec<CompletedOption>,
}

impl Checkpoint {
    /// Original indices completed at this watermark, ascending.
    #[must_use]
    pub fn completed_indices(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.completed.iter().map(|c| c.index).collect();
        v.sort_unstable();
        v
    }

    /// Whether every admitted option has completed (the commit record).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.completed.len() == self.admitted.len()
    }

    /// Serialize to the line-based text format. Spreads are written as
    /// raw `f64` bit patterns so parsing restores them bit-identically.
    #[must_use]
    pub fn to_text(&self) -> String {
        let ids = |v: &[u32]| v.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
        let completed = self
            .completed
            .iter()
            .map(|c| format!("{}:{}:{:016x}", c.index, c.done_cycle, c.spread_bps.to_bits()))
            .collect::<Vec<_>>()
            .join(",");
        let fault_seed = self.fault_seed.map_or_else(|| "none".to_string(), |s| s.to_string());
        // The scenario line is omitted entirely (not written as a
        // sentinel) for unlabelled runs: "none" is a legitimate harness
        // scenario name, so a sentinel would collide with it.
        let scenario =
            self.scenario.as_ref().map_or_else(String::new, |s| format!("scenario={s}\n"));
        format!(
            "{CHECKPOINT_MAGIC}\nschema_version={}\ntotal_options={}\ncadence={}\n\
             watermark_cycle={}\nfault_seed={fault_seed}\n{scenario}admitted={}\nshed={}\ncompleted={completed}\n\
             commit={}\n",
            self.schema_version,
            self.total_options,
            self.cadence,
            self.watermark_cycle,
            ids(&self.admitted),
            ids(&self.shed),
            self.completed.len(),
        )
    }

    /// Persist this checkpoint at `path` through a [`crate::journal_io::JournalIo`]
    /// with the full crash-consistent discipline (write `<path>.tmp`,
    /// fsync it, rename over `path`, sync the parent directory). A
    /// crash at any point leaves either the previous checkpoint or this
    /// one — never a torn file (see
    /// [`crate::journal_io::enumerate_crash_states`], which proves it).
    ///
    /// # Errors
    /// [`CdsError::Storage`] on any substrate failure.
    pub fn persist(
        &self,
        io: &dyn crate::journal_io::JournalIo,
        path: &std::path::Path,
    ) -> Result<(), CdsError> {
        crate::journal_io::atomic_publish(io, path, self.to_text().as_bytes()).map_err(|e| {
            CdsError::Storage { path: path.display().to_string(), cause: e.to_string() }
        })
    }

    /// Load a checkpoint persisted by [`Checkpoint::persist`].
    ///
    /// # Errors
    /// [`CdsError::Storage`] when the file cannot be read, or the typed
    /// parse failure.
    pub fn load(path: &std::path::Path) -> Result<Checkpoint, CdsError> {
        let text = std::fs::read_to_string(path).map_err(|e| CdsError::Storage {
            path: path.display().to_string(),
            cause: e.to_string(),
        })?;
        Checkpoint::parse(&text)
    }

    /// Parse the text format. Every malformation is a typed
    /// [`CdsError::Journal`] — this never panics.
    pub fn parse(text: &str) -> Result<Checkpoint, CdsError> {
        let journal = |reason: String| CdsError::Journal { reason };
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(CHECKPOINT_MAGIC) {
            return Err(journal(format!("missing magic line `{CHECKPOINT_MAGIC}`")));
        }
        let mut fields = std::collections::BTreeMap::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| journal(format!("malformed line `{line}` (expected key=value)")))?;
            fields.insert(key.to_string(), value.to_string());
        }
        let take = |key: &str| -> Result<String, CdsError> {
            fields.get(key).cloned().ok_or_else(|| journal(format!("missing field `{key}`")))
        };
        let int = |key: &str| -> Result<u64, CdsError> {
            let raw = take(key)?;
            raw.parse::<u64>()
                .map_err(|_| journal(format!("field `{key}` is not an integer: `{raw}`")))
        };
        let id_list = |key: &str| -> Result<Vec<u32>, CdsError> {
            let raw = take(key)?;
            if raw.is_empty() {
                return Ok(Vec::new());
            }
            raw.split(',')
                .map(|s| {
                    s.parse::<u32>()
                        .map_err(|_| journal(format!("field `{key}` has a bad index: `{s}`")))
                })
                .collect()
        };

        let schema_version = int("schema_version")? as u32;
        if schema_version != CHECKPOINT_SCHEMA_VERSION {
            return Err(journal(format!(
                "unsupported schema_version {schema_version} (expected {CHECKPOINT_SCHEMA_VERSION})"
            )));
        }
        let fault_seed = match take("fault_seed")?.as_str() {
            "none" => None,
            raw => Some(
                raw.parse::<u64>()
                    .map_err(|_| journal(format!("fault_seed is not an integer: `{raw}`")))?,
            ),
        };
        let completed_raw = take("completed")?;
        let mut completed = Vec::new();
        if !completed_raw.is_empty() {
            for item in completed_raw.split(',') {
                let mut parts = item.split(':');
                let (Some(idx), Some(cycle), Some(bits), None) =
                    (parts.next(), parts.next(), parts.next(), parts.next())
                else {
                    return Err(journal(format!("completed entry `{item}` is not idx:cycle:bits")));
                };
                let index = idx
                    .parse::<u32>()
                    .map_err(|_| journal(format!("completed entry `{item}` has a bad index")))?;
                let done_cycle = cycle
                    .parse::<Cycle>()
                    .map_err(|_| journal(format!("completed entry `{item}` has a bad cycle")))?;
                let bits = u64::from_str_radix(bits, 16).map_err(|_| {
                    journal(format!("completed entry `{item}` has bad spread bits"))
                })?;
                completed.push(CompletedOption {
                    index,
                    done_cycle,
                    spread_bps: f64::from_bits(bits),
                });
            }
        }
        // The commit marker makes truncation detectable: a journal cut
        // short loses the marker line (missing field) or keeps it while
        // losing completion entries (count mismatch) — either way a
        // typed error, never a silently smaller checkpoint.
        let commit = int("commit")? as usize;
        if commit != completed.len() {
            return Err(journal(format!(
                "commit marker records {commit} completions but the journal holds {} \
                 (truncated journal?)",
                completed.len()
            )));
        }

        let checkpoint = Checkpoint {
            schema_version,
            total_options: int("total_options")? as u32,
            cadence: int("cadence")? as u32,
            watermark_cycle: int("watermark_cycle")?,
            fault_seed,
            // Optional for backward compatibility: journals written
            // before scenario labels existed parse as unlabelled.
            scenario: fields.get("scenario").cloned(),
            admitted: id_list("admitted")?,
            shed: id_list("shed")?,
            completed,
        };
        checkpoint.validate()?;
        Ok(checkpoint)
    }

    /// Internal-consistency checks shared by [`Checkpoint::parse`] and
    /// the resume entry points.
    pub fn validate(&self) -> Result<(), CdsError> {
        let journal = |reason: String| CdsError::Journal { reason };
        if let Some(s) = &self.scenario {
            if s.is_empty() || s.chars().any(char::is_whitespace) {
                return Err(journal(format!(
                    "scenario label `{s}` must be a non-empty single token"
                )));
            }
        }
        let total = self.total_options;
        for (name, ids) in [("admitted", &self.admitted), ("shed", &self.shed)] {
            if let Some(&bad) = ids.iter().find(|&&i| i >= total) {
                return Err(journal(format!("{name} index {bad} >= total_options {total}")));
            }
        }
        let admitted: std::collections::BTreeSet<u32> = self.admitted.iter().copied().collect();
        if admitted.len() != self.admitted.len() {
            return Err(journal("admitted contains duplicate indices".to_string()));
        }
        let mut seen = std::collections::BTreeSet::new();
        for c in &self.completed {
            if !admitted.contains(&c.index) {
                return Err(journal(format!("completed option {} was never admitted", c.index)));
            }
            if !seen.insert(c.index) {
                return Err(journal(format!("option {} completed twice", c.index)));
            }
            if !c.spread_bps.is_finite() {
                return Err(journal(format!("option {} has a non-finite spread", c.index)));
            }
        }
        if self.shed.iter().any(|i| admitted.contains(i)) {
            return Err(journal("an option is both admitted and shed".to_string()));
        }
        Ok(())
    }
}

/// Derive the checkpoint stream of a finished streaming run.
///
/// Completions are ordered by completion cycle (the order a write-ahead
/// journal on real hardware would observe); a cumulative checkpoint is
/// emitted after every `cadence` completions, plus a terminal commit
/// record covering any partial tail. A crash scenario therefore resumes
/// from the last *cadence-aligned* checkpoint and loses at most one
/// interval of work.
pub fn streaming_checkpoints(
    total_options: u32,
    report: &StreamingReport,
    fault_seed: Option<u64>,
    scenario: Option<&str>,
    cadence: u32,
) -> Result<Vec<Checkpoint>, CdsError> {
    if cadence == 0 {
        return Err(CdsError::Config { reason: "checkpoint cadence must be at least 1" });
    }
    let shed: std::collections::BTreeSet<u32> = report.shed_indices.iter().copied().collect();
    let lost: std::collections::BTreeSet<u32> = report.lost_indices.iter().copied().collect();
    let admitted: Vec<u32> = (0..total_options).filter(|i| !shed.contains(i)).collect();
    // spans/spreads are aligned, in ascending original-index order over
    // the completed set = admitted minus lost.
    let mut completions: Vec<CompletedOption> = admitted
        .iter()
        .filter(|i| !lost.contains(i))
        .zip(report.spans.iter().zip(&report.spreads))
        .map(|(&index, (&(_, done_cycle), &spread_bps))| CompletedOption {
            index,
            done_cycle,
            spread_bps,
        })
        .collect();
    completions.sort_by_key(|c| (c.done_cycle, c.index));
    checkpoint_stream(
        total_options,
        cadence,
        fault_seed,
        scenario,
        &admitted,
        &report.shed_indices,
        &completions,
    )
}

/// Cut a completion-ordered stream into cumulative cadence-aligned
/// checkpoints plus a terminal commit record covering any partial tail.
///
/// `completions` must already be in journal (completion) order; every
/// emitted checkpoint is a prefix of it, so a consumer holding the
/// `k`-th checkpoint has lost at most one cadence interval relative to
/// the `k+1`-th.
#[allow(clippy::too_many_arguments)]
pub fn checkpoint_stream(
    total_options: u32,
    cadence: u32,
    fault_seed: Option<u64>,
    scenario: Option<&str>,
    admitted: &[u32],
    shed: &[u32],
    completions: &[CompletedOption],
) -> Result<Vec<Checkpoint>, CdsError> {
    if cadence == 0 {
        return Err(CdsError::Config { reason: "checkpoint cadence must be at least 1" });
    }
    let mut out = Vec::new();
    let n = completions.len();
    let mut cut = cadence as usize;
    loop {
        let end = cut.min(n);
        let at_boundary = end == cut;
        let is_tail = end == n;
        if at_boundary || is_tail {
            out.push(Checkpoint {
                schema_version: CHECKPOINT_SCHEMA_VERSION,
                total_options,
                cadence,
                watermark_cycle: completions[..end].last().map_or(0, |c| c.done_cycle),
                fault_seed,
                scenario: scenario.map(str::to_string),
                admitted: admitted.to_vec(),
                shed: shed.to_vec(),
                completed: completions[..end].to_vec(),
            });
        }
        if is_tail {
            break;
        }
        cut += cadence as usize;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            schema_version: CHECKPOINT_SCHEMA_VERSION,
            total_options: 6,
            cadence: 2,
            watermark_cycle: 123_456,
            fault_seed: Some(0xD2),
            scenario: Some("corrupt-spread".to_string()),
            admitted: vec![0, 1, 2, 4, 5],
            shed: vec![3],
            completed: vec![
                CompletedOption { index: 0, done_cycle: 101_000, spread_bps: 87.125 },
                CompletedOption { index: 2, done_cycle: 123_456, spread_bps: 90.062_5 },
            ],
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let ckpt = sample();
        let parsed = match Checkpoint::parse(&ckpt.to_text()) {
            Ok(c) => c,
            Err(e) => panic!("round trip failed: {e}"),
        };
        assert_eq!(parsed, ckpt);
        // Bit-exactness survives an awkward spread value too.
        let mut odd = ckpt;
        odd.completed[0].spread_bps = 1.0 / 3.0 * 271.0;
        let parsed = match Checkpoint::parse(&odd.to_text()) {
            Ok(c) => c,
            Err(e) => panic!("round trip failed: {e}"),
        };
        assert_eq!(parsed.completed[0].spread_bps.to_bits(), odd.completed[0].spread_bps.to_bits());
    }

    #[test]
    fn parse_rejects_malformed_input_with_typed_errors() {
        let cases = [
            ("", "magic"),
            ("cds-checkpoint v1\nnonsense\n", "key=value"),
            ("cds-checkpoint v1\nschema_version=1\n", "missing field"),
            (
                "cds-checkpoint v1\nschema_version=2\ntotal_options=1\ncadence=1\n\
                 watermark_cycle=0\nfault_seed=none\nadmitted=0\nshed=\ncompleted=\n",
                "unsupported schema_version",
            ),
            (
                "cds-checkpoint v1\nschema_version=1\ntotal_options=1\ncadence=1\n\
                 watermark_cycle=0\nfault_seed=none\nadmitted=0\nshed=\ncompleted=0:5\n",
                "idx:cycle:bits",
            ),
            (
                "cds-checkpoint v1\nschema_version=1\ntotal_options=1\ncadence=1\n\
                 watermark_cycle=0\nfault_seed=xyz\nadmitted=0\nshed=\ncompleted=\n",
                "fault_seed",
            ),
            // A journal missing its terminal commit marker (truncated
            // after the completed line) must not pass.
            (
                "cds-checkpoint v1\nschema_version=1\ntotal_options=1\ncadence=1\n\
                 watermark_cycle=0\nfault_seed=none\nadmitted=0\nshed=\ncompleted=\n",
                "missing field `commit`",
            ),
            // A commit marker disagreeing with the completion count is a
            // truncation mid-list.
            (
                "cds-checkpoint v1\nschema_version=1\ntotal_options=2\ncadence=1\n\
                 watermark_cycle=9\nfault_seed=none\nadmitted=0,1\nshed=\n\
                 completed=0:9:4056000000000000\ncommit=2\n",
                "truncated journal",
            ),
        ];
        for (text, needle) in cases {
            match Checkpoint::parse(text) {
                Err(CdsError::Journal { reason }) => {
                    assert!(reason.contains(needle), "`{reason}` should mention `{needle}`");
                }
                other => panic!("expected Journal error mentioning `{needle}`, got {other:?}"),
            }
        }
    }

    #[test]
    fn scenario_label_is_optional_and_validated() {
        // Unlabelled checkpoints omit the line and parse back to None —
        // also the backward-compatibility path for journals written
        // before scenario labels existed.
        let mut ckpt = sample();
        ckpt.scenario = None;
        assert!(!ckpt.to_text().contains("scenario"));
        let parsed = match Checkpoint::parse(&ckpt.to_text()) {
            Ok(c) => c,
            Err(e) => panic!("unlabelled round trip failed: {e}"),
        };
        assert_eq!(parsed.scenario, None);
        // The harness scenario literally named "none" survives the trip
        // (no sentinel collision with the omitted-line encoding).
        ckpt.scenario = Some("none".to_string());
        let parsed = match Checkpoint::parse(&ckpt.to_text()) {
            Ok(c) => c,
            Err(e) => panic!("labelled round trip failed: {e}"),
        };
        assert_eq!(parsed.scenario.as_deref(), Some("none"));
        // Labels that would corrupt the line format are rejected.
        for bad in ["", "has space", "line\nbreak"] {
            ckpt.scenario = Some(bad.to_string());
            assert!(ckpt.validate().is_err(), "label `{bad:?}` must be rejected");
        }
    }

    #[test]
    fn validate_rejects_inconsistent_watermarks() {
        let mut ckpt = sample();
        ckpt.completed.push(CompletedOption { index: 3, done_cycle: 1, spread_bps: 1.0 });
        let err = ckpt.validate();
        assert!(matches!(err, Err(CdsError::Journal { .. })), "shed option completed: {err:?}");

        let mut ckpt = sample();
        ckpt.completed.push(ckpt.completed[0]);
        assert!(ckpt.validate().is_err(), "duplicate completion must be rejected");

        let mut ckpt = sample();
        ckpt.admitted.push(99);
        assert!(ckpt.validate().is_err(), "admitted index beyond total must be rejected");
    }
}
