//! Property tests for the dependency arrangement (ISSUE satellite):
//!
//! 1. **Exactness.** For every curve knot, the arrangement's affected
//!    set equals the set of options whose pricing pass *actually reads*
//!    that knot — validated against a recording curve walk that
//!    re-derives the schedule and the interpolation branches
//!    independently of both the arrangement and `SegmentIndex`.
//! 2. **Insertion-order stability.** The affected sets (as option
//!    multisets) do not depend on the order options were inserted.
//! 3. **No leaks.** Removing an option removes every index entry it
//!    owns; removed options never appear in affected sets and freed ids
//!    are recycled without ghosts.

use cds_engine::portfolio::PortfolioState;
use cds_quant::option::{CdsOption, MarketData, PortfolioGenerator};
use std::collections::BTreeSet;

/// Knot tenors of a curve.
fn tenors(curve: &cds_quant::curve::Curve) -> Vec<f64> {
    curve.points().iter().map(|p| p.tenor).collect()
}

/// Which knots a linear interpolation at time `x` reads — a deliberate
/// reimplementation of the `Curve`/`SegmentIndex` branch structure with
/// a linear scan, so a bug in the real index cannot hide itself here.
fn interp_reads(ts: &[f64], x: f64, into: &mut BTreeSet<usize>) {
    let last = ts.len() - 1;
    if x >= ts[last] {
        into.insert(last);
    } else if x <= ts[0] {
        into.insert(0);
    } else {
        for lo in 0..last {
            if ts[lo] < x && x <= ts[lo + 1] {
                into.insert(lo);
                into.insert(lo + 1);
                return;
            }
        }
        unreachable!("interior read at {x} found no segment");
    }
}

/// Which knots a cumulative-hazard evaluation at time `t` reads: the
/// prefix of stored trapezoid terms plus the bracketing values.
fn hazard_reads(ts: &[f64], t: f64, into: &mut BTreeSet<usize>) {
    let last = ts.len() - 1;
    if t <= 0.0 {
        return;
    }
    if t <= ts[0] {
        into.insert(0);
    } else if t >= ts[last] {
        into.extend(0..=last);
    } else {
        for lo in 0..last {
            if ts[lo] < t && t <= ts[lo + 1] {
                // The stored prefix integral through ts[lo] consumes
                // values 0..=lo; the in-segment trapezoid reads lo+1 too.
                into.extend(0..=lo + 1);
                return;
            }
        }
        unreachable!("interior hazard read at {t} found no segment");
    }
}

/// Every curve knot the pricing pass of `option` reads, recorded by
/// walking the scalar schedule loop's exact time sequence.
fn recorded_reads(
    interest_ts: &[f64],
    hazard_ts: &[f64],
    option: &CdsOption,
) -> (BTreeSet<usize>, BTreeSet<usize>) {
    let mut interest = BTreeSet::new();
    let mut hazard = BTreeSet::new();
    let delta = 1.0 / option.frequency.per_year() as f64;
    let mut prev_t = 0.0f64;
    let mut i = 1usize;
    loop {
        let step = delta * i as f64;
        let last = step >= option.maturity;
        let t = if last { option.maturity } else { step };
        let mid = 0.5 * (prev_t + t);
        hazard_reads(hazard_ts, t, &mut hazard); // survival(t)
        interp_reads(interest_ts, t, &mut interest); // discount_factor(t)
        interp_reads(interest_ts, mid, &mut interest); // discount_factor(mid)
        if last {
            break;
        }
        prev_t = t;
        i += 1;
        assert!(i <= 4_000_000, "runaway schedule in recorder");
    }
    (interest, hazard)
}

/// A stable value key for comparing option multisets across differently
/// ordered insertions.
fn option_key(o: &CdsOption) -> (u64, u32, u64) {
    (o.maturity.to_bits(), o.frequency.per_year(), o.recovery_rate.to_bits())
}

#[test]
fn affected_sets_equal_recorded_read_sets() {
    for seed in [1u64, 8, 21] {
        let market = MarketData::paper_workload_sized(seed, 48);
        let its = tenors(&market.interest);
        let hts = tenors(&market.hazard);
        let options = PortfolioGenerator::new(seed.wrapping_mul(31) + 5).portfolio(96);
        let mut state = PortfolioState::new();
        let ids: Vec<u32> = options.iter().map(|&o| state.insert(o)).collect();
        let recorded: Vec<_> = options.iter().map(|o| recorded_reads(&its, &hts, o)).collect();

        let mut affected = Vec::new();
        for knot in 0..its.len() {
            state.affected_by_interest(&its, knot, &mut affected);
            for ((&id, o), (interest, _)) in ids.iter().zip(&options).zip(&recorded) {
                assert_eq!(
                    affected.contains(&id),
                    interest.contains(&knot),
                    "seed {seed}: interest knot {knot} vs option {o:?}"
                );
            }
        }
        for knot in 0..hts.len() {
            state.affected_by_hazard(&hts, knot, &mut affected);
            for ((&id, o), (_, hazard)) in ids.iter().zip(&options).zip(&recorded) {
                assert_eq!(
                    affected.contains(&id),
                    hazard.contains(&knot),
                    "seed {seed}: hazard knot {knot} vs option {o:?}"
                );
            }
        }
    }
}

#[test]
fn affected_sets_are_stable_under_insertion_order() {
    let market = MarketData::paper_workload_sized(4, 32);
    let its = tenors(&market.interest);
    let hts = tenors(&market.hazard);
    let options = PortfolioGenerator::new(77).portfolio(64);

    // Three insertion orders: as generated, reversed, and interleaved.
    let mut forward = PortfolioState::new();
    let fwd_ids: Vec<u32> = options.iter().map(|&o| forward.insert(o)).collect();
    let mut reversed = PortfolioState::new();
    let rev_ids: Vec<u32> = options.iter().rev().map(|&o| reversed.insert(o)).collect();
    let mut interleaved = PortfolioState::new();
    let mut il_pairs: Vec<(u32, CdsOption)> = Vec::new();
    for pair in options.chunks(2).rev() {
        for &o in pair {
            il_pairs.push((interleaved.insert(o), o));
        }
    }

    let mut a = Vec::new();
    let mut b = Vec::new();
    let mut c = Vec::new();
    let keys = |ids: &[u32], opts: &[CdsOption], affected: &Vec<u32>| -> Vec<(u64, u32, u64)> {
        let mut keys: Vec<_> = affected
            .iter()
            .map(|id| {
                let pos = ids.iter().position(|i| i == id).expect("unknown id");
                option_key(&opts[pos])
            })
            .collect();
        keys.sort_unstable();
        keys
    };
    let rev_options: Vec<CdsOption> = options.iter().rev().copied().collect();
    let (il_ids, il_options): (Vec<u32>, Vec<CdsOption>) = il_pairs.into_iter().unzip();
    for knot in 0..its.len() {
        forward.affected_by_interest(&its, knot, &mut a);
        reversed.affected_by_interest(&its, knot, &mut b);
        interleaved.affected_by_interest(&its, knot, &mut c);
        let fwd = keys(&fwd_ids, &options, &a);
        assert_eq!(fwd, keys(&rev_ids, &rev_options, &b), "interest knot {knot} (reversed)");
        assert_eq!(fwd, keys(&il_ids, &il_options, &c), "interest knot {knot} (interleaved)");
    }
    for knot in 0..hts.len() {
        forward.affected_by_hazard(&hts, knot, &mut a);
        reversed.affected_by_hazard(&hts, knot, &mut b);
        interleaved.affected_by_hazard(&hts, knot, &mut c);
        let fwd = keys(&fwd_ids, &options, &a);
        assert_eq!(fwd, keys(&rev_ids, &rev_options, &b), "hazard knot {knot} (reversed)");
        assert_eq!(fwd, keys(&il_ids, &il_options, &c), "hazard knot {knot} (interleaved)");
    }
}

#[test]
fn removal_leaves_no_index_entries_behind() {
    let market = MarketData::paper_workload_sized(6, 32);
    let its = tenors(&market.interest);
    let hts = tenors(&market.hazard);
    let options = PortfolioGenerator::new(123).portfolio(80);
    let mut state = PortfolioState::new();
    let ids: Vec<u32> = options.iter().map(|&o| state.insert(o)).collect();
    assert_eq!(state.index_entries(), 3 * options.len());

    // Remove a scattered half and verify no affected set mentions them.
    let removed: Vec<u32> = ids.iter().copied().step_by(2).collect();
    for &id in &removed {
        assert!(state.remove(id).is_some());
    }
    assert_eq!(state.index_entries(), 3 * (options.len() - removed.len()));
    let mut affected = Vec::new();
    for knot in 0..its.len() {
        state.affected_by_interest(&its, knot, &mut affected);
        for id in &removed {
            assert!(!affected.contains(id), "removed id {id} in interest knot {knot}");
        }
    }
    for knot in 0..hts.len() {
        state.affected_by_hazard(&hts, knot, &mut affected);
        for id in &removed {
            assert!(!affected.contains(id), "removed id {id} in hazard knot {knot}");
        }
    }

    // Remove everything: the index must be completely empty.
    let survivors: Vec<u32> = ids.iter().copied().skip(1).step_by(2).collect();
    for &id in &survivors {
        assert!(state.remove(id).is_some());
    }
    assert!(state.is_empty());
    assert_eq!(state.index_entries(), 0);
    for knot in 0..its.len() {
        state.affected_by_interest(&its, knot, &mut affected);
        assert!(affected.is_empty());
    }

    // Recycled slots must behave like fresh ones (no stale entries).
    let reborn = state.insert(options[0]);
    assert!(ids.contains(&reborn), "freed ids should be recycled");
    assert_eq!(state.index_entries(), 3);
}
