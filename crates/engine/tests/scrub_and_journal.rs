//! Hostile-input coverage for the two recovery surfaces:
//!
//! * the result scrubber's repair path — corrupt spreads must come back
//!   as the reference values, idempotently;
//! * checkpoint-journal parsing — every truncation and byte corruption
//!   of a *real* journal must produce a typed error or a
//!   still-consistent checkpoint, never a panic.

use cds_engine::checkpoint::Checkpoint;
use cds_engine::error::CdsError;
use cds_engine::multi::MultiEngine;
use cds_engine::scrub::{scrub_spreads, ScrubPolicy};
use cds_quant::cds::CdsPricer;
use cds_quant::option::{CdsOption, MarketData, PaymentFrequency};
use cds_quant::ulp::UlpComparator;

fn workload() -> (MarketData<f64>, Vec<CdsOption>, Vec<(u32, f64)>) {
    let market = MarketData::paper_workload(21);
    let pricer = CdsPricer::new(market.clone());
    let options: Vec<CdsOption> = (0..10)
        .map(|i| CdsOption::new(0.5 + 0.7 * i as f64, PaymentFrequency::Quarterly, 0.40))
        .collect();
    let priced: Vec<(u32, f64)> =
        options.iter().enumerate().map(|(i, o)| (i as u32, pricer.price(o).spread_bps)).collect();
    (market, options, priced)
}

/// A checkpoint journal from an actual resilient checkpointed run, not a
/// hand-made miniature — so the hostile-input sweeps below exercise the
/// full field surface (fault seed, admitted/shed lists, completions).
fn real_journal() -> String {
    let market = MarketData::paper_workload(9);
    let options: Vec<CdsOption> = (0..8)
        .map(|i| CdsOption::new(1.0 + 0.5 * i as f64, PaymentFrequency::Quarterly, 0.40))
        .collect();
    let multi = match MultiEngine::new(market, 2) {
        Ok(m) => m,
        Err(e) => panic!("{e}"),
    };
    let mut checkpoints: Vec<Checkpoint> = Vec::new();
    if let Err(e) = multi.price_batch_resilient_checkpointed(&options, None, 2, None, 3, |c| {
        checkpoints.push(c.clone());
    }) {
        panic!("{e}");
    }
    // A mid-run checkpoint (with a genuine partial completion set), not
    // the terminal commit.
    let mid = checkpoints.get(checkpoints.len() / 2).or_else(|| checkpoints.first());
    match mid {
        Some(c) => c.to_text(),
        None => panic!("checkpointed run emitted no journal"),
    }
}

#[test]
fn corrupt_spreads_are_repaired_to_reference_values() {
    let (market, options, mut priced) = workload();
    let golden: Vec<f64> = priced.iter().map(|&(_, s)| s).collect();

    // Three corruption flavours in one batch: non-finite, negative, and
    // envelope-busting huge.
    priced[1].1 = f64::NAN;
    priced[4].1 = -3.0;
    priced[7].1 = 1e9;

    let report = match scrub_spreads(&market, &options, &mut priced, &[], &ScrubPolicy::default()) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    };
    assert_eq!(report.quarantined_indices(), vec![1, 4, 7]);

    // Repair quality: every repaired slot agrees with the reference
    // under the engine ULP budget (the CPU reprice path and the
    // reference pricer share their arithmetic).
    let repaired: Vec<f64> = priced.iter().map(|&(_, s)| s).collect();
    if let Err((i, m)) = UlpComparator::ENGINE_F64.check_all(&repaired, &golden) {
        panic!("slot {i} not repaired to reference: {m}");
    }

    // Idempotence: scrubbing the repaired batch again quarantines
    // nothing, even with the sampled cross-check at full cadence.
    let again = match scrub_spreads(
        &market,
        &options,
        &mut priced,
        &[],
        &ScrubPolicy { cross_check_every: 1 },
    ) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    };
    assert_eq!(
        again.options_quarantined, 0,
        "repair is not a fixed point: {:?}",
        again.quarantined
    );
}

#[test]
fn taint_repair_survives_a_full_cross_check_rescan() {
    let (market, options, mut priced) = workload();
    let golden = priced[3].1;
    priced[3].1 = golden + 0.4; // plausible, inside the envelope

    let report = match scrub_spreads(&market, &options, &mut priced, &[3], &ScrubPolicy::default())
    {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    };
    assert_eq!(report.quarantined_indices(), vec![3]);
    assert!(report.quarantined[0].reason.contains("corruption fault"), "{report:?}");
    if let Err(m) = UlpComparator::ENGINE_F64.check(priced[3].1, golden) {
        panic!("taint repair missed the reference: {m}");
    }
}

#[test]
fn every_truncation_of_a_real_journal_errors_without_panicking() {
    let text = real_journal();
    let full = match Checkpoint::parse(&text) {
        Ok(c) => c,
        Err(e) => panic!("the untruncated journal must parse: {e}"),
    };
    assert!(!full.completed.is_empty(), "mid-run checkpoint should hold completions");

    // Cut the journal at every byte boundary. A strict prefix can stay
    // parseable only when the cut removes nothing but trailing
    // whitespace; everything else must be a typed Journal error — and
    // nothing may panic.
    for cut in 0..text.len() {
        let prefix = &text[..cut];
        match Checkpoint::parse(prefix) {
            Ok(parsed) => {
                assert_eq!(parsed, full, "a {cut}-byte prefix parsed to a different checkpoint");
                assert!(
                    text[cut..].trim().is_empty(),
                    "a {cut}-byte prefix parsed despite dropping real content"
                );
            }
            Err(CdsError::Journal { .. }) => {}
            Err(other) => panic!("truncation at {cut} gave a non-journal error: {other}"),
        }
    }
}

#[test]
fn every_single_byte_corruption_parses_or_errors_but_never_panics() {
    let text = real_journal();
    let full = match Checkpoint::parse(&text) {
        Ok(c) => c,
        Err(e) => panic!("{e}"),
    };
    for i in 0..text.len() {
        let mut corrupted = text.as_bytes().to_vec();
        corrupted[i] = corrupted[i].wrapping_add(1);
        let Ok(corrupted) = String::from_utf8(corrupted) else {
            continue;
        };
        // The contract under corruption: a typed error, or a checkpoint
        // that still passes its own consistency validation. Never a
        // panic, never an inconsistent parse.
        match Checkpoint::parse(&corrupted) {
            Ok(parsed) => {
                if let Err(e) = parsed.validate() {
                    panic!("byte {i}: parse accepted an inconsistent checkpoint: {e}");
                }
            }
            Err(CdsError::Journal { .. }) => {}
            Err(other) => panic!("byte {i}: non-journal error {other}"),
        }
    }
    // Bit-exactness control: the uncorrupted text still round-trips.
    assert_eq!(full.to_text(), text);
}

#[test]
fn non_finite_spread_bits_in_a_journal_are_rejected() {
    let text = real_journal();
    // Replace the first completion's spread bits with +inf's bit
    // pattern; validate() must refuse it as a typed error.
    let Some(pos) = text.find("completed=") else {
        panic!("journal has no completed field");
    };
    let Some(colon) = text[pos..].rfind(':') else {
        panic!("journal has no completion entries");
    };
    let start = pos + colon + 1;
    let end = text[start..].find([',', '\n']).map_or(text.len(), |e| start + e);
    let inf_bits = format!("{:016x}", f64::INFINITY.to_bits());
    let poisoned = format!("{}{}{}", &text[..start], inf_bits, &text[end..]);
    match Checkpoint::parse(&poisoned) {
        Err(CdsError::Journal { reason }) => {
            assert!(reason.contains("non-finite"), "{reason}");
        }
        other => panic!("non-finite spread accepted: {other:?}"),
    }
}
