//! Property tests for the write-ahead run journal: checkpoint text
//! serialisation round-trips bit-for-bit, and resuming an interrupted
//! run from *any* checkpoint reproduces the uninterrupted run's spreads
//! exactly — the recovery guarantee the robustness layer advertises.

use cds_engine::checkpoint::{Checkpoint, CompletedOption, CHECKPOINT_SCHEMA_VERSION};
use cds_engine::config::EngineVariant;
use cds_engine::multi::MultiEngine;
use cds_engine::prelude::*;
use cds_quant::option::{CdsOption, MarketData, PortfolioGenerator};
use dataflow_sim::fault::FaultPlan;
use dataflow_sim::Cycle;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::rc::Rc;

fn market() -> MarketData<f64> {
    MarketData::paper_workload(42)
}

/// A mixed-maturity portfolio so per-option spreads differ and a
/// misplaced index cannot masquerade as a bit-identical resume.
fn portfolio(n: usize) -> Vec<CdsOption> {
    PortfolioGenerator::new(9).portfolio(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `to_text` → `parse` is the identity, including exact f64 spread
    /// bits (stored as hex bit patterns, immune to decimal rounding).
    #[test]
    fn checkpoint_text_round_trips_bit_exactly(
        total in 1u32..64,
        cadence in 1u32..9,
        watermark in 0u64..1_000_000,
        fault_seed in prop_oneof![Just(None), (0u64..u64::MAX).prop_map(Some)],
        scenario in prop_oneof![
            Just(None),
            Just(Some("none".to_string())),
            Just(Some("corrupt-spread".to_string())),
            Just(Some("server".to_string())),
        ],
        spreads in proptest::collection::vec((-1e9f64..1e9, 0u64..1_000_000), 0..12),
    ) {
        // Parse re-validates that every completed option was admitted,
        // so only the first `total` entries can legitimately complete.
        let completed: Vec<CompletedOption> = spreads
            .iter()
            .take(total as usize)
            .enumerate()
            .map(|(i, &(s, c))| CompletedOption {
                index: i as u32,
                done_cycle: c as Cycle,
                spread_bps: s,
            })
            .collect();
        let admitted: Vec<u32> = (0..total).collect();
        let cp = Checkpoint {
            schema_version: CHECKPOINT_SCHEMA_VERSION,
            total_options: total,
            cadence,
            watermark_cycle: watermark as Cycle,
            fault_seed,
            scenario,
            admitted,
            shed: Vec::new(),
            completed,
        };
        let restored = match Checkpoint::parse(&cp.to_text()) {
            Ok(c) => c,
            Err(e) => return Err(TestCaseError::fail(format!("parse failed: {e}"))),
        };
        prop_assert_eq!(&restored, &cp);
        for (a, b) in restored.completed.iter().zip(&cp.completed) {
            prop_assert_eq!(a.spread_bps.to_bits(), b.spread_bps.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Kill a streaming run at a random point, journal at a random
    /// cadence, resume from a random checkpoint (not just the last):
    /// the merged result is bit-identical to the uninterrupted run.
    #[test]
    fn streaming_resume_equals_uninterrupted(
        n in 5usize..10,
        cadence in 1u32..4,
        kill_at in 1usize..5,
        which in 0usize..100,
    ) {
        let shared = Rc::new(market());
        let config = EngineVariant::Vectorised.config();
        let opts = portfolio(n);
        let arrivals: Vec<Cycle> = (0..n as u64).map(|i| i * 30_000).collect();
        let clean = run_streaming(shared.clone(), &config, &opts, &arrivals);
        prop_assert_eq!(clean.spreads.len(), n);

        let kill_cycle = arrivals[kill_at.min(n - 1)];
        let policy = StreamingPolicy {
            fault_plan: Some(FaultPlan::new(1).kill_region("", kill_cycle)),
            ..Default::default()
        };
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let killed = run_streaming_checkpointed(
            shared.clone(),
            &config,
            &opts,
            &arrivals,
            &policy,
            cadence,
            |c| checkpoints.push(c.clone()),
        );
        match killed {
            Ok(_) => {}
            Err(e) => return Err(TestCaseError::fail(format!("killed run errored: {e}"))),
        }
        prop_assert!(!checkpoints.is_empty(), "a run always emits a terminal record");

        let cp = &checkpoints[which % checkpoints.len()];
        let resumed = resume_streaming_from(
            shared,
            &config,
            &opts,
            &arrivals,
            &StreamingPolicy::default(),
            cp,
        );
        let resumed = match resumed {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!("resume failed: {e}"))),
        };
        prop_assert_eq!(resumed.options_lost, 0u64);
        prop_assert_eq!(resumed.spreads.len(), n);
        for (i, (a, b)) in resumed.spreads.iter().zip(&clean.spreads).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "option {} diverged: {} vs {}", i, a, b);
        }
    }
}

/// A journal recorded under one scenario must refuse to resume under a
/// *different* requested scenario with a typed [`CdsError::Journal`] —
/// historically this silently replayed the wrong journal (often as an
/// empty run when the checkpoint was complete). Resuming with no
/// requested scenario (`None`) stays legal: that is the "finish the work
/// fault-free" path.
#[test]
fn resume_rejects_scenario_mismatch_with_typed_error() {
    let shared = Rc::new(market());
    let config = EngineVariant::Vectorised.config();
    let n = 6usize;
    let opts = portfolio(n);
    let arrivals: Vec<Cycle> = (0..n as u64).map(|i| i * 30_000).collect();
    let recorded_policy =
        StreamingPolicy { scenario: Some("corrupt-spread".to_string()), ..Default::default() };
    let mut checkpoints: Vec<Checkpoint> = Vec::new();
    let run = run_streaming_checkpointed(
        shared.clone(),
        &config,
        &opts,
        &arrivals,
        &recorded_policy,
        2,
        |c| checkpoints.push(c.clone()),
    );
    if let Err(e) = run {
        panic!("recorded run failed: {e}");
    }
    let last = match checkpoints.last() {
        Some(c) => c.clone(),
        None => panic!("expected checkpoints"),
    };
    assert_eq!(last.scenario.as_deref(), Some("corrupt-spread"));
    // The label survives the text round trip the server journal relies on.
    let restored = match Checkpoint::parse(&last.to_text()) {
        Ok(c) => c,
        Err(e) => panic!("round trip failed: {e}"),
    };
    assert_eq!(restored.scenario.as_deref(), Some("corrupt-spread"));

    // Mismatched request: typed Journal error naming both scenarios.
    let wrong = StreamingPolicy { scenario: Some("none".to_string()), ..Default::default() };
    match resume_streaming_from(shared.clone(), &config, &opts, &arrivals, &wrong, &restored) {
        Err(CdsError::Journal { reason }) => {
            assert!(
                reason.contains("corrupt-spread") && reason.contains("none"),
                "reason must name both scenarios: {reason}"
            );
        }
        other => panic!("mismatched scenario must be a Journal error, got {other:?}"),
    }

    // Matching request and no request both resume fine.
    for policy in [recorded_policy, StreamingPolicy::default()] {
        match resume_streaming_from(shared.clone(), &config, &opts, &arrivals, &policy, &restored) {
            Ok(r) => assert_eq!(r.spreads.len(), n),
            Err(e) => panic!("resume under {:?} must succeed: {e}", policy.scenario),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Multi-engine: an engine dies with no retry budget, the batch run
    /// fails typed but its write-ahead journal survives; resuming from
    /// the last checkpoint completes the batch bit-identically to a
    /// fault-free run.
    #[test]
    fn multi_resume_equals_uninterrupted(
        n in 10usize..22,
        engines in 2usize..4,
        kill_engine in 0usize..4,
        kill_cycle in 20_000u64..80_000,
    ) {
        let multi = match MultiEngine::new(market(), engines) {
            Ok(m) => m,
            Err(e) => return Err(TestCaseError::fail(format!("engines must fit: {e}"))),
        };
        let opts = portfolio(n);
        let clean = multi.price_batch_simulated(&opts);
        let plan = FaultPlan::new(3)
            .kill_region(format!("e{}.", kill_engine % engines), kill_cycle as Cycle);
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let run = multi.price_batch_resilient_checkpointed(
            &opts,
            Some(&plan),
            0,
            None,
            2,
            |c| checkpoints.push(c.clone()),
        );
        prop_assert!(!checkpoints.is_empty(), "journal must survive the failed run");
        let last = &checkpoints[checkpoints.len() - 1];
        match run {
            // No retry budget: losing any work is a typed exhaustion.
            Err(CdsError::Exhausted { .. }) => prop_assert!(!last.is_complete()),
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
            // The kill may land after this engine's chunk completed.
            Ok(_) => prop_assert!(last.is_complete()),
        }
        let resumed = match multi.resume_batch_resilient(&opts, last, 2) {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!("resume failed: {e}"))),
        };
        prop_assert_eq!(resumed.spreads.len(), n);
        for (i, (a, b)) in resumed.spreads.iter().zip(&clean.spreads).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "option {} diverged: {} vs {}", i, a, b);
        }
    }
}
