//! The explicit degradation ladder.
//!
//! The server is always on exactly one rung. Telemetry (queue pressure
//! and engine-shard deaths) picks a *target* rung through the pure
//! [`DegradationLadder::target`] function; the stateful
//! [`DegradationLadder::observe`] then moves **at most one rung per
//! observation**, immediately when degrading and only after a
//! hysteresis streak of calm observations when recovering. Monotone
//! single-step movement is what makes the ladder auditable: an operator
//! reading the rung counter sees every intermediate state, and the
//! property tests in `tests/ladder_props.rs` hold the ladder to it.

/// One rung of the degradation ladder, ordered from healthiest to most
/// degraded. `Ord` follows severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Full service: every valid quote is admitted and priced on its
    /// home shard.
    Healthy = 0,
    /// Queue pressure above the shed watermark: low-priority quotes are
    /// shed with a `Retry-After` hint; high-priority quotes still serve.
    ShedLowPriority = 1,
    /// At least one engine shard is dead (or pressure keeps climbing):
    /// quotes are priced inline on the CPU reference engine, which is
    /// bit-identical to the shard path and cannot die with the shards.
    CpuFallback = 2,
    /// Queue pressure above the reject watermark: every quote is
    /// rejected with a `Retry-After` hint until pressure recedes.
    RejectRetryAfter = 3,
}

impl Rung {
    /// All rungs in severity order.
    pub const ALL: [Rung; 4] =
        [Rung::Healthy, Rung::ShedLowPriority, Rung::CpuFallback, Rung::RejectRetryAfter];

    /// Severity index, 0 (healthy) to 3 (reject).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Rung from a severity index, saturating at the worst rung.
    pub fn from_index(i: usize) -> Rung {
        *Rung::ALL.get(i).unwrap_or(&Rung::RejectRetryAfter)
    }

    /// Stable wire/telemetry name.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Healthy => "healthy",
            Rung::ShedLowPriority => "shed-low-priority",
            Rung::CpuFallback => "cpu-fallback",
            Rung::RejectRetryAfter => "reject-retry-after",
        }
    }

    /// Inverse of [`Rung::name`].
    pub fn from_name(name: &str) -> Option<Rung> {
        Rung::ALL.into_iter().find(|r| r.name() == name)
    }

    /// One rung worse (saturating).
    pub fn worse(self) -> Rung {
        Rung::from_index(self.index().saturating_add(1))
    }

    /// One rung better (saturating).
    pub fn better(self) -> Rung {
        Rung::from_index(self.index().saturating_sub(1))
    }
}

/// The counters the ladder observes; a point-in-time snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LadderTelemetry {
    /// Accepted-but-unanswered quotes (in-flight depth).
    pub queue_depth: u64,
    /// In-flight capacity the admission layer enforces.
    pub queue_capacity: u64,
    /// Engine shards currently marked dead.
    pub shards_dead: usize,
    /// Total engine shards.
    pub shards_total: usize,
    /// The write-ahead journal hit a storage failure (ENOSPC, EIO, a
    /// short write) and its writer is fail-stop. Durability can no
    /// longer be promised, so new quotes must be refused rather than
    /// served unjournalled.
    pub wal_degraded: bool,
}

impl LadderTelemetry {
    /// Queue occupancy as a fraction of capacity (0 when capacity is 0).
    pub fn queue_fraction(&self) -> f64 {
        if self.queue_capacity == 0 {
            0.0
        } else {
            self.queue_depth as f64 / self.queue_capacity as f64
        }
    }
}

/// Watermarks and hysteresis for the ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderConfig {
    /// Queue fraction at or above which low-priority load is shed.
    pub shed_watermark: f64,
    /// Queue fraction at or above which everything is rejected.
    pub reject_watermark: f64,
    /// Consecutive calm observations required before stepping one rung
    /// back toward healthy.
    pub recovery_observations: u32,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig { shed_watermark: 0.5, reject_watermark: 0.9, recovery_observations: 8 }
    }
}

impl LadderConfig {
    /// Reject nonsensical watermarks up front so a misconfigured server
    /// fails at startup, not mid-incident.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !(self.shed_watermark > 0.0 && self.shed_watermark < 1.0) {
            return Err("shed watermark must be in (0, 1)");
        }
        if !(self.reject_watermark > 0.0 && self.reject_watermark <= 1.0) {
            return Err("reject watermark must be in (0, 1]");
        }
        if self.shed_watermark >= self.reject_watermark {
            return Err("shed watermark must be below the reject watermark");
        }
        if self.recovery_observations == 0 {
            return Err("recovery requires at least one calm observation");
        }
        Ok(())
    }
}

/// The stateful ladder: current rung plus the calm streak driving
/// hysteresis on recovery.
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    config: LadderConfig,
    rung: Rung,
    calm_streak: u32,
}

impl DegradationLadder {
    /// A ladder starting on [`Rung::Healthy`].
    ///
    /// # Errors
    /// Propagates [`LadderConfig::validate`] failures.
    pub fn new(config: LadderConfig) -> Result<Self, &'static str> {
        config.validate()?;
        Ok(DegradationLadder { config, rung: Rung::Healthy, calm_streak: 0 })
    }

    /// Current rung.
    pub fn rung(&self) -> Rung {
        self.rung
    }

    /// The rung the telemetry calls for, independent of history. Pure
    /// and monotone: strictly worse telemetry never yields a healthier
    /// target.
    ///
    /// Overload contributes `healthy < shed < reject`; any dead shard
    /// contributes `cpu-fallback` (the CPU path cannot die with the
    /// shards); a degraded journal contributes `reject-retry-after`
    /// outright — the server promises durability-before-dispatch, and a
    /// fail-stop journal writer cannot keep it, so quotes are refused
    /// with a retry hint until an operator restarts onto healthy
    /// storage (the degraded flag is sticky in-process). The target is
    /// the worst of the pressures.
    pub fn target(telemetry: &LadderTelemetry, config: &LadderConfig) -> Rung {
        let qf = telemetry.queue_fraction();
        let overload = if qf >= config.reject_watermark {
            Rung::RejectRetryAfter
        } else if qf >= config.shed_watermark {
            Rung::ShedLowPriority
        } else {
            Rung::Healthy
        };
        let death = if telemetry.shards_dead > 0 { Rung::CpuFallback } else { Rung::Healthy };
        let storage = if telemetry.wal_degraded { Rung::RejectRetryAfter } else { Rung::Healthy };
        overload.max(death).max(storage)
    }

    /// Feed one telemetry snapshot and return the (possibly updated)
    /// rung. Degrades by at most one rung immediately; recovers by at
    /// most one rung after `recovery_observations` consecutive
    /// observations whose target is healthier than the current rung.
    pub fn observe(&mut self, telemetry: &LadderTelemetry) -> Rung {
        let target = Self::target(telemetry, &self.config);
        match target.cmp(&self.rung) {
            std::cmp::Ordering::Greater => {
                self.calm_streak = 0;
                self.rung = self.rung.worse();
            }
            std::cmp::Ordering::Less => {
                self.calm_streak += 1;
                if self.calm_streak >= self.config.recovery_observations {
                    self.calm_streak = 0;
                    self.rung = self.rung.better();
                }
            }
            std::cmp::Ordering::Equal => self.calm_streak = 0,
        }
        self.rung
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calm() -> LadderTelemetry {
        LadderTelemetry {
            queue_depth: 0,
            queue_capacity: 64,
            shards_dead: 0,
            shards_total: 4,
            wal_degraded: false,
        }
    }

    fn saturated() -> LadderTelemetry {
        LadderTelemetry { queue_depth: 64, ..calm() }
    }

    #[test]
    fn default_config_validates() {
        LadderConfig::default().validate().expect("default must be valid");
    }

    #[test]
    fn bad_configs_are_rejected() {
        for bad in [
            LadderConfig { shed_watermark: 0.0, ..Default::default() },
            LadderConfig { reject_watermark: 1.5, ..Default::default() },
            LadderConfig { shed_watermark: 0.9, reject_watermark: 0.5, ..Default::default() },
            LadderConfig { recovery_observations: 0, ..Default::default() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must not validate");
        }
    }

    #[test]
    fn target_tracks_watermarks_and_deaths() {
        let c = LadderConfig::default();
        assert_eq!(DegradationLadder::target(&calm(), &c), Rung::Healthy);
        let shed = LadderTelemetry { queue_depth: 32, ..calm() };
        assert_eq!(DegradationLadder::target(&shed, &c), Rung::ShedLowPriority);
        assert_eq!(DegradationLadder::target(&saturated(), &c), Rung::RejectRetryAfter);
        let dead = LadderTelemetry { shards_dead: 1, ..calm() };
        assert_eq!(DegradationLadder::target(&dead, &c), Rung::CpuFallback);
        // Death and overload combine to the worse of the two.
        let both = LadderTelemetry { shards_dead: 1, ..saturated() };
        assert_eq!(DegradationLadder::target(&both, &c), Rung::RejectRetryAfter);
    }

    #[test]
    fn a_degraded_journal_targets_reject_outright() {
        let c = LadderConfig::default();
        let degraded = LadderTelemetry { wal_degraded: true, ..calm() };
        assert_eq!(DegradationLadder::target(&degraded, &c), Rung::RejectRetryAfter);
        // It dominates every other pressure combination.
        let busy = LadderTelemetry { wal_degraded: true, shards_dead: 1, ..calm() };
        assert_eq!(DegradationLadder::target(&busy, &c), Rung::RejectRetryAfter);
    }

    #[test]
    fn degrades_one_rung_per_observation_and_recovers_with_hysteresis() {
        let cfg = LadderConfig { recovery_observations: 3, ..Default::default() };
        let mut ladder = DegradationLadder::new(cfg).expect("valid");
        // Saturation climbs 0 → 1 → 2 → 3, one rung per observation.
        assert_eq!(ladder.observe(&saturated()), Rung::ShedLowPriority);
        assert_eq!(ladder.observe(&saturated()), Rung::CpuFallback);
        assert_eq!(ladder.observe(&saturated()), Rung::RejectRetryAfter);
        assert_eq!(ladder.observe(&saturated()), Rung::RejectRetryAfter);
        // Recovery needs the calm streak, then steps down one at a time.
        assert_eq!(ladder.observe(&calm()), Rung::RejectRetryAfter);
        assert_eq!(ladder.observe(&calm()), Rung::RejectRetryAfter);
        assert_eq!(ladder.observe(&calm()), Rung::CpuFallback);
        assert_eq!(ladder.observe(&calm()), Rung::CpuFallback);
        assert_eq!(ladder.observe(&calm()), Rung::CpuFallback);
        assert_eq!(ladder.observe(&calm()), Rung::ShedLowPriority);
    }

    #[test]
    fn zero_capacity_reads_as_idle() {
        let t = LadderTelemetry { queue_depth: 10, queue_capacity: 0, ..calm() };
        assert_eq!(t.queue_fraction(), 0.0);
    }
}
