//! The serving core: sharded ingestion, admission, retries, drain.
//!
//! ## Thread topology
//!
//! - one **acceptor** owning the listener; it also runs the drain state
//!   machine,
//! - one **shard worker** per shard, each owning the receiving end of
//!   its ingestion queue (quotes are homed by `id % shards`),
//! - one **hedger/timer** thread running the deadline-aware retry and
//!   hedging schedule,
//! - a reader + writer thread pair per connection.
//!
//! ## Request life cycle
//!
//! Validate → idempotence check → tenant token bucket → degradation-
//! ladder observation → tenant in-flight quota → per-connection cap →
//! global in-flight cap → per-shard virtual-queue admission (the
//! engine's M/D/1 [`AdmissionControl`] bound, in microseconds) →
//! durable WAL accept → deficit-weighted fair dispatch. The hedger
//! launches one hedged attempt to a different shard after
//! [`RetryPolicy::hedge_after_micros`] of silence; a dead shard bounces
//! its quotes back to the hedger, which re-dispatches with jittered
//! exponential backoff while the deadline budget lasts. The
//! [`QuoteLedger`] elects exactly one canonical spread per
//! `(tenant, id)` no matter how many attempts race.
//!
//! ## Hostile clients
//!
//! The connection path assumes the peer is adversarial: request lines
//! are read through a bounded accumulator (`max_line_bytes`; overlong
//! lines get one typed `ERR` and the excess is discarded, never
//! buffered), non-UTF-8 lines get a typed `ERR`, writes carry a
//! timeout so a slow consumer cannot pin a responder thread, and an
//! idle reaper closes connections that complete no request line within
//! `idle_timeout` — trickling single bytes (slowloris) does **not**
//! reset that clock.

use crate::fair::FairQueue;
use crate::hedge::{QuoteLedger, RecordOutcome};
use crate::ladder::{DegradationLadder, LadderConfig, LadderTelemetry, Rung};
use crate::lock_recover;
use crate::proto::{
    decode_line, format_response, oversize_error, parse_request, FaultCmd, Priority, QuoteReply,
    QuoteRequest, Request, Response, ShardState, StatsReply, DEFAULT_MAX_LINE_BYTES,
};
use crate::snapshot::{CurveBook, EpochSnapshot};
use crate::tenant::{TenantError, TenantLimits, TenantRegistry, TenantState, DEFAULT_MAX_TENANTS};
use crate::wal::{read_wal, CorruptionReport, WalError, WalFaultSpec, WalWriter};
use cds_engine::checkpoint::Checkpoint;
use cds_engine::journal_io::{FaultyJournalIo, JournalIo, OsJournalIo};
use cds_engine::retry::RetryPolicy;
use cds_engine::streaming::AdmissionControl;
use cds_quant::option::CdsOption;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server configuration; [`Default`] is a sane local test server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Engine shards (per-core ingestion queues).
    pub shards: usize,
    /// Boot curve epoch seed (`MarketData::paper_workload`).
    pub seed: u64,
    /// In-flight cap: accepted-but-unanswered quotes beyond this shed.
    pub capacity: u64,
    /// Virtual-queue service estimate per quote, microseconds.
    pub service_micros: u64,
    /// Target utilisation for the M/D/1 admission bound.
    pub target_utilisation: f64,
    /// Deadline/backoff/hedge policy (shared with the engine layer).
    pub retry: RetryPolicy,
    /// Degradation-ladder watermarks.
    pub ladder: LadderConfig,
    /// Write-ahead journal path; `None` serves without durability.
    pub journal: Option<PathBuf>,
    /// Completions per checkpoint sidecar rewrite.
    pub cadence: u32,
    /// Storage fault to inject into the journal's IO layer (testing
    /// only; requires `journal`). The server runs normally until the
    /// fault fires, then degrades per the fail-stop contract.
    pub wal_fault: Option<WalFaultSpec>,
    /// How long a drain waits for in-flight quotes before checkpointing
    /// the remainder as pending.
    pub drain_deadline: Duration,
    /// Read timeout on accepted streams; doubles as the poll cadence
    /// for the shutdown flag and the idle reaper.
    pub read_timeout: Duration,
    /// Write timeout on accepted streams; a consumer slower than this
    /// mid-reply is disconnected instead of pinning the writer thread.
    pub write_timeout: Duration,
    /// Close a connection that completes no request line for this long
    /// (slowloris reaper; byte trickle does not reset it).
    pub idle_timeout: Duration,
    /// Request-line byte cap; longer lines get one typed `ERR` and the
    /// excess is discarded unbuffered.
    pub max_line_bytes: usize,
    /// Per-connection in-flight cap (one client cannot occupy the whole
    /// global capacity through a single pipelined connection).
    pub conn_capacity: u64,
    /// Limits for `default` and self-registered tenants.
    pub tenant_defaults: TenantLimits,
    /// Boot-time per-tenant limit overrides.
    pub tenant_overrides: Vec<(String, TenantLimits)>,
    /// Tenant-registry size bound (hostile `TENANT` binds cannot grow
    /// memory past it).
    pub max_tenants: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: 4,
            seed: 42,
            capacity: 256,
            service_micros: 200,
            target_utilisation: 0.9,
            retry: RetryPolicy::server_default(),
            ladder: LadderConfig::default(),
            journal: None,
            cadence: 64,
            wal_fault: None,
            drain_deadline: Duration::from_secs(5),
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            conn_capacity: 256,
            tenant_defaults: TenantLimits::default(),
            tenant_overrides: Vec::new(),
            max_tenants: DEFAULT_MAX_TENANTS,
        }
    }
}

impl ServerConfig {
    fn validate(&self) -> Result<(), ServerError> {
        if self.shards == 0 {
            return Err(ServerError::Config("at least one shard is required"));
        }
        if self.capacity == 0 {
            return Err(ServerError::Config("in-flight capacity must be at least 1"));
        }
        if self.service_micros == 0 {
            return Err(ServerError::Config("service estimate must be positive"));
        }
        if !(self.target_utilisation > 0.0 && self.target_utilisation < 1.0) {
            return Err(ServerError::Config("target utilisation must be in (0, 1)"));
        }
        if self.cadence == 0 {
            return Err(ServerError::Config("checkpoint cadence must be at least 1"));
        }
        if self.wal_fault.is_some() && self.journal.is_none() {
            return Err(ServerError::Config("--wal-fault requires a journal"));
        }
        self.retry.validate().map_err(|_| ServerError::Config("invalid retry policy"))?;
        self.ladder.validate().map_err(ServerError::Config)?;
        if self.read_timeout.is_zero() || self.write_timeout.is_zero() {
            return Err(ServerError::Config("read/write timeouts must be positive"));
        }
        if self.idle_timeout.is_zero() {
            return Err(ServerError::Config("idle timeout must be positive"));
        }
        if self.max_line_bytes < 64 {
            return Err(ServerError::Config("max_line_bytes must be at least 64"));
        }
        if self.conn_capacity == 0 {
            return Err(ServerError::Config("per-connection capacity must be at least 1"));
        }
        if self.max_tenants == 0 {
            return Err(ServerError::Config("max_tenants must be at least 1"));
        }
        self.tenant_defaults.validate().map_err(ServerError::Tenant)?;
        for (name, limits) in &self.tenant_overrides {
            if !crate::proto::valid_tenant_name(name) {
                return Err(ServerError::Tenant(TenantError::BadName(name.clone())));
            }
            limits.validate().map_err(ServerError::Tenant)?;
        }
        Ok(())
    }
}

/// A serving failure.
#[derive(Debug)]
pub enum ServerError {
    /// Socket / filesystem failure.
    Io(std::io::Error),
    /// Invalid configuration, rejected at startup.
    Config(&'static str),
    /// Journal failure.
    Wal(WalError),
    /// Tenant configuration or registration failure.
    Tenant(TenantError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server io error: {e}"),
            ServerError::Config(reason) => write!(f, "server config error: {reason}"),
            ServerError::Wal(e) => write!(f, "server journal error: {e}"),
            ServerError::Tenant(e) => write!(f, "server tenant error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<WalError> for ServerError {
    fn from(e: WalError) -> Self {
        ServerError::Wal(e)
    }
}

impl From<TenantError> for ServerError {
    fn from(e: TenantError) -> Self {
        ServerError::Tenant(e)
    }
}

#[derive(Debug, Default)]
struct Stats {
    accepted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    hedges: AtomicU64,
    retries: AtomicU64,
    dedup_hits: AtomicU64,
    deadline_misses: AtomicU64,
    inflight: AtomicU64,
    rung: AtomicU64,
    throttled: AtomicU64,
}

#[derive(Debug, Default)]
struct ShardCtl {
    dead: AtomicBool,
    stall_micros: AtomicU64,
    /// Virtual-queue horizon: the server-relative microsecond at which
    /// this shard would finish everything admitted to it so far.
    free_at_micros: AtomicU64,
}

struct Core {
    config: ServerConfig,
    admission: AdmissionControl,
    book: CurveBook,
    ledger: QuoteLedger,
    stats: Stats,
    ladder: Mutex<DegradationLadder>,
    shards: Vec<ShardCtl>,
    tenants: TenantRegistry,
    wal: Option<WalWriter>,
    wal_degraded: AtomicBool,
    next_seq: AtomicU32,
    draining: AtomicBool,
    shutdown: AtomicBool,
    started: Instant,
}

impl Core {
    fn now_micros(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    fn dead_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.dead.load(Ordering::Relaxed)).count()
    }

    fn telemetry(&self) -> LadderTelemetry {
        LadderTelemetry {
            queue_depth: self.stats.inflight.load(Ordering::Relaxed),
            queue_capacity: self.config.capacity,
            shards_dead: self.dead_shards(),
            shards_total: self.shards.len(),
            wal_degraded: self.wal_degraded.load(Ordering::Relaxed),
        }
    }

    /// Record that the journal hit a storage failure: the `wal-degraded`
    /// observation is sticky and drives the ladder to reject — the
    /// server keeps serving already-accepted work but refuses new
    /// quotes it can no longer journal.
    fn note_wal_degraded(&self, context: &str, e: &WalError) {
        if !self.wal_degraded.swap(true, Ordering::Relaxed) {
            eprintln!("cds-server: journal degraded ({context}): {e}");
        }
    }

    fn rung(&self) -> Rung {
        Rung::from_index(self.stats.rung.load(Ordering::Relaxed) as usize)
    }

    /// Client back-off hint: the admission bound expressed in ms.
    fn retry_after_ms(&self) -> u64 {
        (self.admission.max_queue_cycles / 1000).max(1)
    }

    /// Per-shard virtual-queue admission (the M/D/1 bound, in µs).
    fn admit_virtual(&self, shard: usize) -> bool {
        let now = self.now_micros();
        let ctl = &self.shards[shard];
        loop {
            let free = ctl.free_at_micros.load(Ordering::Relaxed);
            if free.saturating_sub(now) > self.admission.max_queue_cycles {
                return false;
            }
            let new_free = free.max(now) + self.admission.service_cycles_per_option;
            if ctl
                .free_at_micros
                .compare_exchange(free, new_free, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Durably accept a quote, allocating its journal sequence number.
    fn accept_seq(&self, id: u64, option: &CdsOption, priority: Priority) -> Result<u32, WalError> {
        match &self.wal {
            Some(wal) => match wal.accept(id, option, priority) {
                Ok(seq) => {
                    self.next_seq.store(seq + 1, Ordering::Relaxed);
                    Ok(seq)
                }
                Err(e) => {
                    self.note_wal_degraded("accept", &e);
                    Err(e)
                }
            },
            None => Ok(self.next_seq.fetch_add(1, Ordering::Relaxed)),
        }
    }

    fn stats_reply(&self) -> StatsReply {
        StatsReply {
            rung: self.rung().index() as u8,
            accepted: self.stats.accepted.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            hedges: self.stats.hedges.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            dedup_hits: self.stats.dedup_hits.load(Ordering::Relaxed)
                + self.ledger.duplicates_suppressed(),
            deadline_misses: self.stats.deadline_misses.load(Ordering::Relaxed),
            inflight: self.stats.inflight.load(Ordering::Relaxed),
            dead_shards: self.dead_shards() as u64,
            shards: self.shards.len() as u64,
            epoch: self.book.epoch(),
            draining: self.draining.load(Ordering::Relaxed),
            throttled: self.stats.throttled.load(Ordering::Relaxed),
            tenants: self.tenants.len() as u64,
        }
    }
}

/// One in-flight quote attempt; hedges and retries clone it, sharing
/// the `done` latch, the hedge flag, and the tenant/connection
/// reservations (released exactly once, by whoever wins the latch).
#[derive(Clone)]
struct Job {
    seq: u32,
    id: u64,
    option: CdsOption,
    accepted_at: Instant,
    attempt: u32,
    hedge_launched: Arc<AtomicBool>,
    done: Arc<AtomicBool>,
    tenant: Arc<TenantState>,
    conn_inflight: Arc<AtomicU64>,
    resp: Sender<String>,
}

enum TimerEvent {
    /// Arm the hedge timer for a freshly dispatched quote.
    Hedge { job: Job, fire_at: Instant },
    /// A shard refused a quote (dead); decide retry-vs-fail now.
    Retry { job: Job, from_shard: usize },
}

enum TimerAction {
    LaunchHedge(Job),
    Dispatch { job: Job, avoid: usize },
}

struct Scheduled {
    fire_at: Instant,
    order: u64,
    action: TimerAction,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.fire_at == other.fire_at && self.order == other.order
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.fire_at, self.order).cmp(&(other.fire_at, other.order))
    }
}

fn complete(core: &Core, job: &Job, spread: f64, epoch: u64, shard: Option<usize>) {
    let (canonical, cached) = match core.ledger.record(job.tenant.slot as u64, job.id, spread) {
        RecordOutcome::First => (spread, false),
        RecordOutcome::Duplicate { spread } => {
            core.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
            (spread, true)
        }
    };
    if !job.done.swap(true, Ordering::SeqCst) {
        if let Some(wal) = &core.wal {
            if let Err(e) = wal.done(job.seq, canonical) {
                core.note_wal_degraded("completion", &e);
            }
        }
        core.stats.completed.fetch_add(1, Ordering::Relaxed);
        core.stats.inflight.fetch_sub(1, Ordering::Relaxed);
        job.tenant.release_inflight();
        job.conn_inflight.fetch_sub(1, Ordering::SeqCst);
        let _ = job.resp.send(format_response(&Response::Quote(QuoteReply {
            id: job.id,
            spread_bps: canonical,
            epoch,
            shard,
            attempts: job.attempt,
            hedged: job.hedge_launched.load(Ordering::Relaxed),
            cached,
        })));
    }
}

fn fail_deadline(core: &Core, job: &Job) {
    if !job.done.swap(true, Ordering::SeqCst) {
        core.stats.deadline_misses.fetch_add(1, Ordering::Relaxed);
        core.stats.inflight.fetch_sub(1, Ordering::Relaxed);
        job.tenant.release_inflight();
        job.conn_inflight.fetch_sub(1, Ordering::SeqCst);
        let _ = job.resp.send(format_response(&Response::Error {
            id: Some(job.id),
            reason: "deadline budget exhausted".to_string(),
        }));
    }
}

/// Next live shard at or after `start`, skipping `avoid`; `None` when
/// every shard is dead.
fn next_live(core: &Core, start: usize, avoid: Option<usize>) -> Option<usize> {
    let n = core.shards.len();
    (0..n)
        .map(|i| (start + i) % n)
        .find(|&k| Some(k) != avoid && !core.shards[k].dead.load(Ordering::Relaxed))
        .or_else(|| {
            // Nothing but `avoid` left alive? It is better than nothing.
            avoid.filter(|&k| !core.shards[k].dead.load(Ordering::Relaxed))
        })
}

fn shard_worker(core: Arc<Core>, k: usize, rx: Arc<FairQueue<Job>>, timer_tx: Sender<TimerEvent>) {
    let mut cached: Arc<EpochSnapshot> = core.book.current();
    loop {
        match rx.pop_timeout(Duration::from_millis(50)) {
            Some(job) => {
                if core.shutdown.load(Ordering::Relaxed) {
                    // The drain deadline already passed: this quote is
                    // durably journalled as pending; a resume finishes it.
                    continue;
                }
                if job.done.load(Ordering::SeqCst) {
                    continue; // another attempt already answered
                }
                let stall = core.shards[k].stall_micros.load(Ordering::Relaxed);
                if stall > 0 {
                    thread::sleep(Duration::from_micros(stall));
                }
                if core.shards[k].dead.load(Ordering::Relaxed) {
                    // Bounce to the hedger for a budgeted retry elsewhere.
                    let _ = timer_tx.send(TimerEvent::Retry { job, from_shard: k });
                    continue;
                }
                core.book.refresh(&mut cached);
                let spread = cached.engine.price(&job.option).spread_bps;
                complete(&core, &job, spread, cached.epoch, Some(k));
            }
            None => {
                if core.shutdown.load(Ordering::Relaxed) {
                    // Release anything still queued (journalled as
                    // pending) so held response senders drop.
                    rx.clear();
                    break;
                }
            }
        }
    }
}

fn hedger(core: Arc<Core>, rx: Receiver<TimerEvent>, senders: Vec<Arc<FairQueue<Job>>>) {
    let mut cached: Arc<EpochSnapshot> = core.book.current();
    let mut heap: BinaryHeap<Reverse<Scheduled>> = BinaryHeap::new();
    let mut order = 0u64;
    loop {
        // Fire everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse(s)| s.fire_at <= now) {
            let Some(Reverse(s)) = heap.pop() else { break };
            match s.action {
                TimerAction::LaunchHedge(job) => {
                    if job.done.load(Ordering::SeqCst) {
                        continue;
                    }
                    let home = (job.id % core.shards.len() as u64) as usize;
                    // Hedge only to a *different* live shard.
                    if let Some(target) = next_live(&core, home + 1, Some(home)) {
                        core.stats.hedges.fetch_add(1, Ordering::Relaxed);
                        job.hedge_launched.store(true, Ordering::Relaxed);
                        let mut hedge = job.clone();
                        hedge.attempt = job.attempt + 1;
                        senders[target].push(hedge.tenant.slot, hedge.tenant.limits.weight, hedge);
                    }
                }
                TimerAction::Dispatch { job, avoid } => {
                    if job.done.load(Ordering::SeqCst) {
                        continue;
                    }
                    match next_live(&core, avoid + 1, Some(avoid)) {
                        Some(target) => {
                            senders[target].push(job.tenant.slot, job.tenant.limits.weight, job);
                        }
                        None => {
                            // Every shard is dead: price inline on the
                            // CPU path, which is bit-identical and
                            // cannot die with the shards.
                            core.book.refresh(&mut cached);
                            let spread = cached.engine.price(&job.option).spread_bps;
                            complete(&core, &job, spread, cached.epoch, None);
                        }
                    }
                }
            }
        }
        let wait = heap
            .peek()
            .map(|Reverse(s)| s.fire_at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50))
            .min(Duration::from_millis(50));
        match rx.recv_timeout(wait.max(Duration::from_millis(1))) {
            Ok(TimerEvent::Hedge { job, fire_at }) => {
                order += 1;
                heap.push(Reverse(Scheduled {
                    fire_at,
                    order,
                    action: TimerAction::LaunchHedge(job),
                }));
            }
            Ok(TimerEvent::Retry { mut job, from_shard }) => {
                let next_attempt = job.attempt + 1;
                let elapsed = job.accepted_at.elapsed().as_micros() as u64;
                if !core.config.retry.allows_attempt(next_attempt as usize, elapsed) {
                    fail_deadline(&core, &job);
                    continue;
                }
                core.stats.retries.fetch_add(1, Ordering::Relaxed);
                let backoff =
                    core.config.retry.jittered_backoff_micros(next_attempt as usize, job.id);
                job.attempt = next_attempt;
                order += 1;
                heap.push(Reverse(Scheduled {
                    fire_at: Instant::now() + Duration::from_micros(backoff),
                    order,
                    action: TimerAction::Dispatch { job, avoid: from_shard },
                }));
            }
            Err(RecvTimeoutError::Timeout) => {
                // Anything still scheduled at shutdown is a pending
                // quote the drain deadline already gave up on; it lives
                // on in the journal, not in this heap.
                if core.shutdown.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Per-connection request context: the bound tenant and the
/// connection's own in-flight reservation counter.
struct ConnCtx {
    tenant: Arc<TenantState>,
    conn_inflight: Arc<AtomicU64>,
}

fn handle_quote(
    core: &Arc<Core>,
    q: &QuoteRequest,
    ctx: &ConnCtx,
    cached: &mut Arc<EpochSnapshot>,
    senders: &[Arc<FairQueue<Job>>],
    timer_tx: &Sender<TimerEvent>,
    resp: &Sender<String>,
) {
    let reply = |r: Response| {
        let _ = resp.send(format_response(&r));
    };
    if core.draining.load(Ordering::Relaxed) {
        core.stats.rejected.fetch_add(1, Ordering::Relaxed);
        reply(Response::Reject {
            id: q.id,
            retry_after_ms: core.config.drain_deadline.as_millis() as u64,
            rung: core.rung(),
        });
        return;
    }
    let option = match CdsOption::validated(q.maturity, q.frequency, q.recovery) {
        Ok(o) => o,
        Err(e) => {
            reply(Response::Error { id: Some(q.id), reason: format!("invalid quote: {e}") });
            return;
        }
    };
    let tenant_slot = ctx.tenant.slot as u64;
    // Idempotent duplicate of an already answered id (within this
    // tenant's id space): serve from the ledger without re-pricing,
    // re-journalling, or charging the token bucket.
    if let Some(spread) = core.ledger.get(tenant_slot, q.id) {
        core.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
        reply(Response::Quote(QuoteReply {
            id: q.id,
            spread_bps: spread,
            epoch: core.book.epoch(),
            shard: None,
            attempts: 0,
            hedged: false,
            cached: true,
        }));
        return;
    }
    // Tenant token bucket, before the ladder sees the quote: throttled
    // traffic never becomes queue pressure for other tenants.
    if let Err(retry_after_ms) = ctx.tenant.try_take_token(core.now_micros()) {
        core.stats.throttled.fetch_add(1, Ordering::Relaxed);
        reply(Response::Throttle { id: q.id, retry_after_ms, tenant: ctx.tenant.name.clone() });
        return;
    }
    // One ladder observation per quote decision.
    let rung = lock_recover(&core.ladder).observe(&core.telemetry());
    core.stats.rung.store(rung.index() as u64, Ordering::Relaxed);
    if rung == Rung::RejectRetryAfter {
        core.stats.rejected.fetch_add(1, Ordering::Relaxed);
        reply(Response::Reject { id: q.id, retry_after_ms: core.retry_after_ms(), rung });
        return;
    }
    if rung >= Rung::ShedLowPriority && q.priority == Priority::Low {
        core.stats.shed.fetch_add(1, Ordering::Relaxed);
        reply(Response::Shed { id: q.id, retry_after_ms: core.retry_after_ms(), rung });
        return;
    }
    // Tenant in-flight quota: the bulkhead that keeps one tenant from
    // occupying the shared capacity below.
    if let Err(retry_after_ms) = ctx.tenant.try_reserve_inflight() {
        core.stats.throttled.fetch_add(1, Ordering::Relaxed);
        reply(Response::Throttle { id: q.id, retry_after_ms, tenant: ctx.tenant.name.clone() });
        return;
    }
    let release_tenant = || {
        ctx.tenant.release_inflight();
    };
    // Per-connection in-flight cap (a single pipelined connection
    // cannot occupy the whole global capacity).
    if ctx.conn_inflight.fetch_add(1, Ordering::SeqCst) >= core.config.conn_capacity {
        ctx.conn_inflight.fetch_sub(1, Ordering::SeqCst);
        release_tenant();
        core.stats.shed.fetch_add(1, Ordering::Relaxed);
        reply(Response::Shed { id: q.id, retry_after_ms: core.retry_after_ms(), rung });
        return;
    }
    let release_all = || {
        ctx.conn_inflight.fetch_sub(1, Ordering::SeqCst);
        release_tenant();
    };
    // Reserve a global in-flight slot (slow-consumer / overload bound).
    if core.stats.inflight.fetch_add(1, Ordering::SeqCst) >= core.config.capacity {
        core.stats.inflight.fetch_sub(1, Ordering::SeqCst);
        release_all();
        core.stats.shed.fetch_add(1, Ordering::Relaxed);
        reply(Response::Shed { id: q.id, retry_after_ms: core.retry_after_ms(), rung });
        return;
    }
    let home = (q.id % core.shards.len() as u64) as usize;
    if !core.admit_virtual(home) {
        core.stats.inflight.fetch_sub(1, Ordering::SeqCst);
        release_all();
        core.stats.shed.fetch_add(1, Ordering::Relaxed);
        reply(Response::Shed { id: q.id, retry_after_ms: core.retry_after_ms(), rung });
        return;
    }
    // Write-ahead: the acceptance is durable before any dispatch.
    let seq = match core.accept_seq(q.id, &option, q.priority) {
        Ok(seq) => seq,
        Err(e) => {
            core.stats.inflight.fetch_sub(1, Ordering::SeqCst);
            release_all();
            reply(Response::Error { id: Some(q.id), reason: format!("journal: {e}") });
            return;
        }
    };
    core.stats.accepted.fetch_add(1, Ordering::Relaxed);
    let job = Job {
        seq,
        id: q.id,
        option,
        accepted_at: Instant::now(),
        attempt: 1,
        hedge_launched: Arc::new(AtomicBool::new(false)),
        done: Arc::new(AtomicBool::new(false)),
        tenant: Arc::clone(&ctx.tenant),
        conn_inflight: Arc::clone(&ctx.conn_inflight),
        resp: resp.clone(),
    };
    if rung >= Rung::CpuFallback || core.dead_shards() == core.shards.len() {
        // CPU fallback: price inline, bit-identical to the shard path.
        core.book.refresh(cached);
        let spread = cached.engine.price(&job.option).spread_bps;
        complete(core, &job, spread, cached.epoch, None);
        return;
    }
    senders[home].push(job.tenant.slot, job.tenant.limits.weight, job.clone());
    let _ = timer_tx.send(TimerEvent::Hedge {
        fire_at: job.accepted_at + Duration::from_micros(core.config.retry.hedge_after_micros),
        job,
    });
}

fn handle_request(
    core: &Arc<Core>,
    line: &str,
    ctx: &mut ConnCtx,
    cached: &mut Arc<EpochSnapshot>,
    senders: &[Arc<FairQueue<Job>>],
    timer_tx: &Sender<TimerEvent>,
    resp: &Sender<String>,
) {
    let reply = |r: Response| {
        let _ = resp.send(format_response(&r));
    };
    match parse_request(line) {
        Err(e) => reply(Response::Error { id: None, reason: e.reason }),
        Ok(Request::Ping) => reply(Response::Pong),
        Ok(Request::Stats) => reply(Response::Stats(core.stats_reply())),
        Ok(Request::Drain) => {
            core.draining.store(true, Ordering::SeqCst);
            reply(Response::DrainAck);
        }
        Ok(Request::Tenant { name }) => match core.tenants.bind(&name, core.now_micros()) {
            Ok(tenant) => {
                ctx.tenant = tenant;
                reply(Response::TenantAck { name });
            }
            Err(e) => reply(Response::Error { id: None, reason: e.to_string() }),
        },
        Ok(Request::Tick { seed }) => {
            let epoch = core.book.publish(seed);
            reply(Response::TickAck { epoch });
        }
        Ok(Request::TickPoint { curve, knot, value }) => {
            match core.book.publish_point(curve, knot, value) {
                Ok((epoch, zero_delta)) => reply(Response::TickPointAck { epoch, zero_delta }),
                Err(reason) => reply(Response::Error { id: None, reason }),
            }
        }
        Ok(Request::Fault(cmd)) => {
            let shard = match cmd {
                FaultCmd::Kill { shard }
                | FaultCmd::Revive { shard }
                | FaultCmd::Stall { shard, .. } => shard,
            };
            let Some(ctl) = core.shards.get(shard) else {
                reply(Response::Error {
                    id: None,
                    reason: format!("no such shard {shard} (have {})", core.shards.len()),
                });
                return;
            };
            match cmd {
                FaultCmd::Kill { .. } => ctl.dead.store(true, Ordering::SeqCst),
                FaultCmd::Revive { .. } => ctl.dead.store(false, Ordering::SeqCst),
                FaultCmd::Stall { millis, .. } => {
                    ctl.stall_micros.store(millis * 1000, Ordering::SeqCst)
                }
            }
            let state = if ctl.dead.load(Ordering::Relaxed) {
                ShardState::Dead
            } else if ctl.stall_micros.load(Ordering::Relaxed) > 0 {
                ShardState::Stalled
            } else {
                ShardState::Live
            };
            reply(Response::FaultAck { shard, state });
        }
        Ok(Request::Quote(q)) => handle_quote(core, &q, ctx, cached, senders, timer_tx, resp),
    }
}

/// Decode and dispatch one complete raw request line. Non-UTF-8 bytes
/// get a typed `ERR`; blank lines are skipped silently (no reply owed).
#[allow(clippy::too_many_arguments)]
fn process_line(
    core: &Arc<Core>,
    bytes: &[u8],
    ctx: &mut ConnCtx,
    cached: &mut Arc<EpochSnapshot>,
    senders: &[Arc<FairQueue<Job>>],
    timer_tx: &Sender<TimerEvent>,
    resp: &Sender<String>,
) {
    match decode_line(bytes) {
        Err(e) => {
            let _ = resp.send(format_response(&Response::Error { id: None, reason: e.reason }));
        }
        Ok(s) => {
            let line = s.trim();
            if !line.is_empty() {
                handle_request(core, line, ctx, cached, senders, timer_tx, resp);
            }
        }
    }
}

fn handle_conn(
    core: Arc<Core>,
    stream: TcpStream,
    senders: Vec<Arc<FairQueue<Job>>>,
    timer_tx: Sender<TimerEvent>,
) {
    let Ok(write_half) = stream.try_clone() else { return };
    let _ = stream.set_read_timeout(Some(core.config.read_timeout));
    let _ = write_half.set_write_timeout(Some(core.config.write_timeout));
    let (resp_tx, resp_rx) = channel::<String>();
    let writer = thread::spawn(move || {
        let mut out = write_half;
        for line in resp_rx {
            // A write timeout fires mid-line on a stalled consumer;
            // framing is unrecoverable past that point, so the
            // connection is shut down rather than resynchronised.
            if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                break;
            }
            let _ = out.flush();
        }
        let _ = out.shutdown(std::net::Shutdown::Both);
    });
    let mut ctx = ConnCtx {
        tenant: core.tenants.default_tenant(),
        conn_inflight: Arc::new(AtomicU64::new(0)),
    };
    let mut cached = core.book.current();
    let max_line = core.config.max_line_bytes;
    let mut input = stream;
    let mut chunk = vec![0u8; 4096];
    // The bounded line accumulator: never grows past `max_line` bytes,
    // no matter what the peer sends.
    let mut acc: Vec<u8> = Vec::new();
    // True while discarding the tail of an oversized line (its single
    // ERR was already sent at the moment the cap was crossed).
    let mut discarding = false;
    // Last *completed* request line; byte trickle does not touch this,
    // which is exactly what defeats slowloris.
    let mut last_line = Instant::now();
    loop {
        if core.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let n = match input.read(&mut chunk) {
            Ok(0) => {
                // EOF without a trailing newline: serve the bounded
                // partial line, then close.
                if !discarding && !acc.is_empty() {
                    process_line(&core, &acc, &mut ctx, &mut cached, &senders, &timer_tx, &resp_tx);
                }
                break;
            }
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if last_line.elapsed() >= core.config.idle_timeout {
                    // Idle/slowloris reaper: no complete line for a
                    // whole idle window — say why, then hang up.
                    let _ = resp_tx.send(format_response(&Response::Error {
                        id: None,
                        reason: format!(
                            "idle timeout: no complete request line in {}ms",
                            core.config.idle_timeout.as_millis()
                        ),
                    }));
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        let mut rest = &chunk[..n];
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(pos);
            rest = &tail[1..];
            if discarding {
                // Tail of an oversized line; its ERR is already sent.
                discarding = false;
            } else if acc.len() + head.len() > max_line {
                let _ = resp_tx.send(format_response(&Response::Error {
                    id: None,
                    reason: oversize_error(max_line).reason,
                }));
            } else {
                acc.extend_from_slice(head);
                process_line(&core, &acc, &mut ctx, &mut cached, &senders, &timer_tx, &resp_tx);
            }
            acc.clear();
            last_line = Instant::now();
        }
        if !discarding && !rest.is_empty() {
            if acc.len() + rest.len() > max_line {
                // Cap crossed mid-line: one ERR now, then discard until
                // the newline finally shows up.
                let _ = resp_tx.send(format_response(&Response::Error {
                    id: None,
                    reason: oversize_error(max_line).reason,
                }));
                acc.clear();
                discarding = true;
            } else {
                acc.extend_from_slice(rest);
            }
        }
    }
    drop(resp_tx);
    // The writer drains any remaining in-flight responses for jobs that
    // still hold clones of the sender; it exits when the last clone drops.
    let _ = writer.join();
}

/// What a drained server ends with.
#[derive(Debug)]
pub struct DrainSummary {
    /// Quotes durably accepted over the server's lifetime.
    pub accepted: u64,
    /// Quotes completed (canonical spread elected and journalled).
    pub completed: u64,
    /// Accepted quotes still pending when the drain deadline expired;
    /// recoverable from the journal.
    pub pending: u64,
    /// The final checkpoint, when a journal was configured.
    pub checkpoint: Option<Checkpoint>,
}

fn acceptor(
    core: Arc<Core>,
    listener: TcpListener,
    senders: Vec<Arc<FairQueue<Job>>>,
    timer_tx: Sender<TimerEvent>,
) -> DrainSummary {
    let _ = listener.set_nonblocking(true);
    while !core.draining.load(Ordering::Relaxed) && !core.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Quote lines are tiny; Nagle + delayed ACK would add
                // ~40ms to every reply on the wire.
                let _ = stream.set_nodelay(true);
                let core = core.clone();
                let senders = senders.clone();
                let timer_tx = timer_tx.clone();
                thread::spawn(move || handle_conn(core, stream, senders, timer_tx));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
    // Drain: stop admitting (readers reject while `draining`), wait for
    // the in-flight quotes to finish or the deadline to expire.
    let deadline = Instant::now() + core.config.drain_deadline;
    while core.stats.inflight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(2));
    }
    let checkpoint = match &core.wal {
        Some(wal) => match wal.finalize() {
            Ok(cp) => Some(cp),
            Err(e) => {
                core.note_wal_degraded("drain finalize", &e);
                eprintln!(
                    "cds-server: final checkpoint failed: {e}; the durable journal prefix \
                     remains resumable"
                );
                None
            }
        },
        None => None,
    };
    core.shutdown.store(true, Ordering::SeqCst);
    DrainSummary {
        accepted: core.stats.accepted.load(Ordering::Relaxed),
        completed: core.stats.completed.load(Ordering::Relaxed),
        pending: core.stats.inflight.load(Ordering::SeqCst),
        checkpoint,
    }
}

/// A running server; drop does **not** stop it — call
/// [`ServerHandle::drain`] then [`ServerHandle::wait`].
pub struct ServerHandle {
    addr: SocketAddr,
    core: Arc<Core>,
    acceptor: JoinHandle<DrainSummary>,
    workers: Vec<JoinHandle<()>>,
    hedger: JoinHandle<()>,
}

impl fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerHandle").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain (idempotent; also triggered by the
    /// protocol `DRAIN` command and, in the binary, by `SIGTERM`).
    pub fn drain(&self) {
        self.core.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain is in progress or finished.
    pub fn is_draining(&self) -> bool {
        self.core.draining.load(Ordering::Relaxed)
    }

    /// Current telemetry snapshot.
    pub fn stats(&self) -> StatsReply {
        self.core.stats_reply()
    }

    /// Block until the server drains and every service thread exits.
    pub fn wait(self) -> DrainSummary {
        let summary = match self.acceptor.join() {
            Ok(s) => s,
            Err(_) => DrainSummary {
                accepted: self.core.stats.accepted.load(Ordering::Relaxed),
                completed: self.core.stats.completed.load(Ordering::Relaxed),
                pending: self.core.stats.inflight.load(Ordering::Relaxed),
                checkpoint: None,
            },
        };
        for w in self.workers {
            let _ = w.join();
        }
        let _ = self.hedger.join();
        summary
    }
}

/// Start a server. Returns once the listener is bound and every service
/// thread is running.
///
/// # Errors
/// Configuration, journal-creation, and socket-bind failures.
pub fn serve(config: ServerConfig) -> Result<ServerHandle, ServerError> {
    config.validate()?;
    let ladder = DegradationLadder::new(config.ladder).map_err(ServerError::Config)?;
    let wal = match &config.journal {
        Some(path) => {
            let io: Arc<dyn JournalIo> = match config.wal_fault {
                Some(spec) => Arc::new(FaultyJournalIo::over(
                    Arc::new(OsJournalIo::new()),
                    spec.plan(config.seed),
                )),
                None => Arc::new(OsJournalIo::new()),
            };
            Some(WalWriter::create_with_io(io, path, config.seed, config.cadence)?)
        }
        None => None,
    };
    let admission = AdmissionControl::from_md1(config.service_micros, config.target_utilisation);
    let book = CurveBook::new(config.seed);
    let shards: Vec<ShardCtl> = (0..config.shards).map(|_| ShardCtl::default()).collect();
    // The registry pre-registers `default` plus every configured
    // override; buckets start full at server-relative time zero.
    let tenants = TenantRegistry::new(config.tenant_defaults, config.max_tenants, 0)?;
    for (name, limits) in &config.tenant_overrides {
        tenants.register(name, *limits, 0)?;
    }
    let core = Arc::new(Core {
        admission,
        book,
        ledger: QuoteLedger::new(),
        stats: Stats::default(),
        ladder: Mutex::new(ladder),
        shards,
        tenants,
        wal,
        wal_degraded: AtomicBool::new(false),
        next_seq: AtomicU32::new(0),
        draining: AtomicBool::new(false),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        config,
    });

    let senders: Vec<Arc<FairQueue<Job>>> =
        (0..core.config.shards).map(|_| Arc::new(FairQueue::default())).collect();
    let (timer_tx, timer_rx) = channel::<TimerEvent>();

    let mut workers = Vec::with_capacity(core.config.shards);
    for (k, rx) in senders.iter().cloned().enumerate() {
        let core = core.clone();
        let timer_tx = timer_tx.clone();
        workers.push(thread::spawn(move || shard_worker(core, k, rx, timer_tx)));
    }
    let hedger_handle = {
        let core = core.clone();
        let senders = senders.clone();
        thread::spawn(move || hedger(core, timer_rx, senders))
    };

    let listener = TcpListener::bind(&core.config.addr)?;
    let addr = listener.local_addr()?;
    let acceptor_handle = {
        let core = core.clone();
        thread::spawn(move || acceptor(core, listener, senders, timer_tx))
    };

    Ok(ServerHandle { addr, core, acceptor: acceptor_handle, workers, hedger: hedger_handle })
}

/// The merged outcome of a journal resume: every accepted quote's
/// canonical spread, completed ones straight from the journal
/// (bit-exact) and pending ones repriced deterministically under the
/// journal's boot epoch seed.
#[derive(Debug)]
pub struct ResumeReport {
    /// `(seq, request id, spread, was_repriced)` in sequence order.
    pub spreads: Vec<(u32, u64, f64, bool)>,
    /// Whether the journal carried a terminal drain record.
    pub drained: bool,
    /// How many quotes had to be repriced.
    pub repriced: usize,
}

/// Finish a journal's pending work without a server: reprice every
/// accepted-but-incomplete quote on the deterministic CPU engine at the
/// journal's boot seed.
///
/// Resume prices under the **boot epoch**; a workload that interleaved
/// `TICK`s must replay them before comparing (the server-chaos drain
/// scenario therefore runs tick-free).
///
/// # Errors
/// Journal read/corruption failures, or a record whose parameters no
/// longer validate.
pub fn resume_journal(path: &std::path::Path) -> Result<ResumeReport, ServerError> {
    let state = read_wal(path)?;
    let market = cds_quant::option::MarketData::paper_workload(state.seed);
    let engine = cds_cpu::engine::CpuCdsEngine::new(&market);
    let mut spreads = Vec::with_capacity(state.accepted.len());
    let mut repriced = 0usize;
    for rec in &state.accepted {
        match state.done.get(&rec.seq) {
            Some(&spread) => spreads.push((rec.seq, rec.id, spread, false)),
            None => {
                let option = rec.option().map_err(|e| {
                    ServerError::Wal(WalError::Corrupt(CorruptionReport {
                        file: path.to_path_buf(),
                        offset: 0,
                        line: None,
                        cause: format!("journalled quote seq {} no longer validates: {e}", rec.seq),
                    }))
                })?;
                spreads.push((rec.seq, rec.id, engine.price(&option).spread_bps, true));
                repriced += 1;
            }
        }
    }
    Ok(ResumeReport { spreads, drained: state.drained, repriced })
}
