//! Seeded wire-level protocol fuzzer.
//!
//! Generates hostile request lines — garbage verbs, invalid UTF-8,
//! oversized lines, wrong arity, absurd numbers, control bytes — with a
//! **known expected outcome** per line, so callers can assert the exact
//! 1:1 reply accounting the hardened reader guarantees: every
//! terminated non-blank line yields exactly one reply (usually a typed
//! `ERR`), blank lines yield none, and nothing crashes, hangs, or
//! wedges the connection.
//!
//! The generator is deterministic in its seed (splitmix64, the same
//! generator family the fault plans use) so the same corpus is replayed
//! by `tests/hostile_clients.rs`, `cds-harness loadgen --abuser`, and
//! the `server/protocol-fuzz` isolation scenario.

/// What a fuzz line exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzKind {
    /// Printable garbage that is no known verb.
    GarbageVerb,
    /// Bytes that are not valid UTF-8.
    NonUtf8,
    /// A line longer than the server's `max_line_bytes`.
    Oversized,
    /// A known verb with missing or extra arguments.
    BadArity,
    /// `QUOTE` with unparsable or absurd numeric fields.
    BadNumbers,
    /// Control and NUL bytes.
    ControlBytes,
    /// Only whitespace (the server deliberately stays silent).
    WhitespaceOnly,
    /// `TENANT` with an invalid name.
    BadTenant,
}

/// One generated hostile line, newline-terminated, with its expected
/// reply accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzLine {
    /// Raw bytes to write, including the trailing `\n`.
    pub bytes: Vec<u8>,
    /// The category the generator drew.
    pub kind: FuzzKind,
    /// Whether the server owes exactly one reply line for this input
    /// (false only for whitespace-only lines, which are skipped
    /// silently by design).
    pub expect_reply: bool,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pick<'a, T>(state: &mut u64, items: &'a [T]) -> &'a T {
    &items[(splitmix64(state) % items.len() as u64) as usize]
}

/// Deterministically generate `n` hostile newline-terminated lines for
/// a server configured with `max_line_bytes`. Every line is guaranteed
/// *invalid*: none parses as a well-formed request, so `expect_reply`
/// lines always yield an `ERR`-class response.
pub fn fuzz_lines(seed: u64, n: usize, max_line_bytes: usize) -> Vec<FuzzLine> {
    let mut state = seed ^ 0xC0DE_F00D_BAAD_5EED;
    (0..n).map(|_| gen_line(&mut state, max_line_bytes)).collect()
}

fn gen_line(state: &mut u64, max_line_bytes: usize) -> FuzzLine {
    let kind = *pick(
        state,
        &[
            FuzzKind::GarbageVerb,
            FuzzKind::NonUtf8,
            FuzzKind::Oversized,
            FuzzKind::BadArity,
            FuzzKind::BadNumbers,
            FuzzKind::ControlBytes,
            FuzzKind::WhitespaceOnly,
            FuzzKind::BadTenant,
        ],
    );
    let mut bytes = match kind {
        FuzzKind::GarbageVerb => {
            // '#' prefix guarantees no collision with a real verb.
            let len = 1 + (splitmix64(state) % 24) as usize;
            let mut b = vec![b'#'];
            for _ in 0..len {
                b.push(b'!' + (splitmix64(state) % 90) as u8); // printable ASCII
            }
            b
        }
        FuzzKind::NonUtf8 => {
            let len = 1 + (splitmix64(state) % 16) as usize;
            let mut b = b"QUOTE ".to_vec();
            for _ in 0..len {
                // Continuation/invalid bytes: never valid UTF-8 here.
                b.push(0xF8 + (splitmix64(state) % 8) as u8);
            }
            b
        }
        FuzzKind::Oversized => {
            let extra = 1 + (splitmix64(state) % (max_line_bytes as u64 + 1)) as usize;
            vec![b'A'; max_line_bytes + extra]
        }
        FuzzKind::BadArity => pick(
            state,
            &[
                &b"QUOTE"[..],
                b"QUOTE 7",
                b"QUOTE 7 0x3ff0000000000000",
                b"TICK",
                b"TICK 1 2",
                b"FAULT",
                b"FAULT STALL",
                b"FAULT STALL 0",
                b"TENANT",
                b"PING extra",
                b"STATS now please",
                b"DRAIN 1",
            ],
        )
        .to_vec(),
        FuzzKind::BadNumbers => pick(
            state,
            &[
                &b"QUOTE x 0x3ff0000000000000 Q 0x3fd0000000000000"[..],
                b"QUOTE -1 0x3ff0000000000000 Q 0x3fd0000000000000",
                // Not `1e999`: Rust parses that to `inf`, a legal raw
                // quote param. `1e` fails the f64 parse itself.
                b"QUOTE 7 1e Q 0.3",
                b"QUOTE 7 0xZZZZ Q 0x3fd0000000000000",
                b"QUOTE 99999999999999999999999999 0x1 Q 0x1",
                b"QUOTE 7 0x3ff0000000000000 MEDIUM 0x3fd0000000000000",
                b"TICK 0xnope",
                b"FAULT STALL zero 10",
            ],
        )
        .to_vec(),
        FuzzKind::ControlBytes => {
            let len = 1 + (splitmix64(state) % 12) as usize;
            let mut b = Vec::new();
            for _ in 0..len {
                b.push((splitmix64(state) % 32) as u8); // C0 controls incl. NUL
            }
            b.retain(|&c| c != b'\n' && c != b'\r');
            if b.iter().all(|c| c.is_ascii_whitespace()) {
                b.push(0x01); // keep the line non-blank after trim
            }
            b
        }
        FuzzKind::WhitespaceOnly => {
            let len = (splitmix64(state) % 8) as usize;
            vec![b' '; len]
        }
        FuzzKind::BadTenant => pick(
            state,
            &[
                &b"TENANT ../../etc/passwd"[..],
                b"TENANT bad name",
                b"TENANT",
                b"TENANT a_name_that_is_way_too_long_for_the_thirty_two_char_cap",
                b"TENANT !",
                b"TENANT \xCE\xBB", // non-ASCII (valid UTF-8, invalid name)
            ],
        )
        .to_vec(),
    };
    // Whitespace-only lines (after trim) are skipped silently by the
    // server; everything else owes exactly one reply.
    let expect_reply = match std::str::from_utf8(&bytes) {
        Ok(s) => !s.trim().is_empty(),
        Err(_) => true, // non-UTF-8 always gets a typed ERR
    };
    bytes.push(b'\n');
    FuzzLine { bytes, kind, expect_reply }
}

/// Deterministically generate `n` *torn* lines: valid-looking request
/// prefixes cut mid-token with **no** trailing newline. A client
/// writing one and closing the socket exercises the EOF partial-line
/// path; a client writing one and stalling exercises the idle reaper.
pub fn torn_lines(seed: u64, n: usize) -> Vec<Vec<u8>> {
    let mut state = seed ^ 0x7041_5EED_0000_0001;
    (0..n)
        .map(|_| {
            let full = *pick(
                &mut state,
                &[
                    &b"QUOTE 12 0x3ff0000000000000 Q 0x3fd0000000000000"[..],
                    b"TENANT somebody",
                    b"FAULT STALL 0 100",
                    b"TICK 99",
                    b"STATS",
                ],
            );
            let cut = 1 + (splitmix64(&mut state) % (full.len() as u64 - 1)) as usize;
            full[..cut].to_vec()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::parse_request;

    #[test]
    fn same_seed_same_corpus() {
        assert_eq!(fuzz_lines(7, 64, 256), fuzz_lines(7, 64, 256));
        assert_eq!(torn_lines(7, 16), torn_lines(7, 16));
        assert_ne!(fuzz_lines(7, 64, 256), fuzz_lines(8, 64, 256));
    }

    #[test]
    fn every_line_is_newline_terminated_and_invalid() {
        for line in fuzz_lines(42, 512, 256) {
            assert_eq!(*line.bytes.last().expect("non-empty"), b'\n');
            assert_eq!(line.bytes.iter().filter(|&&b| b == b'\n').count(), 1);
            // No fuzz line may accidentally be a well-formed request.
            if let Ok(s) = std::str::from_utf8(&line.bytes) {
                let trimmed = s.trim();
                if !trimmed.is_empty() {
                    assert!(
                        parse_request(trimmed).is_err(),
                        "fuzz line parsed as a valid request: {trimmed:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn oversized_lines_exceed_the_cap() {
        let cap = 256;
        let lines = fuzz_lines(11, 512, cap);
        let oversized: Vec<_> = lines.iter().filter(|l| l.kind == FuzzKind::Oversized).collect();
        assert!(!oversized.is_empty());
        for line in oversized {
            assert!(line.bytes.len() - 1 > cap);
            assert!(line.expect_reply);
        }
    }

    #[test]
    fn whitespace_lines_expect_no_reply() {
        for line in fuzz_lines(3, 512, 256) {
            let blank = std::str::from_utf8(&line.bytes).map(|s| s.trim().is_empty()) == Ok(true);
            assert_eq!(!blank, line.expect_reply, "{line:?}");
        }
    }

    #[test]
    fn torn_lines_are_unterminated_proper_prefixes() {
        for torn in torn_lines(5, 64) {
            assert!(!torn.is_empty());
            assert!(!torn.contains(&b'\n'));
        }
    }
}
