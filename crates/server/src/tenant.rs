//! Per-tenant bulkheads: identity, token-bucket rate limits, and
//! in-flight quotas.
//!
//! A connection starts bound to the [`DEFAULT_TENANT`] and may rebind
//! with the `TENANT <name>` verb. Each tenant owns:
//!
//! - a **token bucket** (`rate_per_s` refill, `burst` capacity) charged
//!   one token per quote *before* the request touches the ladder or the
//!   shard queues — throttled traffic never becomes queue pressure;
//! - an **in-flight quota** (`max_inflight`) bounding how many of the
//!   tenant's quotes may occupy shard queues at once — the bulkhead
//!   that keeps one tenant from filling the global capacity;
//! - a **DRR weight** consumed by [`crate::fair::FairQueue`] so shard
//!   dequeue shares stay proportional when several tenants are
//!   backlogged.
//!
//! Both rejections reply `THROTTLE <id> retry_after_ms=<hint> ...`, the
//! tenant-scoped sibling of the ladder's `REJECT ... RETRY-AFTER`: the
//! hint is derived from the bucket's own refill rate, so a compliant
//! client that honors it stops being throttled.
//!
//! The registry is bounded (`max_tenants`): an attacker cannot grow
//! server memory by inventing names — past the cap, `TENANT` binds fail
//! with a typed `ERR`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::lock_recover;
use crate::proto::valid_tenant_name;

/// The tenant every unbound connection belongs to. Always registered,
/// always slot 0.
pub const DEFAULT_TENANT: &str = "default";

/// Hard ceiling on distinct tenant names the registry will ever hold
/// unless configured lower.
pub const DEFAULT_MAX_TENANTS: usize = 64;

/// Per-tenant limits. The defaults are deliberately generous — a
/// single-tenant deployment (every existing test, loadgen run, and
/// chaos scenario) must never observe a throttle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantLimits {
    /// Sustained quote admission rate, tokens per second.
    pub rate_per_s: f64,
    /// Bucket capacity: how far a tenant may burst above the sustained
    /// rate after an idle period.
    pub burst: f64,
    /// Maximum quotes of this tenant in flight (accepted but not yet
    /// answered) at once.
    pub max_inflight: u64,
    /// Deficit-round-robin weight for shard dequeue shares.
    pub weight: u64,
}

impl Default for TenantLimits {
    fn default() -> Self {
        TenantLimits {
            rate_per_s: 1_000_000.0,
            burst: 1_000_000.0,
            max_inflight: u64::MAX / 2,
            weight: 1,
        }
    }
}

impl TenantLimits {
    /// Validate the limits; every field must leave the tenant able to
    /// make progress.
    pub fn validate(&self) -> Result<(), TenantError> {
        if !(self.rate_per_s.is_finite() && self.rate_per_s > 0.0) {
            return Err(TenantError::BadLimits("rate_per_s must be finite and positive"));
        }
        if !(self.burst.is_finite() && self.burst >= 1.0) {
            return Err(TenantError::BadLimits("burst must be at least 1 token"));
        }
        if self.max_inflight == 0 {
            return Err(TenantError::BadLimits("max_inflight must be at least 1"));
        }
        if self.weight == 0 {
            return Err(TenantError::BadLimits("weight must be at least 1"));
        }
        Ok(())
    }
}

/// Typed tenant-layer failures, all surfaced to clients as `ERR` or
/// `THROTTLE` lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantError {
    /// The name fails [`valid_tenant_name`].
    BadName(String),
    /// Registering would exceed `max_tenants`.
    TableFull {
        /// The registry bound that was hit.
        max_tenants: usize,
    },
    /// A limits field is out of range.
    BadLimits(&'static str),
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantError::BadName(name) => {
                write!(f, "invalid tenant name `{name}`: want 1..=32 chars of [A-Za-z0-9_.-]")
            }
            TenantError::TableFull { max_tenants } => {
                write!(f, "tenant table full ({max_tenants} max)")
            }
            TenantError::BadLimits(why) => write!(f, "invalid tenant limits: {why}"),
        }
    }
}

impl std::error::Error for TenantError {}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last_micros: u64,
}

/// One tenant's live state: limits, bucket, quota, and counters.
#[derive(Debug)]
pub struct TenantState {
    /// The bound name (registry key).
    pub name: String,
    /// Dense index used as the DRR slot in the fair shard queues.
    pub slot: usize,
    /// The limits this tenant was registered with.
    pub limits: TenantLimits,
    bucket: Mutex<Bucket>,
    /// Quotes currently occupying shard queues for this tenant.
    pub inflight: AtomicU64,
    /// Quotes that passed both tenant gates.
    pub admitted: AtomicU64,
    /// Quotes bounced by the bucket or the in-flight quota.
    pub throttled: AtomicU64,
}

impl TenantState {
    fn new(name: &str, slot: usize, limits: TenantLimits, now_micros: u64) -> TenantState {
        TenantState {
            name: name.to_string(),
            slot,
            limits,
            // A fresh tenant starts with a full bucket.
            bucket: Mutex::new(Bucket { tokens: limits.burst, last_micros: now_micros }),
            inflight: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
        }
    }

    /// The `retry_after_ms` hint a compliant client should honor: the
    /// time the bucket needs to refill `deficit` tokens, floored at
    /// 1 ms so the hint is never a busy-loop invitation.
    fn retry_after_ms(&self, deficit: f64) -> u64 {
        let secs = deficit.max(0.0) / self.limits.rate_per_s;
        ((secs * 1e3).ceil() as u64).max(1)
    }

    /// Charge one token at `now_micros`. `Err(retry_after_ms)` means
    /// the bucket is empty and the client should back off.
    pub fn try_take_token(&self, now_micros: u64) -> Result<(), u64> {
        let mut b = lock_recover(&self.bucket);
        // Multiply before dividing by 1e6 (exactly representable): with
        // `micros * 1e-6` a client that waited exactly `retry_after_ms`
        // refills 0.999.. tokens and is throttled again.
        let elapsed = now_micros.saturating_sub(b.last_micros) as f64;
        b.tokens = (b.tokens + elapsed * self.limits.rate_per_s / 1e6).min(self.limits.burst);
        b.last_micros = now_micros.max(b.last_micros);
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - b.tokens;
            drop(b);
            self.throttled.fetch_add(1, Ordering::Relaxed);
            Err(self.retry_after_ms(deficit))
        }
    }

    /// Reserve one in-flight slot. `Err(retry_after_ms)` means the
    /// quota is saturated; the hint assumes roughly one slot frees per
    /// refill interval.
    pub fn try_reserve_inflight(&self) -> Result<(), u64> {
        let prev = self.inflight.fetch_add(1, Ordering::SeqCst);
        if prev >= self.limits.max_inflight {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            self.throttled.fetch_add(1, Ordering::Relaxed);
            return Err(self.retry_after_ms(1.0));
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Release an in-flight slot (quote answered, shed, or failed after
    /// reservation).
    pub fn release_inflight(&self) {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The bounded name → tenant map. `default` is pre-registered at slot 0
/// and kept on a fast path; configured overrides are pre-registered at
/// boot; unknown names self-register on first `TENANT` bind until
/// `max_tenants` is reached.
#[derive(Debug)]
pub struct TenantRegistry {
    defaults: TenantLimits,
    max_tenants: usize,
    default_tenant: Arc<TenantState>,
    by_name: Mutex<HashMap<String, Arc<TenantState>>>,
}

impl TenantRegistry {
    /// A registry holding only the pre-registered `default` tenant.
    pub fn new(
        defaults: TenantLimits,
        max_tenants: usize,
        now_micros: u64,
    ) -> Result<TenantRegistry, TenantError> {
        defaults.validate()?;
        if max_tenants == 0 {
            return Err(TenantError::BadLimits("max_tenants must be at least 1"));
        }
        let default_tenant = Arc::new(TenantState::new(DEFAULT_TENANT, 0, defaults, now_micros));
        let mut by_name = HashMap::new();
        by_name.insert(DEFAULT_TENANT.to_string(), Arc::clone(&default_tenant));
        Ok(TenantRegistry { defaults, max_tenants, default_tenant, by_name: Mutex::new(by_name) })
    }

    /// The tenant unbound connections use.
    pub fn default_tenant(&self) -> Arc<TenantState> {
        Arc::clone(&self.default_tenant)
    }

    /// Pre-register `name` with explicit limits (boot-time overrides).
    /// Re-registering an existing name replaces its limits and resets
    /// its bucket.
    pub fn register(
        &self,
        name: &str,
        limits: TenantLimits,
        now_micros: u64,
    ) -> Result<Arc<TenantState>, TenantError> {
        if !valid_tenant_name(name) {
            return Err(TenantError::BadName(name.to_string()));
        }
        limits.validate()?;
        let mut map = lock_recover(&self.by_name);
        let slot = match map.get(name) {
            Some(existing) => existing.slot,
            None if map.len() >= self.max_tenants => {
                return Err(TenantError::TableFull { max_tenants: self.max_tenants });
            }
            None => map.len(),
        };
        let state = Arc::new(TenantState::new(name, slot, limits, now_micros));
        map.insert(name.to_string(), Arc::clone(&state));
        Ok(state)
    }

    /// Resolve a `TENANT` bind: return the existing tenant or
    /// self-register one with the default limits. Bounded by
    /// `max_tenants`.
    pub fn bind(&self, name: &str, now_micros: u64) -> Result<Arc<TenantState>, TenantError> {
        if !valid_tenant_name(name) {
            return Err(TenantError::BadName(name.to_string()));
        }
        let mut map = lock_recover(&self.by_name);
        if let Some(existing) = map.get(name) {
            return Ok(Arc::clone(existing));
        }
        if map.len() >= self.max_tenants {
            return Err(TenantError::TableFull { max_tenants: self.max_tenants });
        }
        let state = Arc::new(TenantState::new(name, map.len(), self.defaults, now_micros));
        map.insert(name.to_string(), Arc::clone(&state));
        Ok(state)
    }

    /// Distinct tenants currently registered.
    pub fn len(&self) -> usize {
        lock_recover(&self.by_name).len()
    }

    /// Always false: `default` is pre-registered.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total quotes throttled across every tenant.
    pub fn throttled_total(&self) -> u64 {
        lock_recover(&self.by_name).values().map(|t| t.throttled.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> TenantLimits {
        TenantLimits { rate_per_s: 10.0, burst: 2.0, max_inflight: 2, weight: 1 }
    }

    #[test]
    fn bucket_burst_then_throttle_then_refill() {
        let t = TenantState::new("t", 1, tight(), 0);
        assert!(t.try_take_token(0).is_ok());
        assert!(t.try_take_token(0).is_ok());
        let retry = t.try_take_token(0).expect_err("bucket must be empty");
        // One token at 10/s is 100 ms away.
        assert_eq!(retry, 100);
        // 100 ms later the token is back.
        assert!(t.try_take_token(100_000).is_ok());
        assert_eq!(t.throttled.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn bucket_never_exceeds_burst_after_idle() {
        let t = TenantState::new("t", 1, tight(), 0);
        // A long sleep must cap at `burst`, not bank unbounded credit.
        assert!(t.try_take_token(10_000_000).is_ok());
        assert!(t.try_take_token(10_000_000).is_ok());
        assert!(t.try_take_token(10_000_000).is_err());
    }

    #[test]
    fn clock_regression_is_tolerated() {
        let t = TenantState::new("t", 1, tight(), 1_000_000);
        assert!(t.try_take_token(500_000).is_ok()); // now < last: no refill, no panic
    }

    #[test]
    fn inflight_quota_reserve_release() {
        let t = TenantState::new("t", 1, tight(), 0);
        assert!(t.try_reserve_inflight().is_ok());
        assert!(t.try_reserve_inflight().is_ok());
        assert!(t.try_reserve_inflight().is_err());
        t.release_inflight();
        assert!(t.try_reserve_inflight().is_ok());
        assert_eq!(t.admitted.load(Ordering::Relaxed), 3);
        assert_eq!(t.throttled.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn registry_binds_and_bounds() {
        let reg = TenantRegistry::new(TenantLimits::default(), 3, 0).expect("registry");
        assert_eq!(reg.default_tenant().slot, 0);
        let a = reg.bind("alpha", 0).expect("bind alpha");
        assert_eq!(a.slot, 1);
        // Rebinding resolves to the same state.
        assert_eq!(reg.bind("alpha", 0).expect("rebind").slot, 1);
        let b = reg.bind("beta", 0).expect("bind beta");
        assert_eq!(b.slot, 2);
        assert!(matches!(reg.bind("gamma", 0), Err(TenantError::TableFull { max_tenants: 3 })));
        assert!(matches!(reg.bind("bad name!", 0), Err(TenantError::BadName(_))));
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn register_overrides_keep_slot() {
        let reg = TenantRegistry::new(TenantLimits::default(), 8, 0).expect("registry");
        let v1 = reg.register("victim", tight(), 0).expect("register");
        let v2 =
            reg.register("victim", TenantLimits { weight: 4, ..tight() }, 0).expect("re-register");
        assert_eq!(v1.slot, v2.slot);
        assert_eq!(reg.bind("victim", 0).expect("bind").limits.weight, 4);
    }

    #[test]
    fn default_limits_never_throttle_normal_traffic() {
        let t = TenantState::new("default", 0, TenantLimits::default(), 0);
        for i in 0..10_000u64 {
            assert!(t.try_take_token(i).is_ok(), "default tenant throttled at {i}");
            assert!(t.try_reserve_inflight().is_ok());
        }
    }

    #[test]
    fn limits_validation_rejects_degenerate_fields() {
        let bad = [
            TenantLimits { rate_per_s: 0.0, ..TenantLimits::default() },
            TenantLimits { rate_per_s: f64::NAN, ..TenantLimits::default() },
            TenantLimits { burst: 0.5, ..TenantLimits::default() },
            TenantLimits { max_inflight: 0, ..TenantLimits::default() },
            TenantLimits { weight: 0, ..TenantLimits::default() },
        ];
        for limits in bad {
            assert!(limits.validate().is_err(), "{limits:?} must not validate");
        }
        assert!(TenantLimits::default().validate().is_ok());
    }
}
