//! Libc-free termination signal latch.
//!
//! The container has no `libc` crate, so the binary installs its
//! handlers through the C library's `signal(2)` entry point directly.
//! The handler body is async-signal-safe: one relaxed atomic store.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TERMINATION_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        TERMINATION_REQUESTED.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        // SAFETY: `signal` is the POSIX entry point; the handler only
        // performs an atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install the `SIGTERM`/`SIGINT` handlers (idempotent). On non-Unix
/// targets this is a no-op and [`termination_requested`] only trips via
/// [`request_termination`].
pub fn install() {
    imp::install();
}

/// Whether a termination signal (or programmatic request) has arrived.
pub fn termination_requested() -> bool {
    TERMINATION_REQUESTED.load(Ordering::Relaxed)
}

/// Trip the latch programmatically (tests, non-Unix fallback).
pub fn request_termination() {
    TERMINATION_REQUESTED.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_trips_programmatically() {
        install();
        request_termination();
        assert!(termination_requested());
    }
}
