//! Epoch-swapped immutable curve snapshots.
//!
//! A curve tick never mutates market data in place: it builds a whole
//! new [`EpochSnapshot`] (market curves plus a CPU engine already
//! constructed from them) and publishes it by swapping an
//! [`Arc`] behind a mutex, then bumping an atomic epoch counter.
//! Readers keep their own cached `Arc` and only touch the mutex when
//! the epoch counter tells them it is stale, so the steady-state read
//! path is a single atomic load — readers never lock while quotes are
//! priced, and a snapshot can never be torn: every quote prices against
//! exactly one epoch's curves.

use cds_cpu::engine::CpuCdsEngine;
use cds_quant::option::MarketData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::lock_recover;

/// One immutable published epoch: the curves and the CPU engine built
/// from them (term structures are precomputed once per tick, not per
/// quote).
#[derive(Debug)]
pub struct EpochSnapshot {
    /// Monotonically increasing epoch number; epoch 0 is the boot
    /// snapshot.
    pub epoch: u64,
    /// Seed the curves were generated from (`MarketData::paper_workload`).
    pub seed: u64,
    /// The published market curves.
    pub market: MarketData<f64>,
    /// CPU pricing engine constructed from `market`; bit-identical to
    /// the scalar reference for every quote.
    pub engine: CpuCdsEngine,
}

impl EpochSnapshot {
    fn build(epoch: u64, seed: u64) -> Arc<EpochSnapshot> {
        let market = MarketData::paper_workload(seed);
        let engine = CpuCdsEngine::new(&market);
        Arc::new(EpochSnapshot { epoch, seed, market, engine })
    }
}

/// The published curve book: current epoch number plus the slot holding
/// the current snapshot.
#[derive(Debug)]
pub struct CurveBook {
    epoch: AtomicU64,
    slot: Mutex<Arc<EpochSnapshot>>,
}

impl CurveBook {
    /// Boot the book at epoch 0 from `seed`.
    pub fn new(seed: u64) -> CurveBook {
        CurveBook { epoch: AtomicU64::new(0), slot: Mutex::new(EpochSnapshot::build(0, seed)) }
    }

    /// Current epoch number (a single atomic load).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publish a new epoch generated from `seed`; returns the new epoch
    /// number. The snapshot is fully constructed before the slot swap,
    /// and the epoch counter is bumped only after the slot holds the new
    /// snapshot, so a reader that observes epoch `n` always finds a
    /// snapshot at least as new as `n` in the slot.
    pub fn publish(&self, seed: u64) -> u64 {
        let next = self.epoch.load(Ordering::Acquire) + 1;
        let snapshot = EpochSnapshot::build(next, seed);
        *lock_recover(&self.slot) = snapshot;
        self.epoch.store(next, Ordering::Release);
        next
    }

    /// Clone the current snapshot `Arc` (takes the slot lock; use
    /// [`CurveBook::refresh`] on hot paths).
    pub fn current(&self) -> Arc<EpochSnapshot> {
        lock_recover(&self.slot).clone()
    }

    /// Refresh a reader's cached snapshot if the published epoch moved.
    /// Returns `true` when the cache was replaced. The fast path (epoch
    /// unchanged) is one atomic load and never locks.
    pub fn refresh(&self, cached: &mut Arc<EpochSnapshot>) -> bool {
        if cached.epoch == self.epoch.load(Ordering::Acquire) {
            return false;
        }
        *cached = self.current();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn boot_epoch_is_zero_and_publish_increments() {
        let book = CurveBook::new(42);
        assert_eq!(book.epoch(), 0);
        assert_eq!(book.current().epoch, 0);
        assert_eq!(book.publish(43), 1);
        assert_eq!(book.epoch(), 1);
        assert_eq!(book.current().seed, 43);
    }

    #[test]
    fn refresh_is_a_noop_until_the_epoch_moves() {
        let book = CurveBook::new(7);
        let mut cached = book.current();
        assert!(!book.refresh(&mut cached));
        book.publish(8);
        assert!(book.refresh(&mut cached));
        assert_eq!(cached.epoch, 1);
        assert!(!book.refresh(&mut cached));
    }

    #[test]
    fn snapshot_engine_matches_a_fresh_engine_bit_for_bit() {
        let book = CurveBook::new(11);
        book.publish(99);
        let snap = book.current();
        let fresh = CpuCdsEngine::new(&MarketData::paper_workload(99));
        let opt = cds_quant::option::CdsOption::new(
            5.0,
            cds_quant::option::PaymentFrequency::Quarterly,
            0.4,
        );
        assert_eq!(
            snap.engine.price(&opt).spread_bps.to_bits(),
            fresh.price(&opt).spread_bps.to_bits()
        );
    }

    #[test]
    fn concurrent_readers_always_see_a_consistent_epoch() {
        // Seed scheme: every epoch e is published from seed e + 1000,
        // including the boot epoch, so readers can cross-check that a
        // snapshot's curves belong to its epoch (no torn pairs).
        let book = Arc::new(CurveBook::new(1000));
        let stop = Arc::new(AtomicU64::new(0));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let book = book.clone();
            let stop = stop.clone();
            joins.push(thread::spawn(move || {
                let mut cached = book.current();
                let mut last_seen = cached.epoch;
                while stop.load(Ordering::Relaxed) == 0 {
                    book.refresh(&mut cached);
                    // Epochs only move forward, and the snapshot's own
                    // epoch always matches the seed it was built from.
                    assert!(cached.epoch >= last_seen);
                    assert_eq!(cached.seed, cached.epoch + 1000);
                    last_seen = cached.epoch;
                }
            }));
        }
        let publisher = {
            let book = book.clone();
            thread::spawn(move || {
                for tick in 1..=20u64 {
                    assert_eq!(book.publish(tick + 1000), tick);
                }
            })
        };
        publisher.join().expect("publisher");
        stop.store(1, Ordering::Relaxed);
        for j in joins {
            j.join().expect("reader");
        }
        assert_eq!(book.epoch(), 20);
    }
}
