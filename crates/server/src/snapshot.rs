//! Epoch-swapped immutable curve snapshots.
//!
//! A curve tick never mutates market data in place: it builds a whole
//! new [`EpochSnapshot`] (market curves plus a CPU engine already
//! constructed from them) and publishes it by swapping an
//! [`Arc`] behind a mutex, then bumping an atomic epoch counter.
//! Readers keep their own cached `Arc` and only touch the mutex when
//! the epoch counter tells them it is stale, so the steady-state read
//! path is a single atomic load — readers never lock while quotes are
//! priced, and a snapshot can never be torn: every quote prices against
//! exactly one epoch's curves.

use cds_cpu::engine::CpuCdsEngine;
use cds_engine::incremental::CurveKind;
use cds_engine::portfolio::{
    hazard_window, interest_window, option_reads_hazard, option_reads_interest, ReadWindow,
};
use cds_quant::curve::Curve;
use cds_quant::option::{CdsOption, MarketData};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::lock_recover;

/// The invalidation set a point tick publishes with its epoch: which
/// knot moved, and the read-time window it poisons. A reader holding
/// cached quotes from the previous epoch can keep every quote whose
/// pricing pass does not read inside the window — they are *bit*-valid
/// under the new epoch, not merely approximately (see the
/// `cds_engine::incremental` bit-identity argument).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickInvalidation {
    /// Curve the tick targeted.
    pub curve: CurveKind,
    /// The ticked knot.
    pub knot: usize,
    /// Read-time window whose readers must requote.
    pub window: ReadWindow,
    /// True when the tick re-published identical value bits — nothing
    /// is invalidated, the window is advisory only.
    pub zero_delta: bool,
}

impl TickInvalidation {
    /// Must a cached quote for `option` be re-priced under the new
    /// epoch? Exact, not conservative: `false` guarantees the previous
    /// epoch's spread bits equal the new epoch's.
    pub fn invalidates(&self, option: &CdsOption) -> bool {
        !self.zero_delta
            && match self.curve {
                CurveKind::Interest => option_reads_interest(option, &self.window),
                CurveKind::Hazard => option_reads_hazard(option, &self.window),
            }
    }
}

/// One immutable published epoch: the curves and the CPU engine built
/// from them (term structures are precomputed once per tick, not per
/// quote).
#[derive(Debug)]
pub struct EpochSnapshot {
    /// Monotonically increasing epoch number; epoch 0 is the boot
    /// snapshot.
    pub epoch: u64,
    /// Seed the curves were generated from (`MarketData::paper_workload`).
    pub seed: u64,
    /// The published market curves.
    pub market: MarketData<f64>,
    /// CPU pricing engine constructed from `market`; bit-identical to
    /// the scalar reference for every quote.
    pub engine: CpuCdsEngine,
    /// When this epoch was published by a point tick, the invalidation
    /// set it carries; `None` for seed-published (full-replace) epochs,
    /// which invalidate everything.
    pub invalidation: Option<TickInvalidation>,
}

impl EpochSnapshot {
    fn build(epoch: u64, seed: u64) -> Arc<EpochSnapshot> {
        let market = MarketData::paper_workload(seed);
        let engine = CpuCdsEngine::new(&market);
        Arc::new(EpochSnapshot { epoch, seed, market, engine, invalidation: None })
    }
}

/// The published curve book: current epoch number plus the slot holding
/// the current snapshot.
#[derive(Debug)]
pub struct CurveBook {
    epoch: AtomicU64,
    slot: Mutex<Arc<EpochSnapshot>>,
}

impl CurveBook {
    /// Boot the book at epoch 0 from `seed`.
    pub fn new(seed: u64) -> CurveBook {
        CurveBook { epoch: AtomicU64::new(0), slot: Mutex::new(EpochSnapshot::build(0, seed)) }
    }

    /// Current epoch number (a single atomic load).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publish a new epoch generated from `seed`; returns the new epoch
    /// number. The snapshot is fully constructed before the slot swap,
    /// and the epoch counter is bumped only after the slot holds the new
    /// snapshot, so a reader that observes epoch `n` always finds a
    /// snapshot at least as new as `n` in the slot.
    pub fn publish(&self, seed: u64) -> u64 {
        let next = self.epoch.load(Ordering::Acquire) + 1;
        let snapshot = EpochSnapshot::build(next, seed);
        *lock_recover(&self.slot) = snapshot;
        self.epoch.store(next, Ordering::Release);
        next
    }

    /// Publish a new epoch by replacing the *value* of one curve knot,
    /// keeping every other point (and all tenors) bit-identical — the
    /// epoch-swap half of the incremental tick path. Returns the new
    /// epoch number and whether the tick was zero-delta (identical
    /// value bits re-published). The snapshot carries a
    /// [`TickInvalidation`] so readers can keep cached quotes whose
    /// read sets avoid the ticked knot.
    ///
    /// The seed field is inherited from the previous snapshot (the
    /// curves are no longer a pure function of it once point ticks
    /// land).
    pub fn publish_point(
        &self,
        curve: CurveKind,
        knot: usize,
        value: f64,
    ) -> Result<(u64, bool), String> {
        let prev = self.current();
        let target = match curve {
            CurveKind::Interest => &prev.market.interest,
            CurveKind::Hazard => &prev.market.hazard,
        };
        let Some(old) = target.points().get(knot) else {
            return Err(format!(
                "knot {knot} out of bounds for the {curve} curve ({} knots)",
                target.len()
            ));
        };
        let zero_delta = value.to_bits() == old.value.to_bits();
        let mut market = prev.market.clone();
        if !zero_delta {
            let mut points = target.points().to_vec();
            points[knot].value = value;
            let rebuilt = Curve::new(points)
                .map_err(|e| format!("curve rejected ticked value {value}: {e}"))?;
            match curve {
                CurveKind::Interest => market.interest = rebuilt,
                CurveKind::Hazard => market.hazard = rebuilt,
            }
        }
        let tenors: Vec<f64> = target.points().iter().map(|p| p.tenor).collect();
        let window = match curve {
            CurveKind::Interest => interest_window(&tenors, knot),
            CurveKind::Hazard => hazard_window(&tenors, knot),
        };
        let next = self.epoch.load(Ordering::Acquire) + 1;
        let engine = if zero_delta { prev.engine.clone() } else { CpuCdsEngine::new(&market) };
        let snapshot = Arc::new(EpochSnapshot {
            epoch: next,
            seed: prev.seed,
            market,
            engine,
            invalidation: Some(TickInvalidation { curve, knot, window, zero_delta }),
        });
        *lock_recover(&self.slot) = snapshot;
        self.epoch.store(next, Ordering::Release);
        Ok((next, zero_delta))
    }

    /// Clone the current snapshot `Arc` (takes the slot lock; use
    /// [`CurveBook::refresh`] on hot paths).
    pub fn current(&self) -> Arc<EpochSnapshot> {
        lock_recover(&self.slot).clone()
    }

    /// Refresh a reader's cached snapshot if the published epoch moved.
    /// Returns `true` when the cache was replaced. The fast path (epoch
    /// unchanged) is one atomic load and never locks.
    pub fn refresh(&self, cached: &mut Arc<EpochSnapshot>) -> bool {
        if cached.epoch == self.epoch.load(Ordering::Acquire) {
            return false;
        }
        *cached = self.current();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn boot_epoch_is_zero_and_publish_increments() {
        let book = CurveBook::new(42);
        assert_eq!(book.epoch(), 0);
        assert_eq!(book.current().epoch, 0);
        assert_eq!(book.publish(43), 1);
        assert_eq!(book.epoch(), 1);
        assert_eq!(book.current().seed, 43);
    }

    #[test]
    fn refresh_is_a_noop_until_the_epoch_moves() {
        let book = CurveBook::new(7);
        let mut cached = book.current();
        assert!(!book.refresh(&mut cached));
        book.publish(8);
        assert!(book.refresh(&mut cached));
        assert_eq!(cached.epoch, 1);
        assert!(!book.refresh(&mut cached));
    }

    #[test]
    fn snapshot_engine_matches_a_fresh_engine_bit_for_bit() {
        let book = CurveBook::new(11);
        book.publish(99);
        let snap = book.current();
        let fresh = CpuCdsEngine::new(&MarketData::paper_workload(99));
        let opt = cds_quant::option::CdsOption::new(
            5.0,
            cds_quant::option::PaymentFrequency::Quarterly,
            0.4,
        );
        assert_eq!(
            snap.engine.price(&opt).spread_bps.to_bits(),
            fresh.price(&opt).spread_bps.to_bits()
        );
    }

    #[test]
    fn publish_point_moves_one_knot_and_keeps_the_rest_bit_identical() {
        let book = CurveBook::new(21);
        let before = book.current();
        let old = before.market.hazard.points()[5].value;
        let (epoch, zero) =
            book.publish_point(CurveKind::Hazard, 5, old * 1.25).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(epoch, 1);
        assert!(!zero);
        let after = book.current();
        assert_eq!(after.epoch, 1);
        assert_eq!(after.seed, before.seed, "point ticks inherit the seed");
        for (i, (a, b)) in
            before.market.hazard.points().iter().zip(after.market.hazard.points()).enumerate()
        {
            assert_eq!(a.tenor.to_bits(), b.tenor.to_bits(), "tenor {i} moved");
            if i == 5 {
                assert_ne!(a.value.to_bits(), b.value.to_bits());
            } else {
                assert_eq!(a.value.to_bits(), b.value.to_bits(), "knot {i} moved");
            }
        }
        assert_eq!(before.market.interest, after.market.interest);
    }

    #[test]
    fn invalidation_set_is_exact_for_cached_quotes() {
        // `invalidates() == false` must guarantee bit-equal spreads
        // across the epoch swap; `true` must cover every changed quote.
        let book = CurveBook::new(33);
        let before = book.current();
        let options: Vec<CdsOption> = cds_quant::option::PortfolioGenerator::new(44).portfolio(256);
        let old_bits: Vec<u64> =
            options.iter().map(|o| before.engine.price(o).spread_bps.to_bits()).collect();
        for (curve, knot) in
            [(CurveKind::Interest, 700), (CurveKind::Interest, 3), (CurveKind::Hazard, 17)]
        {
            let snap = book.current();
            let old = match curve {
                CurveKind::Interest => snap.market.interest.points()[knot].value,
                CurveKind::Hazard => snap.market.hazard.points()[knot].value,
            };
            book.publish_point(curve, knot, old + 17e-4).unwrap_or_else(|e| panic!("{e}"));
            let after = book.current();
            let inv = after.invalidation.unwrap_or_else(|| panic!("missing invalidation"));
            for (o, &bits) in options.iter().zip(&old_bits) {
                let now = after.engine.price(o).spread_bps.to_bits();
                if !inv.invalidates(o) {
                    assert_eq!(now, bits, "{curve} knot {knot}: kept quote moved for {o:?}");
                }
            }
            // Reset for the next round by re-publishing the old value.
            book.publish_point(curve, knot, old).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn zero_delta_point_tick_invalidates_nothing_and_reuses_the_engine() {
        let book = CurveBook::new(8);
        let old = book.current().market.interest.points()[100].value;
        let (epoch, zero) =
            book.publish_point(CurveKind::Interest, 100, old).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(epoch, 1);
        assert!(zero);
        let snap = book.current();
        let inv = snap.invalidation.unwrap_or_else(|| panic!("missing invalidation"));
        assert!(inv.zero_delta);
        let probe = CdsOption::new(5.0, cds_quant::option::PaymentFrequency::Quarterly, 0.4);
        assert!(!inv.invalidates(&probe));
    }

    #[test]
    fn bad_point_ticks_are_rejected_without_publishing() {
        let book = CurveBook::new(1);
        assert!(book.publish_point(CurveKind::Interest, 99_999, 0.02).is_err());
        assert!(book.publish_point(CurveKind::Hazard, 0, f64::NAN).is_err());
        assert_eq!(book.epoch(), 0, "failed ticks must not publish an epoch");
    }

    #[test]
    fn concurrent_readers_always_see_a_consistent_epoch() {
        // Seed scheme: every epoch e is published from seed e + 1000,
        // including the boot epoch, so readers can cross-check that a
        // snapshot's curves belong to its epoch (no torn pairs).
        let book = Arc::new(CurveBook::new(1000));
        let stop = Arc::new(AtomicU64::new(0));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let book = book.clone();
            let stop = stop.clone();
            joins.push(thread::spawn(move || {
                let mut cached = book.current();
                let mut last_seen = cached.epoch;
                while stop.load(Ordering::Relaxed) == 0 {
                    book.refresh(&mut cached);
                    // Epochs only move forward, and the snapshot's own
                    // epoch always matches the seed it was built from.
                    assert!(cached.epoch >= last_seen);
                    assert_eq!(cached.seed, cached.epoch + 1000);
                    last_seen = cached.epoch;
                }
            }));
        }
        let publisher = {
            let book = book.clone();
            thread::spawn(move || {
                for tick in 1..=20u64 {
                    assert_eq!(book.publish(tick + 1000), tick);
                }
            })
        };
        publisher.join().expect("publisher");
        stop.store(1, Ordering::Relaxed);
        for j in joins {
            j.join().expect("reader");
        }
        assert_eq!(book.epoch(), 20);
    }
}
