//! `cds-server`: a resilient quote-serving front-end for the CDS engine.
//!
//! The serving stack layers the repo's robustness machinery behind a
//! minimal std-only TCP line protocol:
//!
//! - [`proto`] — the wire protocol (`QUOTE`/`TICK`/`FAULT`/`STATS`/
//!   `DRAIN`/`PING`) with bit-exact f64 transport via hex bit patterns.
//! - [`snapshot`] — epoch-swapped immutable curve snapshots: a `TICK`
//!   publishes a new [`std::sync::Arc`] epoch; readers never lock on the
//!   hot path.
//! - [`ladder`] — the explicit degradation ladder (healthy →
//!   shed-low-priority → CPU-fallback-on-engine-death →
//!   reject-with-Retry-After) driven by telemetry counters.
//! - [`hedge`] — the idempotence ledger that makes deadline-aware
//!   retries and hedged attempts safe: a request id is priced once no
//!   matter how many attempts race.
//! - [`wal`] — the serving write-ahead journal; accepted requests are
//!   durable before dispatch and completions checkpoint through the
//!   engine's [`cds_engine::checkpoint::Checkpoint`] text format, so a
//!   `SIGTERM` mid-burst drains or leaves a bit-identically resumable
//!   journal.
//! - [`tenant`] — per-tenant bulkheads: token-bucket rate limits,
//!   in-flight quotas, and a bounded name registry; connections bind
//!   with `TENANT <name>` and over-limit quotes get `THROTTLE` with a
//!   retry-after hint.
//! - [`fair`] — deficit-weighted round-robin shard queues, so one
//!   flooding tenant cannot starve compliant tenants' dequeue share.
//! - [`fuzz`] — the seeded wire-level fuzzer used by the hostile-client
//!   tests, `loadgen --abuser`, and the isolation chaos scenarios.
//! - [`server`] — sharded per-core ingestion queues feeding the
//!   admission control, the retry/hedge executor, and graceful drain.
//! - [`signal`] — a libc-free `SIGTERM`/`SIGINT` flag for the binary.

#![warn(missing_docs)]

pub mod fair;
pub mod fuzz;
pub mod hedge;
pub mod ladder;
pub mod proto;
pub mod server;
pub mod signal;
pub mod snapshot;
pub mod tenant;
pub mod wal;

pub use crate::fair::{DrrScheduler, FairQueue};
pub use crate::hedge::QuoteLedger;
pub use crate::ladder::{DegradationLadder, LadderConfig, LadderTelemetry, Rung};
pub use crate::proto::{Priority, QuoteRequest, Request, Response};
pub use crate::server::{serve, ServerConfig, ServerError, ServerHandle};
pub use crate::snapshot::{CurveBook, EpochSnapshot};
pub use crate::tenant::{TenantLimits, TenantRegistry, TenantState};
pub use crate::wal::{AcceptRecord, WalState, WalWriter};

/// Lock a mutex, recovering the inner value if a holder panicked.
/// Server state mutated under these locks is a set of monotone counters
/// and append-only journals, all safe to observe mid-update.
pub(crate) fn lock_recover<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
