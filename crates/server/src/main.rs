//! `cds-server` binary: bind, serve, drain gracefully on `SIGTERM`.

use cds_server::server::{serve, ServerConfig};
use cds_server::signal;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
usage: cds-server [options]

options:
  --addr <host:port>        bind address (default 127.0.0.1:0; port 0 = ephemeral)
  --shards <n>              engine shards (default 4)
  --seed <n>                boot curve epoch seed (default 42)
  --capacity <n>            in-flight quote cap (default 256)
  --service-micros <n>      admission service estimate per quote (default 200)
  --journal <path>          write-ahead journal path (durability off when absent)
  --cadence <n>             completions per checkpoint (default 64)
  --drain-deadline-ms <n>   drain budget before checkpointing pending (default 5000)

SIGTERM or the DRAIN command begins a graceful drain; the process exits 0
once in-flight quotes complete or are durably checkpointed as pending.";

fn fatal(msg: &str) -> ExitCode {
    eprintln!("cds-server: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn parse_flag<T: std::str::FromStr>(
    args: &mut std::iter::Peekable<std::env::Args>,
    flag: &str,
) -> Result<T, String> {
    let Some(value) = args.next() else {
        return Err(format!("{flag} requires a value"));
    };
    value.parse::<T>().map_err(|_| format!("bad value `{value}` for {flag}"))
}

fn main() -> ExitCode {
    let mut config = ServerConfig { addr: "127.0.0.1:0".to_string(), ..Default::default() };
    let mut args = std::env::args().peekable();
    let _argv0 = args.next();
    while let Some(arg) = args.next() {
        let result: Result<(), String> = match arg.as_str() {
            "--addr" => parse_flag(&mut args, "--addr").map(|v| config.addr = v),
            "--shards" => parse_flag(&mut args, "--shards").map(|v| config.shards = v),
            "--seed" => parse_flag(&mut args, "--seed").map(|v| config.seed = v),
            "--capacity" => parse_flag(&mut args, "--capacity").map(|v| config.capacity = v),
            "--service-micros" => {
                parse_flag(&mut args, "--service-micros").map(|v| config.service_micros = v)
            }
            "--journal" => {
                parse_flag(&mut args, "--journal").map(|v: String| config.journal = Some(v.into()))
            }
            "--cadence" => parse_flag(&mut args, "--cadence").map(|v| config.cadence = v),
            "--drain-deadline-ms" => parse_flag(&mut args, "--drain-deadline-ms")
                .map(|v: u64| config.drain_deadline = Duration::from_millis(v)),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag `{other}`")),
        };
        if let Err(msg) = result {
            return fatal(&msg);
        }
    }

    signal::install();
    let handle = match serve(config) {
        Ok(h) => h,
        Err(e) => return fatal(&format!("startup failed: {e}")),
    };
    // The parseable readiness line tests and tooling wait for.
    println!("cds-server listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    while !signal::termination_requested() && !handle.is_draining() {
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.drain();
    let summary = handle.wait();
    eprintln!(
        "cds-server: drained (accepted={} completed={} pending={})",
        summary.accepted, summary.completed, summary.pending
    );
    ExitCode::SUCCESS
}
