//! `cds-server` binary: bind, serve, drain gracefully on `SIGTERM`.

use cds_server::server::{serve, ServerConfig};
use cds_server::signal;
use cds_server::tenant::TenantLimits;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
usage: cds-server [options]

options:
  --addr <host:port>        bind address (default 127.0.0.1:0; port 0 = ephemeral)
  --shards <n>              engine shards (default 4)
  --seed <n>                boot curve epoch seed (default 42)
  --capacity <n>            in-flight quote cap (default 256)
  --conn-capacity <n>       per-connection in-flight cap (default 256)
  --service-micros <n>      admission service estimate per quote (default 200)
  --journal <path>          write-ahead journal path (durability off when absent)
  --cadence <n>             completions per checkpoint (default 64)
  --wal-fault <kind>@<n>    inject a journal storage fault (testing): kind is
                            enospc|eio|short (at append index n) or liar
                            (fsyncs lie from fsync index n); requires --journal
  --drain-deadline-ms <n>   drain budget before checkpointing pending (default 5000)
  --read-timeout-ms <n>     accepted-stream read timeout (default 100)
  --write-timeout-ms <n>    accepted-stream write timeout (default 2000)
  --idle-timeout-ms <n>     close connections with no complete request line
                            for this long (slowloris reaper, default 30000)
  --max-line-bytes <n>      request-line byte cap (default 1024, min 64)
  --max-tenants <n>         tenant registry bound (default 64)
  --tenant-default <spec>   limits for default/self-registered tenants
  --tenant <name>=<spec>    per-tenant limit override (repeatable)

<spec> is <rate_per_s>:<burst>:<max_inflight>:<weight>, e.g. 500:32:64:2.

SIGTERM or the DRAIN command begins a graceful drain; the process exits 0
once in-flight quotes complete or are durably checkpointed as pending.";

fn parse_limits(spec: &str) -> Result<TenantLimits, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [rate, burst, inflight, weight] = parts.as_slice() else {
        return Err(format!("bad tenant spec `{spec}` (want rate:burst:inflight:weight)"));
    };
    let limits = TenantLimits {
        rate_per_s: rate.parse().map_err(|_| format!("bad rate `{rate}` in `{spec}`"))?,
        burst: burst.parse().map_err(|_| format!("bad burst `{burst}` in `{spec}`"))?,
        max_inflight: inflight
            .parse()
            .map_err(|_| format!("bad max_inflight `{inflight}` in `{spec}`"))?,
        weight: weight.parse().map_err(|_| format!("bad weight `{weight}` in `{spec}`"))?,
    };
    limits.validate().map_err(|e| e.to_string())?;
    Ok(limits)
}

fn fatal(msg: &str) -> ExitCode {
    eprintln!("cds-server: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn parse_flag<T: std::str::FromStr>(
    args: &mut std::iter::Peekable<std::env::Args>,
    flag: &str,
) -> Result<T, String> {
    let Some(value) = args.next() else {
        return Err(format!("{flag} requires a value"));
    };
    value.parse::<T>().map_err(|_| format!("bad value `{value}` for {flag}"))
}

fn main() -> ExitCode {
    let mut config = ServerConfig { addr: "127.0.0.1:0".to_string(), ..Default::default() };
    let mut args = std::env::args().peekable();
    let _argv0 = args.next();
    while let Some(arg) = args.next() {
        let result: Result<(), String> = match arg.as_str() {
            "--addr" => parse_flag(&mut args, "--addr").map(|v| config.addr = v),
            "--shards" => parse_flag(&mut args, "--shards").map(|v| config.shards = v),
            "--seed" => parse_flag(&mut args, "--seed").map(|v| config.seed = v),
            "--capacity" => parse_flag(&mut args, "--capacity").map(|v| config.capacity = v),
            "--service-micros" => {
                parse_flag(&mut args, "--service-micros").map(|v| config.service_micros = v)
            }
            "--journal" => {
                parse_flag(&mut args, "--journal").map(|v: String| config.journal = Some(v.into()))
            }
            "--cadence" => parse_flag(&mut args, "--cadence").map(|v| config.cadence = v),
            "--wal-fault" => {
                parse_flag(&mut args, "--wal-fault").map(|v| config.wal_fault = Some(v))
            }
            "--drain-deadline-ms" => parse_flag(&mut args, "--drain-deadline-ms")
                .map(|v: u64| config.drain_deadline = Duration::from_millis(v)),
            "--conn-capacity" => {
                parse_flag(&mut args, "--conn-capacity").map(|v| config.conn_capacity = v)
            }
            "--read-timeout-ms" => parse_flag(&mut args, "--read-timeout-ms")
                .map(|v: u64| config.read_timeout = Duration::from_millis(v)),
            "--write-timeout-ms" => parse_flag(&mut args, "--write-timeout-ms")
                .map(|v: u64| config.write_timeout = Duration::from_millis(v)),
            "--idle-timeout-ms" => parse_flag(&mut args, "--idle-timeout-ms")
                .map(|v: u64| config.idle_timeout = Duration::from_millis(v)),
            "--max-line-bytes" => {
                parse_flag(&mut args, "--max-line-bytes").map(|v| config.max_line_bytes = v)
            }
            "--max-tenants" => {
                parse_flag(&mut args, "--max-tenants").map(|v| config.max_tenants = v)
            }
            "--tenant-default" => parse_flag(&mut args, "--tenant-default")
                .and_then(|v: String| parse_limits(&v))
                .map(|limits| config.tenant_defaults = limits),
            "--tenant" => parse_flag(&mut args, "--tenant").and_then(|v: String| {
                let Some((name, spec)) = v.split_once('=') else {
                    return Err(format!(
                        "bad --tenant `{v}` (want name=rate:burst:inflight:weight)"
                    ));
                };
                let limits = parse_limits(spec)?;
                config.tenant_overrides.push((name.to_string(), limits));
                Ok(())
            }),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag `{other}`")),
        };
        if let Err(msg) = result {
            return fatal(&msg);
        }
    }

    signal::install();
    let handle = match serve(config) {
        Ok(h) => h,
        Err(e) => return fatal(&format!("startup failed: {e}")),
    };
    // The parseable readiness line tests and tooling wait for.
    println!("cds-server listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    while !signal::termination_requested() && !handle.is_draining() {
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.drain();
    let summary = handle.wait();
    eprintln!(
        "cds-server: drained (accepted={} completed={} pending={})",
        summary.accepted, summary.completed, summary.pending
    );
    ExitCode::SUCCESS
}
