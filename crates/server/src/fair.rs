//! Deficit-weighted round-robin fair scheduling for shard queues.
//!
//! PR 7's shard queues were plain FIFOs: one flooding tenant could park
//! thousands of jobs ahead of everyone else and own the shard. This
//! module replaces them with a classic deficit round-robin (DRR)
//! scheduler keyed by tenant slot: each backlogged tenant holds its own
//! FIFO, and a dequeue serves the tenant at the head of the active ring
//! until its per-round *deficit* (weight x quantum jobs) is spent, then
//! rotates. The guarantees, property-tested in
//! `tests/fair_props.rs`:
//!
//! - **work conservation** — `pop` returns a job whenever any tenant is
//!   backlogged; an idle tenant never reserves shard time;
//! - **starvation freedom** — every backlogged tenant dequeues at least
//!   one job within one full ring rotation, i.e. within
//!   `sum(weight_i x quantum)` pops;
//! - **weighted shares** — with every tenant saturated, dequeue counts
//!   converge to `weight_i / sum(weights)` exactly per round;
//! - **per-tenant FIFO** — jobs of one tenant never reorder.
//!
//! [`DrrScheduler`] is the pure core (no locks, fully deterministic);
//! [`FairQueue`] wraps it in a mutex + condvar for the shard workers.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::lock_recover;

/// Jobs a tenant may dequeue per ring visit and unit of weight. One is
/// the classic DRR quantum for unit-cost work; larger values trade
/// fairness granularity for fewer ring rotations.
pub const DEFAULT_QUANTUM: u64 = 1;

#[derive(Debug)]
struct SlotQueue<T> {
    weight: u64,
    deficit: u64,
    items: VecDeque<T>,
}

impl<T> Default for SlotQueue<T> {
    fn default() -> Self {
        SlotQueue { weight: 1, deficit: 0, items: VecDeque::new() }
    }
}

/// The pure deficit round-robin core: per-slot FIFOs plus the active
/// ring. Slots are dense indices (tenant registry slots); unknown slots
/// are materialised on first push.
#[derive(Debug)]
pub struct DrrScheduler<T> {
    quantum: u64,
    slots: Vec<SlotQueue<T>>,
    /// Backlogged slots in service order; the front slot is being
    /// served until its deficit runs out.
    active: VecDeque<usize>,
    len: usize,
}

impl<T> DrrScheduler<T> {
    /// An empty scheduler with the given per-weight quantum (at least 1).
    pub fn new(quantum: u64) -> DrrScheduler<T> {
        DrrScheduler { quantum: quantum.max(1), slots: Vec::new(), active: VecDeque::new(), len: 0 }
    }

    /// Queued jobs across every tenant.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no tenant is backlogged.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueue one job for `slot`, (re)binding the slot's weight. A
    /// previously idle slot joins the **tail** of the active ring with
    /// an empty deficit — going idle never banks credit.
    pub fn push(&mut self, slot: usize, weight: u64, item: T) {
        if slot >= self.slots.len() {
            self.slots.resize_with(slot + 1, SlotQueue::default);
        }
        let q = &mut self.slots[slot];
        q.weight = weight.max(1);
        let was_idle = q.items.is_empty();
        q.items.push_back(item);
        self.len += 1;
        if was_idle {
            q.deficit = 0;
            self.active.push_back(slot);
        }
    }

    /// Dequeue the next job under DRR order. Returns `None` only when
    /// every tenant is idle (work conservation).
    pub fn pop(&mut self) -> Option<T> {
        while let Some(&slot) = self.active.front() {
            let q = &mut self.slots[slot];
            let Some(item) = q.items.pop_front() else {
                // An active entry should never be empty; drop it and
                // keep the ring consistent rather than trusting it.
                q.deficit = 0;
                self.active.pop_front();
                continue;
            };
            // A zero deficit marks a fresh visit: charge the full
            // weighted quantum, then spend one unit per job.
            if q.deficit == 0 {
                q.deficit = q.weight.saturating_mul(self.quantum);
            }
            q.deficit -= 1;
            self.len -= 1;
            self.active.pop_front();
            if q.items.is_empty() {
                // Leftover deficit is forfeited on going idle.
                q.deficit = 0;
            } else if q.deficit > 0 {
                self.active.push_front(slot); // keep serving this visit
            } else {
                self.active.push_back(slot); // visit spent: rotate
            }
            return Some(item);
        }
        None
    }
}

/// A blocking DRR queue: the shard workers' replacement for
/// `mpsc::Receiver`, with the scheduler guarded by a mutex and a
/// condvar for wake-ups.
#[derive(Debug)]
pub struct FairQueue<T> {
    inner: Mutex<DrrScheduler<T>>,
    ready: Condvar,
}

impl<T> Default for FairQueue<T> {
    fn default() -> Self {
        FairQueue::new(DEFAULT_QUANTUM)
    }
}

impl<T> FairQueue<T> {
    /// An empty queue with the given DRR quantum.
    pub fn new(quantum: u64) -> FairQueue<T> {
        FairQueue { inner: Mutex::new(DrrScheduler::new(quantum)), ready: Condvar::new() }
    }

    /// Enqueue a job for a tenant slot and wake one worker.
    pub fn push(&self, slot: usize, weight: u64, item: T) {
        lock_recover(&self.inner).push(slot, weight, item);
        self.ready.notify_one();
    }

    /// Queued jobs right now.
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).len()
    }

    /// Whether the queue is empty right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every queued item. Called by a shard worker at shutdown so
    /// queued jobs release the resources they hold (response senders in
    /// particular) even though the queue itself is shared and outlives
    /// the worker.
    pub fn clear(&self) {
        let mut sched = lock_recover(&self.inner);
        while sched.pop().is_some() {}
    }

    /// Dequeue the next job in DRR order, waiting up to `timeout` for
    /// one to arrive. `None` means the timeout elapsed with every
    /// tenant idle — callers poll their shutdown flag and retry.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut sched = lock_recover(&self.inner);
        if let Some(item) = sched.pop() {
            return Some(item);
        }
        let (mut sched, _timed_out) = self
            .ready
            .wait_timeout(sched, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        sched.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tenant_is_fifo_and_work_conserving() {
        let mut s = DrrScheduler::new(1);
        for i in 0..10 {
            s.push(0, 1, i);
        }
        let drained: Vec<i32> = std::iter::from_fn(|| s.pop()).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
        assert!(s.pop().is_none());
    }

    #[test]
    fn weighted_shares_are_exact_per_round() {
        let mut s = DrrScheduler::new(2);
        // Tenant 0 weight 3, tenant 1 weight 1, both saturated.
        for i in 0..100 {
            s.push(0, 3, (0, i));
            s.push(1, 1, (1, i));
        }
        // One full round = (3 + 1) * quantum = 8 pops: 6 vs 2.
        let mut counts = [0usize; 2];
        for _ in 0..8 {
            let (t, _) = s.pop().unwrap_or_else(|| panic!("work-conserving"));
            counts[t] += 1;
        }
        assert_eq!(counts, [6, 2]);
    }

    #[test]
    fn idle_tenants_bank_no_credit() {
        let mut s = DrrScheduler::new(4);
        s.push(0, 8, "a");
        assert_eq!(s.pop(), Some("a")); // leftover deficit 31 forfeited
        for i in 0..4 {
            s.push(0, 8, "x");
            s.push(1, 1, "y");
            let _ = i;
        }
        // Tenant 0 re-charges from zero; tenant 1 still gets its visit
        // within one rotation.
        let mut saw_y = false;
        for _ in 0..8 {
            saw_y |= s.pop() == Some("y");
        }
        assert!(saw_y, "light tenant must not starve behind banked credit");
    }

    #[test]
    fn fair_queue_blocks_until_timeout() {
        let q: FairQueue<u32> = FairQueue::new(1);
        let t0 = std::time::Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(30)), None);
        assert!(t0.elapsed() >= Duration::from_millis(25));
        q.push(3, 2, 7);
        assert_eq!(q.pop_timeout(Duration::from_millis(30)), Some(7));
    }
}
