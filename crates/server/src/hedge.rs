//! The idempotence ledger behind deadline-aware retries and hedging.
//!
//! Retries and hedged attempts mean the same logical quote can be
//! priced more than once — by different shards, concurrently. The
//! ledger makes that safe: the **first** recorded spread for a request
//! id wins, every later attempt is suppressed, and duplicate client
//! sends of the same id are answered from the ledger without
//! re-counting. "Never double-count a spread" is the property the
//! `tests/ladder_props.rs` suite hammers with racing recorders.
//!
//! Entries are keyed by `(tenant slot, request id)`, not by id alone:
//! request ids are client-chosen, so a hostile tenant could otherwise
//! pre-claim another tenant's id space and have the victim served the
//! attacker's cached spreads (wrong parameters, cross-tenant leak).
//! Idempotence is a per-tenant contract.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::lock_recover;

/// Outcome of [`QuoteLedger::record`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecordOutcome {
    /// This attempt won: its spread is now the canonical answer.
    First,
    /// A previous attempt already answered this id; `spread` is the
    /// canonical value the duplicate must echo (not its own).
    Duplicate {
        /// The canonical spread recorded by the winning attempt.
        spread: f64,
    },
}

/// `(tenant slot, request id)` → canonical spread map with duplicate
/// accounting.
#[derive(Debug, Default)]
pub struct QuoteLedger {
    spreads: Mutex<HashMap<(u64, u64), f64>>,
    duplicates_suppressed: AtomicU64,
}

impl QuoteLedger {
    /// An empty ledger.
    pub fn new() -> QuoteLedger {
        QuoteLedger::default()
    }

    /// Record an attempt's spread for `id` within `tenant`'s id space.
    /// Exactly one concurrent caller per key ever sees
    /// [`RecordOutcome::First`]; everyone else gets the canonical
    /// spread back.
    pub fn record(&self, tenant: u64, id: u64, spread: f64) -> RecordOutcome {
        let mut map = lock_recover(&self.spreads);
        match map.entry((tenant, id)) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(spread);
                RecordOutcome::First
            }
            std::collections::hash_map::Entry::Occupied(slot) => {
                self.duplicates_suppressed.fetch_add(1, Ordering::Relaxed);
                RecordOutcome::Duplicate { spread: *slot.get() }
            }
        }
    }

    /// The canonical spread for `id` in `tenant`'s id space, if one was
    /// recorded.
    pub fn get(&self, tenant: u64, id: u64) -> Option<f64> {
        lock_recover(&self.spreads).get(&(tenant, id)).copied()
    }

    /// Distinct `(tenant, id)` keys answered.
    pub fn len(&self) -> usize {
        lock_recover(&self.spreads).len()
    }

    /// Whether any id was answered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many duplicate attempts were suppressed so far.
    pub fn duplicates_suppressed(&self) -> u64 {
        self.duplicates_suppressed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn first_wins_and_duplicates_echo_the_canonical_spread() {
        let ledger = QuoteLedger::new();
        assert_eq!(ledger.record(0, 7, 101.5), RecordOutcome::First);
        assert_eq!(ledger.record(0, 7, 999.0), RecordOutcome::Duplicate { spread: 101.5 });
        assert_eq!(ledger.get(0, 7), Some(101.5));
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger.duplicates_suppressed(), 1);
    }

    #[test]
    fn tenants_have_disjoint_id_spaces() {
        let ledger = QuoteLedger::new();
        assert_eq!(ledger.record(0, 7, 101.5), RecordOutcome::First);
        // A different tenant reusing the same id is NOT a duplicate:
        // it must never be served tenant 0's cached spread.
        assert_eq!(ledger.record(1, 7, 55.25), RecordOutcome::First);
        assert_eq!(ledger.get(0, 7), Some(101.5));
        assert_eq!(ledger.get(1, 7), Some(55.25));
        assert_eq!(ledger.get(2, 7), None);
        assert_eq!(ledger.duplicates_suppressed(), 0);
    }

    #[test]
    fn racing_recorders_elect_exactly_one_winner_per_id() {
        let ledger = Arc::new(QuoteLedger::new());
        let ids = 32u64;
        let racers = 8;
        let mut joins = Vec::new();
        for racer in 0..racers {
            let ledger = ledger.clone();
            joins.push(std::thread::spawn(move || {
                let mut wins = 0u64;
                for id in 0..ids {
                    if let RecordOutcome::First = ledger.record(0, id, racer as f64) {
                        wins += 1;
                    }
                }
                wins
            }));
        }
        let total_wins: u64 = joins.into_iter().map(|j| j.join().expect("racer")).sum();
        assert_eq!(total_wins, ids, "every id has exactly one winning attempt");
        assert_eq!(ledger.len(), ids as usize);
        assert_eq!(ledger.duplicates_suppressed(), ids * (racers - 1));
    }
}
