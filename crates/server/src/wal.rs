//! The serving write-ahead journal.
//!
//! Every accepted quote is appended (and flushed) to the journal
//! *before* it is dispatched to a shard; every completion is appended
//! after its canonical spread is elected. Completions additionally
//! checkpoint through the engine's [`Checkpoint`] text format (written
//! atomically to a `.ckpt` sidecar every `cadence` completions and at
//! drain), tagged with the `cds-server` scenario label so a resume
//! under the wrong journal fails typed. A `SIGTERM` mid-burst therefore
//! leaves one of two states, both safe: the drain finished (journal
//! carries a terminal `drain commit=` line and a complete checkpoint)
//! or it did not (accepted-but-incomplete quotes are recoverable as
//! [`WalState::pending`] and reprice bit-identically — the CPU engine
//! is deterministic given the epoch seed).
//!
//! ## Crash-consistent write discipline
//!
//! All storage goes through the engine's
//! [`cds_engine::journal_io::JournalIo`] abstraction, which makes the
//! ordering testable (and its violation loud) in the `storage-chaos`
//! harness:
//!
//! 1. the journal is **fsynced before** every sidecar publish, so a
//!    checkpoint can never be durable ahead of the completions it
//!    summarizes ([`read_wal`] cross-validates and fails typed if one
//!    is found anyway),
//! 2. the sidecar is published via [`Checkpoint::persist`]: tmp file →
//!    fsync → rename → parent-directory sync, so a crash leaves the
//!    previous checkpoint or the new one, never a torn file,
//! 3. the terminal `drain commit=` marker is appended only after the
//!    final checkpoint is durable, and is itself fsynced.
//!
//! Per-record appends are flushed but *not* fsynced (a power loss may
//! lose a tail of them); the journal is prefix-consistent, and every
//! unsynced prefix resumes bit-identically — the `storage-chaos`
//! crash-state enumeration proves it.
//!
//! ## Fail-stop degradation
//!
//! The writer is **fail-stop**: the first storage failure (ENOSPC,
//! EIO, a short write) marks it degraded and every later append is
//! refused with [`WalError::Degraded`] instead of stacking further
//! writes after a hole. The on-disk journal stays torn-at-EOF at
//! worst, so the durable prefix remains resumable. The server surfaces
//! the flag as the `wal-degraded` ladder observation.

use crate::proto::{f64_from_wire, f64_to_wire, Priority};
use cds_engine::checkpoint::{Checkpoint, CompletedOption, CHECKPOINT_SCHEMA_VERSION};
use cds_engine::journal_io::{FileId, JournalIo, OsJournalIo, StorageFaultPlan};
use cds_engine::CdsError;
use cds_quant::option::{CdsOption, PaymentFrequency};
use cds_quant::QuantError;
use dataflow_sim::Cycle;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::lock_recover;

/// Scenario label stamped on every server checkpoint; resuming a
/// journal recorded by something else fails typed instead of silently
/// replaying the wrong work.
pub const SERVER_SCENARIO: &str = "cds-server";

const WAL_HEADER: &str = "cds-server-wal v1";

/// An attributable corruption: which file, where, and why — every
/// distinguishable corruption class [`read_wal`] can meet reports one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionReport {
    /// The corrupt file (journal or checkpoint sidecar).
    pub file: PathBuf,
    /// Byte offset of the offending record (0 when the corruption is
    /// not positional, e.g. a cross-file inconsistency).
    pub offset: u64,
    /// 1-based line number of the offending record, when positional.
    pub line: Option<u64>,
    /// What is wrong.
    pub cause: String,
}

impl fmt::Display for CorruptionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(
                f,
                "{} line {line} (byte {}): {}",
                self.file.display(),
                self.offset,
                self.cause
            ),
            None => write!(f, "{}: {}", self.file.display(), self.cause),
        }
    }
}

/// A journal failure.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// The writer was misconfigured.
    Config(&'static str),
    /// The writer is fail-stop after an earlier storage failure; the
    /// durable journal prefix remains resumable, but no further
    /// appends are accepted.
    Degraded,
    /// The journal or its checkpoint sidecar is malformed; the report
    /// attributes the corruption to a file, offset, and cause.
    Corrupt(CorruptionReport),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "journal io error: {e}"),
            WalError::Config(reason) => write!(f, "journal misconfigured: {reason}"),
            WalError::Degraded => write!(
                f,
                "journal degraded: an earlier storage failure made the writer fail-stop \
                 (the durable prefix remains resumable)"
            ),
            WalError::Corrupt(report) => write!(f, "journal corrupt: {report}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One accepted quote, durable before dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptRecord {
    /// Journal sequence number (dense, 0-based) — the checkpoint's
    /// option index.
    pub seq: u32,
    /// Client request id.
    pub id: u64,
    /// Contract maturity in years (bit-exact in the journal).
    pub maturity: f64,
    /// Premium payment frequency.
    pub frequency: PaymentFrequency,
    /// Recovery rate (bit-exact in the journal).
    pub recovery: f64,
    /// Shedding priority.
    pub priority: Priority,
}

impl AcceptRecord {
    /// Rebuild the validated quant option this record was accepted as.
    ///
    /// # Errors
    /// Propagates domain validation — cannot fail for records the
    /// server itself accepted, but a hand-edited journal is re-checked.
    pub fn option(&self) -> Result<CdsOption, QuantError> {
        CdsOption::validated(self.maturity, self.frequency, self.recovery)
    }
}

fn freq_token(f: PaymentFrequency) -> &'static str {
    match f {
        PaymentFrequency::Annual => "A",
        PaymentFrequency::SemiAnnual => "S",
        PaymentFrequency::Quarterly => "Q",
        PaymentFrequency::Monthly => "M",
    }
}

fn freq_parse(tok: &str) -> Result<PaymentFrequency, String> {
    match tok {
        "A" => Ok(PaymentFrequency::Annual),
        "S" => Ok(PaymentFrequency::SemiAnnual),
        "Q" => Ok(PaymentFrequency::Quarterly),
        "M" => Ok(PaymentFrequency::Monthly),
        other => Err(format!("bad frequency `{other}`")),
    }
}

/// Which storage fault `--wal-fault` injects into the server's journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalFaultKind {
    /// The targeted append fails with ENOSPC.
    Enospc,
    /// The targeted append fails with EIO.
    Eio,
    /// The targeted append lands a seeded prefix, then fails.
    ShortWrite,
    /// Every fsync from the given index onward lies.
    LyingFsync,
}

/// A parsed `--wal-fault <kind>@<n>` specification: inject `kind` at
/// absolute journal-io operation index `at` (append index for the
/// write faults, fsync index for the lying fsync).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalFaultSpec {
    /// The fault class to inject.
    pub kind: WalFaultKind,
    /// Absolute per-class operation index.
    pub at: u64,
}

impl WalFaultSpec {
    /// Expand into a [`StorageFaultPlan`] seeded with `seed`.
    #[must_use]
    pub fn plan(self, seed: u64) -> StorageFaultPlan {
        let plan = StorageFaultPlan::new(seed);
        match self.kind {
            WalFaultKind::Enospc => plan.enospc_at(self.at),
            WalFaultKind::Eio => plan.eio_at(self.at),
            WalFaultKind::ShortWrite => plan.short_write_at(self.at),
            WalFaultKind::LyingFsync => plan.lying_fsync_from(self.at),
        }
    }
}

impl std::str::FromStr for WalFaultSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<WalFaultSpec, String> {
        let (kind, at) = s
            .split_once('@')
            .ok_or_else(|| format!("bad wal fault `{s}` (want <kind>@<index>)"))?;
        let kind = match kind {
            "enospc" => WalFaultKind::Enospc,
            "eio" => WalFaultKind::Eio,
            "short" => WalFaultKind::ShortWrite,
            "liar" => WalFaultKind::LyingFsync,
            other => {
                return Err(format!("bad wal fault kind `{other}` (want enospc|eio|short|liar)"))
            }
        };
        let at = at.parse::<u64>().map_err(|_| format!("bad wal fault index `{at}`"))?;
        Ok(WalFaultSpec { kind, at })
    }
}

struct WalInner {
    io: Arc<dyn JournalIo>,
    file: FileId,
    ckpt_path: PathBuf,
    cadence: u32,
    accepted: u32,
    completions: Vec<CompletedOption>,
    degraded: bool,
}

/// Appender half of the journal; all methods flush before returning so
/// a kill after an `accept` never loses the acceptance. Fail-stop: the
/// first storage failure degrades the writer permanently (see the
/// module docs).
pub struct WalWriter {
    seed: u64,
    inner: Mutex<WalInner>,
}

impl fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalWriter").field("seed", &self.seed).finish_non_exhaustive()
    }
}

fn append_line(inner: &mut WalInner, line: &str) -> Result<(), WalError> {
    if inner.degraded {
        return Err(WalError::Degraded);
    }
    match inner.io.append(inner.file, line.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) => {
            inner.degraded = true;
            Err(WalError::Io(e))
        }
    }
}

fn fsync_journal(inner: &mut WalInner) -> Result<(), WalError> {
    if inner.degraded {
        return Err(WalError::Degraded);
    }
    match inner.io.fsync(inner.file) {
        Ok(()) => Ok(()),
        Err(e) => {
            inner.degraded = true;
            Err(WalError::Io(e))
        }
    }
}

/// Publish the current checkpoint sidecar. The caller must have
/// fsynced the journal first so the sidecar is never durable ahead of
/// the completions it summarizes.
fn publish_sidecar(inner: &mut WalInner) -> Result<Checkpoint, WalError> {
    if inner.degraded {
        return Err(WalError::Degraded);
    }
    let cp = build_checkpoint(inner);
    match cp.persist(inner.io.as_ref(), &inner.ckpt_path) {
        Ok(()) => Ok(cp),
        Err(CdsError::Storage { path, cause }) => {
            inner.degraded = true;
            Err(WalError::Io(std::io::Error::other(format!("sidecar {path}: {cause}"))))
        }
        Err(other) => {
            inner.degraded = true;
            Err(WalError::Io(std::io::Error::other(format!("sidecar publish: {other}"))))
        }
    }
}

impl WalWriter {
    /// Create (truncate) a journal at `path` on the real filesystem.
    /// `seed` is the boot curve epoch seed; `cadence` is the
    /// completions-per-checkpoint interval.
    pub fn create(path: &Path, seed: u64, cadence: u32) -> Result<WalWriter, WalError> {
        WalWriter::create_with_io(Arc::new(OsJournalIo::new()), path, seed, cadence)
    }

    /// Create a journal over an explicit storage substrate — the real
    /// filesystem, a recording wrapper, or a fault-injecting one.
    pub fn create_with_io(
        io: Arc<dyn JournalIo>,
        path: &Path,
        seed: u64,
        cadence: u32,
    ) -> Result<WalWriter, WalError> {
        if cadence == 0 {
            return Err(WalError::Config("checkpoint cadence must be at least 1"));
        }
        let file = io.create(path)?;
        io.append(file, format!("{WAL_HEADER}\nseed={seed}\ncadence={cadence}\n").as_bytes())?;
        let ckpt_path = sidecar_path(path);
        Ok(WalWriter {
            seed,
            inner: Mutex::new(WalInner {
                io,
                file,
                ckpt_path,
                cadence,
                accepted: 0,
                completions: Vec::new(),
                degraded: false,
            }),
        })
    }

    /// True once a storage failure has made the writer fail-stop.
    pub fn is_degraded(&self) -> bool {
        lock_recover(&self.inner).degraded
    }

    /// Durably record an acceptance and allocate its sequence number.
    /// Nothing may be dispatched for this quote until this returns.
    pub fn accept(&self, id: u64, option: &CdsOption, priority: Priority) -> Result<u32, WalError> {
        let mut inner = lock_recover(&self.inner);
        let seq = inner.accepted;
        let prio = match priority {
            Priority::High => "HI",
            Priority::Low => "LO",
        };
        let line = format!(
            "accept seq={seq} id={id} mat={} freq={} rec={} prio={prio}\n",
            f64_to_wire(option.maturity),
            freq_token(option.frequency),
            f64_to_wire(option.recovery_rate),
        );
        append_line(&mut inner, &line)?;
        inner.accepted += 1;
        Ok(seq)
    }

    /// Durably record a completion (the canonical spread for `seq`).
    /// Every `cadence` completions the journal is fsynced and the
    /// checkpoint sidecar rewritten atomically — in that order, so the
    /// sidecar is never durable ahead of its journal.
    pub fn done(&self, seq: u32, spread_bps: f64) -> Result<(), WalError> {
        let mut inner = lock_recover(&self.inner);
        append_line(&mut inner, &format!("done seq={seq} bits={}\n", f64_to_wire(spread_bps)))?;
        let done_cycle = inner.completions.len() as Cycle;
        inner.completions.push(CompletedOption { index: seq, done_cycle, spread_bps });
        if (inner.completions.len() as u32).is_multiple_of(inner.cadence) {
            fsync_journal(&mut inner)?;
            publish_sidecar(&mut inner)?;
        }
        Ok(())
    }

    /// Snapshot the current checkpoint (fsyncs the journal, then
    /// rewrites the sidecar).
    pub fn checkpoint_now(&self) -> Result<Checkpoint, WalError> {
        let mut inner = lock_recover(&self.inner);
        fsync_journal(&mut inner)?;
        publish_sidecar(&mut inner)
    }

    /// Terminal drain record: fsyncs the journal, writes the final
    /// checkpoint sidecar, and only then appends (and fsyncs) the
    /// `drain commit=` line marking how many completions were durable
    /// at drain. Pending quotes (if the drain deadline expired first)
    /// remain recoverable.
    pub fn finalize(&self) -> Result<Checkpoint, WalError> {
        let mut inner = lock_recover(&self.inner);
        fsync_journal(&mut inner)?;
        let cp = publish_sidecar(&mut inner)?;
        let commit = inner.completions.len();
        append_line(&mut inner, &format!("drain commit={commit}\n"))?;
        fsync_journal(&mut inner)?;
        Ok(cp)
    }
}

fn build_checkpoint(inner: &WalInner) -> Checkpoint {
    Checkpoint {
        schema_version: CHECKPOINT_SCHEMA_VERSION,
        total_options: inner.accepted,
        cadence: inner.cadence,
        watermark_cycle: inner.completions.len() as Cycle,
        fault_seed: None,
        scenario: Some(SERVER_SCENARIO.to_string()),
        admitted: (0..inner.accepted).collect(),
        shed: Vec::new(),
        completed: inner.completions.clone(),
    }
}

/// The checkpoint sidecar lives next to the journal.
pub fn sidecar_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".ckpt");
    PathBuf::from(os)
}

/// Everything a journal recovers to.
#[derive(Debug)]
pub struct WalState {
    /// Boot curve epoch seed the server ran with.
    pub seed: u64,
    /// Checkpoint cadence the server ran with.
    pub cadence: u32,
    /// Every accepted quote, in sequence order.
    pub accepted: Vec<AcceptRecord>,
    /// Canonical spread per completed sequence number.
    pub done: HashMap<u32, f64>,
    /// Whether a terminal `drain commit=` record was found.
    pub drained: bool,
    /// The checkpoint sidecar, when present and valid.
    pub checkpoint: Option<Checkpoint>,
}

impl WalState {
    /// Accepted-but-incomplete quotes, in sequence order — the work a
    /// resume must finish.
    pub fn pending(&self) -> Vec<AcceptRecord> {
        self.accepted.iter().filter(|a| !self.done.contains_key(&a.seq)).copied().collect()
    }
}

fn parse_kv<'a>(tok: &'a str, key: &str) -> Result<&'a str, String> {
    tok.strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| format!("expected `{key}=`, got `{tok}`"))
}

/// Strict journal-side f64 wire parse: exactly `0x` + 16 hex digits.
///
/// The TCP protocol's [`f64_from_wire`] is deliberately lenient (it
/// accepts decimals and short hex from clients), but journal records
/// are only ever written by [`f64_to_wire`], which always emits 16
/// digits — so a shorter pattern here can only be a **torn write**,
/// and accepting it would silently resume a wrong spread (`0x4059`
/// parses as a valid, tiny f64). Rejecting it instead turns the torn
/// byte into a dropped tail or a typed corruption.
fn f64_wire_strict(tok: &str) -> Result<f64, String> {
    let hex = tok.strip_prefix("0x").ok_or_else(|| format!("bad f64 wire `{tok}`"))?;
    if hex.len() != 16 {
        return Err(format!("truncated f64 bit pattern `{tok}` (want 16 hex digits)"));
    }
    f64_from_wire(tok).map_err(|e| e.reason)
}

fn parse_accept(toks: &[&str]) -> Result<AcceptRecord, String> {
    match toks {
        [seq, id, mat, freq, rec, prio] => Ok(AcceptRecord {
            seq: parse_kv(seq, "seq")?.parse::<u32>().map_err(|_| format!("bad seq in `{seq}`"))?,
            id: parse_kv(id, "id")?.parse::<u64>().map_err(|_| format!("bad id in `{id}`"))?,
            maturity: f64_wire_strict(parse_kv(mat, "mat")?)?,
            frequency: freq_parse(parse_kv(freq, "freq")?)?,
            recovery: f64_wire_strict(parse_kv(rec, "rec")?)?,
            priority: match parse_kv(prio, "prio")? {
                "HI" => Priority::High,
                "LO" => Priority::Low,
                other => return Err(format!("bad priority `{other}`")),
            },
        }),
        _ => Err("malformed accept record".to_string()),
    }
}

fn parse_line(state: &mut WalState, line: &str) -> Result<(), String> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    match toks.split_first() {
        Some((&"accept", rest)) => {
            let rec = parse_accept(rest)?;
            if rec.seq as usize != state.accepted.len() {
                return Err(format!(
                    "accept seq {} out of order (expected {})",
                    rec.seq,
                    state.accepted.len()
                ));
            }
            state.accepted.push(rec);
            Ok(())
        }
        Some((&"done", [seq, bits])) => {
            let seq =
                parse_kv(seq, "seq")?.parse::<u32>().map_err(|_| format!("bad seq in `{seq}`"))?;
            if seq as usize >= state.accepted.len() {
                return Err(format!("done for unaccepted seq {seq}"));
            }
            let spread = f64_wire_strict(parse_kv(bits, "bits")?)?;
            state.done.insert(seq, spread);
            Ok(())
        }
        Some((&"drain", [commit])) => {
            let commit = parse_kv(commit, "commit")?
                .parse::<usize>()
                .map_err(|_| format!("bad commit in `{commit}`"))?;
            if commit != state.done.len() {
                return Err(format!(
                    "drain commit {} disagrees with {} durable completions",
                    commit,
                    state.done.len()
                ));
            }
            state.drained = true;
            Ok(())
        }
        _ => Err(format!("unknown journal record `{line}`")),
    }
}

/// Cross-validate the checkpoint sidecar against the journal it
/// summarizes: with the write discipline intact the journal is always
/// durable first, so a sidecar that is *ahead* of the journal (more
/// accepts, or a completion the journal never recorded, or a
/// disagreeing spread) is corruption — typed, attributable, never a
/// silent resume of the wrong work.
fn cross_validate(state: &WalState, cp: &Checkpoint, ckpt_path: &Path) -> Result<(), WalError> {
    let corrupt = |cause: String| {
        WalError::Corrupt(CorruptionReport {
            file: ckpt_path.to_path_buf(),
            offset: 0,
            line: None,
            cause,
        })
    };
    if cp.total_options as usize > state.accepted.len() {
        return Err(corrupt(format!(
            "checkpoint summarizes {} accepted quotes but the journal holds {} — the sidecar \
             is durable ahead of its journal",
            cp.total_options,
            state.accepted.len()
        )));
    }
    for c in &cp.completed {
        match state.done.get(&c.index) {
            None => {
                return Err(corrupt(format!(
                    "checkpoint holds a completion for seq {} the journal never recorded — \
                     the sidecar is durable ahead of its journal",
                    c.index
                )))
            }
            Some(spread) if spread.to_bits() != c.spread_bps.to_bits() => {
                return Err(corrupt(format!(
                    "checkpoint spread for seq {} ({:016x}) disagrees with the journal \
                     ({:016x})",
                    c.index,
                    c.spread_bps.to_bits(),
                    spread.to_bits()
                )))
            }
            Some(_) => {}
        }
    }
    Ok(())
}

/// Read a journal (and its checkpoint sidecar) back. A torn final line
/// — the signature of a kill or power loss mid-write — is dropped;
/// corruption anywhere else fails typed with an attributable
/// [`CorruptionReport`] (file, byte offset, line, cause).
pub fn read_wal(path: &Path) -> Result<WalState, WalError> {
    let text = std::fs::read_to_string(path)?;
    let corrupt = |offset: u64, line: Option<u64>, cause: String| {
        WalError::Corrupt(CorruptionReport { file: path.to_path_buf(), offset, line, cause })
    };
    let ends_clean = text.ends_with('\n');
    // Each record with its byte offset and 1-based line number.
    let mut records: Vec<(u64, u64, &str)> = Vec::new();
    let mut offset = 0u64;
    for (i, seg) in text.split_inclusive('\n').enumerate() {
        let line = seg.strip_suffix('\n').unwrap_or(seg);
        records.push((offset, i as u64 + 1, line));
        offset += seg.len() as u64;
    }
    let mut rest = records.as_slice();
    let mut take_header = |expect: &str| -> Result<(u64, u64, &str), WalError> {
        match rest.split_first() {
            Some((&(off, line_no, line), tail)) => {
                rest = tail;
                Ok((off, line_no, line))
            }
            None => Err(corrupt(offset, None, format!("journal missing {expect}"))),
        }
    };
    let (h_off, h_line, header) = take_header("header")?;
    if header != WAL_HEADER {
        return Err(corrupt(h_off, Some(h_line), format!("bad header `{header}`")));
    }
    let (s_off, s_line, seed_line) = take_header("seed")?;
    let seed = parse_kv(seed_line, "seed")
        .and_then(|v| v.parse::<u64>().map_err(|_| "bad seed".to_string()))
        .map_err(|cause| corrupt(s_off, Some(s_line), cause))?;
    let (c_off, c_line, cadence_line) = take_header("cadence")?;
    let cadence = parse_kv(cadence_line, "cadence")
        .and_then(|v| v.parse::<u32>().map_err(|_| "bad cadence".to_string()))
        .map_err(|cause| corrupt(c_off, Some(c_line), cause))?;
    let body = rest;

    let mut state = WalState {
        seed,
        cadence,
        accepted: Vec::new(),
        done: HashMap::new(),
        drained: false,
        checkpoint: None,
    };
    for (i, &(off, line_no, line)) in body.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if let Err(cause) = parse_line(&mut state, line) {
            let is_last = i + 1 == body.len();
            if is_last && !ends_clean {
                break; // torn tail from a mid-write kill: drop it
            }
            return Err(corrupt(off, Some(line_no), cause));
        }
    }

    let ckpt_path = sidecar_path(path);
    if ckpt_path.exists() {
        let text = std::fs::read_to_string(&ckpt_path)?;
        let cp = Checkpoint::parse(&text).map_err(|e| {
            WalError::Corrupt(CorruptionReport {
                file: ckpt_path.clone(),
                offset: 0,
                line: None,
                cause: format!("checkpoint sidecar: {e}"),
            })
        })?;
        match cp.scenario.as_deref() {
            Some(SERVER_SCENARIO) => {}
            other => {
                return Err(WalError::Corrupt(CorruptionReport {
                    file: ckpt_path.clone(),
                    offset: 0,
                    line: None,
                    cause: format!(
                        "checkpoint scenario {other:?} is not `{SERVER_SCENARIO}`; refusing to \
                         resume someone else's journal"
                    ),
                }))
            }
        }
        cross_validate(&state, &cp, &ckpt_path)?;
        state.checkpoint = Some(cp);
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_engine::journal_io::{
        sync_ordering_held, FaultyJournalIo, JournalOp, RecordingJournalIo,
    };
    use cds_quant::option::PaymentFrequency;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cds-server-wal-test-{}-{name}", std::process::id()));
        p
    }

    fn opt() -> CdsOption {
        CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.4)
    }

    #[test]
    fn accept_done_drain_round_trip_bit_exactly() {
        let path = tmp("roundtrip.wal");
        let wal = WalWriter::create(&path, 42, 2).expect("create");
        let spread = f64::from_bits(0x4059_4ccc_cccc_cccd);
        let s0 = wal.accept(100, &opt(), Priority::High).expect("accept");
        let s1 = wal.accept(101, &opt(), Priority::Low).expect("accept");
        assert_eq!((s0, s1), (0, 1));
        wal.done(0, spread).expect("done");
        let cp = wal.finalize().expect("finalize");
        assert_eq!(cp.total_options, 2);
        assert_eq!(cp.scenario.as_deref(), Some(SERVER_SCENARIO));
        assert!(!cp.is_complete());

        let state = read_wal(&path).expect("read");
        assert_eq!(state.seed, 42);
        assert_eq!(state.accepted.len(), 2);
        assert_eq!(state.done.len(), 1);
        assert!(state.drained);
        assert_eq!(state.done[&0].to_bits(), spread.to_bits());
        let pending = state.pending();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].seq, 1);
        assert_eq!(pending[0].id, 101);
        assert_eq!(pending[0].priority, Priority::Low);
        let cp = state.checkpoint.expect("sidecar present");
        assert_eq!(cp.completed.len(), 1);
        assert_eq!(cp.completed[0].spread_bps.to_bits(), spread.to_bits());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(sidecar_path(&path));
    }

    #[test]
    fn torn_tail_is_dropped_but_interior_corruption_is_typed() {
        let path = tmp("torn.wal");
        let wal = WalWriter::create(&path, 7, 4).expect("create");
        wal.accept(1, &opt(), Priority::High).expect("accept");
        wal.done(0, 100.0).expect("done");
        drop(wal);
        // Simulate a kill mid-append: a partial accept line, no newline.
        let mut text = std::fs::read_to_string(&path).expect("read back");
        text.push_str("accept seq=1 id=2 mat=0x40");
        std::fs::write(&path, &text).expect("rewrite");
        let state = read_wal(&path).expect("torn tail tolerated");
        assert_eq!(state.accepted.len(), 1);
        assert_eq!(state.pending().len(), 0);
        assert!(!state.drained);
        // The same garbage mid-file (newline-terminated, with records
        // after it) is corruption, not a torn tail — and the report
        // attributes it to the right file, line, and byte offset.
        let mut text = std::fs::read_to_string(&path).expect("read back");
        let torn_offset = text.len() as u64;
        text.push_str("\ndone seq=0 bits=0x4059000000000000\n");
        std::fs::write(&path, &text).expect("rewrite");
        match read_wal(&path) {
            Err(WalError::Corrupt(report)) => {
                assert_eq!(report.file, path);
                assert_eq!(report.offset, torn_offset - "accept seq=1 id=2 mat=0x40".len() as u64);
                assert_eq!(report.line, Some(6));
                assert!(report.cause.contains("accept"), "cause: {}", report.cause);
            }
            other => panic!("interior corruption must be typed, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(sidecar_path(&path));
    }

    #[test]
    fn foreign_scenario_checkpoints_are_refused() {
        let path = tmp("foreign.wal");
        let wal = WalWriter::create(&path, 7, 1).expect("create");
        wal.accept(1, &opt(), Priority::High).expect("accept");
        wal.done(0, 100.0).expect("done");
        drop(wal);
        let ckpt = sidecar_path(&path);
        let text = std::fs::read_to_string(&ckpt).expect("sidecar");
        std::fs::write(&ckpt, text.replace(SERVER_SCENARIO, "corrupt-spread")).expect("rewrite");
        match read_wal(&path) {
            Err(WalError::Corrupt(report)) => {
                assert_eq!(report.file, ckpt);
                assert!(report.cause.contains("corrupt-spread"), "cause: {}", report.cause);
            }
            other => panic!("foreign scenario must be refused, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&ckpt);
    }

    /// Satellite regression test for the fsync-ordering fix: the trace
    /// must show journal-fsync before every sidecar publish, tmp-file
    /// fsync before its rename, and a parent-directory sync after — and
    /// the terminal drain marker only after the final sidecar sync.
    #[test]
    fn sync_calls_happen_in_order_on_the_trace() {
        let dir = std::env::temp_dir().join(format!("cds-wal-order-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("dir");
        let path = dir.join("j.wal");
        let rec = Arc::new(RecordingJournalIo::over(Arc::new(OsJournalIo::new())));
        let wal = WalWriter::create_with_io(rec.clone(), &path, 42, 2).expect("create");
        wal.accept(1, &opt(), Priority::High).expect("accept");
        wal.accept(2, &opt(), Priority::High).expect("accept");
        wal.done(0, 100.0).expect("done");
        wal.done(1, 101.0).expect("done"); // cadence hit: fsync + sidecar
        wal.finalize().expect("finalize");
        let trace = rec.trace();
        assert!(sync_ordering_held(&trace), "write discipline violated: {trace:#?}");
        // Journal fsync precedes the first sidecar tmp creation.
        let journal_fsync = trace
            .iter()
            .position(|op| matches!(op, JournalOp::Fsync { path: p } if *p == path))
            .expect("journal fsync present");
        let tmp_create = trace
            .iter()
            .position(
                |op| matches!(op, JournalOp::Create { path: p } if p.to_string_lossy().contains(".ckpt.tmp")),
            )
            .expect("sidecar tmp created");
        assert!(
            journal_fsync < tmp_create,
            "journal must be synced before the sidecar: {trace:#?}"
        );
        // The drain marker is the last journal append, after the final
        // parent-directory sync, and is itself fsynced.
        let last_dirsync = trace
            .iter()
            .rposition(|op| matches!(op, JournalOp::SyncDir { .. }))
            .expect("dir sync present");
        let drain_append = trace
            .iter()
            .rposition(
                |op| matches!(op, JournalOp::Append { path: p, bytes } if *p == path && bytes.starts_with(b"drain ")),
            )
            .expect("drain marker present");
        assert!(last_dirsync < drain_append, "drain marker must follow the sidecar sync");
        let final_fsync = trace
            .iter()
            .rposition(|op| matches!(op, JournalOp::Fsync { path: p } if *p == path))
            .expect("final fsync present");
        assert!(drain_append < final_fsync, "drain marker must be fsynced");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_makes_the_writer_fail_stop_but_the_prefix_resumable() {
        let dir = std::env::temp_dir().join(format!("cds-wal-enospc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("dir");
        let path = dir.join("j.wal");
        // Append 0 is the header; appends 1..=2 the accepts; append 3
        // (the first done line) hits injected ENOSPC.
        let io = Arc::new(FaultyJournalIo::over(
            Arc::new(OsJournalIo::new()),
            StorageFaultPlan::new(42).enospc_at(3),
        ));
        let wal = WalWriter::create_with_io(io.clone(), &path, 42, 8).expect("create");
        wal.accept(10, &opt(), Priority::High).expect("accept");
        wal.accept(11, &opt(), Priority::High).expect("accept");
        match wal.done(0, 100.0) {
            Err(WalError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::StorageFull),
            other => panic!("expected ENOSPC, got {other:?}"),
        }
        assert!(wal.is_degraded());
        assert!(io.counters().any());
        // Fail-stop: everything after the failure is refused…
        assert!(matches!(wal.done(1, 101.0), Err(WalError::Degraded)));
        assert!(matches!(wal.accept(12, &opt(), Priority::High), Err(WalError::Degraded)));
        assert!(matches!(wal.finalize(), Err(WalError::Degraded)));
        // …so the on-disk journal is a clean resumable prefix.
        let state = read_wal(&path).expect("prefix resumes");
        assert_eq!(state.accepted.len(), 2);
        assert_eq!(state.done.len(), 0);
        assert_eq!(state.pending().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sidecar_ahead_of_journal_is_typed_cross_validation_corruption() {
        let path = tmp("ahead.wal");
        let wal = WalWriter::create(&path, 7, 1).expect("create");
        wal.accept(1, &opt(), Priority::High).expect("accept");
        wal.done(0, 100.0).expect("done"); // publishes a sidecar
        drop(wal);
        // Truncate the journal back to its header: the sidecar now
        // summarizes work the journal never recorded (the state a
        // missing journal fsync could leave behind).
        let text = std::fs::read_to_string(&path).expect("read back");
        let header_end = text.match_indices('\n').nth(2).map(|(i, _)| i + 1).expect("header lines");
        std::fs::write(&path, &text[..header_end]).expect("truncate");
        match read_wal(&path) {
            Err(WalError::Corrupt(report)) => {
                assert_eq!(report.file, sidecar_path(&path));
                assert!(report.cause.contains("ahead of its journal"), "cause: {}", report.cause);
            }
            other => panic!("sidecar-ahead must be typed, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(sidecar_path(&path));
    }

    #[test]
    fn truncated_bits_never_misparse_as_a_valid_spread() {
        assert_eq!(
            f64_wire_strict("0x4059000000000000").expect("full pattern").to_bits(),
            0x4059_0000_0000_0000
        );
        // A torn tail of the same record must be rejected, not read as
        // the (valid, wrong) tiny float 0x4059.
        assert!(f64_wire_strict("0x4059").is_err());
        assert!(f64_wire_strict("103.5").is_err());
        assert!(f64_wire_strict("0x").is_err());
    }

    #[test]
    fn wal_fault_specs_parse_and_reject() {
        assert_eq!(
            "enospc@3".parse::<WalFaultSpec>().expect("parse"),
            WalFaultSpec { kind: WalFaultKind::Enospc, at: 3 }
        );
        assert_eq!(
            "liar@0".parse::<WalFaultSpec>().expect("parse"),
            WalFaultSpec { kind: WalFaultKind::LyingFsync, at: 0 }
        );
        assert!("enospc".parse::<WalFaultSpec>().is_err());
        assert!("gremlin@3".parse::<WalFaultSpec>().is_err());
        assert!("eio@many".parse::<WalFaultSpec>().is_err());
    }
}
