//! The serving write-ahead journal.
//!
//! Every accepted quote is appended (and flushed) to the journal
//! *before* it is dispatched to a shard; every completion is appended
//! after its canonical spread is elected. Completions additionally
//! checkpoint through the engine's [`Checkpoint`] text format (written
//! atomically to a `.ckpt` sidecar every `cadence` completions and at
//! drain), tagged with the `cds-server` scenario label so a resume
//! under the wrong journal fails typed. A `SIGTERM` mid-burst therefore
//! leaves one of two states, both safe: the drain finished (journal
//! carries a terminal `drain commit=` line and a complete checkpoint)
//! or it did not (accepted-but-incomplete quotes are recoverable as
//! [`WalState::pending`] and reprice bit-identically — the CPU engine
//! is deterministic given the epoch seed).

use crate::proto::{f64_from_wire, f64_to_wire, Priority};
use cds_engine::checkpoint::{Checkpoint, CompletedOption, CHECKPOINT_SCHEMA_VERSION};
use cds_quant::option::{CdsOption, PaymentFrequency};
use cds_quant::QuantError;
use dataflow_sim::Cycle;
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::lock_recover;

/// Scenario label stamped on every server checkpoint; resuming a
/// journal recorded by something else fails typed instead of silently
/// replaying the wrong work.
pub const SERVER_SCENARIO: &str = "cds-server";

const WAL_HEADER: &str = "cds-server-wal v1";

/// A journal failure.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// The journal or its checkpoint sidecar is malformed.
    Corrupt(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "journal io error: {e}"),
            WalError::Corrupt(reason) => write!(f, "journal corrupt: {reason}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

fn corrupt(reason: impl Into<String>) -> WalError {
    WalError::Corrupt(reason.into())
}

/// One accepted quote, durable before dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptRecord {
    /// Journal sequence number (dense, 0-based) — the checkpoint's
    /// option index.
    pub seq: u32,
    /// Client request id.
    pub id: u64,
    /// Contract maturity in years (bit-exact in the journal).
    pub maturity: f64,
    /// Premium payment frequency.
    pub frequency: PaymentFrequency,
    /// Recovery rate (bit-exact in the journal).
    pub recovery: f64,
    /// Shedding priority.
    pub priority: Priority,
}

impl AcceptRecord {
    /// Rebuild the validated quant option this record was accepted as.
    ///
    /// # Errors
    /// Propagates domain validation — cannot fail for records the
    /// server itself accepted, but a hand-edited journal is re-checked.
    pub fn option(&self) -> Result<CdsOption, QuantError> {
        CdsOption::validated(self.maturity, self.frequency, self.recovery)
    }
}

fn freq_token(f: PaymentFrequency) -> &'static str {
    match f {
        PaymentFrequency::Annual => "A",
        PaymentFrequency::SemiAnnual => "S",
        PaymentFrequency::Quarterly => "Q",
        PaymentFrequency::Monthly => "M",
    }
}

fn freq_parse(tok: &str) -> Result<PaymentFrequency, WalError> {
    match tok {
        "A" => Ok(PaymentFrequency::Annual),
        "S" => Ok(PaymentFrequency::SemiAnnual),
        "Q" => Ok(PaymentFrequency::Quarterly),
        "M" => Ok(PaymentFrequency::Monthly),
        other => Err(corrupt(format!("bad frequency `{other}`"))),
    }
}

struct WalInner {
    file: BufWriter<File>,
    ckpt_path: PathBuf,
    cadence: u32,
    accepted: u32,
    completions: Vec<CompletedOption>,
}

/// Appender half of the journal; all methods flush before returning so
/// a kill after an `accept` never loses the acceptance.
pub struct WalWriter {
    seed: u64,
    inner: Mutex<WalInner>,
}

impl fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalWriter").field("seed", &self.seed).finish_non_exhaustive()
    }
}

impl WalWriter {
    /// Create (truncate) a journal at `path`. `seed` is the boot curve
    /// epoch seed; `cadence` is the completions-per-checkpoint interval.
    pub fn create(path: &Path, seed: u64, cadence: u32) -> Result<WalWriter, WalError> {
        if cadence == 0 {
            return Err(corrupt("checkpoint cadence must be at least 1"));
        }
        let file = OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
        let mut file = BufWriter::new(file);
        writeln!(file, "{WAL_HEADER}")?;
        writeln!(file, "seed={seed}")?;
        writeln!(file, "cadence={cadence}")?;
        file.flush()?;
        let ckpt_path = sidecar_path(path);
        Ok(WalWriter {
            seed,
            inner: Mutex::new(WalInner {
                file,
                ckpt_path,
                cadence,
                accepted: 0,
                completions: Vec::new(),
            }),
        })
    }

    /// Durably record an acceptance and allocate its sequence number.
    /// Nothing may be dispatched for this quote until this returns.
    pub fn accept(&self, id: u64, option: &CdsOption, priority: Priority) -> Result<u32, WalError> {
        let mut inner = lock_recover(&self.inner);
        let seq = inner.accepted;
        let prio = match priority {
            Priority::High => "HI",
            Priority::Low => "LO",
        };
        writeln!(
            inner.file,
            "accept seq={seq} id={id} mat={} freq={} rec={} prio={prio}",
            f64_to_wire(option.maturity),
            freq_token(option.frequency),
            f64_to_wire(option.recovery_rate),
        )?;
        inner.file.flush()?;
        inner.accepted += 1;
        Ok(seq)
    }

    /// Durably record a completion (the canonical spread for `seq`).
    /// Every `cadence` completions the checkpoint sidecar is rewritten
    /// atomically.
    pub fn done(&self, seq: u32, spread_bps: f64) -> Result<(), WalError> {
        let mut inner = lock_recover(&self.inner);
        writeln!(inner.file, "done seq={seq} bits={}", f64_to_wire(spread_bps))?;
        inner.file.flush()?;
        let done_cycle = inner.completions.len() as Cycle;
        inner.completions.push(CompletedOption { index: seq, done_cycle, spread_bps });
        if (inner.completions.len() as u32).is_multiple_of(inner.cadence) {
            let cp = build_checkpoint(&inner);
            write_sidecar(&inner.ckpt_path, &cp)?;
        }
        Ok(())
    }

    /// Snapshot the current checkpoint (also rewrites the sidecar).
    pub fn checkpoint_now(&self) -> Result<Checkpoint, WalError> {
        let inner = lock_recover(&self.inner);
        let cp = build_checkpoint(&inner);
        write_sidecar(&inner.ckpt_path, &cp)?;
        Ok(cp)
    }

    /// Terminal drain record: writes the final checkpoint sidecar and a
    /// `drain commit=` line marking how many completions were durable at
    /// drain. Pending quotes (if the drain deadline expired first)
    /// remain recoverable.
    pub fn finalize(&self) -> Result<Checkpoint, WalError> {
        let mut inner = lock_recover(&self.inner);
        let cp = build_checkpoint(&inner);
        write_sidecar(&inner.ckpt_path, &cp)?;
        let commit = inner.completions.len();
        writeln!(inner.file, "drain commit={commit}")?;
        inner.file.flush()?;
        Ok(cp)
    }
}

fn build_checkpoint(inner: &WalInner) -> Checkpoint {
    Checkpoint {
        schema_version: CHECKPOINT_SCHEMA_VERSION,
        total_options: inner.accepted,
        cadence: inner.cadence,
        watermark_cycle: inner.completions.len() as Cycle,
        fault_seed: None,
        scenario: Some(SERVER_SCENARIO.to_string()),
        admitted: (0..inner.accepted).collect(),
        shed: Vec::new(),
        completed: inner.completions.clone(),
    }
}

/// The checkpoint sidecar lives next to the journal.
pub fn sidecar_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".ckpt");
    PathBuf::from(os)
}

fn write_sidecar(path: &Path, cp: &Checkpoint) -> Result<(), WalError> {
    let tmp = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    };
    std::fs::write(&tmp, cp.to_text())?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Everything a journal recovers to.
#[derive(Debug)]
pub struct WalState {
    /// Boot curve epoch seed the server ran with.
    pub seed: u64,
    /// Checkpoint cadence the server ran with.
    pub cadence: u32,
    /// Every accepted quote, in sequence order.
    pub accepted: Vec<AcceptRecord>,
    /// Canonical spread per completed sequence number.
    pub done: HashMap<u32, f64>,
    /// Whether a terminal `drain commit=` record was found.
    pub drained: bool,
    /// The checkpoint sidecar, when present and valid.
    pub checkpoint: Option<Checkpoint>,
}

impl WalState {
    /// Accepted-but-incomplete quotes, in sequence order — the work a
    /// resume must finish.
    pub fn pending(&self) -> Vec<AcceptRecord> {
        self.accepted.iter().filter(|a| !self.done.contains_key(&a.seq)).copied().collect()
    }
}

fn parse_kv<'a>(tok: &'a str, key: &str) -> Result<&'a str, WalError> {
    tok.strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| corrupt(format!("expected `{key}=`, got `{tok}`")))
}

fn parse_accept(toks: &[&str]) -> Result<AcceptRecord, WalError> {
    match toks {
        [seq, id, mat, freq, rec, prio] => Ok(AcceptRecord {
            seq: parse_kv(seq, "seq")?
                .parse::<u32>()
                .map_err(|_| corrupt(format!("bad seq in `{seq}`")))?,
            id: parse_kv(id, "id")?
                .parse::<u64>()
                .map_err(|_| corrupt(format!("bad id in `{id}`")))?,
            maturity: f64_from_wire(parse_kv(mat, "mat")?).map_err(|e| corrupt(e.reason))?,
            frequency: freq_parse(parse_kv(freq, "freq")?)?,
            recovery: f64_from_wire(parse_kv(rec, "rec")?).map_err(|e| corrupt(e.reason))?,
            priority: match parse_kv(prio, "prio")? {
                "HI" => Priority::High,
                "LO" => Priority::Low,
                other => return Err(corrupt(format!("bad priority `{other}`"))),
            },
        }),
        _ => Err(corrupt("malformed accept record")),
    }
}

fn parse_line(state: &mut WalState, line: &str) -> Result<(), WalError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    match toks.split_first() {
        Some((&"accept", rest)) => {
            let rec = parse_accept(rest)?;
            if rec.seq as usize != state.accepted.len() {
                return Err(corrupt(format!(
                    "accept seq {} out of order (expected {})",
                    rec.seq,
                    state.accepted.len()
                )));
            }
            state.accepted.push(rec);
            Ok(())
        }
        Some((&"done", [seq, bits])) => {
            let seq = parse_kv(seq, "seq")?
                .parse::<u32>()
                .map_err(|_| corrupt(format!("bad seq in `{seq}`")))?;
            if seq as usize >= state.accepted.len() {
                return Err(corrupt(format!("done for unaccepted seq {seq}")));
            }
            let spread = f64_from_wire(parse_kv(bits, "bits")?).map_err(|e| corrupt(e.reason))?;
            state.done.insert(seq, spread);
            Ok(())
        }
        Some((&"drain", [commit])) => {
            let commit = parse_kv(commit, "commit")?
                .parse::<usize>()
                .map_err(|_| corrupt(format!("bad commit in `{commit}`")))?;
            if commit != state.done.len() {
                return Err(corrupt(format!(
                    "drain commit {} disagrees with {} durable completions",
                    commit,
                    state.done.len()
                )));
            }
            state.drained = true;
            Ok(())
        }
        _ => Err(corrupt(format!("unknown journal record `{line}`"))),
    }
}

/// Read a journal (and its checkpoint sidecar) back. A torn final line
/// — the signature of a kill mid-write — is dropped; corruption
/// anywhere else fails typed.
pub fn read_wal(path: &Path) -> Result<WalState, WalError> {
    let text = std::fs::read_to_string(path)?;
    let ends_clean = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    let (header, body) = match lines.split_first() {
        Some((h, b)) if *h == WAL_HEADER => (h, b),
        Some((h, _)) => return Err(corrupt(format!("bad header `{h}`"))),
        None => return Err(corrupt("empty journal")),
    };
    let _ = header;
    let (seed_line, body) = body.split_first().ok_or_else(|| corrupt("journal missing seed"))?;
    let seed = parse_kv(seed_line, "seed")?.parse::<u64>().map_err(|_| corrupt("bad seed"))?;
    let (cadence_line, body) =
        body.split_first().ok_or_else(|| corrupt("journal missing cadence"))?;
    let cadence =
        parse_kv(cadence_line, "cadence")?.parse::<u32>().map_err(|_| corrupt("bad cadence"))?;

    let mut state = WalState {
        seed,
        cadence,
        accepted: Vec::new(),
        done: HashMap::new(),
        drained: false,
        checkpoint: None,
    };
    for (i, line) in body.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if let Err(e) = parse_line(&mut state, line) {
            let is_last = i + 1 == body.len();
            if is_last && !ends_clean {
                break; // torn tail from a mid-write kill: drop it
            }
            return Err(e);
        }
    }

    let ckpt_path = sidecar_path(path);
    if ckpt_path.exists() {
        let text = std::fs::read_to_string(&ckpt_path)?;
        let cp =
            Checkpoint::parse(&text).map_err(|e| corrupt(format!("checkpoint sidecar: {e}")))?;
        match cp.scenario.as_deref() {
            Some(SERVER_SCENARIO) => {}
            other => {
                return Err(corrupt(format!(
                    "checkpoint scenario {:?} is not `{SERVER_SCENARIO}`; refusing to resume \
                     someone else's journal",
                    other
                )))
            }
        }
        state.checkpoint = Some(cp);
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_quant::option::PaymentFrequency;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cds-server-wal-test-{}-{name}", std::process::id()));
        p
    }

    fn opt() -> CdsOption {
        CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.4)
    }

    #[test]
    fn accept_done_drain_round_trip_bit_exactly() {
        let path = tmp("roundtrip.wal");
        let wal = WalWriter::create(&path, 42, 2).expect("create");
        let spread = f64::from_bits(0x4059_4ccc_cccc_cccd);
        let s0 = wal.accept(100, &opt(), Priority::High).expect("accept");
        let s1 = wal.accept(101, &opt(), Priority::Low).expect("accept");
        assert_eq!((s0, s1), (0, 1));
        wal.done(0, spread).expect("done");
        let cp = wal.finalize().expect("finalize");
        assert_eq!(cp.total_options, 2);
        assert_eq!(cp.scenario.as_deref(), Some(SERVER_SCENARIO));
        assert!(!cp.is_complete());

        let state = read_wal(&path).expect("read");
        assert_eq!(state.seed, 42);
        assert_eq!(state.accepted.len(), 2);
        assert_eq!(state.done.len(), 1);
        assert!(state.drained);
        assert_eq!(state.done[&0].to_bits(), spread.to_bits());
        let pending = state.pending();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].seq, 1);
        assert_eq!(pending[0].id, 101);
        assert_eq!(pending[0].priority, Priority::Low);
        let cp = state.checkpoint.expect("sidecar present");
        assert_eq!(cp.completed.len(), 1);
        assert_eq!(cp.completed[0].spread_bps.to_bits(), spread.to_bits());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(sidecar_path(&path));
    }

    #[test]
    fn torn_tail_is_dropped_but_interior_corruption_is_typed() {
        let path = tmp("torn.wal");
        let wal = WalWriter::create(&path, 7, 4).expect("create");
        wal.accept(1, &opt(), Priority::High).expect("accept");
        wal.done(0, 100.0).expect("done");
        drop(wal);
        // Simulate a kill mid-append: a partial accept line, no newline.
        let mut text = std::fs::read_to_string(&path).expect("read back");
        text.push_str("accept seq=1 id=2 mat=0x40");
        std::fs::write(&path, &text).expect("rewrite");
        let state = read_wal(&path).expect("torn tail tolerated");
        assert_eq!(state.accepted.len(), 1);
        assert_eq!(state.pending().len(), 0);
        assert!(!state.drained);
        // The same garbage mid-file (newline-terminated, with records
        // after it) is corruption, not a torn tail.
        let mut text = std::fs::read_to_string(&path).expect("read back");
        text.push_str("\ndone seq=0 bits=0x4059000000000000\n");
        std::fs::write(&path, &text).expect("rewrite");
        match read_wal(&path) {
            Err(WalError::Corrupt(_)) => {}
            other => panic!("interior corruption must be typed, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(sidecar_path(&path));
    }

    #[test]
    fn foreign_scenario_checkpoints_are_refused() {
        let path = tmp("foreign.wal");
        let wal = WalWriter::create(&path, 7, 1).expect("create");
        wal.accept(1, &opt(), Priority::High).expect("accept");
        wal.done(0, 100.0).expect("done");
        drop(wal);
        let ckpt = sidecar_path(&path);
        let text = std::fs::read_to_string(&ckpt).expect("sidecar");
        std::fs::write(&ckpt, text.replace(SERVER_SCENARIO, "corrupt-spread")).expect("rewrite");
        match read_wal(&path) {
            Err(WalError::Corrupt(reason)) => {
                assert!(reason.contains("corrupt-spread"), "reason: {reason}");
            }
            other => panic!("foreign scenario must be refused, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&ckpt);
    }
}
