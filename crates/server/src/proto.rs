//! The `cds-server` line protocol.
//!
//! One request per line, one response line per request, UTF-8, newline
//! terminated. Floating-point fields that must survive the wire
//! bit-exactly travel as `0x`-prefixed 64-bit hex bit patterns; plain
//! decimals are accepted on input for human use. Responses carry the
//! spread both ways: a decimal for eyeballs and `bits=` for machines.
//!
//! ```text
//! QUOTE <id> <maturity> <A|S|Q|M> <recovery> [HI|LO]
//! TENANT <name>
//! TICK <seed>
//! TICKPT <interest|hazard> <knot> <value>
//! FAULT KILL|REVIVE <shard> | FAULT STALL <shard> <millis>
//! STATS | DRAIN | PING
//! ```
//!
//! Request lines are bounded: the server reads at most its configured
//! `max_line_bytes` per line and answers an over-long or non-UTF-8 line
//! with a typed `ERR` instead of buffering it (see [`decode_line`] and
//! [`oversize_error`]). A connection is bound to the `default` tenant
//! until it sends `TENANT <name>`; tenant-level throttling replies
//! `THROTTLE <id> retry_after_ms=<m> tenant=<t>`, the tenant-scoped
//! sibling of the ladder's `REJECT ... retry_after_ms=`.

use crate::ladder::Rung;
use cds_engine::incremental::CurveKind;
use cds_quant::option::PaymentFrequency;
use std::fmt;

/// Quote priority; the shed-low-priority rung drops `Low` quotes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Served on every rung below reject.
    High,
    /// First to be shed under pressure.
    Low,
}

/// A parsed `QUOTE` line. Parameters are raw (not yet validated against
/// the quant domain) so the server can answer invalid quotes with a
/// typed `ERR` instead of a parse failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuoteRequest {
    /// Client-chosen request id; retries and hedges of the same logical
    /// quote reuse it, and the ledger makes it idempotent.
    pub id: u64,
    /// Contract maturity in years.
    pub maturity: f64,
    /// Premium payment frequency.
    pub frequency: PaymentFrequency,
    /// Recovery rate in `[0, 1)`.
    pub recovery: f64,
    /// Shedding priority (defaults to `High` on the wire).
    pub priority: Priority,
}

/// A fault-injection command (test/chaos surface, mirrors
/// `dataflow_sim::fault` semantics at the serving layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCmd {
    /// Mark a shard dead: its queue stops being serviced.
    Kill {
        /// Target shard index.
        shard: usize,
    },
    /// Revive a dead shard.
    Revive {
        /// Target shard index.
        shard: usize,
    },
    /// Make a shard sleep this long per quote (0 clears the stall).
    Stall {
        /// Target shard index.
        shard: usize,
        /// Added service time per quote, in milliseconds.
        millis: u64,
    },
}

/// One request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Telemetry snapshot.
    Stats,
    /// Begin graceful drain.
    Drain,
    /// Bind this connection to a tenant.
    Tenant {
        /// Tenant name; must satisfy [`valid_tenant_name`].
        name: String,
    },
    /// Publish a new curve epoch from this seed.
    Tick {
        /// `MarketData::paper_workload` seed for the new epoch.
        seed: u64,
    },
    /// Publish a new epoch by replacing one curve knot's *value*
    /// (tenors are immutable): the incremental-repricing tick path.
    TickPoint {
        /// Target curve.
        curve: CurveKind,
        /// Knot index into that curve.
        knot: usize,
        /// New value at the knot (bit-exact on the wire).
        value: f64,
    },
    /// Fault injection.
    Fault(FaultCmd),
    /// Price a quote.
    Quote(QuoteRequest),
}

/// Post-fault shard state reported by `OK FAULT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Serving normally.
    Live,
    /// Killed; not serviced.
    Dead,
    /// Serving with an injected per-quote stall.
    Stalled,
}

impl ShardState {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ShardState::Live => "live",
            ShardState::Dead => "dead",
            ShardState::Stalled => "stalled",
        }
    }

    /// Inverse of [`ShardState::name`].
    pub fn from_name(s: &str) -> Option<ShardState> {
        [ShardState::Live, ShardState::Dead, ShardState::Stalled]
            .into_iter()
            .find(|v| v.name() == s)
    }
}

/// A successful quote reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuoteReply {
    /// Echoed request id.
    pub id: u64,
    /// Par spread in basis points; travels bit-exactly via `bits=`.
    pub spread_bps: f64,
    /// Curve epoch the quote was priced under.
    pub epoch: u64,
    /// Shard that priced it; `None` means the inline CPU-fallback path.
    pub shard: Option<usize>,
    /// Pricing attempts consumed (1 = first try; 0 = served from the
    /// idempotence ledger).
    pub attempts: u32,
    /// Whether a hedged attempt was launched for this quote.
    pub hedged: bool,
    /// Whether the reply was served from the ledger (duplicate id).
    pub cached: bool,
}

/// A telemetry snapshot (`OK STATS` reply).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Current degradation rung index (see [`Rung::index`]).
    pub rung: u8,
    /// Quotes accepted (admitted and journalled).
    pub accepted: u64,
    /// Quotes completed (priced and answered).
    pub completed: u64,
    /// Quotes shed (low-priority or backpressure).
    pub shed: u64,
    /// Quotes rejected (reject rung or draining).
    pub rejected: u64,
    /// Hedged attempts launched.
    pub hedges: u64,
    /// Retry attempts scheduled after shard failures.
    pub retries: u64,
    /// Duplicate pricings suppressed by the idempotence ledger.
    pub dedup_hits: u64,
    /// Quotes that exhausted their deadline budget.
    pub deadline_misses: u64,
    /// Accepted-but-unanswered quotes right now.
    pub inflight: u64,
    /// Dead shards right now.
    pub dead_shards: u64,
    /// Total shards.
    pub shards: u64,
    /// Current curve epoch.
    pub epoch: u64,
    /// Whether a drain is in progress.
    pub draining: bool,
    /// Quotes throttled by tenant rate limits or in-flight quotas.
    pub throttled: u64,
    /// Distinct tenants registered (including `default`).
    pub tenants: u64,
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `PONG`.
    Pong,
    /// `OK DRAIN` — drain initiated.
    DrainAck,
    /// `OK TICK epoch=<n>` — new epoch published.
    TickAck {
        /// The newly published epoch.
        epoch: u64,
    },
    /// `OK TICKPT epoch=<n> zero_delta=<0|1>` — point tick published.
    /// `zero_delta=1` means the re-published value bits were identical:
    /// the epoch advanced but no cached quote was invalidated.
    TickPointAck {
        /// The newly published epoch.
        epoch: u64,
        /// Whether the tick re-published identical value bits.
        zero_delta: bool,
    },
    /// `OK FAULT shard=<k> state=<s>`.
    FaultAck {
        /// Target shard.
        shard: usize,
        /// Its state after the command.
        state: ShardState,
    },
    /// `OK STATS ...`.
    Stats(StatsReply),
    /// `OK <id> ...` — a priced quote.
    Quote(QuoteReply),
    /// `OK TENANT name=<n>` — connection rebound to a tenant.
    TenantAck {
        /// The tenant now bound.
        name: String,
    },
    /// `THROTTLE <id> retry_after_ms=<m> tenant=<t>` — bounced by the
    /// tenant's token bucket or in-flight quota (not by the ladder).
    Throttle {
        /// Echoed request id.
        id: u64,
        /// Back-off hint derived from the tenant's own refill rate.
        retry_after_ms: u64,
        /// The tenant that exceeded its limits.
        tenant: String,
    },
    /// `SHED <id> retry_after_ms=<m> rung=<r>`.
    Shed {
        /// Echoed request id.
        id: u64,
        /// Client back-off hint, milliseconds.
        retry_after_ms: u64,
        /// Rung that shed the quote.
        rung: Rung,
    },
    /// `REJECT <id> retry_after_ms=<m> rung=<r>` (also used while
    /// draining).
    Reject {
        /// Echoed request id.
        id: u64,
        /// Client back-off hint, milliseconds.
        retry_after_ms: u64,
        /// Rung that rejected the quote.
        rung: Rung,
    },
    /// `ERR <id|-> <reason>`.
    Error {
        /// Request id when the error is tied to one.
        id: Option<u64>,
        /// Human-readable reason (single line).
        reason: String,
    },
}

/// A protocol parse failure; the offending line is answered with `ERR`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was malformed.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol parse error: {}", self.reason)
    }
}

impl std::error::Error for ParseError {}

fn bad(reason: impl Into<String>) -> ParseError {
    ParseError { reason: reason.into() }
}

/// Default cap on one request line, in bytes (excluding the newline).
/// The longest legitimate line (`QUOTE` with hex floats) is under 64
/// bytes; the cap bounds what a hostile client can make the server
/// buffer per connection.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1024;

/// Tenant names are short and filesystem/log-safe: 1..=32 chars of
/// `[A-Za-z0-9_.-]`.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 32
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-')
}

/// Decode one raw request line. Non-UTF-8 bytes are a typed error —
/// never a silent drop, never a panic.
pub fn decode_line(bytes: &[u8]) -> Result<&str, ParseError> {
    std::str::from_utf8(bytes).map_err(|_| bad("request line is not valid UTF-8"))
}

/// The typed error for a request line longer than `max_line_bytes`.
/// The connection reader sends exactly one of these per oversized line
/// and discards the remainder without buffering it.
pub fn oversize_error(max_line_bytes: usize) -> ParseError {
    bad(format!("request line exceeds {max_line_bytes} bytes"))
}

/// Format an `f64` as a bit-exact wire token (`0x`-prefixed hex bits).
pub fn f64_to_wire(v: f64) -> String {
    format!("0x{:016x}", v.to_bits())
}

/// Parse a wire float: `0x<hex>` is exact f64 bits, anything else is a
/// decimal literal.
pub fn f64_from_wire(tok: &str) -> Result<f64, ParseError> {
    if let Some(hex) = tok.strip_prefix("0x") {
        let bits = u64::from_str_radix(hex, 16)
            .map_err(|_| bad(format!("bad f64 bit pattern `{tok}`")))?;
        Ok(f64::from_bits(bits))
    } else {
        tok.parse::<f64>().map_err(|_| bad(format!("bad float `{tok}`")))
    }
}

fn parse_u64(tok: &str, what: &str) -> Result<u64, ParseError> {
    tok.parse::<u64>().map_err(|_| bad(format!("bad {what} `{tok}`")))
}

fn parse_usize(tok: &str, what: &str) -> Result<usize, ParseError> {
    tok.parse::<usize>().map_err(|_| bad(format!("bad {what} `{tok}`")))
}

fn frequency_from_wire(tok: &str) -> Result<PaymentFrequency, ParseError> {
    match tok {
        "A" => Ok(PaymentFrequency::Annual),
        "S" => Ok(PaymentFrequency::SemiAnnual),
        "Q" => Ok(PaymentFrequency::Quarterly),
        "M" => Ok(PaymentFrequency::Monthly),
        other => Err(bad(format!("bad frequency `{other}` (want A|S|Q|M)"))),
    }
}

fn frequency_to_wire(f: PaymentFrequency) -> &'static str {
    match f {
        PaymentFrequency::Annual => "A",
        PaymentFrequency::SemiAnnual => "S",
        PaymentFrequency::Quarterly => "Q",
        PaymentFrequency::Monthly => "M",
    }
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    match toks.split_first() {
        None => Err(bad("empty request")),
        Some((&"PING", [])) => Ok(Request::Ping),
        Some((&"STATS", [])) => Ok(Request::Stats),
        Some((&"DRAIN", [])) => Ok(Request::Drain),
        Some((&"TENANT", [name])) => {
            if valid_tenant_name(name) {
                Ok(Request::Tenant { name: (*name).to_string() })
            } else {
                Err(bad(format!(
                    "invalid tenant name `{name}`: want 1..=32 chars of [A-Za-z0-9_.-]"
                )))
            }
        }
        Some((&"TENANT", _)) => Err(bad("usage: TENANT <name>")),
        Some((&"TICK", [seed])) => Ok(Request::Tick { seed: parse_u64(seed, "seed")? }),
        Some((&"TICKPT", [curve, knot, value])) => Ok(Request::TickPoint {
            curve: curve.parse::<CurveKind>().map_err(bad)?,
            knot: parse_usize(knot, "knot")?,
            value: f64_from_wire(value)?,
        }),
        Some((&"TICKPT", _)) => Err(bad("usage: TICKPT <interest|hazard> <knot> <value>")),
        Some((&"FAULT", rest)) => match rest {
            ["KILL", shard] => {
                Ok(Request::Fault(FaultCmd::Kill { shard: parse_usize(shard, "shard")? }))
            }
            ["REVIVE", shard] => {
                Ok(Request::Fault(FaultCmd::Revive { shard: parse_usize(shard, "shard")? }))
            }
            ["STALL", shard, millis] => Ok(Request::Fault(FaultCmd::Stall {
                shard: parse_usize(shard, "shard")?,
                millis: parse_u64(millis, "stall millis")?,
            })),
            _ => Err(bad("usage: FAULT KILL|REVIVE <shard> | FAULT STALL <shard> <millis>")),
        },
        Some((&"QUOTE", rest)) => {
            let (core, priority) = match rest {
                [a, b, c, d] => ((a, b, c, d), Priority::High),
                [a, b, c, d, "HI"] => ((a, b, c, d), Priority::High),
                [a, b, c, d, "LO"] => ((a, b, c, d), Priority::Low),
                _ => return Err(bad("usage: QUOTE <id> <maturity> <A|S|Q|M> <recovery> [HI|LO]")),
            };
            let (id, maturity, freq, recovery) = core;
            Ok(Request::Quote(QuoteRequest {
                id: parse_u64(id, "request id")?,
                maturity: f64_from_wire(maturity)?,
                frequency: frequency_from_wire(freq)?,
                recovery: f64_from_wire(recovery)?,
                priority,
            }))
        }
        Some((verb, _)) => Err(bad(format!("unknown verb `{verb}`"))),
    }
}

/// Format one request line (no trailing newline). Floats travel as
/// exact bit patterns.
pub fn format_request(req: &Request) -> String {
    match req {
        Request::Ping => "PING".to_string(),
        Request::Stats => "STATS".to_string(),
        Request::Drain => "DRAIN".to_string(),
        Request::Tenant { name } => format!("TENANT {name}"),
        Request::Tick { seed } => format!("TICK {seed}"),
        Request::TickPoint { curve, knot, value } => {
            format!("TICKPT {curve} {knot} {}", f64_to_wire(*value))
        }
        Request::Fault(FaultCmd::Kill { shard }) => format!("FAULT KILL {shard}"),
        Request::Fault(FaultCmd::Revive { shard }) => format!("FAULT REVIVE {shard}"),
        Request::Fault(FaultCmd::Stall { shard, millis }) => {
            format!("FAULT STALL {shard} {millis}")
        }
        Request::Quote(q) => {
            let prio = match q.priority {
                Priority::High => "HI",
                Priority::Low => "LO",
            };
            format!(
                "QUOTE {} {} {} {} {prio}",
                q.id,
                f64_to_wire(q.maturity),
                frequency_to_wire(q.frequency),
                f64_to_wire(q.recovery),
            )
        }
    }
}

/// Format one response line (no trailing newline).
pub fn format_response(resp: &Response) -> String {
    match resp {
        Response::Pong => "PONG".to_string(),
        Response::DrainAck => "OK DRAIN".to_string(),
        Response::TickAck { epoch } => format!("OK TICK epoch={epoch}"),
        Response::TickPointAck { epoch, zero_delta } => {
            format!("OK TICKPT epoch={epoch} zero_delta={}", u8::from(*zero_delta))
        }
        Response::FaultAck { shard, state } => {
            format!("OK FAULT shard={shard} state={}", state.name())
        }
        Response::Stats(s) => format!(
            "OK STATS rung={} accepted={} completed={} shed={} rejected={} hedges={} \
             retries={} dedup={} deadline_misses={} inflight={} dead_shards={} shards={} \
             epoch={} draining={} throttled={} tenants={}",
            Rung::from_index(s.rung as usize).name(),
            s.accepted,
            s.completed,
            s.shed,
            s.rejected,
            s.hedges,
            s.retries,
            s.dedup_hits,
            s.deadline_misses,
            s.inflight,
            s.dead_shards,
            s.shards,
            s.epoch,
            u8::from(s.draining),
            s.throttled,
            s.tenants,
        ),
        Response::TenantAck { name } => format!("OK TENANT name={name}"),
        Response::Throttle { id, retry_after_ms, tenant } => {
            format!("THROTTLE {id} retry_after_ms={retry_after_ms} tenant={tenant}")
        }
        Response::Quote(q) => {
            let shard = match q.shard {
                Some(k) => k.to_string(),
                None => "cpu".to_string(),
            };
            format!(
                "OK {} spread={} bits={} epoch={} shard={shard} attempts={} hedged={} cached={}",
                q.id,
                q.spread_bps,
                f64_to_wire(q.spread_bps),
                q.epoch,
                q.attempts,
                u8::from(q.hedged),
                u8::from(q.cached),
            )
        }
        Response::Shed { id, retry_after_ms, rung } => {
            format!("SHED {id} retry_after_ms={retry_after_ms} rung={}", rung.name())
        }
        Response::Reject { id, retry_after_ms, rung } => {
            format!("REJECT {id} retry_after_ms={retry_after_ms} rung={}", rung.name())
        }
        Response::Error { id, reason } => {
            let id = id.map_or_else(|| "-".to_string(), |i| i.to_string());
            format!("ERR {id} {reason}")
        }
    }
}

fn kv<'a>(toks: &[&'a str]) -> Result<Vec<(&'a str, &'a str)>, ParseError> {
    toks.iter()
        .map(|t| t.split_once('=').ok_or_else(|| bad(format!("expected key=value, got `{t}`"))))
        .collect()
}

fn kv_get<'a>(pairs: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, ParseError> {
    pairs
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| bad(format!("missing field `{key}`")))
}

fn rung_from_wire(tok: &str) -> Result<Rung, ParseError> {
    Rung::from_name(tok).ok_or_else(|| bad(format!("unknown rung `{tok}`")))
}

/// Parse one response line (the client half of the protocol).
pub fn parse_response(line: &str) -> Result<Response, ParseError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    match toks.split_first() {
        None => Err(bad("empty response")),
        Some((&"PONG", [])) => Ok(Response::Pong),
        Some((&"THROTTLE", [id, rest @ ..])) => {
            let pairs = kv(rest)?;
            Ok(Response::Throttle {
                id: parse_u64(id, "request id")?,
                retry_after_ms: parse_u64(kv_get(&pairs, "retry_after_ms")?, "retry_after_ms")?,
                tenant: kv_get(&pairs, "tenant")?.to_string(),
            })
        }
        Some((&"SHED", [id, rest @ ..])) => {
            let pairs = kv(rest)?;
            Ok(Response::Shed {
                id: parse_u64(id, "request id")?,
                retry_after_ms: parse_u64(kv_get(&pairs, "retry_after_ms")?, "retry_after_ms")?,
                rung: rung_from_wire(kv_get(&pairs, "rung")?)?,
            })
        }
        Some((&"REJECT", [id, rest @ ..])) => {
            let pairs = kv(rest)?;
            Ok(Response::Reject {
                id: parse_u64(id, "request id")?,
                retry_after_ms: parse_u64(kv_get(&pairs, "retry_after_ms")?, "retry_after_ms")?,
                rung: rung_from_wire(kv_get(&pairs, "rung")?)?,
            })
        }
        Some((&"ERR", [id, reason @ ..])) => Ok(Response::Error {
            id: if *id == "-" { None } else { Some(parse_u64(id, "request id")?) },
            reason: reason.join(" "),
        }),
        Some((&"OK", ["DRAIN"])) => Ok(Response::DrainAck),
        Some((&"OK", ["TENANT", rest @ ..])) => {
            let pairs = kv(rest)?;
            Ok(Response::TenantAck { name: kv_get(&pairs, "name")?.to_string() })
        }
        Some((&"OK", ["TICK", rest @ ..])) => {
            let pairs = kv(rest)?;
            Ok(Response::TickAck { epoch: parse_u64(kv_get(&pairs, "epoch")?, "epoch")? })
        }
        Some((&"OK", ["TICKPT", rest @ ..])) => {
            let pairs = kv(rest)?;
            Ok(Response::TickPointAck {
                epoch: parse_u64(kv_get(&pairs, "epoch")?, "epoch")?,
                zero_delta: parse_u64(kv_get(&pairs, "zero_delta")?, "zero_delta")? != 0,
            })
        }
        Some((&"OK", ["FAULT", rest @ ..])) => {
            let pairs = kv(rest)?;
            let state = kv_get(&pairs, "state")?;
            Ok(Response::FaultAck {
                shard: parse_usize(kv_get(&pairs, "shard")?, "shard")?,
                state: ShardState::from_name(state)
                    .ok_or_else(|| bad(format!("unknown shard state `{state}`")))?,
            })
        }
        Some((&"OK", ["STATS", rest @ ..])) => {
            let pairs = kv(rest)?;
            let field = |k: &str| parse_u64(kv_get(&pairs, k)?, k);
            Ok(Response::Stats(StatsReply {
                rung: rung_from_wire(kv_get(&pairs, "rung")?)?.index() as u8,
                accepted: field("accepted")?,
                completed: field("completed")?,
                shed: field("shed")?,
                rejected: field("rejected")?,
                hedges: field("hedges")?,
                retries: field("retries")?,
                dedup_hits: field("dedup")?,
                deadline_misses: field("deadline_misses")?,
                inflight: field("inflight")?,
                dead_shards: field("dead_shards")?,
                shards: field("shards")?,
                epoch: field("epoch")?,
                draining: field("draining")? != 0,
                throttled: field("throttled")?,
                tenants: field("tenants")?,
            }))
        }
        Some((&"OK", [id, rest @ ..])) => {
            let pairs = kv(rest)?;
            let shard = match kv_get(&pairs, "shard")? {
                "cpu" => None,
                k => Some(parse_usize(k, "shard")?),
            };
            Ok(Response::Quote(QuoteReply {
                id: parse_u64(id, "request id")?,
                // bits= is authoritative; the decimal field is display-only.
                spread_bps: f64_from_wire(kv_get(&pairs, "bits")?)?,
                epoch: parse_u64(kv_get(&pairs, "epoch")?, "epoch")?,
                shard,
                attempts: parse_u64(kv_get(&pairs, "attempts")?, "attempts")? as u32,
                hedged: parse_u64(kv_get(&pairs, "hedged")?, "hedged")? != 0,
                cached: parse_u64(kv_get(&pairs, "cached")?, "cached")? != 0,
            }))
        }
        Some((verb, _)) => Err(bad(format!("unknown response `{verb}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        let cases = [
            Request::Ping,
            Request::Stats,
            Request::Drain,
            Request::Tick { seed: 99 },
            Request::TickPoint { curve: CurveKind::Interest, knot: 511, value: 0.0213 },
            Request::TickPoint {
                curve: CurveKind::Hazard,
                knot: 0,
                value: f64::from_bits(0x3f94_7ae1_47ae_147b),
            },
            Request::Fault(FaultCmd::Kill { shard: 2 }),
            Request::Fault(FaultCmd::Revive { shard: 0 }),
            Request::Fault(FaultCmd::Stall { shard: 1, millis: 250 }),
            Request::Tenant { name: "hedge-desk_7.eu".to_string() },
            Request::Quote(QuoteRequest {
                id: 7,
                maturity: 5.37,
                frequency: PaymentFrequency::Quarterly,
                recovery: 0.4,
                priority: Priority::Low,
            }),
        ];
        for req in cases {
            let line = format_request(&req);
            assert_eq!(parse_request(&line), Ok(req), "line: {line}");
        }
    }

    #[test]
    fn quote_floats_survive_the_wire_bit_exactly() {
        let maturity = f64::from_bits(0x400a_3333_3333_3334); // an awkward 3.275…
        let req = Request::Quote(QuoteRequest {
            id: 1,
            maturity,
            frequency: PaymentFrequency::Monthly,
            recovery: 0.123_456_789_012_345_68,
            priority: Priority::High,
        });
        match parse_request(&format_request(&req)) {
            Ok(Request::Quote(q)) => {
                assert_eq!(q.maturity.to_bits(), maturity.to_bits());
            }
            other => panic!("expected quote, got {other:?}"),
        }
        // Human decimals still parse.
        match parse_request("QUOTE 3 5.0 Q 0.4") {
            Ok(Request::Quote(q)) => {
                assert_eq!(q.priority, Priority::High);
                assert_eq!(q.maturity, 5.0);
            }
            other => panic!("expected quote, got {other:?}"),
        }
    }

    #[test]
    fn response_lines_round_trip() {
        let cases = [
            Response::Pong,
            Response::DrainAck,
            Response::TickAck { epoch: 3 },
            Response::TickPointAck { epoch: 4, zero_delta: false },
            Response::TickPointAck { epoch: 5, zero_delta: true },
            Response::FaultAck { shard: 1, state: ShardState::Dead },
            Response::Stats(StatsReply {
                rung: 2,
                accepted: 10,
                completed: 8,
                shed: 1,
                rejected: 1,
                hedges: 2,
                retries: 3,
                dedup_hits: 1,
                deadline_misses: 0,
                inflight: 2,
                dead_shards: 1,
                shards: 4,
                epoch: 5,
                draining: true,
                throttled: 7,
                tenants: 3,
            }),
            Response::Quote(QuoteReply {
                id: 42,
                spread_bps: 101.25,
                epoch: 2,
                shard: Some(3),
                attempts: 2,
                hedged: true,
                cached: false,
            }),
            Response::Quote(QuoteReply {
                id: 43,
                spread_bps: -0.5,
                epoch: 0,
                shard: None,
                attempts: 1,
                hedged: false,
                cached: true,
            }),
            Response::TenantAck { name: "hedge-desk_7.eu".to_string() },
            Response::Throttle { id: 11, retry_after_ms: 250, tenant: "abuser".to_string() },
            Response::Shed { id: 9, retry_after_ms: 12, rung: Rung::ShedLowPriority },
            Response::Reject { id: 9, retry_after_ms: 40, rung: Rung::RejectRetryAfter },
            Response::Error { id: Some(5), reason: "recovery rate out of range".to_string() },
            Response::Error { id: None, reason: "unknown verb `QUOT`".to_string() },
        ];
        for resp in cases {
            let line = format_response(&resp);
            assert_eq!(parse_response(&line), Ok(resp.clone()), "line: {line}");
        }
    }

    #[test]
    fn malformed_lines_fail_typed() {
        for line in [
            "",
            "QUOT 1 5.0 Q 0.4",
            "QUOTE x 5.0 Q 0.4",
            "QUOTE 1 5.0 X 0.4",
            "QUOTE 1 5.0 Q",
            "FAULT KILL",
            "FAULT STALL 1",
            "TICK",
            "TICKPT",
            "TICKPT interest 3",
            "TICKPT INTEREST 3 0.02",
            "TICKPT interest x 0.02",
            "TICKPT hazard 3 0xzz",
            "TENANT",
            "TENANT two names",
            "TENANT bad/name",
            "TENANT ../../etc/passwd",
            "TENANT a_name_that_is_way_too_long_for_the_thirty_two_char_cap",
        ] {
            assert!(parse_request(line).is_err(), "must reject `{line}`");
        }
        assert!(parse_response("OK 1 spread=1.0").is_err(), "missing bits field");
    }

    #[test]
    fn tenant_name_validation() {
        for good in ["a", "default", "hedge-desk_7.eu", "A.B-C_9", &"x".repeat(32)] {
            assert!(valid_tenant_name(good), "must accept `{good}`");
        }
        for bad in ["", " ", "a b", "a/b", "λ", "name!", &"x".repeat(33)] {
            assert!(!valid_tenant_name(bad), "must reject `{bad}`");
        }
    }

    #[test]
    fn raw_line_decoding_is_typed() {
        assert_eq!(decode_line(b"PING"), Ok("PING"));
        let err = decode_line(&[0x51, 0xff, 0xfe]).expect_err("non-UTF-8 must fail");
        assert!(err.reason.contains("UTF-8"), "{err}");
        let err = oversize_error(1024);
        assert!(err.reason.contains("1024"), "{err}");
    }
}
