//! Property tests for the deficit round-robin fair scheduler that backs
//! the shard queues (`cds_server::fair`).
//!
//! The invariants the tenant-isolation design leans on:
//!
//! 1. **Work conservation** — `pop` yields a job whenever any tenant is
//!    backlogged, and an arbitrary push/pop interleaving drains every
//!    job exactly once.
//! 2. **Per-tenant FIFO** — one tenant's jobs never reorder, whatever
//!    the other tenants do.
//! 3. **Starvation freedom** — with every tenant backlogged, each
//!    tenant is served within one full ring rotation, i.e. within
//!    `sum(weight_i * quantum)` pops.
//! 4. **Weighted shares** — with every tenant saturated, one full round
//!    dequeues exactly `weight_i * quantum` jobs per tenant.

use cds_server::fair::DrrScheduler;
use proptest::prelude::*;

/// (slot, weight) pools kept small so rounds stay enumerable.
fn tenant_set() -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((0usize..6, 1u64..5), 1..6).prop_map(|mut v| {
        // One weight per slot: last binding wins, mirroring `push`.
        v.sort_by_key(|&(slot, _)| slot);
        v.dedup_by_key(|&mut (slot, _)| slot);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any interleaving of pushes and pops conserves work: every pushed
    /// job is popped exactly once, pops never fail while backlogged,
    /// and the scheduler ends empty.
    #[test]
    fn every_job_is_drained_exactly_once(
        quantum in 1u64..4,
        ops in proptest::collection::vec((0usize..5, 1u64..4, 0u8..2), 1..200),
    ) {
        let mut s: DrrScheduler<(usize, u64)> = DrrScheduler::new(quantum);
        let mut pushed = [0u64; 5];
        let mut popped_total = 0usize;
        let mut pushed_total = 0usize;
        for &(slot, weight, also_pop) in &ops {
            s.push(slot, weight, (slot, pushed[slot]));
            pushed[slot] += 1;
            pushed_total += 1;
            if also_pop == 1 {
                prop_assert!(s.pop().is_some(), "backlogged scheduler refused to serve");
                popped_total += 1;
            }
        }
        while s.pop().is_some() {
            popped_total += 1;
        }
        prop_assert_eq!(popped_total, pushed_total);
        prop_assert!(s.is_empty());
        prop_assert_eq!(s.len(), 0);
    }

    /// One tenant's jobs come out in the order they went in, no matter
    /// how the other tenants' pushes interleave.
    #[test]
    fn per_tenant_order_is_fifo(
        quantum in 1u64..4,
        pushes in proptest::collection::vec((0usize..4, 1u64..4), 1..120),
    ) {
        let mut s: DrrScheduler<(usize, u64)> = DrrScheduler::new(quantum);
        let mut seq = vec![0u64; 4];
        for &(slot, weight) in &pushes {
            s.push(slot, weight, (slot, seq[slot]));
            seq[slot] += 1;
        }
        let mut next_expected = vec![0u64; 4];
        while let Some((slot, n)) = s.pop() {
            prop_assert_eq!(n, next_expected[slot], "tenant {} reordered", slot);
            next_expected[slot] += 1;
        }
        prop_assert_eq!(next_expected, seq);
    }

    /// With every tenant saturated, each tenant's first job arrives
    /// within `sum(weight_i * quantum)` pops — the DRR starvation bound.
    #[test]
    fn starvation_is_bounded_by_one_rotation(
        quantum in 1u64..4,
        tenants in tenant_set(),
    ) {
        let round: u64 = tenants.iter().map(|&(_, w)| w * quantum).sum();
        let mut s: DrrScheduler<usize> = DrrScheduler::new(quantum);
        // Enough backlog that no tenant goes idle inside one rotation.
        for _ in 0..(round as usize + 1) {
            for &(slot, weight) in &tenants {
                s.push(slot, weight, slot);
            }
        }
        let mut first_served_at: std::collections::HashMap<usize, u64> = Default::default();
        for k in 0..round {
            let slot = s.pop().expect("saturated scheduler must serve");
            first_served_at.entry(slot).or_insert(k);
        }
        for &(slot, _) in &tenants {
            let at = first_served_at.get(&slot);
            prop_assert!(
                at.is_some(),
                "tenant {} starved past a full rotation of {} pops",
                slot,
                round
            );
        }
    }

    /// With every tenant saturated, one full round dequeues exactly
    /// `weight_i * quantum` jobs for each tenant: shares are exact, not
    /// merely asymptotic.
    #[test]
    fn saturated_shares_are_exact_per_round(
        quantum in 1u64..4,
        tenants in tenant_set(),
    ) {
        let round: u64 = tenants.iter().map(|&(_, w)| w * quantum).sum();
        let mut s: DrrScheduler<usize> = DrrScheduler::new(quantum);
        for _ in 0..(2 * round as usize) {
            for &(slot, weight) in &tenants {
                s.push(slot, weight, slot);
            }
        }
        // Two consecutive full rounds, each with exact weighted counts.
        for _ in 0..2 {
            let mut counts: std::collections::HashMap<usize, u64> = Default::default();
            for _ in 0..round {
                let slot = s.pop().expect("saturated scheduler must serve");
                *counts.entry(slot).or_insert(0) += 1;
            }
            for &(slot, weight) in &tenants {
                prop_assert_eq!(
                    counts.get(&slot).copied().unwrap_or(0),
                    weight * quantum,
                    "tenant {} got the wrong share of a {}-pop round",
                    slot,
                    round
                );
            }
        }
    }
}
