//! Property tests for the serving robustness invariants.
//!
//! 1. The degradation ladder is **monotone**: worse telemetry never
//!    yields a healthier target, the ladder never skips a rung in
//!    either direction, and recovery retraces the rungs in order.
//! 2. Hedged retries never double-count a spread: for any storm of
//!    duplicate attempts the [`QuoteLedger`] elects exactly one
//!    canonical spread per request id — the first one recorded.

use cds_server::hedge::{QuoteLedger, RecordOutcome};
use cds_server::ladder::{DegradationLadder, LadderConfig, LadderTelemetry, Rung};
use proptest::prelude::*;

fn telemetry_strategy() -> impl Strategy<Value = LadderTelemetry> {
    (0u64..200, 1u64..200, 0usize..5, 1usize..5, 0u32..2).prop_map(
        |(depth, capacity, dead, total, degraded)| LadderTelemetry {
            queue_depth: depth,
            queue_capacity: capacity,
            shards_dead: dead.min(total),
            shards_total: total,
            wal_degraded: degraded == 1,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Worsening any telemetry dimension never improves the target rung.
    #[test]
    fn target_is_monotone_in_telemetry(
        t in telemetry_strategy(),
        extra_depth in 0u64..100,
        extra_dead in 0usize..4,
        extra_degraded in 0u32..2,
    ) {
        let config = LadderConfig::default();
        let worse = LadderTelemetry {
            queue_depth: t.queue_depth + extra_depth,
            shards_dead: (t.shards_dead + extra_dead).min(t.shards_total),
            wal_degraded: t.wal_degraded || extra_degraded == 1,
            ..t
        };
        let base = DegradationLadder::target(&t, &config);
        let degraded = DegradationLadder::target(&worse, &config);
        prop_assert!(
            degraded >= base,
            "worse telemetry {worse:?} gave healthier target {degraded:?} than {t:?} ({base:?})"
        );
    }

    /// Whatever telemetry arrives, the rung moves at most one step per
    /// observation — no rung is ever skipped in either direction.
    #[test]
    fn ladder_never_skips_a_rung(
        observations in proptest::collection::vec(telemetry_strategy(), 1..80),
        recovery in 1u32..5,
    ) {
        let config = LadderConfig { recovery_observations: recovery, ..Default::default() };
        let mut ladder = DegradationLadder::new(config).expect("valid config");
        let mut prev = ladder.rung();
        for t in &observations {
            let next = ladder.observe(t);
            let step = (next.index() as i64 - prev.index() as i64).abs();
            prop_assert!(step <= 1, "ladder jumped {prev:?} -> {next:?} on {t:?}");
            prev = next;
        }
    }

    /// Degrading to the worst rung and then going calm recovers through
    /// every rung in order: 3 → 2 → 1 → 0, each drop only after the
    /// configured number of calm observations.
    #[test]
    fn recovery_retraces_rungs_in_order(recovery in 1u32..6) {
        let config = LadderConfig { recovery_observations: recovery, ..Default::default() };
        let mut ladder = DegradationLadder::new(config).expect("valid config");
        let saturated = LadderTelemetry {
            queue_depth: 100,
            queue_capacity: 100,
            shards_dead: 0,
            shards_total: 4,
            wal_degraded: false,
        };
        let calm = LadderTelemetry { queue_depth: 0, ..saturated };
        for expected in [Rung::ShedLowPriority, Rung::CpuFallback, Rung::RejectRetryAfter] {
            prop_assert_eq!(ladder.observe(&saturated), expected);
        }
        let mut seen = vec![ladder.rung()];
        for _ in 0..(4 * recovery + 4) {
            let r = ladder.observe(&calm);
            if r != *seen.last().expect("nonempty") {
                seen.push(r);
            }
        }
        prop_assert_eq!(
            seen,
            vec![
                Rung::RejectRetryAfter,
                Rung::CpuFallback,
                Rung::ShedLowPriority,
                Rung::Healthy,
            ]
        );
        // And each individual drop waited for the full calm streak:
        // total calm observations consumed >= 3 * recovery.
        let mut ladder = DegradationLadder::new(config).expect("valid config");
        for _ in 0..3 {
            ladder.observe(&saturated);
        }
        let mut calm_count = 0u32;
        while ladder.rung() != Rung::Healthy {
            ladder.observe(&calm);
            calm_count += 1;
            prop_assert!(calm_count <= 3 * recovery, "recovery overshot the hysteresis budget");
        }
        prop_assert_eq!(calm_count, 3 * recovery);
    }

    /// For any storm of attempts — original, retries, hedges, client
    /// re-sends, across tenants — each `(tenant, id)` key is counted
    /// exactly once and the canonical spread is the first recorded, so
    /// aggregate accounting (sums over canonical spreads) is
    /// storm-invariant. Tenants reusing each other's ids never collide.
    #[test]
    fn hedged_retries_never_double_count_a_spread(
        attempts in proptest::collection::vec((0u64..3, 0u64..24, -1e6f64..1e6), 1..200),
    ) {
        let ledger = QuoteLedger::new();
        let mut firsts: std::collections::HashMap<(u64, u64), f64> =
            std::collections::HashMap::new();
        let mut wins = 0u64;
        for &(tenant, id, spread) in &attempts {
            firsts.entry((tenant, id)).or_insert(spread);
            match ledger.record(tenant, id, spread) {
                RecordOutcome::First => wins += 1,
                RecordOutcome::Duplicate { spread: canonical } => {
                    // Every duplicate echoes the first spread recorded
                    // by the *same tenant*, not its own and never
                    // another tenant's.
                    prop_assert_eq!(canonical.to_bits(), firsts[&(tenant, id)].to_bits());
                }
            }
        }
        prop_assert_eq!(wins as usize, firsts.len(), "one win per unique (tenant, id)");
        prop_assert_eq!(ledger.len(), firsts.len());
        prop_assert_eq!(
            ledger.duplicates_suppressed() as usize,
            attempts.len() - firsts.len()
        );
        // The canonical aggregate equals the sum over first attempts.
        let canonical_sum: f64 =
            firsts.keys().filter_map(|&(t, id)| ledger.get(t, id)).sum();
        let expected_sum: f64 = firsts.values().sum();
        prop_assert_eq!(canonical_sum.to_bits(), expected_sum.to_bits());
    }
}
