//! Hostile-client hardening, end to end against the real binary: every
//! garbage, torn, oversized, or non-UTF-8 line gets exactly one typed
//! `ERR` (or a deliberate silent skip for blank lines), slowloris
//! connections are reaped, tenant quotas throttle with a Retry-After
//! hint, and through all of it the connection — or a fresh one — keeps
//! pricing bit-identically.

#![cfg(unix)]

use cds_cpu::engine::CpuCdsEngine;
use cds_quant::option::{CdsOption, MarketData, PaymentFrequency};
use cds_server::fuzz::{fuzz_lines, torn_lines};
use cds_server::proto::{f64_to_wire, parse_response, Response};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SEED: u64 = 42;
const MAX_LINE: usize = 256;

/// Boot the real binary with hostile-client-sized knobs: a small line
/// cap, a fast slowloris reaper, and one deliberately tiny tenant.
fn spawn_server(extra: &[&str]) -> (Child, std::net::SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cds-server"));
    cmd.args([
        "--shards",
        "2",
        "--seed",
        &SEED.to_string(),
        "--max-line-bytes",
        &MAX_LINE.to_string(),
        "--read-timeout-ms",
        "20",
        "--idle-timeout-ms",
        "250",
        "--tenant",
        "tiny=2:1:4:1",
    ]);
    cmd.args(extra);
    let mut child = cmd.stdout(Stdio::piped()).stderr(Stdio::null()).spawn().expect("spawn");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("readiness line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable readiness line `{line}`"));
    (child, addr)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("read timeout");
        let writer = stream.try_clone().expect("clone");
        Client { reader: BufReader::new(stream), writer }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> Response {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("recv");
        assert!(!reply.is_empty(), "connection closed unexpectedly");
        parse_response(reply.trim()).unwrap_or_else(|e| panic!("bad reply `{reply}`: {e}"))
    }

    fn roundtrip(&mut self, line: &str) -> Response {
        self.send(line);
        self.recv()
    }
}

fn reference_bits(maturity: f64, recovery: f64) -> u64 {
    CpuCdsEngine::new(&MarketData::paper_workload(SEED))
        .price(&CdsOption::new(maturity, PaymentFrequency::Quarterly, recovery))
        .spread_bps
        .to_bits()
}

fn assert_prices(client: &mut Client, id: u64) {
    match client.roundtrip(&format!("QUOTE {id} {} Q {}", f64_to_wire(5.0), f64_to_wire(0.4))) {
        Response::Quote(q) => {
            assert_eq!(q.spread_bps.to_bits(), reference_bits(5.0, 0.4), "spread diverged")
        }
        other => panic!("expected a priced quote, got {other:?}"),
    }
}

#[test]
fn oversized_and_non_utf8_lines_get_one_typed_err_each() {
    let (mut child, addr) = spawn_server(&[]);
    let mut client = Client::connect(addr);

    // A line over the cap: exactly one ERR, and the connection lives.
    let long = "A".repeat(MAX_LINE * 4);
    match client.roundtrip(&long) {
        Response::Error { id: None, reason } => {
            assert!(reason.contains("exceeds"), "reason: {reason}")
        }
        other => panic!("expected oversize error, got {other:?}"),
    }
    assert_eq!(client.roundtrip("PING"), Response::Pong);

    // Non-UTF-8 bytes: one typed ERR, not a dropped connection.
    client.writer.write_all(b"QUOTE \xf8\xfe\xff\n").expect("send");
    client.writer.flush().expect("flush");
    match client.recv() {
        Response::Error { id: None, reason } => {
            assert!(reason.to_lowercase().contains("utf-8"), "reason: {reason}")
        }
        other => panic!("expected utf-8 error, got {other:?}"),
    }
    assert_prices(&mut client, 1);

    client.send("DRAIN");
    assert!(wait_exit(&mut child).success());
}

#[test]
fn every_fuzz_line_gets_exactly_one_err_and_pricing_survives() {
    let (mut child, addr) = spawn_server(&[]);
    let mut client = Client::connect(addr);

    let corpus = fuzz_lines(SEED, 300, MAX_LINE);
    let expected: usize = corpus.iter().filter(|l| l.expect_reply).count();
    for line in &corpus {
        client.writer.write_all(&line.bytes).expect("send");
    }
    client.writer.flush().expect("flush");
    // The sentinel: everything before the PONG must be a typed ERR,
    // and there must be exactly one per reply-owing fuzz line.
    client.send("PING");
    let mut errs = 0usize;
    loop {
        match client.recv() {
            Response::Pong => break,
            Response::Error { .. } => errs += 1,
            other => panic!("fuzz line produced a non-ERR reply: {other:?}"),
        }
    }
    assert_eq!(errs, expected, "fuzz reply accounting must be 1:1");

    // The connection is still a working quote channel, bit-identically.
    assert_prices(&mut client, 7);

    client.send("DRAIN");
    assert!(wait_exit(&mut child).success());
}

#[test]
fn torn_lines_and_abrupt_disconnects_leave_the_server_serving() {
    let (mut child, addr) = spawn_server(&[]);

    for torn in torn_lines(SEED, 16) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&torn).expect("send torn prefix");
        // Drop with the line unterminated: the server must treat the
        // EOF'd partial line as one request and move on.
        drop(stream);
    }

    let mut client = Client::connect(addr);
    assert_eq!(client.roundtrip("PING"), Response::Pong);
    // A torn prefix can legitimately complete as a valid command (e.g.
    // `TICK 99` cut to `TICK 9`) and republish the curve epoch, so
    // re-publish the boot epoch before checking bit-exactness.
    match client.roundtrip(&format!("TICK {SEED}")) {
        Response::TickAck { .. } => {}
        other => panic!("expected tick ack, got {other:?}"),
    }
    assert_prices(&mut client, 9);

    client.send("DRAIN");
    assert!(wait_exit(&mut child).success());
}

#[test]
fn slowloris_connections_are_reaped_and_clean_clients_are_not() {
    let (mut child, addr) = spawn_server(&[]);

    // Three trickling connections: a byte every 60ms never completes a
    // line, so the 250ms idle reaper must close each of them.
    let trickles: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_read_timeout(Some(Duration::from_millis(50))).expect("timeout");
                let started = Instant::now();
                let mut reaped = false;
                while started.elapsed() < Duration::from_secs(3) {
                    if stream.write_all(b"Q").is_err() {
                        reaped = true; // server closed on us mid-trickle
                        break;
                    }
                    let mut buf = [0u8; 256];
                    match stream.read(&mut buf) {
                        Ok(0) => {
                            reaped = true; // clean server-side close
                            break;
                        }
                        Ok(_) => {} // the idle-timeout ERR notice
                        Err(_) => {}
                    }
                    std::thread::sleep(Duration::from_millis(60));
                }
                reaped
            })
        })
        .collect();

    // Meanwhile a compliant client keeps getting served.
    let mut client = Client::connect(addr);
    for id in 0..10u64 {
        assert_prices(&mut client, id);
        std::thread::sleep(Duration::from_millis(30));
    }
    for t in trickles {
        assert!(t.join().expect("trickle thread"), "slowloris connection outlived the reaper");
    }
    assert_eq!(client.roundtrip("PING"), Response::Pong);

    client.send("DRAIN");
    assert!(wait_exit(&mut child).success());
}

#[test]
fn tenant_binding_quotas_throttle_the_abuser_not_the_default_tenant() {
    let (mut child, addr) = spawn_server(&[]);

    // Bind the deliberately tiny tenant: 2 tokens/s, burst 1.
    let mut tiny = Client::connect(addr);
    match tiny.roundtrip("TENANT tiny") {
        Response::TenantAck { name } => assert_eq!(name, "tiny"),
        other => panic!("expected tenant ack, got {other:?}"),
    }
    // Bad names are a typed ERR, not a broken connection.
    match tiny.roundtrip("TENANT bad!name") {
        Response::Error { id: None, reason } => {
            assert!(reason.contains("tenant"), "reason: {reason}")
        }
        other => panic!("expected tenant name error, got {other:?}"),
    }

    // First quote spends the single burst token; an immediate second is
    // throttled with a positive Retry-After naming the tenant.
    assert_prices(&mut tiny, 1);
    let mut throttled = false;
    for id in 2..6u64 {
        match tiny.roundtrip(&format!("QUOTE {id} {} Q {}", f64_to_wire(5.0), f64_to_wire(0.4))) {
            Response::Throttle { id: got, retry_after_ms, tenant } => {
                assert_eq!(got, id);
                assert!(retry_after_ms > 0, "retry hint must not invite a busy loop");
                assert_eq!(tenant, "tiny");
                throttled = true;
                break;
            }
            Response::Quote(_) => {}
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(throttled, "a 1-token burst must throttle an immediate follow-up");

    // An unbound (default-tenant) connection never sees the throttle.
    let mut clean = Client::connect(addr);
    for id in 0..8u64 {
        assert_prices(&mut clean, 100 + id);
    }
    // STATS carries the tenant-layer counters.
    match clean.roundtrip("STATS") {
        Response::Stats(s) => {
            assert!(s.throttled > 0, "stats must count the throttle: {s:?}");
            assert!(s.tenants >= 2, "default + tiny must be registered: {s:?}");
        }
        other => panic!("expected stats, got {other:?}"),
    }

    clean.send("DRAIN");
    assert!(wait_exit(&mut child).success());
}

fn wait_exit(child: &mut Child) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("server did not exit after DRAIN");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
