//! In-process end-to-end tests of the serving stack over real TCP:
//! bit-identical pricing, epoch swaps, idempotent duplicates, shard
//! death (retry/hedge + CPU fallback), and graceful drain semantics.

use cds_cpu::engine::CpuCdsEngine;
use cds_quant::option::{CdsOption, MarketData, PaymentFrequency};
use cds_server::proto::{f64_to_wire, parse_response, QuoteReply, Response, StatsReply};
use cds_server::server::{serve, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let writer = stream.try_clone().expect("clone");
        Client { reader: BufReader::new(stream), writer }
    }

    fn roundtrip(&mut self, line: &str) -> Response {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("recv");
        parse_response(reply.trim()).unwrap_or_else(|e| panic!("bad reply `{reply}`: {e}"))
    }

    fn quote(&mut self, id: u64, maturity: f64, recovery: f64) -> Response {
        self.roundtrip(&format!("QUOTE {id} {} Q {}", f64_to_wire(maturity), f64_to_wire(recovery)))
    }

    fn stats(&mut self) -> StatsReply {
        match self.roundtrip("STATS") {
            Response::Stats(s) => s,
            other => panic!("expected stats, got {other:?}"),
        }
    }
}

fn expect_quote(resp: Response) -> QuoteReply {
    match resp {
        Response::Quote(q) => q,
        other => panic!("expected a priced quote, got {other:?}"),
    }
}

fn reference_spread(seed: u64, maturity: f64, recovery: f64) -> f64 {
    let engine = CpuCdsEngine::new(&MarketData::paper_workload(seed));
    engine.price(&CdsOption::new(maturity, PaymentFrequency::Quarterly, recovery)).spread_bps
}

#[test]
fn point_ticks_publish_incremental_epochs_over_the_wire() {
    let handle = serve(ServerConfig { shards: 1, seed: 7, ..Default::default() }).expect("serve");
    let mut client = Client::connect(handle.addr());

    let q0 = expect_quote(client.quote(1, 5.0, 0.4));
    assert_eq!(q0.epoch, 0);

    // Tick one hazard knot; the server must price later quotes against
    // the mutated curve, bit-identically to a local engine over the
    // same mutation.
    let mut market = MarketData::paper_workload(7);
    let knot = 12usize;
    let new_value = market.hazard.points()[knot].value * 1.5;
    match client.roundtrip(&format!("TICKPT hazard {knot} {}", f64_to_wire(new_value))) {
        Response::TickPointAck { epoch: 1, zero_delta: false } => {}
        other => panic!("expected point-tick ack, got {other:?}"),
    }
    let mut points = market.hazard.points().to_vec();
    points[knot].value = new_value;
    market.hazard = cds_quant::curve::Curve::new(points).expect("curve");
    let local = CpuCdsEngine::new(&market);
    let q1 = expect_quote(client.quote(2, 5.0, 0.4));
    assert_eq!(q1.epoch, 1);
    assert_eq!(
        q1.spread_bps.to_bits(),
        local.price(&CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.4)).spread_bps.to_bits()
    );
    assert_ne!(q0.spread_bps.to_bits(), q1.spread_bps.to_bits());

    // A zero-delta re-publish advances the epoch but changes no quote.
    match client.roundtrip(&format!("TICKPT hazard {knot} {}", f64_to_wire(new_value))) {
        Response::TickPointAck { epoch: 2, zero_delta: true } => {}
        other => panic!("expected zero-delta ack, got {other:?}"),
    }
    let q2 = expect_quote(client.quote(3, 5.0, 0.4));
    assert_eq!(q2.epoch, 2);
    assert_eq!(q2.spread_bps.to_bits(), q1.spread_bps.to_bits());

    // Out-of-range knots are a typed error, not a publish.
    match client.roundtrip("TICKPT interest 99999 0.02") {
        Response::Error { id: None, reason } => {
            assert!(reason.contains("out of bounds"), "reason: {reason}");
        }
        other => panic!("expected typed error, got {other:?}"),
    }
    let stats = client.stats();
    assert_eq!(stats.epoch, 2);

    assert_eq!(client.roundtrip("DRAIN"), Response::DrainAck);
    handle.wait();
}

#[test]
fn quotes_price_bit_identically_across_epochs_and_duplicates() {
    let handle = serve(ServerConfig { shards: 2, seed: 42, ..Default::default() }).expect("serve");
    let mut client = Client::connect(handle.addr());

    assert_eq!(client.roundtrip("PING"), Response::Pong);

    // Epoch 0 pricing is bit-identical to a direct CPU engine.
    let q = expect_quote(client.quote(1, 5.0, 0.4));
    assert_eq!(q.epoch, 0);
    assert!(!q.cached);
    assert_eq!(q.spread_bps.to_bits(), reference_spread(42, 5.0, 0.4).to_bits());

    // A tick publishes a new epoch; new quotes price under it.
    assert_eq!(client.roundtrip("TICK 99"), Response::TickAck { epoch: 1 });
    let q2 = expect_quote(client.quote(2, 5.0, 0.4));
    assert_eq!(q2.epoch, 1);
    assert_eq!(q2.spread_bps.to_bits(), reference_spread(99, 5.0, 0.4).to_bits());
    assert_ne!(q.spread_bps.to_bits(), q2.spread_bps.to_bits());

    // Re-sending an answered id is idempotent: served from the ledger,
    // canonical bits, nothing re-priced or re-counted.
    let dup = expect_quote(client.quote(1, 5.0, 0.4));
    assert!(dup.cached);
    assert_eq!(dup.attempts, 0);
    assert_eq!(dup.spread_bps.to_bits(), q.spread_bps.to_bits());

    // Invalid parameters get a typed ERR tied to the id.
    match client.quote(7, -1.0, 0.4) {
        Response::Error { id: Some(7), reason } => {
            assert!(reason.contains("invalid quote"), "reason: {reason}");
        }
        other => panic!("expected typed error, got {other:?}"),
    }

    let stats = client.stats();
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.dedup_hits, 1);
    assert_eq!(stats.epoch, 1);

    // Drain: quotes are rejected with a Retry-After hint, then the
    // server exits cleanly with nothing pending.
    assert_eq!(client.roundtrip("DRAIN"), Response::DrainAck);
    match client.quote(8, 5.0, 0.4) {
        Response::Reject { id: 8, retry_after_ms, .. } => assert!(retry_after_ms > 0),
        other => panic!("expected draining reject, got {other:?}"),
    }
    let summary = handle.wait();
    assert_eq!(summary.accepted, 2);
    assert_eq!(summary.completed, 2);
    assert_eq!(summary.pending, 0);
}

#[test]
fn dead_shards_are_survived_by_retries_and_cpu_fallback() {
    let handle = serve(ServerConfig { shards: 2, seed: 7, ..Default::default() }).expect("serve");
    let mut client = Client::connect(handle.addr());

    // Kill shard 0. The first quote homed there (even id) bounces to
    // the hedger and is retried on shard 1 — same bits, extra attempt.
    match client.roundtrip("FAULT KILL 0") {
        Response::FaultAck { shard: 0, state } => {
            assert_eq!(state, cds_server::proto::ShardState::Dead);
        }
        other => panic!("expected fault ack, got {other:?}"),
    }
    let q = expect_quote(client.quote(4, 3.0, 0.25));
    assert_eq!(q.spread_bps.to_bits(), reference_spread(7, 3.0, 0.25).to_bits());
    assert!(q.attempts >= 2 || q.shard.is_none(), "dead home must not price: {q:?}");
    assert_ne!(q.shard, Some(0));

    // Kill the other shard too: the ladder reaches CPU fallback and
    // every quote still prices, bit-identically, with no shard at all.
    match client.roundtrip("FAULT KILL 1") {
        Response::FaultAck { shard: 1, state } => {
            assert_eq!(state, cds_server::proto::ShardState::Dead);
        }
        other => panic!("expected fault ack, got {other:?}"),
    }
    for id in 10..16u64 {
        let q = expect_quote(client.quote(id, 5.0, 0.4));
        assert_eq!(q.spread_bps.to_bits(), reference_spread(7, 5.0, 0.4).to_bits());
    }
    let stats = client.stats();
    assert_eq!(stats.dead_shards, 2);
    assert!(stats.rung >= 1, "ladder must have degraded: {stats:?}");
    assert_eq!(stats.completed, stats.accepted);

    // Revive both shards: service continues (possibly still on the
    // fallback rung until the hysteresis streak clears it). A
    // back-to-back burst can legitimately trip the virtual-queue
    // admission bound, so act like a compliant client: honor the
    // Retry-After hint and re-send.
    client.roundtrip("FAULT REVIVE 0");
    client.roundtrip("FAULT REVIVE 1");
    for id in 20..60u64 {
        let q = loop {
            match client.quote(id, 5.0, 0.4) {
                Response::Quote(q) => break q,
                Response::Shed { retry_after_ms, .. } => {
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
                }
                other => panic!("expected a priced quote, got {other:?}"),
            }
        };
        assert_eq!(q.spread_bps.to_bits(), reference_spread(7, 5.0, 0.4).to_bits());
    }
    let stats = client.stats();
    assert_eq!(stats.dead_shards, 0);
    assert_eq!(stats.rung, 0, "calm traffic must walk the ladder home: {stats:?}");

    client.roundtrip("DRAIN");
    let summary = handle.wait();
    assert_eq!(summary.pending, 0);
    assert_eq!(summary.completed, summary.accepted);
}

#[test]
fn low_priority_quotes_shed_under_queue_pressure() {
    // Tiny capacity plus a stalled shard forces queue pressure above
    // the shed watermark quickly.
    let handle = serve(ServerConfig {
        shards: 1,
        seed: 42,
        capacity: 4,
        ladder: cds_server::ladder::LadderConfig {
            shed_watermark: 0.25,
            reject_watermark: 0.95,
            recovery_observations: 64,
        },
        ..Default::default()
    })
    .expect("serve");
    let mut client = Client::connect(handle.addr());
    client.roundtrip("FAULT STALL 0 40");

    // Pipeline a burst of low-priority quotes without reading replies:
    // the stalled shard backs the queue up, the ladder crosses the shed
    // watermark, and later LO quotes are shed with Retry-After.
    let mut sent = 0u64;
    for id in 0..24u64 {
        writeln!(client.writer, "QUOTE {id} {} Q {} LO", f64_to_wire(5.0), f64_to_wire(0.4))
            .expect("send");
        sent += 1;
    }
    client.writer.flush().expect("flush");
    let mut shed = 0u64;
    let mut priced = 0u64;
    for _ in 0..sent {
        let mut reply = String::new();
        client.reader.read_line(&mut reply).expect("recv");
        match parse_response(reply.trim()).expect("parse") {
            Response::Shed { retry_after_ms, .. } => {
                assert!(retry_after_ms > 0);
                shed += 1;
            }
            Response::Quote(_) => priced += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(shed > 0, "pressure must shed low-priority quotes");
    assert!(priced > 0, "early quotes must still have priced");
    let stats = client.stats();
    assert!(stats.inflight <= 4, "in-flight bound must hold: {stats:?}");
    client.roundtrip("DRAIN");
    let summary = handle.wait();
    assert_eq!(summary.accepted, priced);
}

#[test]
fn server_rejects_invalid_configs_typed() {
    for (config, needle) in [
        (ServerConfig { shards: 0, ..Default::default() }, "shard"),
        (ServerConfig { capacity: 0, ..Default::default() }, "capacity"),
        (ServerConfig { cadence: 0, ..Default::default() }, "cadence"),
        (ServerConfig { target_utilisation: 1.0, ..Default::default() }, "utilisation"),
    ] {
        match serve(config) {
            Err(e) => {
                let msg = e.to_string();
                assert!(msg.contains(needle), "`{msg}` should mention {needle}");
            }
            Ok(_) => panic!("invalid config must not serve"),
        }
    }
}

#[test]
fn drain_deadline_checkpoints_stuck_quotes_as_pending() {
    let dir = std::env::temp_dir();
    let journal = dir.join(format!("cds-server-e2e-pending-{}.wal", std::process::id()));
    let handle = serve(ServerConfig {
        shards: 1,
        seed: 42,
        journal: Some(journal.clone()),
        cadence: 2,
        drain_deadline: Duration::from_millis(120),
        ..Default::default()
    })
    .expect("serve");
    let mut client = Client::connect(handle.addr());
    // 400ms per quote on the only shard: a burst cannot finish inside
    // the 120ms drain budget.
    client.roundtrip("FAULT STALL 0 400");
    for id in 0..4u64 {
        writeln!(client.writer, "QUOTE {id} {} Q {}", f64_to_wire(5.0), f64_to_wire(0.4))
            .expect("send");
    }
    client.writer.flush().expect("flush");
    // Wait until the burst is accepted (and journalled) before starting
    // the drain; the 400ms stall keeps it from completing.
    let t0 = std::time::Instant::now();
    while handle.stats().accepted < 4 {
        assert!(t0.elapsed() < Duration::from_secs(5), "burst was never accepted");
        std::thread::sleep(Duration::from_millis(2));
    }
    handle.drain();
    let summary = handle.wait();
    assert_eq!(summary.accepted, 4);
    assert!(summary.pending > 0, "stall must leave pending work: {summary:?}");

    // The journal finishes the work deterministically.
    let report = cds_server::server::resume_journal(&journal).expect("resume");
    assert!(report.drained);
    assert_eq!(report.spreads.len(), 4);
    // Quotes mid-service at shutdown may still have completed after the
    // final checkpoint; everything else repriced on resume.
    assert!(report.repriced > 0 && report.repriced <= summary.pending as usize);
    let want = reference_spread(42, 5.0, 0.4).to_bits();
    for (seq, _id, spread, _repriced) in &report.spreads {
        assert_eq!(spread.to_bits(), want, "seq {seq} diverged");
    }
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(cds_server::wal::sidecar_path(&journal));
}
