//! Deterministic-interleaving tests for the server's two lock-light
//! publish protocols.
//!
//! Neither test relies on the scheduler getting "lucky": instead of
//! hoping a stress run hits the bad window, they **enumerate every
//! interleaving** of the racing operations at linearization
//! granularity (every merge order of the publisher's and the readers'
//! call sequences; every permutation of the racing recorders) and
//! assert the protocol invariants after *each* step. A threaded run
//! with a seeded stagger rides along for each protocol so the real
//! atomics are exercised too.
//!
//! Invariants held:
//! * [`CurveBook`] epoch-swap publish — a reader's cached snapshot
//!   never goes backwards, is never torn (its curves always belong to
//!   its epoch), and `refresh` reports a replacement exactly when the
//!   published epoch moved.
//! * [`QuoteLedger`] single-election — for any arrival order of racing
//!   recorders, exactly one attempt per `(tenant, id)` wins, the
//!   canonical spread is the first arrival's (bit-exact), and every
//!   later attempt is told the canonical value, never its own.

use cds_server::hedge::{QuoteLedger, RecordOutcome};
use cds_server::snapshot::CurveBook;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

/// All ways to choose which of `total` steps belong to the publisher
/// (the rest are reader steps), i.e. every merge order of the two
/// operation sequences.
fn interleavings(total: u32, publisher_steps: u32) -> Vec<Vec<bool>> {
    let mut out = Vec::new();
    for mask in 0u32..(1 << total) {
        if mask.count_ones() != publisher_steps {
            continue;
        }
        out.push((0..total).map(|i| mask & (1 << i) != 0).collect());
    }
    out
}

/// Seed scheme: epoch `e` is always published from seed `e + 1000`, so
/// a torn snapshot (curves from one epoch, number from another) is
/// detectable from the snapshot alone.
const SEED_BASE: u64 = 1000;

#[test]
fn every_publish_read_interleaving_keeps_snapshots_consistent() {
    const PUBLISHES: u32 = 3;
    const READS: u32 = 3;
    let schedules = interleavings(PUBLISHES + READS, PUBLISHES);
    assert_eq!(schedules.len(), 20, "C(6,3) merge orders");
    for schedule in schedules {
        let book = CurveBook::new(SEED_BASE);
        let mut cached = book.current();
        let mut published = 0u64;
        for &is_publish in &schedule {
            if is_publish {
                published += 1;
                assert_eq!(book.publish(published + SEED_BASE), published);
            } else {
                let before = cached.epoch;
                let replaced = book.refresh(&mut cached);
                // refresh reports a replacement exactly when the epoch
                // moved past the cache.
                assert_eq!(replaced, before != published, "schedule {schedule:?}");
                // Reads are monotone and never observe a torn snapshot.
                assert!(cached.epoch >= before, "schedule {schedule:?}");
                assert_eq!(cached.epoch, published, "schedule {schedule:?}");
                assert_eq!(cached.seed, cached.epoch + SEED_BASE, "schedule {schedule:?}");
            }
        }
        // However the schedule ended, one final refresh converges.
        book.refresh(&mut cached);
        assert_eq!(cached.epoch, published);
        assert_eq!(book.epoch(), published);
    }
}

#[test]
fn staggered_threaded_readers_never_see_a_torn_or_backwards_snapshot() {
    const READERS: usize = 4;
    const TICKS: u64 = 32;
    let book = Arc::new(CurveBook::new(SEED_BASE));
    let gate = Arc::new(Barrier::new(READERS + 1));
    let stop = Arc::new(AtomicU64::new(0));
    let mut joins = Vec::new();
    for reader in 0..READERS {
        let book = book.clone();
        let gate = gate.clone();
        let stop = stop.clone();
        joins.push(thread::spawn(move || {
            let mut cached = book.current();
            let mut last = cached.epoch;
            gate.wait();
            while stop.load(Ordering::Relaxed) == 0 {
                book.refresh(&mut cached);
                assert!(cached.epoch >= last, "reader {reader} went backwards");
                assert_eq!(cached.seed, cached.epoch + SEED_BASE, "reader {reader} torn");
                last = cached.epoch;
                // Deterministic per-reader stagger so the readers hit
                // the publish window at different phases.
                for _ in 0..(reader * 7) {
                    std::hint::spin_loop();
                }
            }
        }));
    }
    gate.wait();
    for tick in 1..=TICKS {
        assert_eq!(book.publish(tick + SEED_BASE), tick);
    }
    stop.store(1, Ordering::Relaxed);
    for j in joins {
        j.join().expect("reader thread");
    }
    assert_eq!(book.epoch(), TICKS);
}

/// Heap's algorithm: every permutation of `items`.
fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    fn heap<T: Clone>(k: usize, arr: &mut Vec<T>, out: &mut Vec<Vec<T>>) {
        if k <= 1 {
            out.push(arr.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, arr, out);
            if k.is_multiple_of(2) {
                arr.swap(i, k - 1);
            } else {
                arr.swap(0, k - 1);
            }
        }
    }
    let mut arr = items.to_vec();
    let mut out = Vec::new();
    heap(arr.len(), &mut arr, &mut out);
    out
}

#[test]
fn every_recorder_arrival_order_elects_exactly_one_canonical_spread() {
    // Two contended keys (one shared across "hedge" attempts, one
    // cross-tenant with a colliding id) plus an uncontended one.
    let attempts: Vec<(u64, u64, f64)> =
        vec![(0, 7, 101.25), (0, 7, 99.5), (0, 7, 103.0), (1, 7, 55.0), (0, 8, 42.0)];
    let perms = permutations(&attempts);
    assert_eq!(perms.len(), 120);
    for order in perms {
        let ledger = QuoteLedger::new();
        let mut first: std::collections::HashMap<(u64, u64), f64> =
            std::collections::HashMap::new();
        let mut wins = 0usize;
        for &(tenant, id, spread) in &order {
            let canonical = *first.entry((tenant, id)).or_insert(spread);
            match ledger.record(tenant, id, spread) {
                RecordOutcome::First => {
                    wins += 1;
                    assert_eq!(spread.to_bits(), canonical.to_bits(), "order {order:?}");
                }
                RecordOutcome::Duplicate { spread: echoed } => {
                    // A loser is told the canonical spread, never its own.
                    assert_eq!(echoed.to_bits(), canonical.to_bits(), "order {order:?}");
                }
            }
        }
        assert_eq!(wins, first.len(), "one win per key in {order:?}");
        assert_eq!(ledger.duplicates_suppressed() as usize, order.len() - first.len());
        for (&(tenant, id), &canonical) in &first {
            let got = ledger.get(tenant, id).expect("recorded key");
            assert_eq!(got.to_bits(), canonical.to_bits(), "order {order:?}");
        }
    }
}

#[test]
fn threaded_racing_recorders_all_agree_on_one_winner() {
    const RACERS: usize = 8;
    let ledger = Arc::new(QuoteLedger::new());
    let gate = Arc::new(Barrier::new(RACERS));
    let mut joins = Vec::new();
    for racer in 0..RACERS {
        let ledger = ledger.clone();
        let gate = gate.clone();
        joins.push(thread::spawn(move || {
            let mine = 100.0 + racer as f64;
            gate.wait();
            match ledger.record(0, 7, mine) {
                RecordOutcome::First => (true, mine),
                RecordOutcome::Duplicate { spread } => (false, spread),
            }
        }));
    }
    let outcomes: Vec<(bool, f64)> = joins.into_iter().map(|j| j.join().expect("racer")).collect();
    let winners: Vec<f64> = outcomes.iter().filter(|(won, _)| *won).map(|&(_, s)| s).collect();
    assert_eq!(winners.len(), 1, "exactly one election winner");
    let canonical = winners[0];
    // Every racer — winner or loser — walked away with the same spread,
    // and it is one actually submitted.
    for &(_, seen) in &outcomes {
        assert_eq!(seen.to_bits(), canonical.to_bits());
    }
    assert!((0..RACERS).any(|r| canonical.to_bits() == (100.0 + r as f64).to_bits()));
    assert_eq!(ledger.duplicates_suppressed() as usize, RACERS - 1);
    assert_eq!(ledger.get(0, 7).expect("recorded").to_bits(), canonical.to_bits());
}
