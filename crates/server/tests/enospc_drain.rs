//! Drain under storage exhaustion, end to end against the real binary:
//! the journal's fault layer starts rejecting appends (`--wal-fault
//! enospc@N`) mid-burst, SIGTERM lands, and the process must still exit
//! with the documented drain code (0) while the on-disk journal either
//! resumes bit-identically for its durable prefix or refuses with a
//! typed error — never a panic, never silently wrong spreads.

#![cfg(unix)]

use cds_cpu::engine::CpuCdsEngine;
use cds_quant::option::MarketData;
use cds_server::proto::{f64_to_wire, parse_response, Response};
use cds_server::server::resume_journal;
use cds_server::wal::{read_wal, sidecar_path};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const SEED: u64 = 42;

#[test]
fn sigterm_with_enospc_journal_exits_0_and_leaves_a_resumable_prefix() {
    let dir = std::env::temp_dir();
    let journal = dir.join(format!("cds-server-enospc-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(sidecar_path(&journal));

    // Append index 0 is the journal header; the shards are stalled so
    // the burst's accept appends land first — enospc@6 fails the sixth
    // quote's acceptance and fail-stops the writer.
    let mut child = Command::new(env!("CARGO_BIN_EXE_cds-server"))
        .args([
            "--shards",
            "2",
            "--seed",
            &SEED.to_string(),
            "--cadence",
            "4",
            "--drain-deadline-ms",
            "300",
            "--wal-fault",
            "enospc@6",
            "--journal",
        ])
        .arg(&journal)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cds-server");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut ready = BufReader::new(stdout);
    let mut line = String::new();
    ready.read_line(&mut line).expect("readiness line");
    let addr: std::net::SocketAddr = line
        .trim()
        .rsplit(' ')
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable readiness line `{line}`"));

    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    writeln!(writer, "FAULT STALL 0 150").expect("send");
    writeln!(writer, "FAULT STALL 1 150").expect("send");
    let total = 12u64;
    for id in 0..total {
        let maturity = 1.0 + (id % 7) as f64 * 0.75;
        let recovery = 0.1 + (id % 4) as f64 * 0.1;
        writeln!(writer, "QUOTE {id} {} Q {}", f64_to_wire(maturity), f64_to_wire(recovery))
            .expect("send");
    }
    writer.flush().expect("flush");

    std::thread::sleep(Duration::from_millis(250));
    let term =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("kill -TERM");
    assert!(term.success(), "kill must be delivered");

    // The storage failure must surface to the client as typed journal
    // errors (or sheds once the ladder reacts) — never fake QUOTE acks
    // for work that was not durably accepted.
    let mut journal_errors = 0usize;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => match parse_response(line.trim()) {
                Ok(Response::Error { reason, .. }) if reason.contains("journal") => {
                    journal_errors += 1;
                }
                Ok(_) => {}
                Err(e) => panic!("bad reply `{line}`: {e}"),
            },
        }
    }
    assert!(journal_errors > 0, "the failed acceptance must be reported to the client");

    // Documented contract: SIGTERM drains and exits 0 even with the
    // journal degraded — the durable prefix is the recovery artifact.
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "server did not exit after SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(0), "drain under ENOSPC must still exit 0");

    // The degradation is announced on stderr, attributably.
    let mut stderr = String::new();
    child.stderr.take().expect("stderr piped").read_to_string(&mut stderr).expect("read stderr");
    assert!(stderr.contains("journal degraded"), "stderr must announce the degradation: {stderr}");

    // The on-disk prefix must resume — every journalled quote repriced
    // bit-identically against the deterministic reference — or refuse
    // with a typed error. (With a fail-stop writer the tail is torn at
    // worst, so resume succeeds on the durable prefix.)
    let state = read_wal(&journal).expect("fail-stop journal prefix must stay readable");
    assert!(!state.drained, "the degraded drain cannot have written a commit record");
    assert!(!state.accepted.is_empty(), "quotes accepted before the fault must be durable");
    assert!(
        (state.accepted.len() as u64) < total,
        "the fault must have cut the burst short, not vanished"
    );
    let report = resume_journal(&journal).expect("durable prefix resumes");
    assert_eq!(report.spreads.len(), state.accepted.len());
    let reference = CpuCdsEngine::new(&MarketData::paper_workload(SEED));
    for (rec, (seq, id, spread, _repriced)) in state.accepted.iter().zip(&report.spreads) {
        assert_eq!(rec.seq, *seq);
        assert_eq!(rec.id, *id);
        let want = reference.price(&rec.option().expect("journalled quote validates"));
        assert_eq!(
            spread.to_bits(),
            want.spread_bps.to_bits(),
            "resumed spread for seq {seq} diverged after the ENOSPC drain"
        );
    }

    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(sidecar_path(&journal));
}
