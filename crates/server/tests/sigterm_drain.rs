//! The headline robustness guarantee, end to end against the real
//! binary: `kill -TERM` mid-burst makes the server drain gracefully
//! (exit 0), and every accepted quote either completed before the drain
//! or is checkpoint-resumable from the write-ahead journal with spreads
//! **bit-identical** to an uninterrupted run.

#![cfg(unix)]

use cds_cpu::engine::CpuCdsEngine;
use cds_quant::option::MarketData;
use cds_server::proto::{f64_to_wire, parse_response, Response};
use cds_server::server::resume_journal;
use cds_server::wal::{read_wal, sidecar_path};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SEED: u64 = 42;

fn spawn_server(journal: &std::path::Path) -> (Child, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cds-server"))
        .args([
            "--shards",
            "2",
            "--seed",
            &SEED.to_string(),
            "--cadence",
            "4",
            "--drain-deadline-ms",
            "300",
            "--journal",
        ])
        .arg(journal)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn cds-server");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("readiness line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable readiness line `{line}`"));
    (child, addr)
}

fn wait_exit(child: &mut Child, budget: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + budget;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("server did not exit within {budget:?} after SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigterm_mid_burst_drains_and_resumes_bit_identically() {
    let dir = std::env::temp_dir();
    let journal = dir.join(format!("cds-server-sigterm-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(sidecar_path(&journal));

    let (mut child, addr) = spawn_server(&journal);
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Stall both shards so the burst is still in flight when the signal
    // lands, then pipeline a burst of mixed-maturity quotes.
    writeln!(writer, "FAULT STALL 0 150").expect("send");
    writeln!(writer, "FAULT STALL 1 150").expect("send");
    let total = 16u64;
    for id in 0..total {
        let maturity = 1.0 + (id % 7) as f64 * 0.75;
        let recovery = 0.1 + (id % 4) as f64 * 0.1;
        writeln!(writer, "QUOTE {id} {} Q {}", f64_to_wire(maturity), f64_to_wire(recovery))
            .expect("send");
    }
    writer.flush().expect("flush");

    // Let some quotes complete, then SIGTERM mid-burst.
    std::thread::sleep(Duration::from_millis(250));
    let term =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("kill -TERM");
    assert!(term.success(), "kill must be delivered");

    // Collect whatever the client was answered before the socket closed.
    let mut answered: Vec<(u64, u64)> = Vec::new(); // (id, spread bits)
    let mut faults_acked = 0;
    let mut shed = 0;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => match parse_response(line.trim()) {
                Ok(Response::Quote(q)) => answered.push((q.id, q.spread_bps.to_bits())),
                Ok(Response::FaultAck { .. }) => faults_acked += 1,
                // The instantaneous burst can overrun the per-shard
                // admission bound; shed quotes never enter the journal.
                Ok(Response::Shed { .. }) => shed += 1,
                Ok(other) => panic!("unexpected reply {other:?}"),
                Err(e) => panic!("bad reply `{line}`: {e}"),
            },
            Err(_) => break,
        }
    }
    assert_eq!(faults_acked, 2);
    assert!(shed < total as usize, "the whole burst must not be shed");

    // Graceful drain: exit code 0, no crash.
    let status = wait_exit(&mut child, Duration::from_secs(10));
    assert!(status.success(), "SIGTERM must drain cleanly, got {status:?}");

    // The journal accounts for every accepted quote and carries the
    // terminal drain record.
    let state = read_wal(&journal).expect("journal must be readable");
    assert!(state.drained, "drain must leave a terminal commit record");
    assert!(!state.accepted.is_empty(), "the burst must have been accepted");
    let checkpoint = state.checkpoint.as_ref().expect("checkpoint sidecar");
    assert_eq!(checkpoint.total_options as usize, state.accepted.len());
    for (id, bits) in &answered {
        let rec = state
            .accepted
            .iter()
            .find(|r| r.id == *id)
            .unwrap_or_else(|| panic!("answered id {id} missing from journal"));
        let durable = state
            .done
            .get(&rec.seq)
            .unwrap_or_else(|| panic!("answered id {id} has no durable completion"));
        assert_eq!(durable.to_bits(), *bits, "journalled spread diverged for id {id}");
    }

    // Resume finishes the pending quotes; the merged result is
    // bit-identical to an uninterrupted run (the deterministic CPU
    // reference at the same epoch seed).
    let report = resume_journal(&journal).expect("resume");
    assert!(report.drained);
    assert_eq!(report.spreads.len(), state.accepted.len());
    let reference = CpuCdsEngine::new(&MarketData::paper_workload(SEED));
    for (rec, (seq, id, spread, _repriced)) in state.accepted.iter().zip(&report.spreads) {
        assert_eq!(rec.seq, *seq);
        assert_eq!(rec.id, *id);
        let want = reference.price(&rec.option().expect("journalled quote validates"));
        assert_eq!(
            spread.to_bits(),
            want.spread_bps.to_bits(),
            "resumed spread for seq {seq} is not bit-identical to the uninterrupted run"
        );
    }
    // The signal genuinely interrupted work: something was repriced on
    // resume OR everything completed pre-deadline — either way, every
    // accepted quote is accounted for. With two 150ms-stalled shards
    // and a 300ms drain budget, a 16-quote burst cannot have finished.
    assert!(report.repriced > 0, "expected pending work at the drain deadline");

    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(sidecar_path(&journal));
}

#[test]
fn sigterm_under_abuse_load_still_drains_and_resumes_bit_identically() {
    // The bulkhead version of the headline guarantee: a hostile tenant
    // is flooding at many times its quota when the SIGTERM lands. The
    // drain must still exit 0, and the journal must resume every
    // accepted quote bit-identically — abuse never reaches durability.
    let dir = std::env::temp_dir();
    let journal = dir.join(format!("cds-server-abuse-drain-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(sidecar_path(&journal));

    let mut child = Command::new(env!("CARGO_BIN_EXE_cds-server"))
        .args([
            "--shards",
            "2",
            "--seed",
            &SEED.to_string(),
            "--cadence",
            "4",
            "--drain-deadline-ms",
            "300",
            "--tenant",
            "abuser=50:8:16:1",
            "--journal",
        ])
        .arg(&journal)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn cds-server");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut ready = BufReader::new(stdout);
    let mut line = String::new();
    ready.read_line(&mut line).expect("readiness line");
    let addr: std::net::SocketAddr = line
        .trim()
        .rsplit(' ')
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable readiness line `{line}`"));

    // The abuser: bind the throttled tenant and flood it, draining
    // replies so the server's write path never blocks on us.
    let abuse_stream = TcpStream::connect(addr).expect("connect abuser");
    abuse_stream.set_nodelay(true).expect("nodelay");
    let mut abuse_writer = abuse_stream.try_clone().expect("clone");
    let abuse_reader = BufReader::new(abuse_stream);
    let drainer = std::thread::spawn(move || {
        let mut reader = abuse_reader;
        let mut sink = String::new();
        while {
            sink.clear();
            matches!(reader.read_line(&mut sink), Ok(n) if n > 0)
        } {}
    });
    let flooder = std::thread::spawn(move || {
        let _ = writeln!(abuse_writer, "TENANT abuser");
        for id in 0..3000u64 {
            if writeln!(abuse_writer, "QUOTE {id} {} Q {}", f64_to_wire(3.0), f64_to_wire(0.2))
                .is_err()
            {
                break; // drain closed the socket mid-flood: expected
            }
            let _ = abuse_writer.flush();
        }
    });

    // The victim: stalled shards keep its burst in flight at SIGTERM.
    let victim_stream = TcpStream::connect(addr).expect("connect victim");
    victim_stream.set_nodelay(true).expect("nodelay");
    let mut victim_writer = victim_stream.try_clone().expect("clone");
    let victim_reader = BufReader::new(victim_stream);
    writeln!(victim_writer, "FAULT STALL 0 150").expect("send");
    writeln!(victim_writer, "FAULT STALL 1 150").expect("send");
    for id in 0..12u64 {
        let maturity = 1.0 + (id % 7) as f64 * 0.75;
        writeln!(victim_writer, "QUOTE {id} {} Q {}", f64_to_wire(maturity), f64_to_wire(0.3))
            .expect("send");
    }
    victim_writer.flush().expect("flush");

    std::thread::sleep(Duration::from_millis(200));
    let term =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("kill -TERM");
    assert!(term.success(), "kill must be delivered");

    let status = wait_exit(&mut child, Duration::from_secs(10));
    assert!(status.success(), "SIGTERM under abuse must still drain cleanly, got {status:?}");
    drop(victim_reader);
    flooder.join().expect("flooder thread");
    drainer.join().expect("drainer thread");

    // Every accepted quote — victim and whatever trickle of abuser
    // quotes passed the throttle — resumes bit-identically.
    let state = read_wal(&journal).expect("journal must be readable");
    assert!(state.drained, "drain must leave a terminal commit record");
    assert!(!state.accepted.is_empty(), "the victim burst must have been accepted");
    let report = resume_journal(&journal).expect("resume");
    assert!(report.drained);
    assert_eq!(report.spreads.len(), state.accepted.len());
    let reference = CpuCdsEngine::new(&MarketData::paper_workload(SEED));
    for (rec, (seq, _id, spread, _)) in state.accepted.iter().zip(&report.spreads) {
        let want = reference.price(&rec.option().expect("journalled quote validates"));
        assert_eq!(
            spread.to_bits(),
            want.spread_bps.to_bits(),
            "resumed spread for seq {seq} diverged under abuse load"
        );
    }

    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(sidecar_path(&journal));
}

#[test]
fn kill_during_drain_leaves_a_resumable_journal() {
    // A second kill arriving *during* the drain (after SIGTERM already
    // started one) must not corrupt the journal: SIGKILL the process
    // mid-drain, then resume from whatever was durable.
    let dir = std::env::temp_dir();
    let journal = dir.join(format!("cds-server-kill9-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(sidecar_path(&journal));

    let (mut child, addr) = spawn_server(&journal);
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let reader = BufReader::new(stream);
    writeln!(writer, "FAULT STALL 0 200").expect("send");
    writeln!(writer, "FAULT STALL 1 200").expect("send");
    for id in 0..12u64 {
        writeln!(writer, "QUOTE {id} {} Q {}", f64_to_wire(4.0), f64_to_wire(0.3)).expect("send");
    }
    writer.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(150));
    // Start the graceful drain, then kill it dead before it can finish.
    let _ = Command::new("kill").args(["-TERM", &child.id().to_string()]).status();
    std::thread::sleep(Duration::from_millis(50));
    let _ = Command::new("kill").args(["-KILL", &child.id().to_string()]).status();
    let _ = child.wait();
    drop(reader);

    // No terminal record — but every accepted quote is still in the
    // journal and the resume completes the run deterministically.
    let state = read_wal(&journal).expect("journal survives SIGKILL");
    assert!(!state.accepted.is_empty());
    let report = resume_journal(&journal).expect("resume");
    assert_eq!(report.spreads.len(), state.accepted.len());
    let reference = CpuCdsEngine::new(&MarketData::paper_workload(SEED));
    for (rec, (_seq, _id, spread, _)) in state.accepted.iter().zip(&report.spreads) {
        let want = reference.price(&rec.option().expect("validates")).spread_bps;
        assert_eq!(spread.to_bits(), want.to_bits());
    }

    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(sidecar_path(&journal));
}
