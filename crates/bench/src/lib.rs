//! cds-bench: criterion benchmark crate (benches only).
