//! Bootstrap bench: hazard-curve calibration from par quotes — the
//! inverse problem a pricing service solves before any engine run.

use cds_quant::bootstrap::{bootstrap_hazard, CdsQuote};
use cds_quant::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn ladder(n: usize) -> Vec<CdsQuote> {
    (1..=n)
        .map(|i| CdsQuote {
            maturity: i as f64,
            spread_bps: 50.0 + 12.0 * i as f64,
            frequency: PaymentFrequency::Quarterly,
            recovery: 0.40,
        })
        .collect()
}

fn bench_bootstrap(c: &mut Criterion) {
    let rates = Curve::flat(0.02, 128, 30.0);
    let mut group = c.benchmark_group("bootstrap_hazard");
    for n in [1usize, 5, 10] {
        let quotes = ladder(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &quotes, |b, q| {
            b.iter(|| black_box(bootstrap_hazard(black_box(&rates), q).expect("solves")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bootstrap);
criterion_main!(benches);
