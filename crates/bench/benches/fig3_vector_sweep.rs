//! Figure 3 bench: sweep the replication factor of the hazard and
//! interpolation stages, printing the simulated throughput series (the
//! gain saturates at the URAM port bandwidth — the paper's "replicated …
//! six times, which doubled performance").

use cds_engine::prelude::*;
use cds_quant::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const BATCH: usize = 96;

fn bench_vector_sweep(c: &mut Criterion) {
    let market = MarketData::paper_workload(42);
    let options = PortfolioGenerator::uniform(BATCH, 5.5, PaymentFrequency::Quarterly, 0.40);

    eprintln!("\n=== Fig 3 mechanism: replication sweep ({BATCH} options) ===");
    let mut base = None;
    for v in [1usize, 2, 3, 4, 6, 8] {
        let mut config = EngineVariant::Vectorised.config();
        config.vector_factor = v;
        let engine = FpgaCdsEngine::new(market.clone(), config);
        let rate = engine.price_batch(&options).options_per_second;
        let b = *base.get_or_insert(rate);
        eprintln!("  V={v}: {rate:>10.2} opts/s  ({:.2}x over V=1)", rate / b);
    }
    eprintln!("  (paper: V=6 doubled the inter-option engine's throughput)\n");

    let mut group = c.benchmark_group("fig3_vector_sweep");
    group.sample_size(10);
    for v in [1usize, 2, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, &v| {
            let mut config = EngineVariant::Vectorised.config();
            config.vector_factor = v;
            let engine = FpgaCdsEngine::new(market.clone(), config);
            b.iter(|| black_box(engine.price_batch(black_box(&options))).kernel_cycles);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vector_sweep);
criterion_main!(benches);
