//! Simulator-infrastructure bench: cost of the discrete-event scheduler
//! itself (events/second) and of graph construction, so regressions in
//! the substrate are caught independently of the CDS workload.

use cds_engine::prelude::*;
use cds_engine::variants::dataflow::build_graph;
use cds_quant::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use dataflow_sim::prelude::*;
use std::hint::black_box;
use std::rc::Rc;

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_infrastructure");
    group.sample_size(20);

    // A deep chain of unit-cost stages: pure scheduler overhead.
    group.bench_function("event_sim_chain_10x1000", |b| {
        b.iter(|| {
            let mut g = GraphBuilder::new();
            let (tx0, mut rx) = g.stream::<u64>("s0", 4);
            g.add(SourceStage::new("src", (0..1000).collect(), Cost::new(1, 1), tx0));
            for i in 1..10 {
                let (t, r) = g.stream::<u64>(format!("s{i}"), 4);
                g.add(MapStage::new(format!("m{i}"), rx, t, Some(1000), |v| {
                    (v + 1, Cost::new(1, 1))
                }));
                rx = r;
            }
            g.add_counted_sink("sink", rx, 1000);
            black_box(EventSim::new(g).run().expect("no deadlock").events)
        });
    });

    // Building (not running) the full vectorised CDS graph.
    let market = Rc::new(MarketData::paper_workload(42));
    let options = PortfolioGenerator::uniform(16, 5.5, PaymentFrequency::Quarterly, 0.40);
    let config = EngineVariant::Vectorised.config();
    group.bench_function("build_vectorised_graph_16opts", |b| {
        b.iter(|| {
            let (g, _sink) = build_graph(market.clone(), &config, black_box(&options), 0);
            black_box(g.process_count())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
