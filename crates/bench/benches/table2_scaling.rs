//! Table II bench: multi-engine scaling on the simulated U280 with the
//! power models, printing the reproduced rows (options/s, Watts,
//! options/Watt vs paper) and Criterion-measuring the N-engine runs.

use cds_cpu::CpuPerfModel;
use cds_engine::multi::MultiEngine;
use cds_power::{options_per_watt, CpuPowerModel, FpgaPowerModel};
use cds_quant::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const BATCH: usize = 200;

fn bench_table2(c: &mut Criterion) {
    let market = MarketData::paper_workload(42);
    let options = PortfolioGenerator::uniform(BATCH, 5.5, PaymentFrequency::Quarterly, 0.40);
    let fpga_power = FpgaPowerModel::alveo_u280_cds();
    let cpu_power = CpuPowerModel::xeon_8260m();
    let cpu_rate = CpuPerfModel::xeon_8260m().options_per_second(24);

    eprintln!("\n=== Table II reproduction ({BATCH} options) ===");
    eprintln!(
        "{:<18} {:>13} {:>8} {:>11}   (paper rate / W / opts-W)",
        "config", "opts/s", "Watts", "opts/Watt"
    );
    eprintln!(
        "{:<18} {:>13.2} {:>8.2} {:>11.2}   (75823.77 / 175.39 / 432.31)",
        "24-core Xeon",
        cpu_rate,
        cpu_power.watts(24),
        options_per_watt(cpu_rate, cpu_power.watts(24))
    );
    let paper = [
        (1, "27675.67 / 35.86 / 771.77"),
        (2, "53763.86 / 35.79 / 1502.20"),
        (5, "114115.92 / 37.38 / 3052.86"),
    ];
    for (n, paper_row) in paper {
        let multi = MultiEngine::new(market.clone(), n).expect("fits");
        let rate = multi.price_batch(&options).options_per_second;
        let watts = fpga_power.watts(n as u32);
        eprintln!(
            "{:<18} {:>13.2} {:>8.2} {:>11.2}   ({paper_row})",
            format!("{n} FPGA engine(s)"),
            rate,
            watts,
            options_per_watt(rate, watts)
        );
    }
    eprintln!();

    let mut group = c.benchmark_group("table2_scaling");
    group.sample_size(10);
    for n in [1usize, 2, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let multi = MultiEngine::new(market.clone(), n).expect("fits");
            b.iter(|| black_box(multi.price_batch(black_box(&options))).options_per_second);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
