//! Core quant-library microbenchmarks: the reference pricer, the
//! optimised CPU pricer, interpolation kernels and survival-probability
//! evaluation.

use cds_cpu::engine::CpuCdsEngine;
use cds_quant::interp::{binary_search, linear_scan, Interpolator};
use cds_quant::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_pricers(c: &mut Criterion) {
    let market = MarketData::paper_workload(42);
    let option = CdsOption::new(5.5, PaymentFrequency::Quarterly, 0.40);
    let pricer = CdsPricer::new(market.clone());
    let cpu = CpuCdsEngine::new(&market);

    let mut group = c.benchmark_group("pricers");
    group.bench_function("reference_scan_pricer", |b| {
        b.iter(|| black_box(pricer.price(black_box(&option))).spread_bps);
    });
    group.bench_function("cpu_precomputed_pricer", |b| {
        b.iter(|| black_box(cpu.price(black_box(&option))).spread_bps);
    });
    group.bench_function("generic_f32_pricer", |b| {
        let m32 = market.to_f32();
        b.iter(|| {
            black_box(cds_quant::cds::price_cds_generic(black_box(&m32), 5.5f32, 4, 0.40f32))
        });
    });
    group.finish();
}

fn bench_interpolation(c: &mut Criterion) {
    let market = MarketData::paper_workload(42);
    let xs: Vec<f64> = market.interest.points().iter().map(|p| p.tenor).collect();
    let ys: Vec<f64> = market.interest.points().iter().map(|p| p.value).collect();
    let queries: Vec<f64> = (1..=22).map(|i| i as f64 * 0.25).collect();

    let mut group = c.benchmark_group("interpolation_1024");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &q in &queries {
                acc += linear_scan(black_box(&xs), black_box(&ys), q).0;
            }
            black_box(acc)
        });
    });
    group.bench_function("binary_search", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &q in &queries {
                acc += binary_search(black_box(&xs), black_box(&ys), q);
            }
            black_box(acc)
        });
    });
    group.bench_function("monotone_cursor", |b| {
        b.iter(|| {
            let mut it = Interpolator::new(black_box(&xs), black_box(&ys));
            let mut acc = 0.0;
            for &q in &queries {
                acc += it.value_at(q).0;
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_survival(c: &mut Criterion) {
    let market = MarketData::paper_workload(42);
    let mut group = c.benchmark_group("survival_probability");
    for t in [1.0f64, 5.5] {
        group.bench_with_input(BenchmarkId::new("curve_scan_integral", t), &t, |b, &t| {
            b.iter(|| black_box(market.hazard.survival(black_box(t))));
        });
    }
    group.finish();
}

fn bench_montecarlo(c: &mut Criterion) {
    let market = MarketData::paper_workload(42);
    let option = CdsOption::new(5.5, PaymentFrequency::Quarterly, 0.40);
    let mut group = c.benchmark_group("monte_carlo");
    group.sample_size(10);
    for paths in [10_000u64, 50_000] {
        group.bench_with_input(BenchmarkId::new("mc_price", paths), &paths, |b, &paths| {
            b.iter(|| {
                black_box(cds_quant::montecarlo::mc_price_cds(
                    black_box(&market),
                    black_box(&option),
                    paths,
                    7,
                ))
                .spread_bps
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pricers, bench_interpolation, bench_survival, bench_montecarlo);
criterion_main!(benches);
