//! Scalar reference vs lane kernel at the ISSUE's three batch sizes —
//! the criterion artefact that makes the lane kernel's ≥4x
//! single-thread speedup visible in CI's uploaded bench output.
//!
//! Two flavours per size: a one-shot kernel (grids rebuilt per call,
//! what `price_batch` does) and a reused kernel (steady-state
//! zero-allocation path, what a long-running pricing service sees).

use cds_cpu::engine::CpuCdsEngine;
use cds_quant::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// The ISSUE's batch ladder: {64, 4k, 256k}.
const BATCHES: [usize; 3] = [64, 4_096, 262_144];

fn bench_scalar_vs_lanes(c: &mut Criterion) {
    let market = MarketData::paper_workload(42);
    let engine = CpuCdsEngine::new(&market);
    // Mixed 1–10y book: every lane-kernel grid in play, no fused-run
    // advantage from schedule-identical contracts.
    let book = PortfolioGenerator::new(7).portfolio(*BATCHES.last().unwrap());

    let mut group = c.benchmark_group("cpu_lanes_vs_scalar");
    group.sample_size(10);
    for batch in BATCHES {
        let options = &book[..batch];
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("scalar", batch), &options, |b, opts| {
            b.iter(|| black_box(engine.price_batch_scalar(black_box(opts))));
        });
        group.bench_with_input(BenchmarkId::new("lanes", batch), &options, |b, opts| {
            b.iter(|| black_box(engine.price_batch(black_box(opts))));
        });
        group.bench_with_input(BenchmarkId::new("lanes_reused", batch), &options, |b, opts| {
            let mut kernel = engine.lane_kernel();
            let mut out = Vec::new();
            b.iter(|| {
                kernel.price_into(black_box(opts), &mut out);
                black_box(out.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalar_vs_lanes);
criterion_main!(benches);
