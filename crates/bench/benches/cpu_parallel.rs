//! Host CPU scaling bench — the real-machine counterpart of the paper's
//! OpenMP engine: chunked multithreaded pricing at increasing thread
//! counts, showing the same qualitatively sub-linear scaling the paper
//! measured on its 24-core Cascade Lake.

use cds_cpu::engine::CpuCdsEngine;
use cds_cpu::parallel::price_parallel;
use cds_cpu::soa::price_batch_soa;
use cds_quant::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const BATCH: usize = 2048;

fn bench_cpu_scaling(c: &mut Criterion) {
    let market = MarketData::paper_workload(42);
    let engine = CpuCdsEngine::new(&market);
    let options = PortfolioGenerator::uniform(BATCH, 5.5, PaymentFrequency::Quarterly, 0.40);
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut group = c.benchmark_group("cpu_parallel");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BATCH as u64));
    for threads in [1usize, 2, 4, 8, 16].into_iter().filter(|&t| t <= max_threads) {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(price_parallel(black_box(&engine), black_box(&options), t)));
        });
    }
    group.finish();
}

fn bench_soa(c: &mut Criterion) {
    let market = MarketData::paper_workload(42);
    let engine = CpuCdsEngine::new(&market);
    // Schedule-identical batch: the fused lane kernel applies throughout.
    let options: Vec<CdsOption> = (0..BATCH)
        .map(|i| CdsOption::new(5.5, PaymentFrequency::Quarterly, 0.2 + 0.0002 * i as f64))
        .collect();

    let mut group = c.benchmark_group("cpu_soa_vs_scalar");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("scalar", |b| {
        b.iter(|| black_box(engine.price_batch(black_box(&options))));
    });
    group.bench_function("soa_fused", |b| {
        b.iter(|| black_box(price_batch_soa(black_box(&engine), black_box(&options))));
    });
    group.finish();
}

criterion_group!(benches, bench_cpu_scaling, bench_soa);
criterion_main!(benches);
