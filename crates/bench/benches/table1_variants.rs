//! Table I bench: runs every engine variant of the paper on the
//! reference workload, printing the reproduced table rows (simulated
//! options/second next to the paper's numbers) and Criterion-measuring
//! the simulation cost of each variant.

use cds_engine::prelude::*;
use cds_quant::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const BATCH: usize = 128;

fn workload() -> (MarketData<f64>, Vec<CdsOption>) {
    (
        MarketData::paper_workload(42),
        PortfolioGenerator::uniform(BATCH, 5.5, PaymentFrequency::Quarterly, 0.40),
    )
}

fn bench_table1(c: &mut Criterion) {
    let (market, options) = workload();

    eprintln!("\n=== Table I reproduction ({BATCH} options) ===");
    eprintln!("{:<34} {:>14} {:>14}", "variant", "sim opts/s", "paper opts/s");
    for variant in EngineVariant::ALL {
        let engine = FpgaCdsEngine::new(market.clone(), variant.config());
        let report = engine.price_batch(&options);
        eprintln!(
            "{:<34} {:>14.2} {:>14.2}",
            variant.paper_label(),
            report.options_per_second,
            variant.paper_options_per_second()
        );
    }
    eprintln!();

    let mut group = c.benchmark_group("table1_variants");
    group.sample_size(10);
    for variant in EngineVariant::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{variant:?}")),
            &variant,
            |b, &variant| {
                let engine = FpgaCdsEngine::new(market.clone(), variant.config());
                b.iter(|| black_box(engine.price_batch(black_box(&options))).kernel_cycles);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
