//! Listing 1 bench: the dependency-chained sum versus the 7-lane
//! partial-sum accumulator, measured for real on the host CPU.
//!
//! This is the one experiment where the paper's effect reproduces
//! *natively*: breaking the floating-point dependency chain lets the
//! out-of-order core (and the auto-vectoriser) overlap the adds, just as
//! it lets the FPGA pipeline reach II=1.

use cds_quant::accumulate::{sum_kahan, sum_lanes, sum_lanes7, sum_sequential};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn inputs(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 37 % 1000) as f64) * 1e-3 - 0.3).collect()
}

fn bench_accumulators(c: &mut Criterion) {
    let mut group = c.benchmark_group("listing1_accumulate");
    for n in [128usize, 1024, 16384] {
        let values = inputs(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("naive_sequential", n), &values, |b, v| {
            b.iter(|| black_box(sum_sequential(black_box(v))));
        });
        group.bench_with_input(BenchmarkId::new("lanes7_listing1", n), &values, |b, v| {
            b.iter(|| black_box(sum_lanes7(black_box(v))));
        });
        group.bench_with_input(BenchmarkId::new("lanes4", n), &values, |b, v| {
            b.iter(|| black_box(sum_lanes::<f64, 4>(black_box(v))));
        });
        group.bench_with_input(BenchmarkId::new("kahan_reference", n), &values, |b, v| {
            b.iter(|| black_box(sum_kahan(black_box(v))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_accumulators);
criterion_main!(benches);
