//! Constant-data size bench: the paper fixes 1024 curve knots; this
//! sweep shows engine throughput scaling inversely with the table size
//! (one full scan per time point) and measures simulator cost per size.

use cds_engine::prelude::*;
use cds_quant::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const BATCH: usize = 32;

fn bench_curve_size(c: &mut Criterion) {
    let options = PortfolioGenerator::uniform(BATCH, 5.5, PaymentFrequency::Quarterly, 0.40);

    eprintln!("\n=== Curve-size sweep (inter-option engine, {BATCH} options) ===");
    for knots in [256usize, 512, 1024, 2048, 4096] {
        let market = MarketData::paper_workload_sized(42, knots);
        let engine = FpgaCdsEngine::new(market, EngineVariant::InterOption.config());
        let rate = engine.price_batch(&options).options_per_second;
        eprintln!("  {knots:>5} knots: {rate:>10.2} opts/s");
    }
    eprintln!();

    let mut group = c.benchmark_group("curve_size");
    group.sample_size(10);
    for knots in [512usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(knots), &knots, |b, &knots| {
            let market = MarketData::paper_workload_sized(42, knots);
            let engine = FpgaCdsEngine::new(market, EngineVariant::InterOption.config());
            b.iter(|| black_box(engine.price_batch(black_box(&options))).kernel_cycles);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_curve_size);
criterion_main!(benches);
