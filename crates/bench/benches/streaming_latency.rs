//! Streaming bench: Poisson-arrival pricing sessions at light and
//! saturating load, printing the latency series (the AAT further-work
//! experiment) and Criterion-measuring the simulation cost.

use cds_engine::prelude::*;
use cds_engine::streaming::{poisson_arrivals, run_streaming};
use cds_quant::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::rc::Rc;

const QUOTES: usize = 64;

fn bench_streaming(c: &mut Criterion) {
    let market = Rc::new(MarketData::paper_workload(42));
    let options = PortfolioGenerator::uniform(QUOTES, 5.5, PaymentFrequency::Quarterly, 0.40);
    let config = EngineVariant::Vectorised.config();

    eprintln!("\n=== Streaming latency ({QUOTES} quotes, vectorised engine) ===");
    for rate in [5_000.0f64, 25_000.0, 100_000.0] {
        let arrivals = poisson_arrivals(&config, rate, QUOTES, 42);
        let report = run_streaming(market.clone(), &config, &options, &arrivals);
        eprintln!(
            "  offered {rate:>9.0} opts/s: p50 {:>7.1} us  p99 {:>7.1} us  achieved {:>9.1} opts/s",
            report.p50_us(&config),
            report.p99_us(&config),
            report.options_per_second
        );
    }
    eprintln!();

    let mut group = c.benchmark_group("streaming_session");
    group.sample_size(10);
    for rate in [5_000.0f64, 100_000.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rate}ops")),
            &rate,
            |b, &rate| {
                let arrivals = poisson_arrivals(&config, rate, QUOTES, 42);
                b.iter(|| {
                    black_box(run_streaming(
                        market.clone(),
                        &config,
                        black_box(&options),
                        &arrivals,
                    ))
                    .p99_cycles
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
