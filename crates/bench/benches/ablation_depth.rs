//! Stream-depth ablation bench: sensitivity of the vectorised engine's
//! throughput to the inter-stage FIFO depth (a design-space dimension
//! called out in DESIGN.md).

use cds_engine::prelude::*;
use cds_quant::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const BATCH: usize = 64;

fn bench_depth(c: &mut Criterion) {
    let market = MarketData::paper_workload(42);
    let options = PortfolioGenerator::uniform(BATCH, 5.5, PaymentFrequency::Quarterly, 0.40);

    eprintln!("\n=== Stream-depth sweep (vectorised engine, {BATCH} options) ===");
    for depth in [1usize, 2, 4, 8, 16, 32] {
        let mut config = EngineVariant::Vectorised.config();
        config.stream_depth = depth;
        let engine = FpgaCdsEngine::new(market.clone(), config);
        let rate = engine.price_batch(&options).options_per_second;
        eprintln!("  depth={depth:<3} {rate:>10.2} opts/s");
    }
    eprintln!();

    let mut group = c.benchmark_group("ablation_depth");
    group.sample_size(10);
    for depth in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let mut config = EngineVariant::Vectorised.config();
            config.stream_depth = depth;
            let engine = FpgaCdsEngine::new(market.clone(), config);
            b.iter(|| black_box(engine.price_batch(black_box(&options))).kernel_cycles);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_depth);
criterion_main!(benches);
