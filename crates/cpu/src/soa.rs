//! Structure-of-arrays batch pricer: the host-side counterpart of the
//! paper's Listing 1.
//!
//! The FPGA engine gains its throughput by processing independent work
//! in parallel lanes; the same idea applies on a CPU. This pricer fuses
//! `LANES` options with *identical schedules* (the common case for a
//! re-mark of standardised contracts) into one pass over the time points,
//! keeping `LANES` independent accumulator sets so the floating-point
//! dependency chains interleave and the loop auto-vectorises. Options
//! with differing schedules fall back to the scalar engine, so the API
//! accepts arbitrary batches.

use crate::engine::{CpuBatchStats, CpuCdsEngine};
use cds_quant::option::CdsOption;

/// Number of options fused per pass — wide enough for 4-lane SIMD with
/// independent chains to spare.
pub const LANES: usize = 8;

/// Price a batch, fusing runs of schedule-identical options `LANES` at a
/// time and falling back to scalar pricing for the rest. Results are in
/// option order and numerically identical to the scalar engine (the same
/// operations are applied per lane, in the same order).
pub fn price_batch_soa(engine: &CpuCdsEngine, options: &[CdsOption]) -> Vec<f64> {
    price_batch_soa_stats(engine, options).0
}

/// As [`price_batch_soa`], additionally reporting how much of the batch
/// went through the fused kernel versus the scalar fallback.
pub fn price_batch_soa_stats(
    engine: &CpuCdsEngine,
    options: &[CdsOption],
) -> (Vec<f64>, CpuBatchStats) {
    let mut out = vec![0.0f64; options.len()];
    let mut stats =
        CpuBatchStats { options: options.len() as u64, threads: 1, ..CpuBatchStats::default() };
    let mut i = 0;
    while i < options.len() {
        // Extend a run of options sharing maturity and frequency.
        let mut j = i + 1;
        while j < options.len()
            && j - i < LANES
            && options[j].maturity == options[i].maturity
            && options[j].frequency == options[i].frequency
        {
            j += 1;
        }
        let points = match cds_quant::schedule::PaymentSchedule::<f64>::generate(
            options[i].maturity,
            options[i].frequency.per_year(),
        ) {
            Ok(s) => s.len() as u64,
            Err(e) => panic!("option failed schedule generation: {e}"),
        };
        stats.time_points += points * (j - i) as u64;
        if j - i == LANES {
            price_fused::<LANES>(engine, &options[i..j], &mut out[i..j]);
            stats.fused_groups += 1;
        } else {
            for (o, slot) in options[i..j].iter().zip(&mut out[i..j]) {
                *slot = engine.price(o).spread_bps;
            }
            stats.scalar_fallbacks += (j - i) as u64;
        }
        i = j;
    }
    (out, stats)
}

/// Fused kernel over `N` schedule-identical options.
fn price_fused<const N: usize>(engine: &CpuCdsEngine, options: &[CdsOption], out: &mut [f64]) {
    debug_assert_eq!(options.len(), N);
    let schedule = match cds_quant::schedule::PaymentSchedule::<f64>::generate(
        options[0].maturity,
        options[0].frequency.per_year(),
    ) {
        Ok(s) => s,
        Err(e) => panic!("option failed schedule generation: {e}"),
    };

    // The per-time-point quantities are identical across the lane group
    // (same schedule, same curves); only the recovery differs. Compute
    // the shared terms once and keep N independent accumulators so the
    // reduction chains interleave.
    let mut premium = [0.0f64; N];
    let mut protection = [0.0f64; N];
    let mut accrual = [0.0f64; N];
    let mut prev_t = 0.0f64;
    let mut prev_survival = 1.0f64;
    for &t in schedule.points() {
        let survival = engine.survival(t);
        let delta = t - prev_t;
        let mid = 0.5 * (prev_t + t);
        let df = engine.discount_factor(t);
        let df_mid = engine.discount_factor(mid);
        let d_pd = prev_survival - survival;
        let pay = delta * df * survival;
        let poff = df_mid * d_pd;
        let accr = 0.5 * delta * df_mid * d_pd;
        for k in 0..N {
            premium[k] += pay;
            protection[k] += poff;
            accrual[k] += accr;
        }
        prev_t = t;
        prev_survival = survival;
    }
    for k in 0..N {
        let lgd = 1.0 - options[k].recovery_rate;
        let denom = premium[k] + accrual[k];
        out[k] = if denom > 0.0 { lgd * protection[k] / denom * 10_000.0 } else { 0.0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_quant::option::{MarketData, PaymentFrequency, PortfolioGenerator};

    fn engine() -> CpuCdsEngine {
        CpuCdsEngine::new(&MarketData::paper_workload(42))
    }

    #[test]
    fn uniform_batch_matches_scalar() {
        let engine = engine();
        // Same schedule, varying recoveries: the fused path applies.
        let options: Vec<CdsOption> = (0..32)
            .map(|i| CdsOption::new(5.5, PaymentFrequency::Quarterly, 0.2 + 0.015 * i as f64))
            .collect();
        let scalar: Vec<f64> = options.iter().map(|o| engine.price(o).spread_bps).collect();
        let fused = price_batch_soa(&engine, &options);
        for (a, b) in scalar.iter().zip(&fused) {
            assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn mixed_batch_falls_back_correctly() {
        let engine = engine();
        let options = PortfolioGenerator::new(3).portfolio(50);
        let scalar: Vec<f64> = options.iter().map(|o| engine.price(o).spread_bps).collect();
        let fused = price_batch_soa(&engine, &options);
        assert_eq!(scalar.len(), fused.len());
        for (a, b) in scalar.iter().zip(&fused) {
            assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn partial_lane_groups_handled() {
        let engine = engine();
        // 11 identical-schedule options: one full lane group + 3 leftovers.
        let options: Vec<CdsOption> = (0..11)
            .map(|i| CdsOption::new(3.0, PaymentFrequency::Quarterly, 0.3 + 0.02 * i as f64))
            .collect();
        let fused = price_batch_soa(&engine, &options);
        let scalar: Vec<f64> = options.iter().map(|o| engine.price(o).spread_bps).collect();
        for (a, b) in scalar.iter().zip(&fused) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_and_single() {
        let engine = engine();
        assert!(price_batch_soa(&engine, &[]).is_empty());
        let one = [CdsOption::new(2.0, PaymentFrequency::Quarterly, 0.4)];
        assert_eq!(price_batch_soa(&engine, &one).len(), 1);
    }

    #[test]
    fn stats_split_fused_and_fallback_work() {
        let engine = engine();
        // 11 identical-schedule options: one full lane group + 3 leftovers.
        let options: Vec<CdsOption> = (0..11)
            .map(|i| CdsOption::new(3.0, PaymentFrequency::Quarterly, 0.3 + 0.02 * i as f64))
            .collect();
        let (spreads, stats) = price_batch_soa_stats(&engine, &options);
        assert_eq!(spreads.len(), 11);
        assert_eq!(stats.options, 11);
        assert_eq!(stats.fused_groups, 1);
        assert_eq!(stats.scalar_fallbacks, 3);
        // 3y quarterly: 12 schedule points per option.
        assert_eq!(stats.time_points, 12 * 11);
        assert_eq!(stats.threads, 1);
    }

    #[test]
    fn recovery_ordering_preserved_within_group() {
        // Spreads must decrease as recovery increases, lane by lane.
        let engine = engine();
        let options: Vec<CdsOption> = (0..LANES)
            .map(|i| CdsOption::new(5.5, PaymentFrequency::Quarterly, 0.1 + 0.08 * i as f64))
            .collect();
        let fused = price_batch_soa(&engine, &options);
        for w in fused.windows(2) {
            assert!(w[0] > w[1]);
        }
    }
}
