//! Single-threaded CPU CDS engine.
//!
//! Mirrors the structure a tuned C++ implementation would use: the curve
//! data is kept in flat structure-of-arrays form, interpolation uses
//! binary search, and survival probabilities are built incrementally from
//! a precomputed cumulative-hazard table (one pass at construction) so a
//! per-option pricing touches `O(T log n)` data instead of rescanning the
//! curves.

use cds_quant::cds::SpreadResult;
use cds_quant::interp::binary_search;
use cds_quant::option::{CdsOption, MarketData};
use cds_quant::schedule::PaymentSchedule;

/// Work accounting of one CPU batch — the host-side analogue of the
/// simulator's run counters, consumed by the harness's unified metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuBatchStats {
    /// Options priced.
    pub options: u64,
    /// Total schedule time points evaluated across the batch.
    pub time_points: u64,
    /// Lane groups priced by the fused SoA kernel (0 for scalar paths).
    pub fused_groups: u64,
    /// Options that fell back to the scalar pricer within an SoA batch.
    pub scalar_fallbacks: u64,
    /// OS threads used (1 for the sequential paths).
    pub threads: u64,
}

impl CpuBatchStats {
    /// Fold another batch's accounting into this one (threads takes the
    /// max — chunks of one parallel batch share the pool).
    pub fn merge(&mut self, other: &CpuBatchStats) {
        self.options += other.options;
        self.time_points += other.time_points;
        self.fused_groups += other.fused_groups;
        self.scalar_fallbacks += other.scalar_fallbacks;
        self.threads = self.threads.max(other.threads);
    }
}

/// Precomputed, cache-friendly CPU pricer.
#[derive(Debug, Clone)]
pub struct CpuCdsEngine {
    interest_tenors: Vec<f64>,
    interest_values: Vec<f64>,
    hazard_tenors: Vec<f64>,
    /// Cumulative hazard ∫₀^tenor h(u) du at each knot.
    hazard_cumulative: Vec<f64>,
    hazard_values: Vec<f64>,
}

impl CpuCdsEngine {
    /// Build the engine, precomputing the cumulative-hazard table.
    pub fn new(market: &MarketData<f64>) -> Self {
        let interest_tenors: Vec<f64> = market.interest.points().iter().map(|p| p.tenor).collect();
        let interest_values: Vec<f64> = market.interest.points().iter().map(|p| p.value).collect();
        let hazard_tenors: Vec<f64> = market.hazard.points().iter().map(|p| p.tenor).collect();
        let hazard_values: Vec<f64> = market.hazard.points().iter().map(|p| p.value).collect();
        // One trapezoidal pass: identical quadrature to Curve::integral.
        let mut hazard_cumulative = Vec::with_capacity(hazard_tenors.len());
        let mut acc = hazard_values[0] * hazard_tenors[0];
        hazard_cumulative.push(acc);
        for i in 1..hazard_tenors.len() {
            acc += 0.5
                * (hazard_values[i - 1] + hazard_values[i])
                * (hazard_tenors[i] - hazard_tenors[i - 1]);
            hazard_cumulative.push(acc);
        }
        CpuCdsEngine {
            interest_tenors,
            interest_values,
            hazard_tenors,
            hazard_cumulative,
            hazard_values,
        }
    }

    /// Cumulative hazard at `t` from the precomputed table.
    fn cumulative_hazard(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let ts = &self.hazard_tenors;
        if t <= ts[0] {
            return self.hazard_values[0] * t;
        }
        let last = ts.len() - 1;
        if t >= ts[last] {
            return self.hazard_cumulative[last] + self.hazard_values[last] * (t - ts[last]);
        }
        // Find the segment containing t: ts[lo] < t <= ts[lo+1].
        let (mut lo, mut hi) = (0usize, last);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if ts[mid] < t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let w = (t - ts[lo]) / (ts[hi] - ts[lo]);
        let v_t = self.hazard_values[lo] + w * (self.hazard_values[hi] - self.hazard_values[lo]);
        self.hazard_cumulative[lo] + 0.5 * (self.hazard_values[lo] + v_t) * (t - ts[lo])
    }

    /// Survival probability at `t`.
    pub fn survival(&self, t: f64) -> f64 {
        (-self.cumulative_hazard(t)).exp()
    }

    /// Discount factor at `t`.
    pub fn discount_factor(&self, t: f64) -> f64 {
        let r = binary_search(&self.interest_tenors, &self.interest_values, t);
        (-r * t).exp()
    }

    /// Price one option.
    pub fn price(&self, option: &CdsOption) -> SpreadResult {
        let schedule =
            match PaymentSchedule::<f64>::generate(option.maturity, option.frequency.per_year()) {
                Ok(s) => s,
                Err(e) => panic!("option failed schedule generation: {e}"),
            };
        let mut premium = 0.0f64;
        let mut protection = 0.0f64;
        let mut accrual = 0.0f64;
        let mut prev_t = 0.0f64;
        let mut prev_survival = 1.0f64;
        let mut last_default_prob = 0.0f64;
        for &t in schedule.points() {
            let survival = self.survival(t);
            let delta = t - prev_t;
            let mid = 0.5 * (prev_t + t);
            let df = self.discount_factor(t);
            let df_mid = self.discount_factor(mid);
            let d_pd = prev_survival - survival;
            premium += delta * df * survival;
            protection += df_mid * d_pd;
            accrual += 0.5 * delta * df_mid * d_pd;
            prev_t = t;
            prev_survival = survival;
            last_default_prob = 1.0 - survival;
        }
        let lgd = 1.0 - option.recovery_rate;
        let denom = premium + accrual;
        SpreadResult {
            spread_bps: if denom > 0.0 { lgd * protection / denom * 10_000.0 } else { 0.0 },
            premium_annuity: premium,
            protection_unit: protection,
            accrual_annuity: accrual,
            default_prob_at_maturity: last_default_prob,
            time_points: schedule.len(),
        }
    }

    /// Price a batch sequentially.
    pub fn price_batch(&self, options: &[CdsOption]) -> Vec<f64> {
        options.iter().map(|o| self.price(o).spread_bps).collect()
    }

    /// Price a batch sequentially, returning work accounting alongside
    /// the spreads.
    pub fn price_batch_stats(&self, options: &[CdsOption]) -> (Vec<f64>, CpuBatchStats) {
        let mut stats = CpuBatchStats { threads: 1, ..CpuBatchStats::default() };
        let spreads = options
            .iter()
            .map(|o| {
                let r = self.price(o);
                stats.options += 1;
                stats.time_points += r.time_points as u64;
                r.spread_bps
            })
            .collect();
        (spreads, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_quant::cds::CdsPricer;
    use cds_quant::option::PortfolioGenerator;

    #[test]
    fn matches_reference_pricer() {
        let market = MarketData::paper_workload(13);
        let engine = CpuCdsEngine::new(&market);
        let pricer = CdsPricer::new(market);
        for o in PortfolioGenerator::new(4).portfolio(64) {
            let fast = engine.price(&o);
            let golden = pricer.price(&o);
            assert!(
                (fast.spread_bps - golden.spread_bps).abs() < 1e-7 * (1.0 + golden.spread_bps),
                "{} vs {}",
                fast.spread_bps,
                golden.spread_bps
            );
            assert_eq!(fast.time_points, golden.time_points);
        }
    }

    #[test]
    fn survival_matches_curve() {
        let market = MarketData::paper_workload(3);
        let engine = CpuCdsEngine::new(&market);
        for i in 1..40 {
            let t = i as f64 * 0.25;
            let a = engine.survival(t);
            let b = market.hazard.survival(t);
            assert!((a - b).abs() < 1e-12, "t={t}: {a} vs {b}");
        }
    }

    #[test]
    fn survival_beyond_horizon_extends_flat_hazard() {
        let market = MarketData::paper_workload(3);
        let engine = CpuCdsEngine::new(&market);
        let h = market.hazard.horizon();
        let a = engine.survival(h + 2.0);
        let b = market.hazard.survival(h + 2.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn discount_matches_curve() {
        let market = MarketData::paper_workload(3);
        let engine = CpuCdsEngine::new(&market);
        for i in 0..30 {
            let t = i as f64 * 0.3 + 0.01;
            assert!((engine.discount_factor(t) - market.interest.discount_factor(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn batch_equals_individual() {
        let market = MarketData::paper_workload(5);
        let engine = CpuCdsEngine::new(&market);
        let opts = PortfolioGenerator::new(9).portfolio(10);
        let batch = engine.price_batch(&opts);
        for (o, s) in opts.iter().zip(&batch) {
            assert_eq!(engine.price(o).spread_bps, *s);
        }
    }
}
