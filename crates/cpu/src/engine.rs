//! Single-threaded CPU CDS engine.
//!
//! Mirrors the structure a tuned C++ implementation would use: the curve
//! data is kept in flat structure-of-arrays form, interpolation goes
//! through a precomputed O(1) segment index
//! ([`cds_quant::interp::SegmentIndex`]) instead of a per-query binary
//! search, and survival probabilities are built incrementally from a
//! precomputed cumulative-hazard table (one pass at construction) so a
//! per-option pricing touches `O(T)` data without rescanning the curves.
//!
//! [`CpuCdsEngine::price`] is the **scalar reference path**: a streaming
//! per-schedule-point loop that allocates nothing per call (schedule
//! points are enumerated on the fly rather than collected into a `Vec`).
//! The batch entry points ([`CpuCdsEngine::price_batch`] /
//! [`CpuCdsEngine::price_batch_stats`]) dispatch to the lane kernel in
//! [`crate::lanes`], which is bit-for-bit identical to the scalar path;
//! [`CpuCdsEngine::price_batch_scalar`] keeps the per-option loop
//! reachable for differential tests and benchmarks.

use cds_quant::cds::SpreadResult;
use cds_quant::interp::SegmentIndex;
use cds_quant::option::{CdsOption, MarketData};
use cds_quant::QuantError;

/// Work accounting of one CPU batch — the host-side analogue of the
/// simulator's run counters, consumed by the harness's unified metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuBatchStats {
    /// Options priced.
    pub options: u64,
    /// Total schedule time points evaluated across the batch.
    pub time_points: u64,
    /// Lane groups launched by the batch kernel, including a final
    /// partial group (0 for scalar paths).
    pub fused_groups: u64,
    /// Options that fell back to the scalar pricer within a batch.
    /// Always 0 since the lane kernel subsumed the fused-run SoA path —
    /// every option takes the lane path regardless of its neighbours;
    /// the field is kept for schema stability.
    pub scalar_fallbacks: u64,
    /// OS threads used (1 for the sequential paths).
    pub threads: u64,
}

impl CpuBatchStats {
    /// Fold another batch's accounting into this one (threads takes the
    /// max — chunks of one parallel batch share the pool).
    pub fn merge(&mut self, other: &CpuBatchStats) {
        self.options += other.options;
        self.time_points += other.time_points;
        self.fused_groups += other.fused_groups;
        self.scalar_fallbacks += other.scalar_fallbacks;
        self.threads = self.threads.max(other.threads);
    }
}

/// Precomputed, cache-friendly CPU pricer.
#[derive(Debug, Clone)]
pub struct CpuCdsEngine {
    interest_tenors: Vec<f64>,
    interest_values: Vec<f64>,
    hazard_tenors: Vec<f64>,
    /// Cumulative hazard ∫₀^tenor h(u) du at each knot.
    hazard_cumulative: Vec<f64>,
    hazard_values: Vec<f64>,
    /// O(1) segment lookup over `interest_tenors`.
    interest_index: SegmentIndex,
    /// O(1) segment lookup over `hazard_tenors`.
    hazard_index: SegmentIndex,
}

impl CpuCdsEngine {
    /// Build the engine, precomputing the cumulative-hazard table.
    pub fn new(market: &MarketData<f64>) -> Self {
        let interest_tenors: Vec<f64> = market.interest.points().iter().map(|p| p.tenor).collect();
        let interest_values: Vec<f64> = market.interest.points().iter().map(|p| p.value).collect();
        let hazard_tenors: Vec<f64> = market.hazard.points().iter().map(|p| p.tenor).collect();
        let hazard_values: Vec<f64> = market.hazard.points().iter().map(|p| p.value).collect();
        // One trapezoidal pass: identical quadrature to Curve::integral.
        let mut hazard_cumulative = Vec::with_capacity(hazard_tenors.len());
        let mut acc = hazard_values[0] * hazard_tenors[0];
        hazard_cumulative.push(acc);
        for i in 1..hazard_tenors.len() {
            acc += 0.5
                * (hazard_values[i - 1] + hazard_values[i])
                * (hazard_tenors[i] - hazard_tenors[i - 1]);
            hazard_cumulative.push(acc);
        }
        let interest_index = SegmentIndex::new(&interest_tenors);
        let hazard_index = SegmentIndex::new(&hazard_tenors);
        CpuCdsEngine {
            interest_tenors,
            interest_values,
            hazard_tenors,
            hazard_cumulative,
            hazard_values,
            interest_index,
            hazard_index,
        }
    }

    /// Cumulative hazard at `t` from the precomputed table.
    fn cumulative_hazard(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let ts = &self.hazard_tenors;
        if t <= ts[0] {
            return self.hazard_values[0] * t;
        }
        let last = ts.len() - 1;
        if t >= ts[last] {
            return self.hazard_cumulative[last] + self.hazard_values[last] * (t - ts[last]);
        }
        // Segment containing t (ts[lo] < t <= ts[lo+1]) via the O(1)
        // bucket index — the same segment a binary search would choose,
        // so the arithmetic below is bit-identical to the old path.
        let lo = self.hazard_index.locate(ts, t);
        let hi = lo + 1;
        let w = (t - ts[lo]) / (ts[hi] - ts[lo]);
        let v_t = self.hazard_values[lo] + w * (self.hazard_values[hi] - self.hazard_values[lo]);
        self.hazard_cumulative[lo] + 0.5 * (self.hazard_values[lo] + v_t) * (t - ts[lo])
    }

    /// Survival probability at `t`.
    pub fn survival(&self, t: f64) -> f64 {
        (-self.cumulative_hazard(t)).exp()
    }

    /// Discount factor at `t`.
    pub fn discount_factor(&self, t: f64) -> f64 {
        let r = self.interest_index.interpolate(&self.interest_tenors, &self.interest_values, t);
        (-r * t).exp()
    }

    /// Price one option through the scalar reference path.
    ///
    /// Allocation-free: schedule points `Δ, 2Δ, …` and the final stub at
    /// the maturity — exactly the points
    /// [`cds_quant::schedule::PaymentSchedule::generate`] would
    /// materialise — are enumerated on the fly instead of being
    /// collected into a per-call `Vec`, so repeated calls do no heap
    /// work beyond the engine's cached curve tables.
    ///
    /// # Panics
    /// Panics on an invalid schedule (non-positive or non-finite
    /// maturity, pathologically long schedule), with the same message
    /// schedule generation would have produced.
    pub fn price(&self, option: &CdsOption) -> SpreadResult {
        // Mirror PaymentSchedule::generate's validation (and its exact
        // error wording) without materialising the points.
        if option.maturity <= 0.0 || !option.maturity.is_finite() {
            let e = QuantError::InvalidOption { reason: "maturity must be positive and finite" };
            panic!("option failed schedule generation: {e}");
        }
        let maturity = option.maturity;
        let delta = 1.0 / option.frequency.per_year() as f64;
        let mut premium = 0.0f64;
        let mut protection = 0.0f64;
        let mut accrual = 0.0f64;
        let mut prev_t = 0.0f64;
        let mut prev_survival = 1.0f64;
        let mut last_default_prob;
        let mut points = 0usize;
        let mut i = 1usize;
        loop {
            let step = delta * i as f64;
            let last = step >= maturity;
            let t = if last { maturity } else { step };
            let survival = self.survival(t);
            let period = t - prev_t;
            let mid = 0.5 * (prev_t + t);
            let df = self.discount_factor(t);
            let df_mid = self.discount_factor(mid);
            let d_pd = prev_survival - survival;
            premium += period * df * survival;
            protection += df_mid * d_pd;
            accrual += 0.5 * period * df_mid * d_pd;
            prev_t = t;
            prev_survival = survival;
            last_default_prob = 1.0 - survival;
            points += 1;
            if last {
                break;
            }
            i += 1;
            // Same guard (and trip point) as PaymentSchedule::generate.
            if i > 4_000_000 {
                let e = QuantError::InvalidOption { reason: "schedule too long" };
                panic!("option failed schedule generation: {e}");
            }
        }
        let lgd = 1.0 - option.recovery_rate;
        let denom = premium + accrual;
        SpreadResult {
            spread_bps: if denom > 0.0 { lgd * protection / denom * 10_000.0 } else { 0.0 },
            premium_annuity: premium,
            protection_unit: protection,
            accrual_annuity: accrual,
            default_prob_at_maturity: last_default_prob,
            time_points: points,
        }
    }

    /// Price a batch on one thread through the lane kernel
    /// ([`crate::lanes`]) — bit-for-bit identical to pricing each option
    /// with [`CpuCdsEngine::price`], just much faster.
    pub fn price_batch(&self, options: &[CdsOption]) -> Vec<f64> {
        crate::lanes::price_batch_lanes(self, options)
    }

    /// Price a batch on one thread through the lane kernel, returning
    /// work accounting alongside the spreads.
    pub fn price_batch_stats(&self, options: &[CdsOption]) -> (Vec<f64>, CpuBatchStats) {
        crate::lanes::price_batch_lanes_stats(self, options)
    }

    /// Price a batch through the per-option scalar reference path — the
    /// baseline the lane kernel is measured against (and differentially
    /// tested against), and the engine behind the `cpu/scalar` route.
    pub fn price_batch_scalar(&self, options: &[CdsOption]) -> Vec<f64> {
        options.iter().map(|o| self.price(o).spread_bps).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_quant::cds::CdsPricer;
    use cds_quant::option::PortfolioGenerator;

    #[test]
    fn matches_reference_pricer() {
        let market = MarketData::paper_workload(13);
        let engine = CpuCdsEngine::new(&market);
        let pricer = CdsPricer::new(market);
        for o in PortfolioGenerator::new(4).portfolio(64) {
            let fast = engine.price(&o);
            let golden = pricer.price(&o);
            assert!(
                (fast.spread_bps - golden.spread_bps).abs() < 1e-7 * (1.0 + golden.spread_bps),
                "{} vs {}",
                fast.spread_bps,
                golden.spread_bps
            );
            assert_eq!(fast.time_points, golden.time_points);
        }
    }

    #[test]
    fn survival_matches_curve() {
        let market = MarketData::paper_workload(3);
        let engine = CpuCdsEngine::new(&market);
        for i in 1..40 {
            let t = i as f64 * 0.25;
            let a = engine.survival(t);
            let b = market.hazard.survival(t);
            assert!((a - b).abs() < 1e-12, "t={t}: {a} vs {b}");
        }
    }

    #[test]
    fn survival_beyond_horizon_extends_flat_hazard() {
        let market = MarketData::paper_workload(3);
        let engine = CpuCdsEngine::new(&market);
        let h = market.hazard.horizon();
        let a = engine.survival(h + 2.0);
        let b = market.hazard.survival(h + 2.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn discount_matches_curve() {
        let market = MarketData::paper_workload(3);
        let engine = CpuCdsEngine::new(&market);
        for i in 0..30 {
            let t = i as f64 * 0.3 + 0.01;
            assert!((engine.discount_factor(t) - market.interest.discount_factor(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn batch_equals_individual() {
        let market = MarketData::paper_workload(5);
        let engine = CpuCdsEngine::new(&market);
        let opts = PortfolioGenerator::new(9).portfolio(10);
        // price_batch dispatches to the lane kernel; this pins it
        // bit-for-bit to the scalar path.
        let batch = engine.price_batch(&opts);
        for (o, s) in opts.iter().zip(&batch) {
            assert_eq!(engine.price(o).spread_bps, *s);
        }
        assert_eq!(batch, engine.price_batch_scalar(&opts));
    }

    #[test]
    fn repeated_price_calls_are_identical() {
        // The engine caches every bootstrapped table (cumulative hazard,
        // segment indices) at construction and price() allocates nothing,
        // so repeated calls must be bit-for-bit reproducible.
        let market = MarketData::paper_workload(21);
        let engine = CpuCdsEngine::new(&market);
        for o in PortfolioGenerator::new(2).portfolio(16) {
            let first = engine.price(&o);
            for _ in 0..3 {
                let again = engine.price(&o);
                assert_eq!(first.spread_bps.to_bits(), again.spread_bps.to_bits());
                assert_eq!(first.premium_annuity.to_bits(), again.premium_annuity.to_bits());
                assert_eq!(first.protection_unit.to_bits(), again.protection_unit.to_bits());
                assert_eq!(first.accrual_annuity.to_bits(), again.accrual_annuity.to_bits());
                assert_eq!(first.time_points, again.time_points);
            }
        }
    }

    #[test]
    fn streaming_schedule_matches_generated_schedule() {
        use cds_quant::schedule::PaymentSchedule;
        // The streaming loop must visit exactly the generated points —
        // including boundary maturities where Δ·i lands on the maturity.
        let market = MarketData::paper_workload(1);
        let engine = CpuCdsEngine::new(&market);
        for (maturity, per_year) in
            [(5.5, 4u32), (5.0, 4), (1.0, 12), (0.02, 1), (7.3, 2), (0.25, 4), (10.0, 1)]
        {
            let s = match PaymentSchedule::<f64>::generate(maturity, per_year) {
                Ok(s) => s,
                Err(e) => panic!("{e}"),
            };
            let freq = match per_year {
                1 => cds_quant::option::PaymentFrequency::Annual,
                2 => cds_quant::option::PaymentFrequency::SemiAnnual,
                4 => cds_quant::option::PaymentFrequency::Quarterly,
                _ => cds_quant::option::PaymentFrequency::Monthly,
            };
            let o = CdsOption { maturity, frequency: freq, recovery_rate: 0.4 };
            assert_eq!(engine.price(&o).time_points, s.len(), "maturity {maturity} f {per_year}");
        }
    }

    #[test]
    #[should_panic(expected = "maturity must be positive and finite")]
    fn invalid_maturity_panics_like_schedule_generation() {
        let market = MarketData::paper_workload(1);
        let engine = CpuCdsEngine::new(&market);
        let o = CdsOption {
            maturity: -1.0,
            frequency: cds_quant::option::PaymentFrequency::Quarterly,
            recovery_rate: 0.4,
        };
        let _ = engine.price(&o);
    }
}
