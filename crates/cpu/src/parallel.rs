//! Multi-threaded batch pricing — the OpenMP analogue.
//!
//! Options are independent, so the batch is split into contiguous chunks
//! priced by `std::thread::scope` threads, exactly mirroring the paper's
//! decomposition for both the OpenMP CPU code and the multi-engine FPGA
//! deployment ("there are no dependencies between calculations involving
//! different options"). Each chunk goes through
//! [`CpuCdsEngine::price_batch`], i.e. the lane kernel of
//! [`crate::lanes`], so the thread-level and lane-level parallelism
//! compose.

use crate::engine::{CpuBatchStats, CpuCdsEngine};
use cds_quant::option::CdsOption;

/// Unwrap a worker's result, re-raising its panic payload on the calling
/// thread instead of wrapping it in a second panic message.
fn join_or_propagate<T>(handle: std::thread::ScopedJoinHandle<'_, T>) -> T {
    match handle.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Price a batch across `threads` OS threads, preserving option order.
///
/// # Panics
/// Panics if `threads` is zero.
pub fn price_parallel(engine: &CpuCdsEngine, options: &[CdsOption], threads: usize) -> Vec<f64> {
    assert!(threads > 0, "need at least one thread");
    if options.is_empty() {
        return Vec::new();
    }
    if threads == 1 || options.len() == 1 {
        return engine.price_batch(options);
    }
    let chunk_size = options.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = options
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || engine.price_batch(chunk)))
            .collect();
        handles.into_iter().flat_map(join_or_propagate).collect()
    })
}

/// As [`price_parallel`], additionally returning merged work accounting
/// across the thread chunks (threads actually used, total time points).
///
/// # Panics
/// Panics if `threads` is zero.
pub fn price_parallel_stats(
    engine: &CpuCdsEngine,
    options: &[CdsOption],
    threads: usize,
) -> (Vec<f64>, CpuBatchStats) {
    assert!(threads > 0, "need at least one thread");
    if options.is_empty() {
        return (Vec::new(), CpuBatchStats::default());
    }
    if threads == 1 || options.len() == 1 {
        return engine.price_batch_stats(options);
    }
    let chunk_size = options.len().div_ceil(threads);
    let per_chunk: Vec<(Vec<f64>, CpuBatchStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = options
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || engine.price_batch_stats(chunk)))
            .collect();
        handles.into_iter().map(join_or_propagate).collect()
    });
    let mut spreads = Vec::with_capacity(options.len());
    let mut stats = CpuBatchStats { threads: per_chunk.len() as u64, ..CpuBatchStats::default() };
    for (chunk_spreads, chunk_stats) in per_chunk {
        spreads.extend(chunk_spreads);
        stats.options += chunk_stats.options;
        stats.time_points += chunk_stats.time_points;
        stats.fused_groups += chunk_stats.fused_groups;
        stats.scalar_fallbacks += chunk_stats.scalar_fallbacks;
    }
    (spreads, stats)
}

/// As [`price_parallel`] but using the structure-of-arrays fused kernel
/// within each thread's chunk — the fastest host path for books of
/// standardised (schedule-identical) contracts.
pub fn price_parallel_soa(
    engine: &CpuCdsEngine,
    options: &[CdsOption],
    threads: usize,
) -> Vec<f64> {
    assert!(threads > 0, "need at least one thread");
    if options.is_empty() {
        return Vec::new();
    }
    if threads == 1 || options.len() == 1 {
        return crate::soa::price_batch_soa(engine, options);
    }
    let chunk_size = options.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = options
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || crate::soa::price_batch_soa(engine, chunk)))
            .collect();
        handles.into_iter().flat_map(join_or_propagate).collect()
    })
}

/// Measure host throughput in options/second with the given thread count
/// (used by the harness to report the real machine alongside the paper's
/// modelled Cascade Lake).
pub fn measure_throughput(engine: &CpuCdsEngine, options: &[CdsOption], threads: usize) -> f64 {
    let start = std::time::Instant::now();
    let spreads = price_parallel(engine, options, threads);
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(spreads.len(), options.len());
    if elapsed > 0.0 {
        options.len() as f64 / elapsed
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_quant::option::{MarketData, PortfolioGenerator};

    #[test]
    fn parallel_matches_sequential_exactly() {
        let market = MarketData::paper_workload(21);
        let engine = CpuCdsEngine::new(&market);
        let options = PortfolioGenerator::new(2).portfolio(97); // uneven chunks
        let seq = engine.price_batch(&options);
        for threads in [1, 2, 3, 4, 8] {
            let par = price_parallel(&engine, &options, threads);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single() {
        let market = MarketData::paper_workload(21);
        let engine = CpuCdsEngine::new(&market);
        assert!(price_parallel(&engine, &[], 4).is_empty());
        let one = PortfolioGenerator::new(1).portfolio(1);
        assert_eq!(price_parallel(&engine, &one, 4).len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let market = MarketData::paper_workload(21);
        let engine = CpuCdsEngine::new(&market);
        let _ = price_parallel(&engine, &[], 0);
    }

    #[test]
    fn more_threads_than_options_is_fine() {
        let market = MarketData::paper_workload(21);
        let engine = CpuCdsEngine::new(&market);
        let options = PortfolioGenerator::new(3).portfolio(3);
        let par = price_parallel(&engine, &options, 16);
        assert_eq!(par.len(), 3);
    }

    #[test]
    fn soa_parallel_matches_scalar_parallel() {
        let market = MarketData::paper_workload(21);
        let engine = CpuCdsEngine::new(&market);
        // Mixed book: fused groups plus scalar fallback inside chunks.
        let options = PortfolioGenerator::new(8).portfolio(83);
        let scalar = price_parallel(&engine, &options, 3);
        let fused = price_parallel_soa(&engine, &options, 3);
        for (a, b) in scalar.iter().zip(&fused) {
            assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn parallel_stats_account_all_work() {
        let market = MarketData::paper_workload(21);
        let engine = CpuCdsEngine::new(&market);
        let options = PortfolioGenerator::new(2).portfolio(97);
        let (seq_spreads, seq_stats) = engine.price_batch_stats(&options);
        let (par_spreads, par_stats) = price_parallel_stats(&engine, &options, 4);
        assert_eq!(seq_spreads, par_spreads);
        assert_eq!(seq_stats.options, 97);
        assert_eq!(par_stats.options, 97);
        assert_eq!(seq_stats.time_points, par_stats.time_points);
        assert!(seq_stats.time_points > 0);
        assert_eq!(seq_stats.threads, 1);
        assert_eq!(par_stats.threads, 4);
    }

    #[test]
    fn throughput_measurable() {
        let market = MarketData::paper_workload(21);
        let engine = CpuCdsEngine::new(&market);
        let options = PortfolioGenerator::new(4).portfolio(64);
        let rate = measure_throughput(&engine, &options, 2);
        assert!(rate > 0.0);
    }
}
