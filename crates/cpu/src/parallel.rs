//! Multi-threaded batch pricing — the OpenMP analogue.
//!
//! Options are independent, so the batch is split into contiguous chunks
//! priced by crossbeam scoped threads, exactly mirroring the paper's
//! decomposition for both the OpenMP CPU code and the multi-engine FPGA
//! deployment ("there are no dependencies between calculations involving
//! different options").

use crate::engine::CpuCdsEngine;
use cds_quant::option::CdsOption;

/// Price a batch across `threads` OS threads, preserving option order.
///
/// # Panics
/// Panics if `threads` is zero.
pub fn price_parallel(engine: &CpuCdsEngine, options: &[CdsOption], threads: usize) -> Vec<f64> {
    assert!(threads > 0, "need at least one thread");
    if options.is_empty() {
        return Vec::new();
    }
    if threads == 1 || options.len() == 1 {
        return engine.price_batch(options);
    }
    let chunk_size = options.len().div_ceil(threads);
    let mut results: Vec<Vec<f64>> = Vec::new();
    crossbeam::scope(|scope| {
        let handles: Vec<_> = options
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move |_| engine.price_batch(chunk)))
            .collect();
        results = handles.into_iter().map(|h| h.join().expect("pricing thread panicked")).collect();
    })
    .expect("crossbeam scope failed");
    results.into_iter().flatten().collect()
}

/// As [`price_parallel`] but using the structure-of-arrays fused kernel
/// within each thread's chunk — the fastest host path for books of
/// standardised (schedule-identical) contracts.
pub fn price_parallel_soa(
    engine: &CpuCdsEngine,
    options: &[CdsOption],
    threads: usize,
) -> Vec<f64> {
    assert!(threads > 0, "need at least one thread");
    if options.is_empty() {
        return Vec::new();
    }
    if threads == 1 || options.len() == 1 {
        return crate::soa::price_batch_soa(engine, options);
    }
    let chunk_size = options.len().div_ceil(threads);
    let mut results: Vec<Vec<f64>> = Vec::new();
    crossbeam::scope(|scope| {
        let handles: Vec<_> = options
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move |_| crate::soa::price_batch_soa(engine, chunk)))
            .collect();
        results = handles.into_iter().map(|h| h.join().expect("pricing thread panicked")).collect();
    })
    .expect("crossbeam scope failed");
    results.into_iter().flatten().collect()
}

/// Measure host throughput in options/second with the given thread count
/// (used by the harness to report the real machine alongside the paper's
/// modelled Cascade Lake).
pub fn measure_throughput(engine: &CpuCdsEngine, options: &[CdsOption], threads: usize) -> f64 {
    let start = std::time::Instant::now();
    let spreads = price_parallel(engine, options, threads);
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(spreads.len(), options.len());
    if elapsed > 0.0 {
        options.len() as f64 / elapsed
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_quant::option::{MarketData, PortfolioGenerator};

    #[test]
    fn parallel_matches_sequential_exactly() {
        let market = MarketData::paper_workload(21);
        let engine = CpuCdsEngine::new(&market);
        let options = PortfolioGenerator::new(2).portfolio(97); // uneven chunks
        let seq = engine.price_batch(&options);
        for threads in [1, 2, 3, 4, 8] {
            let par = price_parallel(&engine, &options, threads);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single() {
        let market = MarketData::paper_workload(21);
        let engine = CpuCdsEngine::new(&market);
        assert!(price_parallel(&engine, &[], 4).is_empty());
        let one = PortfolioGenerator::new(1).portfolio(1);
        assert_eq!(price_parallel(&engine, &one, 4).len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let market = MarketData::paper_workload(21);
        let engine = CpuCdsEngine::new(&market);
        let _ = price_parallel(&engine, &[], 0);
    }

    #[test]
    fn more_threads_than_options_is_fine() {
        let market = MarketData::paper_workload(21);
        let engine = CpuCdsEngine::new(&market);
        let options = PortfolioGenerator::new(3).portfolio(3);
        let par = price_parallel(&engine, &options, 16);
        assert_eq!(par.len(), 3);
    }

    #[test]
    fn soa_parallel_matches_scalar_parallel() {
        let market = MarketData::paper_workload(21);
        let engine = CpuCdsEngine::new(&market);
        // Mixed book: fused groups plus scalar fallback inside chunks.
        let options = PortfolioGenerator::new(8).portfolio(83);
        let scalar = price_parallel(&engine, &options, 3);
        let fused = price_parallel_soa(&engine, &options, 3);
        for (a, b) in scalar.iter().zip(&fused) {
            assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn throughput_measurable() {
        let market = MarketData::paper_workload(21);
        let engine = CpuCdsEngine::new(&market);
        let options = PortfolioGenerator::new(4).portfolio(64);
        let rate = measure_throughput(&engine, &options, 2);
        assert!(rate > 0.0);
    }
}
