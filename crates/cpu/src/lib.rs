//! # cds-cpu — the CPU baseline CDS engine
//!
//! The paper compares its FPGA engines against "a bespoke version of the
//! engine in C++ with OpenMP for multi-threading" on a 24-core Xeon
//! Platinum (Cascade Lake) 8260M. This crate provides:
//!
//! * [`engine::CpuCdsEngine`] — a cache-friendly single-threaded pricer
//!   (the C++ engine's analogue), numerically identical to the reference;
//! * [`lanes::LaneKernel`] — the zero-allocation lane-parallel batch
//!   kernel behind [`engine::CpuCdsEngine::price_batch`]: shared
//!   per-frequency schedule grids with prefix-summed leg accumulators
//!   plus 8-wide stub lanes, bit-for-bit identical to the scalar
//!   reference (the Listing-1 partial-sum trick applied across options);
//! * [`parallel`] — chunked multi-threading over `std::thread::scope`
//!   (the OpenMP analogue), for numerical verification and host-machine
//!   benchmarking;
//! * [`soa::price_batch_soa`] — the earlier structure-of-arrays batch
//!   kernel that fuses schedule-identical options into SIMD-friendly
//!   lane groups, kept as an independent cross-check route;
//! * [`model::CpuPerfModel`] — a calibrated Cascade Lake performance
//!   model reproducing the paper's measured CPU rows (8738.92 options/s
//!   single-core; 8.68× scaling at 24 cores), since the paper's exact
//!   silicon is unavailable here (DESIGN.md substitution ledger).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod engine;
pub mod lanes;
pub mod model;
pub mod parallel;
pub mod soa;

pub use engine::{CpuBatchStats, CpuCdsEngine};
pub use lanes::LaneKernel;
pub use model::{CpuPerfModel, LANE_KERNEL_SPEEDUP};
pub use parallel::price_parallel;
pub use soa::price_batch_soa;
