//! Calibrated Cascade Lake performance model.
//!
//! The paper's CPU rows were measured on a 24-core Xeon Platinum 8260M,
//! which is not available here. [`CpuPerfModel`] reproduces those rows
//! from two fitted constants (DESIGN.md substitution ledger):
//!
//! * single-core throughput — Table I: 8738.92 options/s;
//! * a contention-saturation scaling curve `S(n) = n / (1 + (n−1)·f)`
//!   with `f = 0.0767`, which reproduces the paper's observation that
//!   "we have increased the core count by 24 times but the performance
//!   only increases by around nine times" (75823.77 / 8738.92 ≈ 8.68×).
//!
//! The saturation form models shared memory-bandwidth/LLC contention,
//! the same qualitative behaviour the real multi-threaded engine in
//! [`crate::parallel`] exhibits on the host.

/// Measured single-thread speedup of the lane kernel ([`crate::lanes`])
/// over the scalar reference on the host this repo is calibrated on
/// (mixed 1–10y book, 8192-option batches, 1024-knot curves; see
/// `results/throughput_baseline.json`). The paper's C++ engine
/// corresponds to the *scalar* rate; [`CpuPerfModel::xeon_8260m_lanes`]
/// projects what the lane kernel would do on the same silicon by
/// scaling with this factor. The CI throughput gate enforces a
/// conservative ≥4x floor; this constant records the actual calibration
/// point.
pub const LANE_KERNEL_SPEEDUP: f64 = 16.2;

/// Calibrated CPU throughput model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPerfModel {
    /// Single-core options/second on the reference workload (1024-entry
    /// curves, ≈5.5y quarterly options).
    pub single_core_rate: f64,
    /// Contention factor `f` of the saturation curve.
    pub contention: f64,
    /// Cores on the socket.
    pub cores: u32,
}

impl CpuPerfModel {
    /// The paper's Xeon Platinum (Cascade Lake) 8260M.
    pub fn xeon_8260m() -> Self {
        CpuPerfModel { single_core_rate: 8738.92, contention: 0.0767, cores: 24 }
    }

    /// The same silicon running the lane kernel instead of the paper's
    /// scalar C++ engine: single-core rate scaled by the measured
    /// [`LANE_KERNEL_SPEEDUP`], same contention-saturation curve (the
    /// kernel changes per-option arithmetic, not the shared
    /// memory-bandwidth ceiling the curve models).
    pub fn xeon_8260m_lanes() -> Self {
        let scalar = Self::xeon_8260m();
        scalar.with_single_core_rate(scalar.single_core_rate * LANE_KERNEL_SPEEDUP)
    }

    /// Parallel speedup over one core at `n` cores.
    pub fn speedup(&self, n: u32) -> f64 {
        assert!(n >= 1 && n <= self.cores, "core count out of range");
        n as f64 / (1.0 + (n - 1) as f64 * self.contention)
    }

    /// Modelled throughput with `n` active cores.
    pub fn options_per_second(&self, n: u32) -> f64 {
        self.single_core_rate * self.speedup(n)
    }

    /// Seconds to price a batch of `options` options on `n` cores.
    pub fn batch_seconds(&self, options: u64, n: u32) -> f64 {
        options as f64 / self.options_per_second(n)
    }

    /// Rescale the model's single-core rate from a host measurement,
    /// keeping the calibrated scaling curve (used to sanity-check the
    /// model against the real machine the harness runs on).
    pub fn with_single_core_rate(self, rate: f64) -> Self {
        CpuPerfModel { single_core_rate: rate, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_matches_table1() {
        let m = CpuPerfModel::xeon_8260m();
        assert!((m.options_per_second(1) - 8738.92).abs() < 1e-6);
    }

    #[test]
    fn full_socket_matches_table2() {
        let m = CpuPerfModel::xeon_8260m();
        let rate = m.options_per_second(24);
        assert!((rate - 75823.77).abs() / 75823.77 < 0.01, "24-core rate {rate} vs paper 75823.77");
    }

    #[test]
    fn scaling_is_sublinear_like_the_paper() {
        // "increased the core count by 24 times but the performance only
        // increases by around nine times".
        let m = CpuPerfModel::xeon_8260m();
        let s = m.speedup(24);
        assert!((8.0..9.5).contains(&s), "speedup {s}");
        // Monotone but with diminishing returns.
        let mut prev = 0.0;
        let mut prev_gain = f64::INFINITY;
        for n in 1..=24 {
            let v = m.speedup(n);
            assert!(v > prev);
            let gain = v - prev;
            assert!(gain <= prev_gain + 1e-12, "returns must diminish at n={n}");
            prev_gain = gain;
            prev = v;
        }
    }

    #[test]
    fn batch_seconds_inverse_of_rate() {
        let m = CpuPerfModel::xeon_8260m();
        let secs = m.batch_seconds(75824, 24);
        assert!((secs - 1.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_cores_rejected() {
        let _ = CpuPerfModel::xeon_8260m().speedup(0);
    }

    #[test]
    fn lane_model_scales_by_calibrated_speedup() {
        let scalar = CpuPerfModel::xeon_8260m();
        let lanes = CpuPerfModel::xeon_8260m_lanes();
        assert!(
            (lanes.single_core_rate - scalar.single_core_rate * LANE_KERNEL_SPEEDUP).abs() < 1e-9
        );
        // The ISSUE's acceptance floor, with margin at the calibration point.
        assert!(lanes.single_core_rate / scalar.single_core_rate >= 4.0);
        // Scaling curve is shared: only the base rate moves.
        assert_eq!(lanes.speedup(24), scalar.speedup(24));
        assert_eq!(lanes.cores, scalar.cores);
    }

    #[test]
    fn rescaling_preserves_curve() {
        let m = CpuPerfModel::xeon_8260m().with_single_core_rate(1000.0);
        assert!((m.options_per_second(1) - 1000.0).abs() < 1e-9);
        assert_eq!(m.speedup(24), CpuPerfModel::xeon_8260m().speedup(24));
    }
}
