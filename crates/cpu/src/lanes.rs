//! Lane-parallel, zero-allocation batch kernel — the CPU counterpart of
//! the paper's Listing-1 transformation.
//!
//! The paper reaches II=1 on the FPGA by breaking the payment-leg loop
//! dependency into independent partial sums. On the CPU the analogous
//! restructuring has two layers:
//!
//! 1. **Shared schedule grids.** Every option of a given payment
//!    frequency visits the same regular schedule points `Δ, 2Δ, …`; only
//!    the final stub at the maturity differs. The kernel therefore
//!    builds, once per frequency, a `FreqGrid`: the point times, the
//!    survival probabilities at those points, and — crucially — the
//!    *running prefix sums* of the three leg accumulators (premium
//!    annuity, protection leg, accrual), computed with exactly the
//!    scalar reference's expressions in exactly its left-to-right order.
//!    Pricing an option then costs `O(1)`: read the prefix state after
//!    its last full point and add the stub term. This collapses the
//!    per-batch transcendental count from `O(options × points)` to
//!    `O(options + grid points)` while remaining **bit-for-bit
//!    identical** to [`CpuCdsEngine::price`], because floating-point
//!    addition of the same terms in the same order is deterministic.
//! 2. **Explicit lanes for the stub.** The per-option stub work is
//!    processed in groups of [`LANES`] options over fixed `[f64; LANES]`
//!    arrays, split into a gather pass, a transcendental pass, and a
//!    branch-free arithmetic pass. Each lane carries independent
//!    accumulators — the same II-breaking trick as Listing 1, applied
//!    across options instead of across schedule points — so the
//!    arithmetic pass auto-vectorizes and the `exp` calls pipeline
//!    without a loop-carried dependency.
//!
//! The kernel owns reusable scratch ([`LaneKernel`]): grids extend
//! lazily as longer maturities appear and are retained across batches,
//! so a steady-state [`LaneKernel::price_into`] call performs no heap
//! allocation at all.

use crate::engine::{CpuBatchStats, CpuCdsEngine};
use cds_quant::option::{CdsOption, PaymentFrequency};
use cds_quant::QuantError;

/// Lane width of the stub kernel: eight 64-bit lanes, matching one
/// AVX-512 register (two AVX2 registers), the width the paper's
/// partial-sum unroll targets.
pub const LANES: usize = 8;

/// Same trip point as `PaymentSchedule::generate`'s runaway guard.
const MAX_SCHEDULE_POINTS: usize = 4_000_000;

#[cold]
fn schedule_panic(reason: &'static str) -> ! {
    let e = QuantError::InvalidOption { reason };
    panic!("option failed schedule generation: {e}");
}

/// Number of *full* schedule points before the maturity stub, i.e. the
/// largest `k` with `Δ·k < maturity` (0 when the maturity falls inside
/// the first period). The scalar loop visits points `1..=k` and then the
/// stub, so `time_points = k + 1`.
///
/// Public because the incremental arrangement in `cds-engine` must
/// derive an option's read set from *exactly* the schedule the kernel
/// walks — a reimplementation that disagreed by one boundary comparison
/// would silently under- or over-invalidate.
///
/// Validation (and its panic wording) mirrors
/// `PaymentSchedule::generate`, and the guard trips in exactly the same
/// cases as the streaming scalar loop: a schedule is rejected iff
/// `k + 1 > 4_000_000`.
///
/// # Panics
/// Panics on an invalid schedule (non-positive/non-finite maturity, or
/// more than 4M points), matching the scalar path.
pub fn full_points(option: &CdsOption) -> usize {
    if option.maturity <= 0.0 || !option.maturity.is_finite() {
        schedule_panic("maturity must be positive and finite");
    }
    let maturity = option.maturity;
    let per_year = option.frequency.per_year();
    let delta = 1.0 / per_year as f64;
    // Coarse early reject: far beyond the guard, the float-faithful
    // adjustment below would crawl and the `as usize` cast could
    // saturate. 4.1M leaves a margin of ~100k points — astronomically
    // more than one ULP of drift — so every schedule rejected here is
    // one the exact rule below would reject too.
    if maturity * per_year as f64 > 4_100_000.0 {
        schedule_panic("schedule too long");
    }
    // Float-faithful k: start from the truncated estimate, then nudge
    // with the *same comparison* the scalar loop performs (`Δ·i`
    // computed in f64), so boundary maturities resolve identically.
    let mut k = (maturity * per_year as f64) as usize;
    while k > 0 && delta * k as f64 >= maturity {
        k -= 1;
    }
    while delta * ((k + 1) as f64) < maturity {
        k += 1;
    }
    if k + 1 > MAX_SCHEDULE_POINTS {
        schedule_panic("schedule too long");
    }
    k
}

/// Map a payment frequency to its grid slot (annual, semi-annual,
/// quarterly, monthly → 0..=3). Shared with the arrangement index in
/// `cds-engine` so its per-frequency buckets line up with the kernel's
/// grids.
pub fn freq_slot(frequency: PaymentFrequency) -> usize {
    match frequency.per_year() {
        1 => 0,
        2 => 1,
        4 => 2,
        _ => 3,
    }
}

/// Shared schedule grid for one payment frequency: point times, survival
/// probabilities, and prefix sums of the scalar reference's three leg
/// accumulators after each full point. Index `j` holds the state after
/// `j` full points (`j = 0` is the pre-loop state: `t = 0`, survival 1,
/// all sums 0).
#[derive(Debug, Clone)]
struct FreqGrid {
    delta: f64,
    t: Vec<f64>,
    surv: Vec<f64>,
    premium: Vec<f64>,
    protection: Vec<f64>,
    accrual: Vec<f64>,
}

impl FreqGrid {
    fn new(per_year: u32) -> Self {
        FreqGrid {
            delta: 1.0 / per_year as f64,
            t: vec![0.0],
            surv: vec![1.0],
            premium: vec![0.0],
            protection: vec![0.0],
            accrual: vec![0.0],
        }
    }

    /// Extend the grid so state after `k` full points is available.
    ///
    /// Each extension step replays the scalar loop body for one regular
    /// point; because the running sums resume from the stored prefix
    /// values, a lazily grown grid is bit-identical to one built in a
    /// single pass.
    fn ensure(&mut self, engine: &CpuCdsEngine, k: usize) {
        while self.t.len() <= k {
            let j = self.t.len();
            let t = self.delta * j as f64;
            let prev_t = self.t[j - 1];
            let prev_survival = self.surv[j - 1];
            let survival = engine.survival(t);
            let period = t - prev_t;
            let mid = 0.5 * (prev_t + t);
            let df = engine.discount_factor(t);
            let df_mid = engine.discount_factor(mid);
            let d_pd = prev_survival - survival;
            self.t.push(t);
            self.surv.push(survival);
            self.premium.push(self.premium[j - 1] + period * df * survival);
            self.protection.push(self.protection[j - 1] + df_mid * d_pd);
            self.accrual.push(self.accrual[j - 1] + 0.5 * period * df_mid * d_pd);
        }
    }
}

/// Reusable lane-kernel scratch bound to one engine.
///
/// The lifetime tie to the engine is deliberate: grids cache
/// curve-dependent values, so reusing scratch across engines would
/// silently misprice. Build one with [`CpuCdsEngine::lane_kernel`] (or
/// [`LaneKernel::new`]) and feed it batches; grids and per-option
/// scratch are retained and grown monotonically, so steady-state
/// pricing allocates nothing.
#[derive(Debug, Clone)]
pub struct LaneKernel<'e> {
    engine: &'e CpuCdsEngine,
    /// One grid per payment frequency (annual, semi-annual, quarterly,
    /// monthly), built lazily to the longest maturity seen.
    grids: [FreqGrid; 4],
    /// Per-option full-point counts for the current batch.
    ks: Vec<u32>,
}

impl<'e> LaneKernel<'e> {
    /// Create a kernel with empty grids bound to `engine`.
    pub fn new(engine: &'e CpuCdsEngine) -> Self {
        LaneKernel {
            engine,
            grids: [FreqGrid::new(1), FreqGrid::new(2), FreqGrid::new(4), FreqGrid::new(12)],
            ks: Vec::new(),
        }
    }

    /// Price `options` into `out` (cleared and resized), returning the
    /// batch's work accounting. Bit-for-bit identical to pricing each
    /// option with [`CpuCdsEngine::price`].
    ///
    /// Steady state (grids already long enough, `out` and scratch at
    /// capacity) performs no heap allocation.
    ///
    /// # Panics
    /// Panics on an invalid schedule, with the same message schedule
    /// generation (and the scalar path) would have produced.
    pub fn price_into(&mut self, options: &[CdsOption], out: &mut Vec<f64>) -> CpuBatchStats {
        self.price_positions_into(options, options.len(), |i| i, out)
    }

    /// Price a *sparse* selection of `options`: position `j` of `out`
    /// receives the spread of `options[indices[j]]`. Bit-for-bit
    /// identical to gathering the selected options into a dense batch
    /// and calling [`LaneKernel::price_into`] — both entry points run
    /// the same gather/transcendental/arithmetic passes, only the index
    /// mapping differs. This is the tick-repricing entry point: the
    /// incremental arrangement hands the kernel the affected ids over
    /// the resident slab without materialising a gathered copy.
    ///
    /// Duplicate indices are allowed (each position prices
    /// independently); indices need not be sorted.
    ///
    /// # Panics
    /// Panics if an index is out of bounds for `options`, or on an
    /// invalid schedule (same wording as the scalar path).
    pub fn price_indices_into(
        &mut self,
        options: &[CdsOption],
        indices: &[u32],
        out: &mut Vec<f64>,
    ) -> CpuBatchStats {
        self.price_positions_into(options, indices.len(), |i| indices[i] as usize, out)
    }

    /// Shared core of the dense and sparse entry points: price the `n`
    /// positions `options[map(0)], …, options[map(n-1)]` into `out`.
    fn price_positions_into(
        &mut self,
        options: &[CdsOption],
        n: usize,
        map: impl Fn(usize) -> usize,
        out: &mut Vec<f64>,
    ) -> CpuBatchStats {
        out.clear();
        out.resize(n, 0.0);
        self.ks.clear();
        self.ks.reserve(n);
        let mut time_points = 0u64;

        // Pass 1: validate, locate each option's last full point, and
        // grow the shared grids to cover the batch.
        for i in 0..n {
            let option = &options[map(i)];
            let k = full_points(option);
            self.grids[freq_slot(option.frequency)].ensure(self.engine, k);
            self.ks.push(k as u32);
            time_points += k as u64 + 1;
        }

        // Pass 2: stub evaluation in lane groups. Tail lanes of the
        // final partial group keep neutral values and are never stored.
        let mut base = 0usize;
        while base < n {
            let active = (n - base).min(LANES);

            // Gather: per-lane inputs and prefix state.
            let mut maturity = [0.0f64; LANES];
            let mut recovery = [0.0f64; LANES];
            let mut prev_t = [0.0f64; LANES];
            let mut prev_survival = [1.0f64; LANES];
            let mut premium = [0.0f64; LANES];
            let mut protection = [0.0f64; LANES];
            let mut accrual = [0.0f64; LANES];
            for lane in 0..active {
                let option = &options[map(base + lane)];
                let k = self.ks[base + lane] as usize;
                let grid = &self.grids[freq_slot(option.frequency)];
                maturity[lane] = option.maturity;
                recovery[lane] = option.recovery_rate;
                prev_t[lane] = grid.t[k];
                prev_survival[lane] = grid.surv[k];
                premium[lane] = grid.premium[k];
                protection[lane] = grid.protection[k];
                accrual[lane] = grid.accrual[k];
            }

            // Transcendental pass: the three exp-bound curve reads per
            // lane, free of any cross-lane dependency.
            let mut survival = [0.0f64; LANES];
            let mut df = [0.0f64; LANES];
            let mut df_mid = [0.0f64; LANES];
            for lane in 0..active {
                let t = maturity[lane];
                let mid = 0.5 * (prev_t[lane] + t);
                survival[lane] = self.engine.survival(t);
                df[lane] = self.engine.discount_factor(t);
                df_mid[lane] = self.engine.discount_factor(mid);
            }

            // Arithmetic pass: branch-free per-lane accumulator updates
            // (the Listing-1 partial sums, one independent set per
            // lane), then the spread formula.
            for lane in 0..active {
                let t = maturity[lane];
                let period = t - prev_t[lane];
                let d_pd = prev_survival[lane] - survival[lane];
                let premium = premium[lane] + period * df[lane] * survival[lane];
                let protection = protection[lane] + df_mid[lane] * d_pd;
                let accrual = accrual[lane] + 0.5 * period * df_mid[lane] * d_pd;
                let lgd = 1.0 - recovery[lane];
                let denom = premium + accrual;
                out[base + lane] =
                    if denom > 0.0 { lgd * protection / denom * 10_000.0 } else { 0.0 };
            }

            base += active;
        }

        CpuBatchStats {
            options: n as u64,
            time_points,
            fused_groups: (n as u64).div_ceil(LANES as u64),
            scalar_fallbacks: 0,
            threads: 1,
        }
    }

    /// Price a batch, allocating a fresh output vector.
    pub fn price_batch(&mut self, options: &[CdsOption]) -> Vec<f64> {
        let mut out = Vec::new();
        self.price_into(options, &mut out);
        out
    }
}

impl CpuCdsEngine {
    /// Create a reusable [`LaneKernel`] bound to this engine.
    pub fn lane_kernel(&self) -> LaneKernel<'_> {
        LaneKernel::new(self)
    }
}

/// One-shot lane pricing: build a kernel, price, return the spreads.
/// [`CpuCdsEngine::price_batch`] dispatches here.
pub fn price_batch_lanes(engine: &CpuCdsEngine, options: &[CdsOption]) -> Vec<f64> {
    LaneKernel::new(engine).price_batch(options)
}

/// One-shot lane pricing with work accounting.
/// [`CpuCdsEngine::price_batch_stats`] dispatches here.
pub fn price_batch_lanes_stats(
    engine: &CpuCdsEngine,
    options: &[CdsOption],
) -> (Vec<f64>, CpuBatchStats) {
    let mut out = Vec::new();
    let stats = LaneKernel::new(engine).price_into(options, &mut out);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_quant::option::{MarketData, PortfolioGenerator};

    fn scalar_bits(engine: &CpuCdsEngine, options: &[CdsOption]) -> Vec<u64> {
        options.iter().map(|o| engine.price(o).spread_bps.to_bits()).collect()
    }

    #[test]
    fn bitwise_identical_to_scalar_across_remainders() {
        let market = MarketData::paper_workload(7);
        let engine = CpuCdsEngine::new(&market);
        let pool = PortfolioGenerator::new(11).portfolio(17);
        let mut kernel = engine.lane_kernel();
        let mut out = Vec::new();
        for n in 0..=pool.len() {
            let batch = &pool[..n];
            kernel.price_into(batch, &mut out);
            let lanes: Vec<u64> = out.iter().map(|s| s.to_bits()).collect();
            assert_eq!(lanes, scalar_bits(&engine, batch), "batch len {n}");
        }
    }

    #[test]
    fn price_indices_bitwise_identical_across_remainders() {
        // The sparse entry point at every lane-remainder length 0..=17,
        // with shuffled, strided and duplicated index patterns over a
        // larger resident slab — out[j] must match the scalar price of
        // slab[indices[j]] bit-for-bit, as in the lane_vs_scalar suite.
        let market = MarketData::paper_workload(7);
        let engine = CpuCdsEngine::new(&market);
        let slab = PortfolioGenerator::new(11).portfolio(64);
        let mut kernel = engine.lane_kernel();
        let mut out = Vec::new();
        for n in 0..=17usize {
            let patterns: [Vec<u32>; 3] = [
                (0..n as u32).collect(),                                      // dense prefix
                (0..n).map(|i| ((i * 13 + 5) % slab.len()) as u32).collect(), // stride
                (0..n).map(|i| ((i / 2) * 7 % slab.len()) as u32).collect(),  // duplicates
            ];
            for (p, indices) in patterns.iter().enumerate() {
                let stats = kernel.price_indices_into(&slab, indices, &mut out);
                assert_eq!(out.len(), n, "pattern {p}, len {n}");
                assert_eq!(stats.options, n as u64);
                for (j, &ix) in indices.iter().enumerate() {
                    assert_eq!(
                        out[j].to_bits(),
                        engine.price(&slab[ix as usize]).spread_bps.to_bits(),
                        "pattern {p}, len {n}, position {j} (slab index {ix})"
                    );
                }
            }
        }
    }

    #[test]
    fn price_indices_matches_gathered_dense_batch() {
        // Sparse pricing over the slab == dense pricing of the gathered
        // options, including grid growth order effects.
        let market = MarketData::paper_workload(13);
        let engine = CpuCdsEngine::new(&market);
        let slab = PortfolioGenerator::new(29).portfolio(40);
        let indices: Vec<u32> = (0..slab.len() as u32).rev().step_by(3).collect();
        let gathered: Vec<CdsOption> = indices.iter().map(|&i| slab[i as usize]).collect();
        let mut sparse_out = Vec::new();
        let sparse_stats =
            engine.lane_kernel().price_indices_into(&slab, &indices, &mut sparse_out);
        let mut dense_out = Vec::new();
        let dense_stats = engine.lane_kernel().price_into(&gathered, &mut dense_out);
        assert_eq!(sparse_out, dense_out);
        assert_eq!(sparse_stats, dense_stats);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn price_indices_out_of_bounds_panics() {
        let market = MarketData::paper_workload(1);
        let engine = CpuCdsEngine::new(&market);
        let slab = PortfolioGenerator::new(2).portfolio(4);
        let mut out = Vec::new();
        let _ = engine.lane_kernel().price_indices_into(&slab, &[4], &mut out);
    }

    #[test]
    fn empty_batch() {
        let market = MarketData::paper_workload(1);
        let engine = CpuCdsEngine::new(&market);
        let (out, stats) = price_batch_lanes_stats(&engine, &[]);
        assert!(out.is_empty());
        assert_eq!(stats, CpuBatchStats { threads: 1, ..CpuBatchStats::default() });
    }

    #[test]
    fn kernel_reuse_extends_grids_identically() {
        // Price short maturities first, then longer ones: the lazily
        // extended grid must match a one-pass build bit-for-bit.
        let market = MarketData::paper_workload(9);
        let engine = CpuCdsEngine::new(&market);
        let mut reused = engine.lane_kernel();
        let short: Vec<CdsOption> = PortfolioGenerator::new(3)
            .portfolio(8)
            .into_iter()
            .map(|mut o| {
                o.maturity = o.maturity.min(2.0);
                o
            })
            .collect();
        let long = PortfolioGenerator::new(3).portfolio(8);
        let mut out = Vec::new();
        reused.price_into(&short, &mut out);
        reused.price_into(&long, &mut out);
        let fresh = price_batch_lanes(&engine, &long);
        assert_eq!(out, fresh);
        assert_eq!(
            out.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            scalar_bits(&engine, &long)
        );
    }

    #[test]
    fn stats_accounting() {
        let market = MarketData::paper_workload(5);
        let engine = CpuCdsEngine::new(&market);
        let opts = PortfolioGenerator::new(17).portfolio(19);
        let (_, stats) = price_batch_lanes_stats(&engine, &opts);
        let expected_points: u64 = opts.iter().map(|o| engine.price(o).time_points as u64).sum();
        assert_eq!(stats.options, 19);
        assert_eq!(stats.time_points, expected_points);
        assert_eq!(stats.fused_groups, 3); // ceil(19 / 8)
        assert_eq!(stats.scalar_fallbacks, 0);
        assert_eq!(stats.threads, 1);
    }

    #[test]
    fn boundary_and_stub_maturities() {
        // Maturities that land exactly on a grid point, inside the first
        // period, and the paper's Listing-1 boundary set.
        let market = MarketData::paper_workload(2);
        let engine = CpuCdsEngine::new(&market);
        let freqs = [
            PaymentFrequency::Annual,
            PaymentFrequency::SemiAnnual,
            PaymentFrequency::Quarterly,
            PaymentFrequency::Monthly,
        ];
        let mut opts = Vec::new();
        for f in freqs {
            for maturity in [0.02, 0.25, 0.5, 1.0, 5.0, 5.5, 7.3, 10.0] {
                opts.push(CdsOption { maturity, frequency: f, recovery_rate: 0.4 });
            }
        }
        let lanes = price_batch_lanes(&engine, &opts);
        assert_eq!(
            lanes.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            scalar_bits(&engine, &opts)
        );
    }

    #[test]
    fn full_points_matches_scalar_time_points() {
        let market = MarketData::paper_workload(4);
        let engine = CpuCdsEngine::new(&market);
        for o in PortfolioGenerator::new(23).portfolio(64) {
            assert_eq!(
                full_points(&o) + 1,
                engine.price(&o).time_points,
                "maturity {} freq {:?}",
                o.maturity,
                o.frequency
            );
        }
    }

    #[test]
    #[should_panic(expected = "maturity must be positive and finite")]
    fn invalid_maturity_panics_like_scalar() {
        let market = MarketData::paper_workload(1);
        let engine = CpuCdsEngine::new(&market);
        let o = CdsOption {
            maturity: f64::NAN,
            frequency: PaymentFrequency::Quarterly,
            recovery_rate: 0.4,
        };
        let _ = price_batch_lanes(&engine, &[o]);
    }

    #[test]
    #[should_panic(expected = "schedule too long")]
    fn runaway_schedule_panics_like_scalar() {
        let market = MarketData::paper_workload(1);
        let engine = CpuCdsEngine::new(&market);
        let o =
            CdsOption { maturity: 5.0e6, frequency: PaymentFrequency::Monthly, recovery_rate: 0.4 };
        let _ = price_batch_lanes(&engine, &[o]);
    }
}
