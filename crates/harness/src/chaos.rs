//! Seeded chaos matrix: fault injection × deployment, with a survival
//! gate.
//!
//! [`run`] drives the engine's fault-injection framework through a fixed
//! matrix of failure scenarios — stage stalls, dropped tokens, in-flight
//! corruption (scrubbed and repriced), engine deaths, mid-run kill plus
//! checkpoint resume, total FPGA loss, and overload shedding — on both
//! the streaming and multi-engine deployments. Every scenario is **deterministic**
//! (seeded fault placement, discrete-event timing, no wall clock), so two
//! runs produce byte-identical reports and the committed baseline
//! (`results/chaos_baseline.json`) can be gated with **exact** equality:
//! any change in survival behaviour, retry counts, or shed counts is a
//! regression.

use crate::json::Json;
use cds_engine::config::EngineVariant;
use cds_engine::multi::MultiEngine;
use cds_engine::retry::RetryPolicy;
use cds_engine::scrub::ScrubPolicy;
use cds_engine::streaming::{
    poisson_arrivals, resume_streaming_from, run_streaming, run_streaming_checkpointed,
    run_streaming_with, AdmissionControl, StreamingPolicy,
};
use cds_engine::tokens::SpreadTok;
use cds_quant::option::{CdsOption, MarketData, PaymentFrequency, PortfolioGenerator};
use dataflow_sim::fault::{FaultEvent, FaultPlan};
use dataflow_sim::Cycle;
use std::rc::Rc;

/// Version of the chaos JSON schema (independent of the bench schema).
/// v2 added `options_quarantined`, per-case `fault_events` hit lists and
/// the corrupt-scrub / kill-resume scenarios.
pub const SCHEMA_VERSION: u64 = 2;

/// Outcome of one chaos scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosCase {
    /// Stable scenario slug, e.g. `streaming/drop`.
    pub name: String,
    /// Faults the plan actually injected.
    pub faults_injected: u64,
    /// Options offered to the deployment.
    pub options_total: u64,
    /// Options that produced a spread.
    pub options_completed: u64,
    /// Options re-priced by failover.
    pub options_retried: u64,
    /// Options shed by admission control.
    pub options_shed: u64,
    /// Options lost in flight (admitted, never completed).
    pub options_lost: u64,
    /// Options the result-integrity scrubber quarantined and repriced.
    pub options_quarantined: u64,
    /// What each injected per-token fault actually hit: stream name,
    /// absolute token index and — when known — the affected option
    /// (rendered [`dataflow_sim::fault::FaultEvent`] records, in
    /// injection order).
    pub fault_events: Vec<String>,
    /// Deployment ran impaired (engine death or CPU fallback).
    pub degraded: bool,
    /// Completed spreads agree with the fault-free run.
    pub spreads_match_clean: bool,
    /// Latency tail stayed within the scenario's bound.
    pub p99_bounded: bool,
    /// The scenario's overall pass verdict.
    pub survived: bool,
}

impl ChaosCase {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("name", Json::Str(self.name.clone())),
            ("faults_injected", Json::Number(self.faults_injected as f64)),
            ("options_total", Json::Number(self.options_total as f64)),
            ("options_completed", Json::Number(self.options_completed as f64)),
            ("options_retried", Json::Number(self.options_retried as f64)),
            ("options_shed", Json::Number(self.options_shed as f64)),
            ("options_lost", Json::Number(self.options_lost as f64)),
            ("options_quarantined", Json::Number(self.options_quarantined as f64)),
            (
                "fault_events",
                Json::Array(self.fault_events.iter().map(|e| Json::Str(e.clone())).collect()),
            ),
            ("degraded", Json::Bool(self.degraded)),
            ("spreads_match_clean", Json::Bool(self.spreads_match_clean)),
            ("p99_bounded", Json::Bool(self.p99_bounded)),
            ("survived", Json::Bool(self.survived)),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, String> {
        let num = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .map(|x| x as u64)
                .ok_or_else(|| format!("chaos case missing numeric field '{key}'"))
        };
        let flag = |key: &str| -> Result<bool, String> {
            match value.get(key) {
                Some(Json::Bool(b)) => Ok(*b),
                _ => Err(format!("chaos case missing boolean field '{key}'")),
            }
        };
        Ok(ChaosCase {
            name: value
                .get("name")
                .and_then(Json::as_str)
                .ok_or("chaos case missing 'name'")?
                .to_string(),
            faults_injected: num("faults_injected")?,
            options_total: num("options_total")?,
            options_completed: num("options_completed")?,
            options_retried: num("options_retried")?,
            options_shed: num("options_shed")?,
            options_lost: num("options_lost")?,
            options_quarantined: num("options_quarantined")?,
            fault_events: value
                .get("fault_events")
                .and_then(Json::as_array)
                .ok_or("chaos case missing 'fault_events' array")?
                .iter()
                .map(|e| {
                    e.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "non-string fault_events entry".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
            degraded: flag("degraded")?,
            spreads_match_clean: flag("spreads_match_clean")?,
            p99_bounded: flag("p99_bounded")?,
            survived: flag("survived")?,
        })
    }
}

/// A full chaos-matrix run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// Schema version of the serialised form ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Seed the fault placements and workloads derive from.
    pub seed: u64,
    /// All scenarios, in matrix order.
    pub cases: Vec<ChaosCase>,
}

impl ChaosReport {
    /// Look a scenario up by its stable name.
    pub fn find(&self, name: &str) -> Option<&ChaosCase> {
        self.cases.iter().find(|c| c.name == name)
    }

    /// True when every scenario survived.
    pub fn all_survived(&self) -> bool {
        self.cases.iter().all(|c| c.survived)
    }

    /// Serialise to the versioned JSON schema.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::Number(self.schema_version as f64)),
            ("seed", Json::Number(self.seed as f64)),
            ("cases", Json::Array(self.cases.iter().map(ChaosCase::to_json).collect())),
        ])
    }

    /// Pretty-printed JSON document (stable: object keys are sorted).
    pub fn pretty(&self) -> String {
        self.to_json().pretty()
    }

    /// Parse a serialised report, validating the schema version.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        let num = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("chaos report missing numeric field '{key}'"))
        };
        let schema_version = num("schema_version")? as u64;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "chaos schema version {schema_version} != supported {SCHEMA_VERSION} — regenerate the baseline"
            ));
        }
        let cases = value
            .get("cases")
            .and_then(Json::as_array)
            .ok_or_else(|| "chaos report missing 'cases' array".to_string())?
            .iter()
            .map(ChaosCase::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ChaosReport { schema_version, seed: num("seed")? as u64, cases })
    }

    /// Parse from JSON text.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&crate::json::parse(text)?)
    }
}

/// Gate `current` against `baseline`. The matrix is fully deterministic,
/// so the comparison is **exact**: every baseline case must be present
/// and field-for-field identical, and no new cases may appear silently.
pub fn compare(baseline: &ChaosReport, current: &ChaosReport) -> Vec<String> {
    let mut problems = Vec::new();
    if baseline.schema_version != current.schema_version {
        problems.push(format!(
            "schema version mismatch: baseline {} vs current {}",
            baseline.schema_version, current.schema_version
        ));
    }
    if baseline.seed != current.seed {
        problems.push(format!(
            "seed mismatch: baseline {} vs current {} — rerun with --seed {}",
            baseline.seed, current.seed, baseline.seed
        ));
    }
    for base in &baseline.cases {
        match current.find(&base.name) {
            None => problems.push(format!("case '{}' missing from current run", base.name)),
            Some(cur) if cur != base => {
                problems.push(format!(
                    "case '{}' changed: baseline {base:?} vs current {cur:?}",
                    base.name
                ));
            }
            Some(_) => {}
        }
    }
    for cur in &current.cases {
        if baseline.find(&cur.name).is_none() {
            problems.push(format!(
                "case '{}' not in baseline — regenerate results/chaos_baseline.json",
                cur.name
            ));
        }
    }
    problems
}

/// Near-equality for recovered spreads: the CPU fallback is numerically
/// identical to the reference pricer, while the FPGA path agrees with it
/// to well under this tolerance.
fn spreads_close(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= 1e-6 * (1.0 + y.abs()))
}

fn uniform_options(n: usize) -> Vec<CdsOption> {
    PortfolioGenerator::uniform(n, 5.5, PaymentFrequency::Quarterly, 0.40)
}

/// Render a run's per-token fault records into the report's stable
/// hit-list form (stream, token index, affected option).
fn event_strings(events: &[FaultEvent]) -> Vec<String> {
    events.iter().map(FaultEvent::to_string).collect()
}

/// Execute the chaos matrix. Deterministic in `seed`.
pub fn run(seed: u64) -> ChaosReport {
    let market = MarketData::paper_workload(seed);
    let shared = Rc::new(market.clone());
    let config = EngineVariant::Vectorised.config();
    let mut cases = Vec::new();

    // -- streaming/stall: a transient slowdown delays but never loses work.
    {
        let opts = uniform_options(8);
        let arrivals: Vec<Cycle> = (0..8).map(|i| i * 40_000).collect();
        let clean = run_streaming(shared.clone(), &config, &opts, &arrivals);
        let policy = StreamingPolicy {
            fault_plan: Some(FaultPlan::new(seed).stall_stage("hazard_out", 5_000, 22)),
            ..Default::default()
        };
        let r = run_streaming_with(shared.clone(), &config, &opts, &arrivals, &policy)
            .unwrap_or_else(|e| panic!("streaming/stall must terminate: {e}"));
        let spreads_match_clean = r.spreads == clean.spreads;
        cases.push(ChaosCase {
            name: "streaming/stall".to_string(),
            faults_injected: r.faults_injected,
            options_total: opts.len() as u64,
            options_completed: r.spreads.len() as u64,
            options_retried: 0,
            options_shed: r.options_shed,
            options_lost: r.options_lost,
            options_quarantined: 0,
            fault_events: event_strings(&r.counters.fault_events),
            degraded: false,
            spreads_match_clean,
            p99_bounded: true,
            survived: r.faults_injected > 0 && r.options_lost == 0 && spreads_match_clean,
        });
    }

    // -- streaming/drop: a lost result is flagged, not hung.
    {
        let opts = uniform_options(6);
        let arrivals: Vec<Cycle> = (0..6).map(|i| i * 50_000).collect();
        let clean = run_streaming(shared.clone(), &config, &opts, &arrivals);
        let policy = StreamingPolicy {
            fault_plan: Some(FaultPlan::new(seed).drop_nth("spreads", 2)),
            ..Default::default()
        };
        let r = run_streaming_with(shared.clone(), &config, &opts, &arrivals, &policy)
            .unwrap_or_else(|e| panic!("streaming/drop must terminate: {e}"));
        // Survivors must match the fault-free spreads at the same indices.
        let survivor_clean: Vec<f64> = clean
            .spreads
            .iter()
            .enumerate()
            .filter(|(i, _)| !r.lost_indices.contains(&(*i as u32)))
            .map(|(_, &s)| s)
            .collect();
        let spreads_match_clean = r.spreads == survivor_clean;
        cases.push(ChaosCase {
            name: "streaming/drop".to_string(),
            faults_injected: r.faults_injected,
            options_total: opts.len() as u64,
            options_completed: r.spreads.len() as u64,
            options_retried: 0,
            options_shed: r.options_shed,
            options_lost: r.options_lost,
            options_quarantined: 0,
            fault_events: event_strings(&r.counters.fault_events),
            degraded: false,
            spreads_match_clean,
            p99_bounded: true,
            survived: r.options_lost == 1 && r.faults_injected > 0 && spreads_match_clean,
        });
    }

    // -- streaming/shed: 2x saturation with M/D/1 admission control — the
    // p99 of admitted traffic stays within 10x the unloaded p99.
    {
        let n = 200;
        let opts = uniform_options(n);
        let service = 22 * config.steady_state_point_cycles(shared.hazard.len());
        let lone = run_streaming(shared.clone(), &config, &opts[..1], &[0]);
        let capacity_per_s = config.clock.hz / service as f64;
        let arrivals = poisson_arrivals(&config, 2.0 * capacity_per_s, n, seed);
        let policy = StreamingPolicy {
            admission: Some(AdmissionControl::from_md1(service, 0.8)),
            ..Default::default()
        };
        let r = run_streaming_with(shared.clone(), &config, &opts, &arrivals, &policy)
            .unwrap_or_else(|e| panic!("streaming/shed must terminate: {e}"));
        let p99_bounded = r.p99_cycles <= 10 * lone.p99_cycles;
        cases.push(ChaosCase {
            name: "streaming/shed".to_string(),
            faults_injected: r.faults_injected,
            options_total: n as u64,
            options_completed: r.spreads.len() as u64,
            options_retried: 0,
            options_shed: r.options_shed,
            options_lost: r.options_lost,
            options_quarantined: 0,
            fault_events: event_strings(&r.counters.fault_events),
            degraded: false,
            spreads_match_clean: true,
            p99_bounded,
            survived: r.options_shed > 0 && r.options_lost == 0 && p99_bounded,
        });
    }

    // -- multi/engine-death: the acceptance scenario. One of the five
    // Table II engines dies mid-run; the batch still completes with
    // spreads identical to the fault-free run.
    {
        let opts = uniform_options(50);
        let multi = match MultiEngine::new(market.clone(), 5) {
            Ok(m) => m,
            Err(e) => panic!("five engines fit the U280: {e}"),
        };
        let clean = multi.price_batch_simulated(&opts);
        let plan = FaultPlan::new(seed).kill_region("e2.", 60_000);
        let r = multi
            .price_batch_resilient_with(&opts, Some(&plan), &RetryPolicy::cascade_failover())
            .unwrap_or_else(|e| panic!("multi/engine-death must recover: {e}"));
        let spreads_match_clean = r.spreads == clean.spreads;
        cases.push(ChaosCase {
            name: "multi/engine-death".to_string(),
            faults_injected: r.faults_injected,
            options_total: opts.len() as u64,
            options_completed: r.spreads.len() as u64,
            options_retried: r.options_retried,
            options_shed: r.options_shed,
            options_lost: 0,
            options_quarantined: 0,
            fault_events: event_strings(&r.counters.fault_events),
            degraded: r.degraded,
            spreads_match_clean,
            p99_bounded: true,
            survived: spreads_match_clean
                && r.degraded
                && r.options_retried > 0
                && r.faults_injected > 0,
        });
    }

    // -- multi/all-dead: every FPGA engine dies; the deployment degrades
    // to the CPU engine and still prices the whole batch.
    {
        let opts = uniform_options(20);
        let multi = match MultiEngine::new(market.clone(), 3) {
            Ok(m) => m,
            Err(e) => panic!("three engines fit the U280: {e}"),
        };
        let clean = multi.price_batch_simulated(&opts);
        let mut plan = FaultPlan::new(seed);
        for k in 0..3 {
            plan = plan.kill_region(format!("e{k}."), 10_000);
        }
        let r = multi
            .price_batch_resilient_with(&opts, Some(&plan), &RetryPolicy::batch_failover())
            .unwrap_or_else(|e| panic!("multi/all-dead must fall back to CPU: {e}"));
        let spreads_match_clean = spreads_close(&r.spreads, &clean.spreads);
        cases.push(ChaosCase {
            name: "multi/all-dead".to_string(),
            faults_injected: r.faults_injected,
            options_total: opts.len() as u64,
            options_completed: r.spreads.len() as u64,
            options_retried: r.options_retried,
            options_shed: r.options_shed,
            options_lost: 0,
            options_quarantined: 0,
            fault_events: event_strings(&r.counters.fault_events),
            degraded: r.degraded,
            spreads_match_clean,
            p99_bounded: true,
            survived: spreads_match_clean && r.degraded && r.spreads.len() == opts.len(),
        });
    }

    // -- multi/stall: a slowdown inside one engine of a three-engine
    // deployment; no retries needed, numerics untouched.
    {
        let opts = uniform_options(24);
        let multi = match MultiEngine::new(market.clone(), 3) {
            Ok(m) => m,
            Err(e) => panic!("three engines fit the U280: {e}"),
        };
        let clean = multi.price_batch_simulated(&opts);
        let plan = FaultPlan::new(seed).stall_stage("e1.hazard_out", 2_000, 22);
        let r = multi
            .price_batch_resilient_with(&opts, Some(&plan), &RetryPolicy::batch_failover())
            .unwrap_or_else(|e| panic!("multi/stall must complete: {e}"));
        let spreads_match_clean = r.spreads == clean.spreads;
        cases.push(ChaosCase {
            name: "multi/stall".to_string(),
            faults_injected: r.faults_injected,
            options_total: opts.len() as u64,
            options_completed: r.spreads.len() as u64,
            options_retried: r.options_retried,
            options_shed: r.options_shed,
            options_lost: 0,
            options_quarantined: 0,
            fault_events: event_strings(&r.counters.fault_events),
            degraded: r.degraded,
            spreads_match_clean,
            p99_bounded: true,
            survived: spreads_match_clean
                && !r.degraded
                && r.options_retried == 0
                && r.faults_injected > 0,
        });
    }

    // -- streaming/corrupt-scrub: two spread tokens are mutated in flight,
    // one blatantly (sign flip — the invariant guards catch it) and one
    // subtly (+0.25 bp, inside the hazard envelope — only the fault
    // event's option identity catches it). The scrubber quarantines both,
    // reprices them on the CPU fallback, and the run converges to the
    // fault-free spreads.
    {
        let opts = uniform_options(8);
        let arrivals: Vec<Cycle> = (0..8).map(|i| i * 40_000).collect();
        let clean = run_streaming(shared.clone(), &config, &opts, &arrivals);
        let plan = FaultPlan::new(seed)
            .corrupt_nth::<SpreadTok>("spreads", 2, |t| SpreadTok {
                spread_bps: -t.spread_bps,
                ..t
            })
            .corrupt_nth::<SpreadTok>("spreads", 5, |t| SpreadTok {
                spread_bps: t.spread_bps + 0.25,
                ..t
            });
        let policy = StreamingPolicy {
            fault_plan: Some(plan),
            scrub: Some(ScrubPolicy { cross_check_every: 0 }),
            ..Default::default()
        };
        let r = run_streaming_with(shared.clone(), &config, &opts, &arrivals, &policy)
            .unwrap_or_else(|e| panic!("streaming/corrupt-scrub must terminate: {e}"));
        let quarantined = r.scrub.as_ref().map_or(0, |s| s.options_quarantined);
        let spreads_match_clean = spreads_close(&r.spreads, &clean.spreads);
        cases.push(ChaosCase {
            name: "streaming/corrupt-scrub".to_string(),
            faults_injected: r.faults_injected,
            options_total: opts.len() as u64,
            options_completed: r.spreads.len() as u64,
            options_retried: 0,
            options_shed: r.options_shed,
            options_lost: r.options_lost,
            options_quarantined: quarantined,
            fault_events: event_strings(&r.counters.fault_events),
            degraded: false,
            spreads_match_clean,
            p99_bounded: true,
            survived: r.faults_injected == 2
                && quarantined == 2
                && r.options_lost == 0
                && spreads_match_clean,
        });
    }

    // -- multi/corrupt-scrub: corruption inside two engines of a
    // three-engine deployment — one NaN (guards) and one subtle bias
    // (taint tracking). Scrubbed spreads converge to the clean batch.
    {
        let opts = uniform_options(24);
        let multi = match MultiEngine::new(market.clone(), 3) {
            Ok(m) => m,
            Err(e) => panic!("three engines fit the U280: {e}"),
        };
        let clean = multi.price_batch_simulated(&opts);
        let plan = FaultPlan::new(seed)
            .corrupt_nth::<SpreadTok>("e1.spreads", 3, |t| SpreadTok { spread_bps: f64::NAN, ..t })
            .corrupt_nth::<SpreadTok>("e0.spreads", 1, |t| SpreadTok {
                spread_bps: t.spread_bps + 0.25,
                ..t
            });
        let scrub = ScrubPolicy { cross_check_every: 0 };
        let r = multi
            .price_batch_resilient_scrubbed_with(
                &opts,
                Some(&plan),
                &RetryPolicy::batch_failover(),
                &scrub,
            )
            .unwrap_or_else(|e| panic!("multi/corrupt-scrub must recover: {e}"));
        let quarantined = r.scrub.as_ref().map_or(0, |s| s.options_quarantined);
        let spreads_match_clean = spreads_close(&r.spreads, &clean.spreads);
        cases.push(ChaosCase {
            name: "multi/corrupt-scrub".to_string(),
            faults_injected: r.faults_injected,
            options_total: opts.len() as u64,
            options_completed: r.spreads.len() as u64,
            options_retried: r.options_retried,
            options_shed: r.options_shed,
            options_lost: 0,
            options_quarantined: quarantined,
            fault_events: event_strings(&r.counters.fault_events),
            degraded: r.degraded,
            spreads_match_clean,
            p99_bounded: true,
            survived: r.faults_injected == 2 && quarantined == 2 && spreads_match_clean,
        });
    }

    // -- streaming/kill-resume: the engine dies mid-run with a write-ahead
    // journal at cadence 3; the resumed run picks up from the last
    // checkpoint and reproduces the fault-free spreads bit-for-bit.
    {
        let n = 12usize;
        let opts = uniform_options(n);
        let arrivals: Vec<Cycle> = (0..n as u64).map(|i| i * 30_000).collect();
        let clean = run_streaming(shared.clone(), &config, &opts, &arrivals);
        let policy = StreamingPolicy {
            fault_plan: Some(FaultPlan::new(seed).kill_region("", arrivals[n / 2])),
            ..Default::default()
        };
        let mut checkpoints = Vec::new();
        let killed = run_streaming_checkpointed(
            shared.clone(),
            &config,
            &opts,
            &arrivals,
            &policy,
            3,
            |c| checkpoints.push(c.clone()),
        )
        .unwrap_or_else(|e| panic!("streaming/kill-resume kill leg must terminate: {e}"));
        let last = checkpoints
            .last()
            .cloned()
            .unwrap_or_else(|| panic!("streaming/kill-resume must emit at least one checkpoint"));
        let resumed = resume_streaming_from(
            shared.clone(),
            &config,
            &opts,
            &arrivals,
            &StreamingPolicy::default(),
            &last,
        )
        .unwrap_or_else(|e| panic!("streaming/kill-resume resume leg must succeed: {e}"));
        let spreads_match_clean = resumed.spreads == clean.spreads;
        cases.push(ChaosCase {
            name: "streaming/kill-resume".to_string(),
            faults_injected: killed.faults_injected,
            options_total: n as u64,
            options_completed: resumed.spreads.len() as u64,
            options_retried: (n - last.completed.len()) as u64,
            options_shed: resumed.options_shed,
            options_lost: resumed.options_lost,
            options_quarantined: 0,
            fault_events: event_strings(&killed.counters.fault_events),
            degraded: true,
            spreads_match_clean,
            p99_bounded: true,
            survived: killed.options_lost > 0
                && resumed.options_lost == 0
                && resumed.spreads.len() == n
                && spreads_match_clean,
        });
    }

    ChaosReport { schema_version: SCHEMA_VERSION, seed, cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ChaosReport {
        run(42)
    }

    #[test]
    fn chaos_matrix_is_deterministic() {
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b);
        assert_eq!(a.pretty(), b.pretty());
    }

    #[test]
    fn every_scenario_survives() {
        let r = report();
        for c in &r.cases {
            assert!(c.survived, "case {} failed: {c:?}", c.name);
        }
        assert!(r.all_survived());
    }

    #[test]
    fn matrix_covers_deployments_and_fault_kinds() {
        let r = report();
        for name in [
            "streaming/stall",
            "streaming/drop",
            "streaming/shed",
            "multi/engine-death",
            "multi/all-dead",
            "multi/stall",
            "streaming/corrupt-scrub",
            "multi/corrupt-scrub",
            "streaming/kill-resume",
        ] {
            assert!(r.find(name).is_some(), "missing case {name}");
        }
        // The acceptance scenario's exact contract.
        let death = r.find("multi/engine-death").expect("engine-death case");
        assert!(death.degraded && death.options_retried > 0 && death.spreads_match_clean);
        let shed = r.find("streaming/shed").expect("shed case");
        assert!(shed.options_shed > 0 && shed.p99_bounded && shed.options_lost == 0);
    }

    #[test]
    fn corruption_scenarios_quarantine_and_converge() {
        let r = report();
        for name in ["streaming/corrupt-scrub", "multi/corrupt-scrub"] {
            let c = r.find(name).expect(name);
            assert_eq!(c.options_quarantined, 2, "{name}: {c:?}");
            assert!(c.spreads_match_clean, "{name} must converge to fault-free spreads");
            assert_eq!(c.fault_events.len(), 2, "{name}: {:?}", c.fault_events);
            for hit in &c.fault_events {
                assert!(hit.starts_with("corrupt"), "{name} hit {hit}");
                assert!(hit.contains("opt "), "{name} hit {hit} must name the option");
            }
        }
    }

    #[test]
    fn kill_resume_recovers_every_option() {
        let r = report();
        let c = r.find("streaming/kill-resume").expect("kill-resume case");
        assert!(c.options_retried > 0, "the resume must have had work left: {c:?}");
        assert_eq!(c.options_lost, 0);
        assert_eq!(c.options_completed, c.options_total);
        assert!(c.spreads_match_clean, "resumed spreads must be bit-identical to clean");
    }

    #[test]
    fn stall_hits_name_the_stream_and_option() {
        let c = report().find("streaming/stall").cloned().expect("stall case");
        assert_eq!(c.fault_events.len() as u64, c.faults_injected);
        assert!(
            c.fault_events.iter().all(|h| h.starts_with("stall hazard_out[")),
            "{:?}",
            c.fault_events
        );
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report();
        let back = ChaosReport::parse(&r.pretty()).expect("parse own output");
        assert_eq!(back, r);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut r = report();
        r.schema_version = SCHEMA_VERSION + 1;
        let err = match ChaosReport::parse(&r.pretty()) {
            Err(e) => e,
            Ok(_) => panic!("future schema must be rejected"),
        };
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn compare_is_exact() {
        let base = report();
        assert!(compare(&base, &base).is_empty());
        let mut changed = base.clone();
        changed.cases[0].options_retried += 1;
        let problems = compare(&base, &changed);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("changed"), "{problems:?}");
        let mut missing = base.clone();
        missing.cases.pop();
        assert!(compare(&base, &missing).iter().any(|p| p.contains("missing")));
    }
}
