//! Wall-clock throughput measurement with a CI regression gate.
//!
//! Unlike the [`crate::bench`] ladder — which is fully deterministic and
//! would not notice a 5x hot-path regression — this module actually
//! times the CPU engines on the machine it runs on and reports
//! options/second. [`run`] measures three rows (scalar reference on one
//! thread, lane kernel on one thread, lane kernel across a pinned thread
//! count) after a warm-up pass; [`compare`] gates a report against a
//! committed baseline (`results/throughput_baseline.json`) with a
//! generous relative tolerance for runner noise, plus one *relative*
//! invariant that is immune to machine speed: the lane kernel must stay
//! at least [`MIN_LANE_SPEEDUP`]× faster than the scalar reference on a
//! single thread.

use crate::json::Json;
use crate::workload::Workload;
use cds_cpu::parallel::price_parallel;
use cds_cpu::CpuCdsEngine;
use std::time::{Duration, Instant};

/// Version of the throughput JSON schema. Bump on any incompatible
/// change so `--check` refuses stale baselines loudly (exit 2, not a
/// silent pass).
pub const SCHEMA_VERSION: u64 = 1;

/// Default option-batch size of a throughput run: large enough that one
/// pass amortises kernel setup, small enough that a pass is well under a
/// second even for the scalar row.
pub const DEFAULT_THROUGHPUT_BATCH: usize = 8192;

/// Default relative gate width — deliberately generous, since CI runners
/// share hardware and wall-clock numbers jitter far more than the
/// deterministic ladder's.
pub const DEFAULT_THROUGHPUT_TOLERANCE: f64 = 0.40;

/// Default pinned thread count of the multi-threaded row — kept at two
/// so the row measures the same parallelism on a laptop, a CI runner and
/// a large server.
pub const DEFAULT_THROUGHPUT_THREADS: usize = 2;

/// The machine-independent floor on `lane_speedup_1t`: the lane kernel
/// must beat the scalar reference by at least this factor on one thread
/// (the ISSUE's ≥4x acceptance criterion). Checked without tolerance —
/// both sides of the ratio see the same machine noise.
pub const MIN_LANE_SPEEDUP: f64 = 4.0;

/// Minimum timed window per row; iteration continues until both this
/// and [`MIN_SAMPLE_ITERS`] are reached.
const DEFAULT_MIN_SAMPLE: Duration = Duration::from_millis(300);

/// Minimum timed passes per row.
const MIN_SAMPLE_ITERS: u32 = 3;

/// One measured kernel configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Stable row name (`cpu/scalar-1t`, `cpu/lanes-1t`, `cpu/lanes-mt`).
    pub name: String,
    /// Measured wall-clock options per second.
    pub options_per_second: f64,
}

/// One wall-clock throughput run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Schema version of the serialised form ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// RNG seed the workload was generated from.
    pub seed: u64,
    /// Options per timed pass.
    pub batch: usize,
    /// Thread count of the `cpu/lanes-mt` row; the gate requires the
    /// baseline and current run to agree, so floors stay comparable.
    pub pinned_threads: usize,
    /// Single-thread lane-kernel speedup over the scalar reference
    /// (`cpu/lanes-1t` / `cpu/scalar-1t`).
    pub lane_speedup_1t: f64,
    /// The speedup floor this report was gated against
    /// ([`MIN_LANE_SPEEDUP`]).
    pub min_lane_speedup: f64,
    /// All measured rows, in a stable order.
    pub rows: Vec<ThroughputRow>,
}

impl ThroughputReport {
    /// Look a row up by its stable name.
    pub fn find(&self, name: &str) -> Option<&ThroughputRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Serialise to the versioned JSON schema.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::Number(self.schema_version as f64)),
            ("seed", Json::Number(self.seed as f64)),
            ("batch", Json::Number(self.batch as f64)),
            ("pinned_threads", Json::Number(self.pinned_threads as f64)),
            ("lane_speedup_1t", Json::Number(self.lane_speedup_1t)),
            ("min_lane_speedup", Json::Number(self.min_lane_speedup)),
            (
                "rows",
                Json::Array(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::object(vec![
                                ("name", Json::Str(r.name.clone())),
                                ("options_per_second", Json::Number(r.options_per_second)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Pretty-printed JSON document (stable: object keys are sorted).
    pub fn pretty(&self) -> String {
        self.to_json().pretty()
    }

    /// Parse a serialised report, validating the schema version.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        let num = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("throughput report missing numeric field '{key}'"))
        };
        let schema_version = num("schema_version")? as u64;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "throughput schema version {schema_version} != supported {SCHEMA_VERSION} — regenerate the baseline"
            ));
        }
        let rows = value
            .get("rows")
            .and_then(Json::as_array)
            .ok_or_else(|| "throughput report missing 'rows' array".to_string())?
            .iter()
            .map(|row| {
                let name = row
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "throughput row missing 'name'".to_string())?;
                let ops = row
                    .get("options_per_second")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| "throughput row missing 'options_per_second'".to_string())?;
                Ok(ThroughputRow { name: name.to_string(), options_per_second: ops })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ThroughputReport {
            schema_version,
            seed: num("seed")? as u64,
            batch: num("batch")? as usize,
            pinned_threads: num("pinned_threads")? as usize,
            lane_speedup_1t: num("lane_speedup_1t")?,
            min_lane_speedup: num("min_lane_speedup")?,
            rows,
        })
    }

    /// Parse from JSON text.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&crate::json::parse(text)?)
    }
}

/// Time repeated passes of `pass` (which returns options priced per
/// pass) after one untimed warm-up, until at least `min_sample` has
/// elapsed *and* [`MIN_SAMPLE_ITERS`] passes ran. Returns options/s.
fn measure(mut pass: impl FnMut() -> usize, min_sample: Duration) -> f64 {
    // Warm-up: populates lane-kernel grids, faults pages, spins up the
    // frequency governor — everything the steady state should not pay.
    pass();
    let start = Instant::now();
    let mut priced = 0usize;
    let mut iters = 0u32;
    loop {
        priced += pass();
        iters += 1;
        let elapsed = start.elapsed();
        if iters >= MIN_SAMPLE_ITERS && elapsed >= min_sample {
            return priced as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
        }
    }
}

/// Measure the three throughput rows with the default sample window.
pub fn run(seed: u64, batch: usize, threads: usize) -> ThroughputReport {
    run_with(seed, batch, threads, DEFAULT_MIN_SAMPLE)
}

/// As [`run`], with an explicit minimum sample window (tests use a tiny
/// window; CI uses the default).
pub fn run_with(seed: u64, batch: usize, threads: usize, min_sample: Duration) -> ThroughputReport {
    assert!(threads >= 1, "need at least one thread");
    // A realistic mixed book (1–10y maturities, all four frequencies),
    // so all lane-kernel grids are exercised rather than one shared
    // schedule.
    let w = Workload::mixed(seed, batch);
    let engine = CpuCdsEngine::new(&w.market);

    let scalar_1t = measure(|| engine.price_batch_scalar(&w.options).len(), min_sample);

    // Steady-state lane kernel: scratch and grids reused across passes,
    // as a long-running pricing service would.
    let mut kernel = engine.lane_kernel();
    let mut out = Vec::new();
    let lanes_1t = measure(
        || {
            kernel.price_into(&w.options, &mut out);
            out.len()
        },
        min_sample,
    );

    let lanes_mt = measure(|| price_parallel(&engine, &w.options, threads).len(), min_sample);

    ThroughputReport {
        schema_version: SCHEMA_VERSION,
        seed,
        batch,
        pinned_threads: threads,
        lane_speedup_1t: lanes_1t / scalar_1t,
        min_lane_speedup: MIN_LANE_SPEEDUP,
        rows: vec![
            ThroughputRow { name: "cpu/scalar-1t".to_string(), options_per_second: scalar_1t },
            ThroughputRow { name: "cpu/lanes-1t".to_string(), options_per_second: lanes_1t },
            ThroughputRow { name: "cpu/lanes-mt".to_string(), options_per_second: lanes_mt },
        ],
    }
}

/// Gate `current` against `baseline`: one message per problem (empty =
/// pass). Throughput may not drop below `baseline·(1−tolerance)`, the
/// row set and pinned thread count may not drift, and the current run's
/// lane speedup must clear the baseline's recorded floor (no tolerance —
/// the ratio cancels machine speed).
pub fn compare(
    baseline: &ThroughputReport,
    current: &ThroughputReport,
    tolerance: f64,
) -> Vec<String> {
    let mut problems = Vec::new();
    if baseline.schema_version != current.schema_version {
        problems.push(format!(
            "schema version mismatch: baseline {} vs current {}",
            baseline.schema_version, current.schema_version
        ));
    }
    if baseline.pinned_threads != current.pinned_threads {
        problems.push(format!(
            "pinned thread count changed: baseline {} vs current {} — floors are not comparable",
            baseline.pinned_threads, current.pinned_threads
        ));
    }
    for base in &baseline.rows {
        let Some(cur) = current.find(&base.name) else {
            problems.push(format!("row '{}' missing from current run", base.name));
            continue;
        };
        if base.options_per_second > 0.0
            && cur.options_per_second < base.options_per_second * (1.0 - tolerance)
        {
            problems.push(format!(
                "{}: throughput regressed {:.0} -> {:.0} options/s (tolerance {:.0}%)",
                base.name,
                base.options_per_second,
                cur.options_per_second,
                tolerance * 100.0
            ));
        }
    }
    for cur in &current.rows {
        if baseline.find(&cur.name).is_none() {
            problems.push(format!(
                "row '{}' not in baseline — regenerate results/throughput_baseline.json",
                cur.name
            ));
        }
    }
    if current.lane_speedup_1t < baseline.min_lane_speedup {
        problems.push(format!(
            "lane kernel speedup {:.2}x fell below the required {:.2}x floor",
            current.lane_speedup_1t, baseline.min_lane_speedup
        ));
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_run() -> ThroughputReport {
        // A tiny batch and window: this is a plumbing test, not a
        // benchmark — rates are real but noisy.
        run_with(11, 64, 2, Duration::from_millis(1))
    }

    #[test]
    fn rows_and_speedup_are_populated() {
        let r = quick_run();
        for name in ["cpu/scalar-1t", "cpu/lanes-1t", "cpu/lanes-mt"] {
            let row = r.find(name).unwrap_or_else(|| panic!("missing row {name}"));
            assert!(row.options_per_second > 0.0, "{name} has zero throughput");
        }
        assert!(r.lane_speedup_1t > 0.0);
        assert_eq!(r.min_lane_speedup, MIN_LANE_SPEEDUP);
        assert_eq!(r.pinned_threads, 2);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = quick_run();
        let back = match ThroughputReport::parse(&r.pretty()) {
            Ok(b) => b,
            Err(e) => panic!("parse own output: {e}"),
        };
        assert_eq!(back, r);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut r = quick_run();
        r.schema_version = SCHEMA_VERSION + 1;
        let err = match ThroughputReport::parse(&r.pretty()) {
            Ok(_) => panic!("stale schema must be rejected"),
            Err(e) => e,
        };
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn compare_passes_identical_runs_when_speedup_clears_floor() {
        let mut r = quick_run();
        r.lane_speedup_1t = MIN_LANE_SPEEDUP + 1.0; // decouple from noise
        assert_eq!(compare(&r, &r, DEFAULT_THROUGHPUT_TOLERANCE), Vec::<String>::new());
    }

    #[test]
    fn compare_flags_regression_drift_and_speedup_floor() {
        let mut base = quick_run();
        base.lane_speedup_1t = MIN_LANE_SPEEDUP + 1.0;
        let mut bad = base.clone();
        bad.rows[1].options_per_second = base.rows[1].options_per_second * 0.5;
        bad.rows.push(ThroughputRow { name: "cpu/new".to_string(), options_per_second: 1.0 });
        bad.pinned_threads += 1;
        bad.lane_speedup_1t = MIN_LANE_SPEEDUP - 1.0;
        let problems = compare(&base, &bad, DEFAULT_THROUGHPUT_TOLERANCE);
        assert!(problems.iter().any(|p| p.contains("throughput regressed")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("not in baseline")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("pinned thread count")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("fell below")), "{problems:?}");
    }

    #[test]
    fn compare_flags_missing_row() {
        let mut base = quick_run();
        base.lane_speedup_1t = MIN_LANE_SPEEDUP + 1.0;
        let mut cur = base.clone();
        cur.rows.remove(0);
        let problems = compare(&base, &cur, DEFAULT_THROUGHPUT_TOLERANCE);
        assert!(problems.iter().any(|p| p.contains("missing from current")), "{problems:?}");
    }

    #[test]
    fn compare_tolerates_runner_noise() {
        let mut base = quick_run();
        base.lane_speedup_1t = MIN_LANE_SPEEDUP + 1.0;
        let mut wiggle = base.clone();
        for row in &mut wiggle.rows {
            row.options_per_second *= 1.0 - DEFAULT_THROUGHPUT_TOLERANCE + 0.05;
        }
        assert_eq!(compare(&base, &wiggle, DEFAULT_THROUGHPUT_TOLERANCE), Vec::<String>::new());
    }
}
