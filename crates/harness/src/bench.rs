//! Machine-readable benchmark ladder with a regression gate.
//!
//! [`run`] executes the paper's full experiment ladder — the Table I
//! engine variants, the Table II multi-engine sweep, three streaming
//! load points and the CPU thread sweep — entirely on deterministic
//! models (the cycle-accurate simulator for the FPGA backends, the
//! calibrated Cascade Lake model for the CPU; never wall clock), so two
//! runs with the same seed produce byte-identical reports. [`compare`]
//! gates one report against a committed baseline
//! (`results/bench_baseline.json`): throughput may not drop and latency
//! may not rise by more than the tolerance, and the metric set itself
//! may not silently drift.

use crate::json::Json;
use crate::metrics::RunMetrics;
use crate::workload::Workload;
use cds_cpu::parallel::price_parallel_stats;
use cds_cpu::{CpuCdsEngine, CpuPerfModel};
use cds_engine::config::{EngineConfig, EngineVariant};
use cds_engine::multi::MultiEngine;
use cds_engine::streaming::{poisson_arrivals, run_streaming};
use cds_engine::FpgaCdsEngine;
use cds_power::{CpuPowerModel, FpgaPowerModel};
use dataflow_sim::resource::Device;
use dataflow_sim::trace::TraceRecorder;
use std::rc::Rc;

/// Version of the bench JSON schema. Bump on any incompatible change to
/// the report layout so `--check` refuses stale baselines loudly.
pub const SCHEMA_VERSION: u64 = 1;

/// Default option-batch size for `bench` runs — smaller than the
/// table-rendering default so the five-engine simulations stay quick in
/// CI, large enough to amortise fills and restarts.
pub const DEFAULT_BENCH_BATCH: usize = 96;

/// Streaming runs use at most this many arrivals (overload queues grow
/// with the arrival count, not the batch size).
const STREAMING_ARRIVALS: usize = 48;

/// CPU thread counts swept (the paper's machine tops out at 24 cores).
const CPU_THREADS: [u32; 6] = [1, 2, 4, 8, 16, 24];

/// One full deterministic benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version of the serialised form ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// RNG seed the workload and arrivals were generated from.
    pub seed: u64,
    /// Option-batch size of the batch experiments.
    pub batch: usize,
    /// All runs, in ladder order.
    pub metrics: Vec<RunMetrics>,
}

impl BenchReport {
    /// Look a run up by its stable name.
    pub fn find(&self, name: &str) -> Option<&RunMetrics> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serialise to the versioned JSON schema.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::Number(self.schema_version as f64)),
            ("seed", Json::Number(self.seed as f64)),
            ("batch", Json::Number(self.batch as f64)),
            ("metrics", Json::Array(self.metrics.iter().map(RunMetrics::to_json).collect())),
        ])
    }

    /// Pretty-printed JSON document (stable: object keys are sorted).
    pub fn pretty(&self) -> String {
        self.to_json().pretty()
    }

    /// Parse a serialised report, validating the schema version.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        let num = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("bench report missing numeric field '{key}'"))
        };
        let schema_version = num("schema_version")? as u64;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "bench schema version {schema_version} != supported {SCHEMA_VERSION} — regenerate the baseline"
            ));
        }
        let metrics = value
            .get("metrics")
            .and_then(Json::as_array)
            .ok_or_else(|| "bench report missing 'metrics' array".to_string())?
            .iter()
            .map(RunMetrics::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            schema_version,
            seed: num("seed")? as u64,
            batch: num("batch")? as usize,
            metrics,
        })
    }

    /// Parse from JSON text.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&crate::json::parse(text)?)
    }
}

/// Kebab-case metric slug of a Table I variant.
fn variant_slug(v: EngineVariant) -> &'static str {
    match v {
        EngineVariant::XilinxBaseline => "xilinx-baseline",
        EngineVariant::OptimisedDataflow => "optimised-dataflow",
        EngineVariant::InterOption => "inter-option",
        EngineVariant::Vectorised => "vectorised",
    }
}

/// A variant config with a fresh busy-span recorder attached, so the
/// run's utilisation and occupancy counters are populated.
fn traced_config(v: EngineVariant) -> EngineConfig {
    let mut config = v.config();
    config.trace = Some(TraceRecorder::new());
    config
}

/// Execute the full ladder. Deterministic: same `seed` and `batch` give
/// an identical report (all FPGA numbers come from the discrete-event
/// simulator, all CPU numbers from the calibrated model).
pub fn run(seed: u64, batch: usize) -> BenchReport {
    let w = Workload::paper(seed, batch);
    let fpga_power = FpgaPowerModel::alveo_u280_cds();
    let cpu_power = CpuPowerModel::xeon_8260m();
    let cpu_model = CpuPerfModel::xeon_8260m();
    let cpu_engine = CpuCdsEngine::new(&w.market);
    let mut metrics = Vec::new();

    // Table I: the paper's CPU reference core, then the variant ladder.
    let (_, core_stats) = cpu_engine.price_batch_stats(&w.options);
    metrics.push(RunMetrics::from_cpu_model(
        "table1/cpu-core",
        cpu_model.options_per_second(1),
        &core_stats,
        cpu_power.watts(1),
    ));
    for v in EngineVariant::ALL {
        let engine = FpgaCdsEngine::new(w.market.clone(), traced_config(v));
        let report = engine.price_batch(&w.options);
        metrics.push(RunMetrics::from_engine_report(
            &format!("table1/{}", variant_slug(v)),
            &report,
            fpga_power.watts(1),
        ));
    }

    // Table II: 1–5 vectorised engines in a single simulation, plus the
    // 24-core CPU row.
    for n in 1..=5usize {
        let multi = match MultiEngine::with_config(
            w.market.clone(),
            traced_config(EngineVariant::Vectorised),
            Device::alveo_u280(),
            n,
        ) {
            Ok(m) => m,
            Err(e) => panic!("1..=5 engines must fit the U280: {e}"),
        };
        let report = multi.price_batch_simulated(&w.options);
        metrics.push(RunMetrics::from_multi_report(
            &format!("table2/engines-{n}"),
            &report,
            fpga_power.watts(n as u32),
        ));
    }
    let (_, socket_stats) = price_parallel_stats(&cpu_engine, &w.options, 24);
    metrics.push(RunMetrics::from_cpu_model(
        "table2/cpu-24-core",
        cpu_model.options_per_second(24),
        &socket_stats,
        cpu_power.watts(24),
    ));

    // Streaming: light load (latency = pipeline fill), near saturation
    // (queueing dominates) and overload (input FIFOs fill, backpressure).
    let market = Rc::new(w.market.clone());
    let stream_opts = &w.options[..w.options.len().min(STREAMING_ARRIVALS)];
    for (label, rate) in [("light", 13_000.0), ("saturated", 25_000.0), ("overload", 120_000.0)] {
        let config = traced_config(EngineVariant::Vectorised);
        let arrivals = poisson_arrivals(&config, rate, stream_opts.len(), seed);
        let report = run_streaming(market.clone(), &config, stream_opts, &arrivals);
        metrics.push(RunMetrics::from_streaming_report(
            &format!("streaming/{label}"),
            &report,
            &config,
            fpga_power.watts(1),
        ));
    }

    // CPU thread sweep: modelled throughput, real work accounting.
    for threads in CPU_THREADS {
        let (_, stats) = price_parallel_stats(&cpu_engine, &w.options, threads as usize);
        metrics.push(RunMetrics::from_cpu_model(
            &format!("cpu/threads-{threads}"),
            cpu_model.options_per_second(threads),
            &stats,
            cpu_power.watts(threads),
        ));
    }

    BenchReport { schema_version: SCHEMA_VERSION, seed, batch, metrics }
}

/// Gate `current` against `baseline`: returns one message per detected
/// regression (empty = pass). With tolerance `t`, throughput below
/// `baseline·(1−t)` and latency above `baseline·(1+t)` regress; metrics
/// present on only one side are schema drift and also fail.
pub fn compare(baseline: &BenchReport, current: &BenchReport, tolerance: f64) -> Vec<String> {
    let mut problems = Vec::new();
    if baseline.schema_version != current.schema_version {
        problems.push(format!(
            "schema version mismatch: baseline {} vs current {}",
            baseline.schema_version, current.schema_version
        ));
    }
    for base in &baseline.metrics {
        let Some(cur) = current.find(&base.name) else {
            problems.push(format!("metric '{}' missing from current run", base.name));
            continue;
        };
        if base.options_per_second > 0.0
            && cur.options_per_second < base.options_per_second * (1.0 - tolerance)
        {
            problems.push(format!(
                "{}: throughput regressed {:.2} -> {:.2} options/s (tolerance {:.0}%)",
                base.name,
                base.options_per_second,
                cur.options_per_second,
                tolerance * 100.0
            ));
        }
        for (what, b, c) in [
            ("p99 latency", base.p99_latency_us, cur.p99_latency_us),
            ("max latency", base.max_latency_us, cur.max_latency_us),
        ] {
            if b > 0.0 && c > b * (1.0 + tolerance) {
                problems.push(format!(
                    "{}: {what} regressed {b:.2} -> {c:.2} us (tolerance {:.0}%)",
                    base.name,
                    tolerance * 100.0
                ));
            }
        }
    }
    for cur in &current.metrics {
        if baseline.find(&cur.name).is_none() {
            problems.push(format!(
                "metric '{}' not in baseline — regenerate results/bench_baseline.json",
                cur.name
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_run() -> BenchReport {
        run(5, 10)
    }

    #[test]
    fn bench_is_deterministic() {
        // The ISSUE's contract: two runs with the same seed produce
        // identical RunMetrics — nothing in the ladder may consult wall
        // clock or unseeded randomness.
        let a = run(7, 12);
        let b = run(7, 12);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.pretty(), b.pretty());
    }

    #[test]
    fn ladder_covers_all_experiments() {
        let r = small_run();
        for name in [
            "table1/cpu-core",
            "table1/xilinx-baseline",
            "table1/optimised-dataflow",
            "table1/inter-option",
            "table1/vectorised",
            "table2/engines-1",
            "table2/engines-2",
            "table2/engines-3",
            "table2/engines-4",
            "table2/engines-5",
            "table2/cpu-24-core",
            "streaming/light",
            "streaming/saturated",
            "streaming/overload",
            "cpu/threads-1",
            "cpu/threads-24",
        ] {
            let m = r.find(name).unwrap_or_else(|| panic!("missing metric {name}"));
            assert!(m.options_per_second > 0.0, "{name} has zero throughput");
            assert!(m.watts > 0.0, "{name} has zero power");
        }
        // Traced FPGA runs must carry real telemetry.
        let vec = r.find("table1/vectorised").unwrap();
        assert!(vec.mean_utilisation > 0.0 && vec.mean_utilisation <= 1.0);
        assert!(vec.occupancy_high_water > 0);
        // Streaming overload must expose queueing in the percentiles.
        let over = r.find("streaming/overload").unwrap();
        assert!(over.p50_latency_us <= over.p99_latency_us);
        assert!(over.p99_latency_us <= over.max_latency_us);
        assert!(over.backpressure_events > 0, "overload must backpressure");
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = small_run();
        let text = r.pretty();
        let back = BenchReport::parse(&text).expect("parse own output");
        assert_eq!(back, r);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut r = small_run();
        r.schema_version = SCHEMA_VERSION + 1;
        let err = BenchReport::parse(&r.pretty()).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn compare_passes_identical_runs() {
        let r = small_run();
        assert!(compare(&r, &r, 0.10).is_empty());
    }

    #[test]
    fn compare_flags_artificial_slowdown() {
        let base = small_run();
        let mut slow = base.clone();
        // Slow one variant by 15% — beyond the 10% gate.
        let m = slow.metrics.iter_mut().find(|m| m.name == "table1/vectorised").unwrap();
        m.options_per_second *= 0.85;
        let problems = compare(&base, &slow, 0.10);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("table1/vectorised"), "{problems:?}");
        assert!(problems[0].contains("throughput"), "{problems:?}");
    }

    #[test]
    fn compare_flags_latency_regression_and_drift() {
        let base = small_run();
        let mut bad = base.clone();
        let m = bad.metrics.iter_mut().find(|m| m.name == "streaming/saturated").unwrap();
        m.p99_latency_us *= 2.0;
        bad.metrics.retain(|m| m.name != "cpu/threads-4");
        let problems = compare(&base, &bad, 0.10);
        assert!(problems.iter().any(|p| p.contains("p99 latency")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("missing from current")), "{problems:?}");
    }

    #[test]
    fn compare_tolerates_small_jitter() {
        let base = small_run();
        let mut wiggle = base.clone();
        for m in &mut wiggle.metrics {
            m.options_per_second *= 0.95; // within the 10% gate
        }
        assert!(compare(&base, &wiggle, 0.10).is_empty());
    }
}
