//! Minimal JSON value model, writer and parser.
//!
//! The bench harness needs to emit a schema-stable machine-readable
//! report and to re-read a committed baseline for regression checking.
//! The build environment has no registry access (vendor/README.md), so
//! instead of serde this module implements the small subset of JSON the
//! harness needs: objects, arrays, strings, finite numbers, booleans and
//! null, with deterministic (insertion-ordered) object serialisation.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (serialised via [`format_number`]).
    Number(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap), making output
    /// deterministic regardless of insertion order.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Fetch a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialise with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(x) => out.push_str(&format_number(*x)),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Serialise a finite number: integers without a fraction, everything
/// else with enough digits to round-trip through f64 exactly.
pub fn format_number(x: f64) -> String {
    assert!(x.is_finite(), "JSON cannot represent {x}");
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        let mut s = format!("{x:e}");
        if s.parse::<f64>() != Ok(x) {
            s = format!("{x:.17e}");
        }
        // "1.5e0" style is valid JSON but ugly; use plain notation when
        // the exponent is small.
        match s.parse::<f64>() {
            Ok(v) if v == x => {
                let plain = format!("{x}");
                if plain.parse::<f64>() == Ok(x) {
                    plain
                } else {
                    s
                }
            }
            _ => s,
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Returns a human-readable error with the byte
/// offset on malformed input.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::object(vec![
            ("name", Json::Str("bench".to_string())),
            ("version", Json::Number(1.0)),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            ("rates", Json::Array(vec![Json::Number(3462.53), Json::Number(27675.67)])),
            ("nested", Json::object(vec![("k", Json::Str("v\"esc\\aped\"".to_string()))])),
        ]);
        let text = doc.pretty();
        let back = parse(&text).expect("round trip");
        assert_eq!(back, doc);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for x in [0.0, 1.0, -17.0, 0.053, 1.943, 4.124, 8738.92, 1e-12, 123456789.123456] {
            let text = format_number(x);
            assert_eq!(text.parse::<f64>().unwrap(), x, "text {text}");
            let back = parse(&text).unwrap();
            assert_eq!(back.as_f64(), Some(x));
        }
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let back = parse(" { \"a\" : [ 1 , 2.5 , \"x\\ny\" ] , \"b\" : null } ").unwrap();
        let a = back.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].as_str(), Some("x\ny"));
        assert_eq!(back.get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("nulL").is_err());
    }

    #[test]
    fn object_keys_sorted_deterministically() {
        let mut map = BTreeMap::new();
        map.insert("zebra".to_string(), Json::Number(1.0));
        map.insert("alpha".to_string(), Json::Number(2.0));
        let text = Json::Object(map).pretty();
        assert!(text.find("alpha").unwrap() < text.find("zebra").unwrap());
    }
}
