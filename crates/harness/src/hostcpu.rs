//! Real host-CPU measurement.
//!
//! The Cascade Lake rows of Tables I/II come from the calibrated
//! [`cds_cpu::CpuPerfModel`]; this module additionally *measures* the real
//! CPU engine on the machine the harness runs on, demonstrating the same
//! qualitative sub-linear thread scaling the paper observed.

use crate::workload::Workload;
use cds_cpu::engine::CpuCdsEngine;
use cds_cpu::parallel::measure_throughput;

/// One measured point of host CPU scaling.
#[derive(Debug, Clone, PartialEq)]
pub struct HostCpuRow {
    /// Threads used.
    pub threads: usize,
    /// Measured options/second on this machine.
    pub options_per_second: f64,
    /// Speedup over one thread.
    pub speedup: f64,
}

/// Measure the host CPU engine at the given thread counts.
pub fn host_report(workload: &Workload, thread_counts: &[usize]) -> Vec<HostCpuRow> {
    let engine = CpuCdsEngine::new(&workload.market);
    // Warm up caches and page in the tables.
    let _ = engine.price_batch(&workload.options[..workload.options.len().min(32)]);
    let mut rows = Vec::new();
    let mut single = None;
    for &threads in thread_counts {
        let rate = measure_throughput(&engine, &workload.options, threads);
        let base = *single.get_or_insert(rate);
        rows.push(HostCpuRow { threads, options_per_second: rate, speedup: rate / base });
    }
    rows
}

/// Number of hardware threads available on this host.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_measurement_produces_positive_rates() {
        let workload = Workload::paper(3, 256);
        let rows = host_report(&workload, &[1, 2]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.options_per_second > 0.0));
        assert!((rows[0].speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallelism_detected() {
        assert!(host_parallelism() >= 1);
    }
}
