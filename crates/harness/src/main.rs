//! `cds-harness` — command-line driver regenerating every table and
//! figure of the CLUSTER 2021 CDS paper.
//!
//! ```text
//! cds-harness <command> [--options N] [--seed S] [--csv DIR]
//!
//! commands:
//!   table1              Table I  — engine-variant throughput vs paper
//!   table2              Table II — scaling, power, options/Watt vs paper
//!   fig1|fig2|fig3      Figures 1-3 as Graphviz DOT on stdout
//!   listing1            Listing 1 accumulator comparison (host + model)
//!   ablation-vector     replication-factor sweep (Fig 3 mechanism)
//!   ablation-ii         hazard II=7 vs II=1 ablation
//!   ablation-depth      stream-depth sensitivity
//!   ablation-precision  f64 vs f32 accuracy (paper §V further work)
//!   fit                 U280 resource fit (five engines)
//!   futurework          f32 engines projection (paper §V further work)
//!   streaming           Poisson-arrival latency sweep (AAT further work)
//!   validate            independent cross-checks (MC, schedulers, bootstrap, M/D/1)
//!   ablation-curve      constant-data size sweep
//!   trace               stage occupancy Gantt of the vectorised engine
//!   host-cpu            measure the real CPU engine on this machine
//!   bench               machine-readable benchmark ladder (BENCH.json)
//!   bench --throughput  wall-clock options/s of the CPU engines (gated)
//!   bench --tick-storm  incremental tick repricing vs full reprice (gated)
//!   chaos               seeded fault-injection matrix (CHAOS.json)
//!   loadgen             open-loop load against cds-server, SLO-gated
//!   loadgen --abuser    hostile-client run: tenant flood, slowloris, fuzz
//!   server-chaos        serving failure modes vs a survival baseline
//!   server-chaos --isolation  tenant-isolation matrix vs its baseline
//!   storage-chaos       storage-fault + crash-state sweep vs its baseline
//!   replay              record (--json) / re-execute (--check) a run journal
//!   conformance         metamorphic oracle + cross-variant differential fuzz
//!   all                 everything above (except replay, which needs a path)
//! ```
//!
//! `bench` and `chaos` additionally take `--json PATH` (write the
//! report) and `--check BASELINE` (exit 1 on regression against a
//! committed baseline); `bench` also takes `--tolerance F` (relative
//! gate width, default 0.10 — the chaos gate is exact). With
//! `--throughput`, `bench` instead *times* the CPU engines on this
//! machine (warm-up pass, then repeated timed passes) and reports
//! wall-clock options/s; `--threads N` pins the multi-threaded row
//! (default 2), the gate tolerance defaults to 0.40 for runner noise,
//! and `--check results/throughput_baseline.json` additionally enforces
//! the ≥4x lane-kernel speedup floor. With `--tick-storm`, `bench`
//! storms the incremental repricing engine with single-point curve
//! ticks against a resident book (`--options` sets the book size,
//! default 1,048,576) and `--check results/tick_storm_baseline.json`
//! enforces the ≥100x incremental-vs-full speedup ratio plus bitwise
//! cleanliness of the stored spreads. `replay --json`
//! records a checkpointed run as a journal (`--scenario` picks the named
//! fault scenario, default `corrupt-spread`); `replay --check` re-executes
//! a journal and exits 1 unless the spreads and write-ahead checkpoint
//! stream are bit-identical. `conformance` checks every metamorphic
//! relation against the reference and all seventeen price routes, fuzzes
//! `--options N` adversarial cases differentially, and with
//! `--check CORPUS_DIR` replays the committed corpus; any divergence or
//! violated relation exits 1. IO and usage errors exit 2 with a message;
//! gate failures exit 1.

use cds_harness::ablations;
use cds_harness::bench;
use cds_harness::chaos;
use cds_harness::figures;
use cds_harness::format::{rate, ratio, render_csv, render_table};
use cds_harness::hostcpu;
use cds_harness::journal;
use cds_harness::loadgen;
use cds_harness::server_chaos;
use cds_harness::storage_chaos;
use cds_harness::tables;
use cds_harness::throughput;
use cds_harness::tick_storm;
use cds_harness::validate;
use cds_harness::workload::Workload;
use std::path::{Path, PathBuf};

struct Args {
    command: String,
    options: Option<usize>,
    seed: u64,
    csv_dir: Option<PathBuf>,
    json_path: Option<PathBuf>,
    check_baseline: Option<PathBuf>,
    /// `--tolerance`, when given; each gate applies its own default
    /// (bench 0.10, throughput 0.40).
    tolerance: Option<f64>,
    throughput: bool,
    /// `--tick-storm`, run the incremental tick-storm bench instead of
    /// the ladder.
    tick_storm: bool,
    threads: Option<usize>,
    scenario: String,
    /// `--rate`, open-loop arrival rate for `loadgen` (requests/s).
    rate: Option<f64>,
    /// `--no-faults`, disable the loadgen kill/revive toggles.
    no_faults: bool,
    /// `--abuser`, run loadgen's hostile-client mode (tenant flood,
    /// slowloris, wire fuzz) instead of the open-loop SLO run.
    abuser: bool,
    /// `--isolation`, run the tenant-isolation matrix instead of the
    /// serving chaos matrix.
    isolation: bool,
}

/// How a subcommand failed. `Fatal` is an environment/usage problem
/// (unreadable baseline, unwritable output) and exits 2; `GateFailed`
/// is a genuine regression or validation failure and exits 1, so CI can
/// tell "the harness broke" apart from "the numbers moved".
enum CliError {
    Fatal(String),
    GateFailed,
}

type CliResult = Result<(), CliError>;

fn fatal(msg: impl Into<String>) -> CliError {
    CliError::Fatal(msg.into())
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| usage("missing command"));
    let mut parsed = Args {
        command,
        options: None,
        seed: cds_harness::DEFAULT_SEED,
        csv_dir: None,
        json_path: None,
        check_baseline: None,
        tolerance: None,
        throughput: false,
        tick_storm: false,
        threads: None,
        scenario: "corrupt-spread".to_string(),
        rate: None,
        no_faults: false,
        abuser: false,
        isolation: false,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--options" => {
                parsed.options = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--options needs a positive integer")),
                );
            }
            "--seed" => {
                parsed.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--csv" => {
                parsed.csv_dir = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| usage("--csv needs a directory")),
                ));
            }
            "--json" => {
                parsed.json_path = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| usage("--json needs a file path")),
                ));
            }
            "--check" => {
                parsed.check_baseline = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| usage("--check needs a baseline file")),
                ));
            }
            "--scenario" => {
                parsed.scenario =
                    args.next().unwrap_or_else(|| usage("--scenario needs a scenario name"));
            }
            "--tolerance" => {
                parsed.tolerance = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|t: &f64| (0.0..1.0).contains(t))
                        .unwrap_or_else(|| usage("--tolerance needs a fraction in [0, 1)")),
                );
            }
            "--throughput" => parsed.throughput = true,
            "--tick-storm" => parsed.tick_storm = true,
            "--rate" => {
                parsed.rate = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&r: &f64| r.is_finite() && r > 0.0)
                        .unwrap_or_else(|| usage("--rate needs a positive requests/second")),
                );
            }
            "--no-faults" => parsed.no_faults = true,
            "--abuser" => parsed.abuser = true,
            "--isolation" => parsed.isolation = true,
            "--threads" => {
                parsed.threads = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&t: &usize| t >= 1)
                        .unwrap_or_else(|| usage("--threads needs a positive integer")),
                );
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    parsed
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: cds-harness <table1|table2|fig1|fig2|fig3|listing1|ablation-vector|\
         ablation-ii|ablation-depth|ablation-precision|ablation-curve|ablation-restart|fit|futurework|streaming|validate|trace|host-cpu|bench|chaos|loadgen|server-chaos|storage-chaos|replay|conformance|all> \
         [--options N] [--seed S] [--csv DIR] [--json PATH] [--check BASELINE] [--tolerance F] [--throughput] [--tick-storm] [--threads N] [--scenario NAME] [--rate R] [--no-faults] [--abuser] [--isolation]"
    );
    std::process::exit(2);
}

fn write_file(path: &Path, contents: &str) -> CliResult {
    std::fs::write(path, contents)
        .map_err(|e| fatal(format!("cannot write {}: {e}", path.display())))
}

fn create_dir(dir: &Path) -> CliResult {
    std::fs::create_dir_all(dir)
        .map_err(|e| fatal(format!("cannot create directory {}: {e}", dir.display())))
}

fn write_csv(
    dir: &Option<PathBuf>,
    name: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> CliResult {
    if let Some(dir) = dir {
        create_dir(dir)?;
        let path = dir.join(name);
        write_file(&path, &render_csv(headers, rows))?;
        println!("  [csv written to {}]", path.display());
    }
    Ok(())
}

/// Read and parse a `--check` baseline. Runs *before* the expensive
/// matrix/ladder so a bad path fails fast with exit 2.
fn read_baseline<T>(path: &Path, parse: impl Fn(&str) -> Result<T, String>) -> Result<T, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| fatal(format!("cannot read baseline {}: {e}", path.display())))?;
    parse(&text).map_err(|e| fatal(format!("malformed baseline {}: {e}", path.display())))
}

fn write_json_report(path: &Path, pretty: &str) -> CliResult {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        create_dir(dir)?;
    }
    write_file(path, pretty)
}

fn cmd_table1(w: &Workload, csv: &Option<PathBuf>) -> CliResult {
    println!("== Table I: engine-variant throughput (options/second) ==");
    println!("   workload: {} options, 1024 interest + 1024 hazard rates\n", w.len());
    let t = tables::table1(w);
    let headers = ["Description", "Measured (opts/s)", "Paper (opts/s)", "Measured/Paper"];
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.description.clone(),
                rate(r.measured),
                rate(r.paper),
                ratio(r.measured / r.paper),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    println!(
        "speedups over Xilinx baseline: optimised {}  inter-option {}  vectorised {}  (paper: 2.13x 3.84x 7.99x)\n",
        ratio(t.speedup_over_baseline("Optimised")),
        ratio(t.speedup_over_baseline("inter-options")),
        ratio(t.speedup_over_baseline("Vectorisation")),
    );
    write_csv(csv, "table1.csv", &headers, &rows)
}

fn cmd_table2(w: &Workload, csv: &Option<PathBuf>) -> CliResult {
    println!("== Table II: scaling, power and efficiency ==\n");
    let t = tables::table2(w);
    let headers = [
        "Description",
        "Measured (opts/s)",
        "Paper (opts/s)",
        "Watts",
        "Paper W",
        "Opts/Watt",
        "Paper O/W",
    ];
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.description.clone(),
                rate(r.measured_rate),
                rate(r.paper.0),
                format!("{:.2}", r.watts),
                format!("{:.2}", r.paper.1),
                rate(r.options_per_watt),
                rate(r.paper.2),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    println!(
        "FPGA(5) vs CPU(24): performance {}  power {} lower  efficiency {}  (paper: 1.55x, 4.7x, ~7x)\n",
        ratio(t.fpga_vs_cpu_performance()),
        ratio(t.power_ratio()),
        ratio(t.efficiency_ratio()),
    );
    write_csv(csv, "table2.csv", &headers, &rows)
}

fn cmd_listing1(csv: &Option<PathBuf>) -> CliResult {
    println!("== Listing 1: hazard accumulation kernels ==\n");
    let rows_data = ablations::listing1(&[64, 100, 1024, 4096, 4099]);
    let headers = [
        "Length",
        "Naive ns/elem",
        "Lanes ns/elem",
        "Host speedup",
        "FPGA cycles II=7",
        "FPGA cycles Listing-1",
        "Model speedup",
    ];
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.length.to_string(),
                format!("{:.3}", r.naive_ns_per_elem),
                format!("{:.3}", r.lanes_ns_per_elem),
                ratio(r.host_speedup),
                r.fpga_cycles_ii7.to_string(),
                r.fpga_cycles_listing1.to_string(),
                ratio(r.fpga_cycles_ii7 as f64 / r.fpga_cycles_listing1 as f64),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    write_csv(csv, "listing1.csv", &headers, &rows)
}

fn cmd_vector(w: &Workload, csv: &Option<PathBuf>) -> CliResult {
    println!("== Vectorisation sweep (Fig 3 mechanism) ==\n");
    let rows_data = ablations::vector_sweep(w, &[1, 2, 3, 4, 6, 8]);
    let headers = ["Replication V", "Options/s", "Speedup over V=1"];
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| vec![r.factor.to_string(), rate(r.options_per_second), ratio(r.speedup)])
        .collect();
    println!("{}", render_table(&headers, &rows));
    println!("(gain saturates at the URAM port bandwidth — the paper saw 2x at V=6)\n");
    write_csv(csv, "ablation_vector.csv", &headers, &rows)
}

fn cmd_ii(w: &Workload, csv: &Option<PathBuf>) -> CliResult {
    println!("== Hazard accumulation II ablation ==\n");
    let rows_data = ablations::ii_sweep(w);
    let headers = ["Engine", "Options/s"];
    let rows: Vec<Vec<String>> =
        rows_data.iter().map(|r| vec![r.description.clone(), rate(r.options_per_second)]).collect();
    println!("{}", render_table(&headers, &rows));
    write_csv(csv, "ablation_ii.csv", &headers, &rows)
}

fn cmd_depth(w: &Workload, csv: &Option<PathBuf>) -> CliResult {
    println!("== Stream depth sweep (vectorised engine) ==\n");
    let rows_data = ablations::depth_sweep(w, &[1, 2, 4, 8, 16, 32]);
    let headers = ["FIFO depth", "Options/s"];
    let rows: Vec<Vec<String>> =
        rows_data.iter().map(|r| vec![r.depth.to_string(), rate(r.options_per_second)]).collect();
    println!("{}", render_table(&headers, &rows));
    write_csv(csv, "ablation_depth.csv", &headers, &rows)
}

fn cmd_precision(seed: u64, n: usize, csv: &Option<PathBuf>) -> CliResult {
    println!("== Reduced precision (f32) exploration — paper §V further work ==\n");
    let w = Workload::mixed(seed, n);
    let r = ablations::precision(&w);
    let headers = ["Options", "Max err (bps)", "Mean err (bps)", "Max rel err"];
    let rows = vec![vec![
        r.options.to_string(),
        format!("{:.6}", r.max_error_bps),
        format!("{:.6}", r.mean_error_bps),
        format!("{:.2e}", r.max_relative_error),
    ]];
    println!("{}", render_table(&headers, &rows));
    write_csv(csv, "ablation_precision.csv", &headers, &rows)
}

fn cmd_fit(w: &Workload) -> CliResult {
    println!("== Alveo U280 resource fit ==\n");
    let r = ablations::fit_report(&w.market);
    let headers = ["Resource", "Per engine", "Usable on U280", "Engines"];
    let mk = |name: &str, need: u64, have: u64| {
        vec![
            name.to_string(),
            need.to_string(),
            have.to_string(),
            have.checked_div(need).map_or_else(|| "-".to_string(), |n| n.to_string()),
        ]
    };
    let rows = vec![
        mk("LUTs", r.per_engine.luts, r.usable.luts),
        mk("FFs", r.per_engine.ffs, r.usable.ffs),
        mk("DSPs", r.per_engine.dsps, r.usable.dsps),
        mk("BRAM(18k)", r.per_engine.bram_18k, r.usable.bram_18k),
        mk("URAM", r.per_engine.uram, r.usable.uram),
    ];
    println!("{}", render_table(&headers, &rows));
    println!("maximum engines: {} (paper: five fit on the U280)\n", r.max_engines);
    Ok(())
}

fn cmd_validate(w: &Workload) -> CliResult {
    println!("== Artifact validation: independent cross-checks ==\n");
    let checks = validate::validate_all(w);
    let mut all = true;
    for c in &checks {
        all &= c.passed;
        println!("  [{}] {}\n        {}", if c.passed { "PASS" } else { "FAIL" }, c.name, c.detail);
    }
    println!("\n{}", if all { "all checks passed ✓" } else { "SOME CHECKS FAILED ✗" });
    if all {
        Ok(())
    } else {
        Err(CliError::GateFailed)
    }
}

fn cmd_streaming(w: &Workload, csv: &Option<PathBuf>) -> CliResult {
    println!("== Streaming latency vs offered load (vectorised engine) ==\n");
    let rates = [5_000.0, 15_000.0, 25_000.0, 50_000.0, 100_000.0];
    let n = w.len().min(192);
    let rows_data = ablations::streaming_sweep(w, &rates, n);
    let headers = ["Offered (opts/s)", "p50 latency (us)", "p99 latency (us)", "Achieved (opts/s)"];
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                rate(r.offered_rate),
                format!("{:.1}", r.p50_us),
                format!("{:.1}", r.p99_us),
                rate(r.achieved_rate),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    println!("(beyond ~26.5k opts/s the engine saturates and queueing delay dominates)\n");
    write_csv(csv, "streaming.csv", &headers, &rows)
}

fn cmd_curvesize(w: &Workload, csv: &Option<PathBuf>) -> CliResult {
    println!("== Constant-data size sweep (inter-option engine) ==\n");
    let n = w.len().min(64);
    let rows_data = ablations::curve_size_sweep(w.seed, n, &[256, 512, 1024, 2048, 4096]);
    let headers = ["Curve knots", "Options/s"];
    let rows: Vec<Vec<String>> =
        rows_data.iter().map(|r| vec![r.knots.to_string(), rate(r.options_per_second)]).collect();
    println!("{}", render_table(&headers, &rows));
    println!("(steady state is one full table scan per time point: throughput ~ 1/knots)\n");
    write_csv(csv, "curve_size.csv", &headers, &rows)
}

fn cmd_restart(w: &Workload, csv: &Option<PathBuf>) -> CliResult {
    println!("== Region-restart overhead sweep (optimised dataflow engine) ==\n");
    let rows_data = ablations::restart_sweep(w, &[0, 4_000, 9_000, 18_200, 27_000, 36_000]);
    let headers = ["Restart (cycles)", "Options/s"];
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| vec![r.restart_cycles.to_string(), rate(r.options_per_second)])
        .collect();
    println!("{}", render_table(&headers, &rows));
    println!("(18200 is the calibrated value implied by the paper's Table I rows)\n");
    write_csv(csv, "ablation_restart.csv", &headers, &rows)
}

fn cmd_futurework(w: &Workload, csv: &Option<PathBuf>) -> CliResult {
    println!("== Further work (paper \u{a7}V): reduced-precision engines ==\n");
    let rows_data = ablations::futurework(w);
    let headers = ["Configuration", "Engines", "Options/s", "Opts/Watt", "Max err (bps)"];
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.description.clone(),
                r.engines.to_string(),
                rate(r.options_per_second),
                rate(r.options_per_watt),
                format!("{:.6}", r.max_error_bps),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    println!("(f32 halves the scan footprint and the datapath, so more, faster engines fit)\n");
    write_csv(csv, "futurework.csv", &headers, &rows)
}

fn cmd_trace(w: &Workload) -> CliResult {
    println!("== Stage occupancy (vectorised engine, 8 options) ==\n");
    let r = ablations::occupancy(w, 8);
    print!("{}", r.gantt);
    println!("\ntotal: {} cycles; the replicated scan stages dominate — every", r.total_cycles);
    println!("other stage idles waiting on them, the stall pattern §III describes.\n");
    Ok(())
}

fn cmd_hostcpu(w: &Workload, csv: &Option<PathBuf>) -> CliResult {
    let max = hostcpu::host_parallelism();
    println!("== Host CPU measurement ({max} hardware threads) ==\n");
    let counts: Vec<usize> =
        [1usize, 2, 4, 8, 16, 24, 32].into_iter().filter(|&t| t <= max).collect();
    let rows_data = hostcpu::host_report(w, &counts);
    let headers = ["Threads", "Options/s", "Speedup"];
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| vec![r.threads.to_string(), rate(r.options_per_second), ratio(r.speedup)])
        .collect();
    println!("{}", render_table(&headers, &rows));
    println!("(the paper's 24-core Cascade Lake scaled 8.68x — sub-linear, like above)\n");
    write_csv(csv, "host_cpu.csv", &headers, &rows)
}

fn cmd_bench_throughput(args: &Args) -> CliResult {
    let batch = args.options.unwrap_or(throughput::DEFAULT_THROUGHPUT_BATCH);
    let threads = args.threads.unwrap_or(throughput::DEFAULT_THROUGHPUT_THREADS);
    let tolerance = args.tolerance.unwrap_or(throughput::DEFAULT_THROUGHPUT_TOLERANCE);
    // Fail fast on an unreadable/malformed baseline before measuring.
    let baseline = match &args.check_baseline {
        Some(path) => Some((path, read_baseline(path, throughput::ThroughputReport::parse)?)),
        None => None,
    };
    println!(
        "== Wall-clock throughput (seed {}, batch {batch}, {threads} pinned threads) ==\n",
        args.seed
    );
    let report = throughput::run(args.seed, batch, threads);
    let headers = ["Row", "Options/s"];
    let rows: Vec<Vec<String>> =
        report.rows.iter().map(|r| vec![r.name.clone(), rate(r.options_per_second)]).collect();
    println!("{}", render_table(&headers, &rows));
    println!(
        "lane kernel speedup over scalar (1 thread): {} (required ≥ {})\n",
        ratio(report.lane_speedup_1t),
        ratio(report.min_lane_speedup)
    );
    if let Some(path) = &args.json_path {
        write_json_report(path, &report.pretty())?;
        println!("[throughput report written to {}]", path.display());
    }
    if let Some((path, baseline)) = baseline {
        let problems = throughput::compare(&baseline, &report, tolerance);
        if problems.is_empty() {
            println!(
                "check against {}: PASS ({} rows within {:.0}%, speedup floor {:.2}x cleared)",
                path.display(),
                baseline.rows.len(),
                tolerance * 100.0,
                baseline.min_lane_speedup
            );
        } else {
            eprintln!("check against {}: FAIL", path.display());
            for p in &problems {
                eprintln!("  regression: {p}");
            }
            return Err(CliError::GateFailed);
        }
    }
    Ok(())
}

fn cmd_bench_tick_storm(args: &Args) -> CliResult {
    let residents = args.options.unwrap_or(tick_storm::DEFAULT_TICK_RESIDENTS);
    let tolerance = args.tolerance.unwrap_or(tick_storm::DEFAULT_TICK_TOLERANCE);
    // Fail fast on an unreadable/malformed baseline before measuring.
    let baseline = match &args.check_baseline {
        Some(path) => Some((path, read_baseline(path, tick_storm::TickStormReport::parse)?)),
        None => None,
    };
    println!("== Incremental tick storm (seed {}, {residents} resident options) ==\n", args.seed);
    let report = tick_storm::run(args.seed, residents);
    let headers = ["Row", "Per second"];
    let rows: Vec<Vec<String>> =
        report.rows.iter().map(|r| vec![r.name.clone(), rate(r.per_second)]).collect();
    println!("{}", render_table(&headers, &rows));
    println!(
        "off-lattice 1-point ticks vs full reprice: {} (required ≥ {}); \
         {} lattice-free knots, mean affected set {:.1} of {residents}",
        ratio(report.incremental_speedup),
        ratio(report.min_tick_speedup),
        report.free_knots,
        report.mean_affected
    );
    println!(
        "bitwise clean: {} mismatches vs full reprice; zero-delta contract: {}\n",
        report.bit_mismatches,
        if report.zero_delta_clean { "clean" } else { "VIOLATED" }
    );
    if let Some(path) = &args.json_path {
        write_json_report(path, &report.pretty())?;
        println!("[tick-storm report written to {}]", path.display());
    }
    if let Some((path, baseline)) = baseline {
        let problems = tick_storm::compare(&baseline, &report, tolerance);
        if problems.is_empty() {
            println!(
                "check against {}: PASS ({} rows within {:.0}%, speedup floor {:.1}x cleared)",
                path.display(),
                baseline.rows.len(),
                tolerance * 100.0,
                baseline.min_tick_speedup
            );
        } else {
            eprintln!("check against {}: FAIL", path.display());
            for p in &problems {
                eprintln!("  regression: {p}");
            }
            return Err(CliError::GateFailed);
        }
    }
    Ok(())
}

fn cmd_bench(args: &Args) -> CliResult {
    if args.throughput {
        return cmd_bench_throughput(args);
    }
    if args.tick_storm {
        return cmd_bench_tick_storm(args);
    }
    let batch = args.options.unwrap_or(bench::DEFAULT_BENCH_BATCH);
    // Fail fast on an unreadable/malformed baseline before the ladder runs.
    let baseline = match &args.check_baseline {
        Some(path) => Some((path, read_baseline(path, bench::BenchReport::parse)?)),
        None => None,
    };
    println!("== Machine-readable benchmark ladder (seed {}, batch {batch}) ==\n", args.seed);
    let report = bench::run(args.seed, batch);
    let headers = ["Metric", "Backend", "Options/s", "p99 (us)", "Util", "Backpressure"];
    let rows: Vec<Vec<String>> = report
        .metrics
        .iter()
        .map(|m| {
            vec![
                m.name.clone(),
                m.backend.clone(),
                rate(m.options_per_second),
                if m.p99_latency_us > 0.0 {
                    format!("{:.1}", m.p99_latency_us)
                } else {
                    "-".to_string()
                },
                if m.mean_utilisation > 0.0 {
                    format!("{:.2}", m.mean_utilisation)
                } else {
                    "-".to_string()
                },
                m.backpressure_events.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    if let Some(path) = &args.json_path {
        write_json_report(path, &report.pretty())?;
        println!("[bench report written to {}]", path.display());
    }
    if let Some((path, baseline)) = baseline {
        let tolerance = args.tolerance.unwrap_or(0.10);
        let problems = bench::compare(&baseline, &report, tolerance);
        if problems.is_empty() {
            println!(
                "check against {}: PASS ({} metrics within {:.0}%)",
                path.display(),
                baseline.metrics.len(),
                tolerance * 100.0
            );
        } else {
            eprintln!("check against {}: FAIL", path.display());
            for p in &problems {
                eprintln!("  regression: {p}");
            }
            return Err(CliError::GateFailed);
        }
    }
    Ok(())
}

fn cmd_chaos(args: &Args, standalone: bool) -> CliResult {
    // Fail fast on an unreadable/malformed baseline before the matrix runs.
    let baseline = match args.check_baseline.as_ref().filter(|_| standalone) {
        Some(path) => Some((path, read_baseline(path, chaos::ChaosReport::parse)?)),
        None => None,
    };
    println!("== Fault-injection chaos matrix (seed {}) ==\n", args.seed);
    let report = chaos::run(args.seed);
    let headers = [
        "Scenario",
        "Faults",
        "Total",
        "Done",
        "Retried",
        "Shed",
        "Lost",
        "Quarantined",
        "Degraded",
        "Survived",
    ];
    let rows: Vec<Vec<String>> = report
        .cases
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.faults_injected.to_string(),
                c.options_total.to_string(),
                c.options_completed.to_string(),
                c.options_retried.to_string(),
                c.options_shed.to_string(),
                c.options_lost.to_string(),
                c.options_quarantined.to_string(),
                if c.degraded { "yes" } else { "no" }.to_string(),
                if c.survived { "PASS" } else { "FAIL" }.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    // What each injected fault actually hit: stream, token, option.
    println!("fault hits:");
    for c in &report.cases {
        if c.fault_events.is_empty() {
            continue;
        }
        let shown = c.fault_events.iter().take(4).cloned().collect::<Vec<_>>().join("; ");
        let more = c.fault_events.len().saturating_sub(4);
        let tail = if more > 0 { format!("; +{more} more") } else { String::new() };
        println!("  {}: {shown}{tail}", c.name);
    }
    println!();
    if let Some(path) = args.json_path.as_ref().filter(|_| standalone) {
        write_json_report(path, &report.pretty())?;
        println!("[chaos report written to {}]", path.display());
    }
    if let Some((path, baseline)) = baseline {
        let problems = chaos::compare(&baseline, &report);
        if problems.is_empty() {
            println!(
                "check against {}: PASS ({} scenarios identical)",
                path.display(),
                baseline.cases.len()
            );
        } else {
            eprintln!("check against {}: FAIL", path.display());
            for p in &problems {
                eprintln!("  regression: {p}");
            }
            return Err(CliError::GateFailed);
        }
    } else if !report.all_survived() {
        eprintln!("chaos matrix: FAIL (a scenario did not survive)");
        return Err(CliError::GateFailed);
    }
    Ok(())
}

/// Options per journalled replay run: small enough to re-execute in a
/// few seconds of simulated pricing, large enough to span several
/// checkpoint intervals.
const REPLAY_OPTIONS: u64 = 12;
/// Arrival cadence (cycles) of the journalled replay run.
const REPLAY_ARRIVAL_STEP: u64 = 30_000;
/// Checkpoint cadence (completed options) of the journalled replay run.
const REPLAY_CADENCE: u32 = 3;

fn cmd_replay(args: &Args) -> CliResult {
    if args.json_path.is_none() && args.check_baseline.is_none() {
        return Err(fatal("replay needs --json PATH (record) and/or --check JOURNAL (gate)"));
    }
    if let Some(path) = &args.json_path {
        let n = args.options.map_or(REPLAY_OPTIONS, |n| n as u64);
        println!(
            "== Recording run journal (seed {}, {n} options, scenario {}) ==",
            args.seed, args.scenario
        );
        let j = journal::record(args.seed, n, REPLAY_ARRIVAL_STEP, &args.scenario, REPLAY_CADENCE)
            .map_err(fatal)?;
        write_json_report(path, &j.pretty())?;
        println!(
            "[journal written to {}: {} checkpoints, {} spreads]",
            path.display(),
            j.checkpoints.len(),
            j.spread_bits.len()
        );
    }
    if let Some(path) = &args.check_baseline {
        let j = read_baseline(path, journal::RunJournal::parse)?;
        println!(
            "== Replaying journal {} (seed {}, {} options, scenario {}) ==",
            path.display(),
            j.seed,
            j.options,
            j.scenario
        );
        let problems = journal::check(&j).map_err(fatal)?;
        if problems.is_empty() {
            println!(
                "replay of {}: PASS ({} spreads and {} checkpoints bit-identical)",
                path.display(),
                j.spread_bits.len(),
                j.checkpoints.len()
            );
        } else {
            eprintln!("replay of {}: FAIL", path.display());
            for p in &problems {
                eprintln!("  divergence: {p}");
            }
            return Err(CliError::GateFailed);
        }
    }
    Ok(())
}

fn cmd_conformance(args: &Args) -> CliResult {
    use cds_harness::conformance;
    let cases = args.options.map_or(conformance::DEFAULT_FUZZ_CASES, |n| n as u64);
    println!("== Differential conformance suite (seed {}, {cases} fuzz cases) ==\n", args.seed);
    let report =
        conformance::run(args.seed, cases, args.check_baseline.as_deref()).map_err(fatal)?;

    // Relation sweep: one row per model, a column per relation.
    let relations: Vec<&str> =
        cds_conformance::oracle::Relation::ALL.iter().map(|r| r.label()).collect();
    let mut headers = vec!["Model"];
    headers.extend(&relations);
    let mut models: Vec<&str> = Vec::new();
    for o in &report.relations {
        if !models.contains(&o.model.as_str()) {
            models.push(&o.model);
        }
    }
    let rows: Vec<Vec<String>> = models
        .iter()
        .map(|model| {
            let mut row = vec![(*model).to_string()];
            for rel in &relations {
                let ok = report
                    .relations
                    .iter()
                    .find(|o| o.model == *model && o.relation == *rel)
                    .is_some_and(|o| o.violation.is_none());
                row.push(if ok { "ok" } else { "VIOLATED" }.to_string());
            }
            row
        })
        .collect();
    println!("{}", render_table(&headers, &rows));

    println!(
        "fuzz: {} cases, {} options priced through {} routes, {} divergence(s)",
        report.fuzz.cases,
        report.fuzz.options_priced,
        report.fuzz.routes,
        report.fuzz.failures.len()
    );
    for f in &report.fuzz.failures {
        eprintln!("  divergent case (seed {}, index {}), shrunk:", f.seed, f.index);
        for line in f.shrunk.to_text().lines() {
            eprintln!("    {line}");
        }
        for rf in &f.failures {
            eprintln!("    {rf}");
        }
    }
    for o in report.relations.iter().filter(|o| o.violation.is_some()) {
        if let Some(v) = &o.violation {
            eprintln!("  relation violation: {v}");
        }
    }
    if !report.corpus.is_empty() {
        let clean = report
            .corpus
            .iter()
            .filter(|c| c.route_failures.is_empty() && c.relation_violations.is_empty())
            .count();
        println!("corpus: {}/{} committed cases clean", clean, report.corpus.len());
        for c in &report.corpus {
            for f in c.route_failures.iter().chain(&c.relation_violations) {
                eprintln!("  corpus case {}: {f}", c.name);
            }
        }
    }
    if let Some(path) = &args.json_path {
        write_json_report(path, &report.to_json().pretty())?;
        println!("[conformance report written to {}]", path.display());
    }
    if report.clean() {
        println!("conformance: PASS");
        Ok(())
    } else {
        eprintln!("conformance: FAIL");
        Err(CliError::GateFailed)
    }
}

/// `loadgen --abuser`: hostile-client run with an internal gate — a
/// quota'd tenant flooding at ≥10x its rate, slowloris trickles, and a
/// wire-fuzz corpus, while a compliant victim's p99 is watched. Any
/// violated isolation property exits 1.
fn cmd_loadgen_abuse(args: &Args) -> CliResult {
    println!("== Hostile-client abuse run (seed {}) ==\n", args.seed);
    let report = loadgen::run_abuse(args.seed)
        .map_err(|e| fatal(format!("abuse-run server failed: {e}")))?;
    let rows = vec![
        vec!["abuser sent".to_string(), report.abuser_sent.to_string()],
        vec!["abuser priced".to_string(), report.abuser_priced.to_string()],
        vec!["abuser throttled".to_string(), report.abuser_throttled.to_string()],
        vec!["abuser shed".to_string(), report.abuser_shed.to_string()],
        vec![
            "abuser offered rate (/s)".to_string(),
            format!("{:.0}", report.abuser_offered_rate_per_s),
        ],
        vec![
            "abuser quota rate (/s)".to_string(),
            format!("{:.0}", report.abuser_quota_rate_per_s),
        ],
        vec!["victim trips/phase".to_string(), report.victim_trips.to_string()],
        vec!["victim throttled".to_string(), report.victim_throttled.to_string()],
        vec!["victim sheds retried".to_string(), report.victim_sheds.to_string()],
        vec!["victim solo p99 (us)".to_string(), report.victim_solo_p99_micros.to_string()],
        vec!["victim flood p99 (us)".to_string(), report.victim_flood_p99_micros.to_string()],
        vec![
            "slowloris reaped".to_string(),
            format!("{}/{}", report.slowloris_reaped, report.slowloris_opened),
        ],
        vec![
            "fuzz ERR accounting".to_string(),
            format!("{}/{}", report.fuzz_errs_got, report.fuzz_errs_expected),
        ],
    ];
    println!("{}", render_table(&["Metric", "Value"], &rows));
    if let Some(path) = &args.json_path {
        write_json_report(path, &report.pretty())?;
        println!("[abuse report written to {}]", path.display());
    }
    if report.passed() {
        println!("abuse run: PASS (bulkheads held)");
        Ok(())
    } else {
        eprintln!("abuse run: FAIL");
        for v in &report.violations {
            eprintln!("  violated: {v}");
        }
        Err(CliError::GateFailed)
    }
}

fn cmd_loadgen(args: &Args) -> CliResult {
    if args.abuser {
        return cmd_loadgen_abuse(args);
    }
    // Fail fast on an unreadable/malformed baseline before the run.
    let baseline = match args.check_baseline.as_ref() {
        Some(path) => Some((path, read_baseline(path, loadgen::SloBaseline::parse)?)),
        None => None,
    };
    let config = loadgen::LoadgenConfig {
        seed: args.seed,
        requests: args.options.unwrap_or(loadgen::DEFAULT_REQUESTS),
        rate_per_s: args.rate.unwrap_or(loadgen::DEFAULT_RATE),
        faults: !args.no_faults,
        ..Default::default()
    };
    println!(
        "== Open-loop load generation (seed {}, {} requests at {}/s, faults {}) ==\n",
        config.seed,
        config.requests,
        config.rate_per_s,
        if config.faults { "on" } else { "off" }
    );
    let report = loadgen::run(&config).map_err(|e| fatal(format!("loadgen server failed: {e}")))?;
    let rows = vec![
        vec!["sent".to_string(), report.sent.to_string()],
        vec!["priced".to_string(), report.priced.to_string()],
        vec!["shed".to_string(), report.shed.to_string()],
        vec!["rejected".to_string(), report.rejected.to_string()],
        vec!["errored".to_string(), report.errored.to_string()],
        vec!["curve ticks".to_string(), report.ticks.to_string()],
        vec!["fault toggles".to_string(), report.faults.to_string()],
        vec!["p50 (us)".to_string(), report.quantiles.p50_micros.to_string()],
        vec!["p99 (us)".to_string(), report.quantiles.p99_micros.to_string()],
        vec!["p999 (us)".to_string(), report.quantiles.p999_micros.to_string()],
        vec!["achieved rate (/s)".to_string(), format!("{:.0}", report.achieved_rate_per_s)],
        vec!["worst rung".to_string(), report.worst_rung.to_string()],
    ];
    println!("{}", render_table(&["Metric", "Value"], &rows));
    if let Some(path) = &args.json_path {
        write_json_report(path, &report.pretty())?;
        println!("[loadgen report written to {}]", path.display());
    }
    if let Some((path, baseline)) = baseline {
        let problems = loadgen::check_slo(&baseline, &report);
        if problems.is_empty() {
            println!("SLO check against {}: PASS", path.display());
        } else {
            eprintln!("SLO check against {}: FAIL", path.display());
            for p in &problems {
                eprintln!("  violated: {p}");
            }
            return Err(CliError::GateFailed);
        }
    } else if report.answered() < report.sent {
        eprintln!("loadgen: FAIL ({} request(s) never answered)", report.sent - report.answered());
        return Err(CliError::GateFailed);
    }
    Ok(())
}

fn cmd_server_chaos(args: &Args) -> CliResult {
    let baseline = match args.check_baseline.as_ref() {
        Some(path) => Some((path, read_baseline(path, server_chaos::ServerChaosReport::parse)?)),
        None => None,
    };
    if args.isolation {
        println!("== Tenant-isolation matrix (seed {}) ==\n", args.seed);
    } else {
        println!("== Serving chaos matrix (seed {}) ==\n", args.seed);
    }
    let report = if args.isolation {
        server_chaos::run_isolation(args.seed)
    } else {
        server_chaos::run(args.seed)
    }
    .map_err(|e| fatal(format!("server-chaos scenario failed: {e}")))?;
    let headers = ["Scenario", "Sent", "Priced", "Shed", "Degraded", "Match", "Survived"];
    let rows: Vec<Vec<String>> = report
        .cases
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.sent.to_string(),
                c.priced.to_string(),
                c.shed.to_string(),
                if c.degraded { "yes" } else { "no" }.to_string(),
                if c.spreads_match_clean { "yes" } else { "NO" }.to_string(),
                if c.survived { "PASS" } else { "FAIL" }.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    if let Some(path) = &args.json_path {
        write_json_report(path, &report.pretty())?;
        println!("[server-chaos report written to {}]", path.display());
    }
    if let Some((path, baseline)) = baseline {
        let problems = server_chaos::compare(&baseline, &report);
        if problems.is_empty() {
            println!(
                "check against {}: PASS ({} scenarios' verdicts identical)",
                path.display(),
                baseline.cases.len()
            );
        } else {
            eprintln!("check against {}: FAIL", path.display());
            for p in &problems {
                eprintln!("  regression: {p}");
            }
            return Err(CliError::GateFailed);
        }
    } else if !report.all_survived() {
        eprintln!("server-chaos matrix: FAIL (a scenario did not survive)");
        return Err(CliError::GateFailed);
    }
    Ok(())
}

fn cmd_storage_chaos(args: &Args) -> CliResult {
    let baseline = match args.check_baseline.as_ref() {
        Some(path) => Some((path, read_baseline(path, storage_chaos::StorageChaosReport::parse)?)),
        None => None,
    };
    println!("== Storage-fault crash-consistency matrix (seed {}) ==\n", args.seed);
    let report = storage_chaos::run(args.seed)
        .map_err(|e| fatal(format!("storage-chaos scenario failed: {e}")))?;
    let headers = ["Scenario", "States", "Typed", "Resumed", "ZeroSilent", "Ordering", "Survived"];
    let rows: Vec<Vec<String>> = report
        .cases
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.states.to_string(),
                c.typed.to_string(),
                c.resumed.to_string(),
                if c.zero_silent_corruption { "yes" } else { "NO" }.to_string(),
                if c.ordering_held { "yes" } else { "no" }.to_string(),
                if c.survived { "PASS" } else { "FAIL" }.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    if let Some(path) = &args.json_path {
        write_json_report(path, &report.pretty())?;
        println!("[storage-chaos report written to {}]", path.display());
    }
    if let Some((path, baseline)) = baseline {
        let problems = storage_chaos::compare(&baseline, &report);
        if problems.is_empty() {
            println!(
                "check against {}: PASS ({} scenarios' verdicts identical)",
                path.display(),
                baseline.cases.len()
            );
        } else {
            eprintln!("check against {}: FAIL", path.display());
            for p in &problems {
                eprintln!("  regression: {p}");
            }
            return Err(CliError::GateFailed);
        }
    } else if !report.all_survived() {
        eprintln!("storage-chaos matrix: FAIL (a scenario did not survive)");
        return Err(CliError::GateFailed);
    }
    Ok(())
}

fn run(args: &Args) -> CliResult {
    let workload =
        Workload::try_paper(args.seed, args.options.unwrap_or(cds_harness::DEFAULT_BATCH))
            .map_err(|e| fatal(format!("invalid workload parameters: {e}")))?;
    match args.command.as_str() {
        "table1" => cmd_table1(&workload, &args.csv_dir),
        "table2" => cmd_table2(&workload, &args.csv_dir),
        "fig1" => {
            print!("{}", figures::fig1_dot());
            Ok(())
        }
        "fig2" => {
            print!("{}", figures::fig2_dot(&workload.market));
            Ok(())
        }
        "fig3" => {
            print!("{}", figures::fig3_dot(&workload.market));
            Ok(())
        }
        "listing1" => cmd_listing1(&args.csv_dir),
        "ablation-vector" => cmd_vector(&workload, &args.csv_dir),
        "ablation-ii" => cmd_ii(&workload, &args.csv_dir),
        "ablation-depth" => cmd_depth(&workload, &args.csv_dir),
        "ablation-precision" => cmd_precision(
            args.seed,
            args.options.unwrap_or(cds_harness::DEFAULT_BATCH),
            &args.csv_dir,
        ),
        "fit" => cmd_fit(&workload),
        "trace" => cmd_trace(&workload),
        "futurework" => cmd_futurework(&workload, &args.csv_dir),
        "streaming" => cmd_streaming(&workload, &args.csv_dir),
        "validate" => cmd_validate(&workload),
        "ablation-curve" => cmd_curvesize(&workload, &args.csv_dir),
        "ablation-restart" => cmd_restart(&workload, &args.csv_dir),
        "host-cpu" => cmd_hostcpu(&workload, &args.csv_dir),
        "bench" => cmd_bench(args),
        "chaos" => cmd_chaos(args, true),
        "loadgen" => cmd_loadgen(args),
        "server-chaos" => cmd_server_chaos(args),
        "storage-chaos" => cmd_storage_chaos(args),
        "replay" => cmd_replay(args),
        "conformance" => cmd_conformance(args),
        "all" => {
            if let Some(dir) = &args.csv_dir {
                create_dir(dir)?;
                write_file(&dir.join("fig1.dot"), &figures::fig1_dot())?;
                write_file(&dir.join("fig2.dot"), &figures::fig2_dot(&workload.market))?;
                write_file(&dir.join("fig3.dot"), &figures::fig3_dot(&workload.market))?;
                println!("[figures written to {}/fig{{1,2,3}}.dot]\n", dir.display());
            }
            cmd_table1(&workload, &args.csv_dir)?;
            cmd_table2(&workload, &args.csv_dir)?;
            cmd_listing1(&args.csv_dir)?;
            cmd_vector(&workload, &args.csv_dir)?;
            cmd_ii(&workload, &args.csv_dir)?;
            cmd_depth(&workload, &args.csv_dir)?;
            cmd_precision(
                args.seed,
                args.options.unwrap_or(cds_harness::DEFAULT_BATCH),
                &args.csv_dir,
            )?;
            cmd_fit(&workload)?;
            cmd_futurework(&workload, &args.csv_dir)?;
            cmd_streaming(&workload, &args.csv_dir)?;
            cmd_curvesize(&workload, &args.csv_dir)?;
            cmd_restart(&workload, &args.csv_dir)?;
            cmd_validate(&workload)?;
            cmd_trace(&workload)?;
            cmd_hostcpu(&workload, &args.csv_dir)?;
            cmd_bench(args)?;
            // `--check`/`--json` under `all` name the *bench* artefacts;
            // the chaos gate has its own baseline and runs survival-only.
            cmd_chaos(args, false)
        }
        other => usage(&format!("unknown command {other}")),
    }
}

fn main() {
    let args = parse_args();
    match run(&args) {
        Ok(()) => {}
        Err(CliError::Fatal(msg)) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
        Err(CliError::GateFailed) => std::process::exit(1),
    }
}
