//! Storage-fault injection and crash-consistency proofs for the
//! journal/checkpoint layer, with a baseline gate.
//!
//! Where [`crate::server_chaos`] attacks the serving stack over TCP,
//! this matrix attacks the **storage substrate underneath it**: every
//! scenario drives the real [`WalWriter`] (or the engine's streaming
//! checkpoint sidecar) through a [`RecordingJournalIo`] — optionally
//! wrapped in a seeded [`FaultyJournalIo`] injecting ENOSPC, EIO,
//! short writes, or fsyncs that lie — then hands the recorded write
//! trace to [`enumerate_crash_states`], which produces **every**
//! power-loss state the trace admits: each unsynced-write prefix,
//! torn tail blocks of the last landed write, and renames reordered
//! ahead of their backing data.
//!
//! Each crash state is materialised into a scratch directory and
//! resumed for real ([`resume_journal`] for the server journal,
//! [`Checkpoint::load`] + [`resume_streaming_from`] for the engine
//! sidecar). The contract gated by the committed baseline
//! (`results/storage_chaos_baseline.json`):
//!
//! * **zero silent-corruption states** — every crash state either
//!   resumes to a bit-identical prefix of the uninterrupted run or
//!   fails with a typed, attributable error; no state may panic and
//!   no state may resume to *different bits*,
//! * **sync ordering held** — the trace shows data fsynced before
//!   every rename and a parent-directory sync after it
//!   ([`sync_ordering_held`]); reverting the write-discipline fix in
//!   `cds-server`'s `wal.rs` flips this verdict and fails the gate
//!   (the `storage/lying-fsync` scenario honestly baselines it as
//!   `false` — a lying fsync never reaches the trace).
//!
//! Counts (crash states enumerated, typed failures, clean resumes)
//! are informational only; the verdict booleans are the gate.

use crate::json::Json;
use cds_cpu::engine::CpuCdsEngine;
use cds_engine::journal_io::{
    enumerate_crash_states, sync_ordering_held, CrashPlan, FaultyJournalIo, JournalIo, JournalOp,
    OsJournalIo, RecordingJournalIo, StorageFaultPlan,
};
use cds_engine::prelude::{
    resume_streaming_from, run_streaming_checkpointed, Checkpoint, EngineVariant, StreamingPolicy,
};
use cds_quant::option::{CdsOption, MarketData, PaymentFrequency};
use cds_server::proto::Priority;
use cds_server::server::{resume_journal, ResumeReport};
use cds_server::wal::WalWriter;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::Arc;

/// Version of the storage-chaos JSON schema.
pub const SCHEMA_VERSION: u64 = 1;

/// Scenario label stamped on the engine-sidecar checkpoints.
const STREAM_SCENARIO: &str = "storage-chaos-stream";

/// Outcome of one storage chaos scenario. Only the boolean verdicts
/// are baseline-gated; the counts are informational.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageChaosCase {
    /// Stable scenario slug, e.g. `storage/enospc-append`.
    pub name: String,
    /// Every enumerated crash state resumed bit-identically or failed
    /// typed — none panicked, none resumed to different bits.
    pub zero_silent_corruption: bool,
    /// The write trace shows fsync-before-rename and
    /// parent-dir-sync-after-rename throughout.
    pub ordering_held: bool,
    /// The scenario's overall pass verdict.
    pub survived: bool,
    /// Informational: crash states enumerated (not gated).
    pub states: u64,
    /// Informational: states that failed with a typed error (not gated).
    pub typed: u64,
    /// Informational: states that resumed cleanly (not gated).
    pub resumed: u64,
}

impl StorageChaosCase {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("name", Json::Str(self.name.clone())),
            ("zero_silent_corruption", Json::Bool(self.zero_silent_corruption)),
            ("ordering_held", Json::Bool(self.ordering_held)),
            ("survived", Json::Bool(self.survived)),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, String> {
        let flag = |key: &str| -> Result<bool, String> {
            match value.get(key) {
                Some(Json::Bool(b)) => Ok(*b),
                _ => Err(format!("storage-chaos case missing boolean field '{key}'")),
            }
        };
        Ok(StorageChaosCase {
            name: value
                .get("name")
                .and_then(Json::as_str)
                .ok_or("storage-chaos case missing 'name'")?
                .to_string(),
            zero_silent_corruption: flag("zero_silent_corruption")?,
            ordering_held: flag("ordering_held")?,
            survived: flag("survived")?,
            states: 0,
            typed: 0,
            resumed: 0,
        })
    }

    /// The gated projection: everything except the volatile counts.
    fn verdicts(&self) -> (bool, bool, bool) {
        (self.zero_silent_corruption, self.ordering_held, self.survived)
    }
}

/// A full storage chaos run.
#[derive(Debug, Clone)]
pub struct StorageChaosReport {
    /// Schema version of the serialised form ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Seed the workloads and fault plans derive from.
    pub seed: u64,
    /// All scenarios, in matrix order.
    pub cases: Vec<StorageChaosCase>,
}

impl StorageChaosReport {
    /// Look a scenario up by its stable name.
    pub fn find(&self, name: &str) -> Option<&StorageChaosCase> {
        self.cases.iter().find(|c| c.name == name)
    }

    /// True when every scenario survived.
    pub fn all_survived(&self) -> bool {
        self.cases.iter().all(|c| c.survived)
    }

    /// Serialise to the versioned JSON schema (booleans only).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::Number(self.schema_version as f64)),
            ("seed", Json::Number(self.seed as f64)),
            ("cases", Json::Array(self.cases.iter().map(StorageChaosCase::to_json).collect())),
        ])
    }

    /// Pretty-printed JSON document.
    pub fn pretty(&self) -> String {
        self.to_json().pretty()
    }

    /// Parse a serialised report, validating the schema version.
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = crate::json::parse(text)?;
        let num = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("storage-chaos report missing numeric field '{key}'"))
        };
        let schema_version = num("schema_version")? as u64;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "storage-chaos schema version {schema_version} != supported {SCHEMA_VERSION} — regenerate the baseline"
            ));
        }
        let cases = value
            .get("cases")
            .and_then(Json::as_array)
            .ok_or_else(|| "storage-chaos report missing 'cases' array".to_string())?
            .iter()
            .map(StorageChaosCase::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StorageChaosReport { schema_version, seed: num("seed")? as u64, cases })
    }
}

/// Gate `current` against `baseline`: every baseline scenario must be
/// present with identical boolean verdicts, and no scenario may appear
/// or vanish silently. Counts are *not* compared.
pub fn compare(baseline: &StorageChaosReport, current: &StorageChaosReport) -> Vec<String> {
    let mut problems = Vec::new();
    if baseline.schema_version != current.schema_version {
        problems.push(format!(
            "schema version mismatch: baseline {} vs current {}",
            baseline.schema_version, current.schema_version
        ));
    }
    for base in &baseline.cases {
        match current.find(&base.name) {
            None => problems.push(format!("scenario '{}' missing from current run", base.name)),
            Some(cur) if cur.verdicts() != base.verdicts() => {
                problems.push(format!(
                    "scenario '{}' changed: baseline (zero_silent={}, ordering={}, survived={}) vs current (zero_silent={}, ordering={}, survived={})",
                    base.name,
                    base.zero_silent_corruption,
                    base.ordering_held,
                    base.survived,
                    cur.zero_silent_corruption,
                    cur.ordering_held,
                    cur.survived,
                ));
            }
            Some(_) => {}
        }
    }
    for cur in &current.cases {
        if baseline.find(&cur.name).is_none() {
            problems.push(format!(
                "scenario '{}' not in baseline — regenerate results/storage_chaos_baseline.json",
                cur.name
            ));
        }
    }
    problems
}

// ---------------------------------------------------------------------
// Workload + crash-state sweep machinery
// ---------------------------------------------------------------------

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cds-storage-chaos-{tag}-{}", std::process::id()))
}

fn fresh_dir(path: &Path) -> Result<(), String> {
    let _ = std::fs::remove_dir_all(path);
    std::fs::create_dir_all(path).map_err(|e| format!("create {}: {e}", path.display()))
}

/// The option every journal sequence number was accepted as — shared
/// by the workload writer and nothing else (resume re-reads it from
/// the journal itself).
fn workload_option(i: u32) -> CdsOption {
    let maturity = 2.0 + (i % 5) as f64;
    let recovery = 0.2 + (i % 3) as f64 * 0.1;
    CdsOption::new(maturity, PaymentFrequency::Quarterly, recovery)
}

/// One server-journal workload: `accepts` quotes, completions for the
/// first `dones` of them (spreads priced on the deterministic CPU
/// engine, exactly as the server would under the boot epoch), and
/// optionally the drain finalize. Fault-layer errors are tolerated —
/// the writer is fail-stop and the point is what the disk holds after.
struct WalWorkload {
    trace: Vec<JournalOp>,
    journal: PathBuf,
    faults_fired: bool,
    write_failed: bool,
}

fn run_wal_workload(
    tag: &str,
    seed: u64,
    plan: Option<StorageFaultPlan>,
    accepts: u32,
    dones: u32,
    finalize: bool,
) -> Result<WalWorkload, String> {
    let root = scratch_dir(tag);
    fresh_dir(&root)?;
    let journal = root.join("journal.wal");
    let recorder = Arc::new(RecordingJournalIo::over(Arc::new(OsJournalIo::new())));
    let faulty = plan.map(|p| Arc::new(FaultyJournalIo::over(recorder.clone(), p)));
    let io: Arc<dyn JournalIo> = match &faulty {
        Some(f) => f.clone(),
        None => recorder.clone(),
    };
    let engine = CpuCdsEngine::new(&MarketData::paper_workload(seed));
    let mut write_failed = false;
    let wal = WalWriter::create_with_io(io, &journal, seed, 2).map_err(|e| e.to_string())?;
    for i in 0..accepts {
        write_failed |= wal.accept(100 + i as u64, &workload_option(i), Priority::High).is_err();
    }
    for i in 0..dones.min(accepts) {
        let spread = engine.price(&workload_option(i)).spread_bps;
        write_failed |= wal.done(i, spread).is_err();
    }
    if finalize {
        write_failed |= wal.finalize().is_err();
    }
    drop(wal);
    Ok(WalWorkload {
        trace: recorder.trace(),
        journal,
        faults_fired: faulty.map(|f| f.counters().any()).unwrap_or(false),
        write_failed,
    })
}

/// Outcome of sweeping every crash state of one trace.
struct Sweep {
    states: u64,
    typed: u64,
    resumed: u64,
    silent: u64,
}

/// `candidate` must be a bit-identical prefix of `reference` —
/// element-wise `(seq, id, bits)`, in order. A crash state may hold
/// *less* of the run than the uninterrupted disk, never different
/// work.
fn is_clean_prefix(candidate: &ResumeReport, reference: &ResumeReport) -> bool {
    candidate.spreads.len() <= reference.spreads.len()
        && candidate
            .spreads
            .iter()
            .zip(&reference.spreads)
            .all(|(a, b)| a.0 == b.0 && a.1 == b.1 && a.2.to_bits() == b.2.to_bits())
}

/// Enumerate every crash state of `trace`, materialise each under a
/// scratch root, and resume it. Every state must resume to a clean
/// prefix of `reference` or fail typed; panics and bit-mismatches are
/// silent corruption.
fn sweep_wal_crash_states(
    tag: &str,
    trace: &[JournalOp],
    recorded_root: &Path,
    journal_name: &str,
    reference: &ResumeReport,
) -> Result<Sweep, String> {
    let states = enumerate_crash_states(trace, &CrashPlan::default());
    let target_root = scratch_dir(&format!("{tag}-state"));
    let mut sweep = Sweep { states: states.len() as u64, typed: 0, resumed: 0, silent: 0 };
    for state in &states {
        fresh_dir(&target_root)?;
        state
            .materialize(recorded_root, &target_root)
            .map_err(|e| format!("materialize {}: {e}", state.label))?;
        let target_journal = target_root.join(journal_name);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            resume_journal(&target_journal)
        }));
        match outcome {
            Ok(Ok(report)) if is_clean_prefix(&report, reference) => sweep.resumed += 1,
            Ok(Ok(_)) | Err(_) => sweep.silent += 1,
            Ok(Err(_)) => sweep.typed += 1,
        }
    }
    let _ = std::fs::remove_dir_all(&target_root);
    Ok(sweep)
}

/// Shared body for the server-journal scenarios: run the workload,
/// resume the intact disk as the reference, sweep every crash state.
#[allow(clippy::too_many_arguments)]
fn wal_scenario(
    name: &str,
    tag: &str,
    seed: u64,
    plan: Option<StorageFaultPlan>,
    accepts: u32,
    dones: u32,
    finalize: bool,
    expect_ordering: bool,
    expect_faults: bool,
) -> Result<StorageChaosCase, String> {
    let w = run_wal_workload(tag, seed, plan, accepts, dones, finalize)?;
    // The intact disk is itself the final crash state; it must resume.
    let reference = resume_journal(&w.journal)
        .map_err(|e| format!("{name}: intact journal must resume: {e}"))?;
    let ordering_held = sync_ordering_held(&w.trace);
    let root = w.journal.parent().ok_or("journal has a parent")?.to_path_buf();
    let sweep = sweep_wal_crash_states(tag, &w.trace, &root, "journal.wal", &reference)?;
    let _ = std::fs::remove_dir_all(&root);
    let zero_silent = sweep.silent == 0;
    let faults_ok = if expect_faults { w.faults_fired && w.write_failed } else { !w.write_failed };
    Ok(StorageChaosCase {
        name: name.to_string(),
        zero_silent_corruption: zero_silent,
        ordering_held,
        survived: zero_silent && ordering_held == expect_ordering && faults_ok && sweep.states > 0,
        states: sweep.states,
        typed: sweep.typed,
        resumed: sweep.resumed,
    })
}

/// Engine-sidecar scenario: a streaming run persists its checkpoint
/// sidecar through the recorded IO ([`Checkpoint::persist`] =
/// tmp → fsync → rename → dir sync); every crash state of that trace
/// must either [`Checkpoint::load`] + [`resume_streaming_from`] to the
/// uninterrupted spreads bit-for-bit, fail typed, or hold no sidecar
/// at all (a from-scratch rerun, trivially clean).
fn scenario_engine_sidecar(seed: u64) -> Result<StorageChaosCase, String> {
    let tag = "engine-sidecar";
    let root = scratch_dir(tag);
    fresh_dir(&root)?;
    let sidecar = root.join("stream.ckpt");
    let recorder = Arc::new(RecordingJournalIo::over(Arc::new(OsJournalIo::new())));

    let market = Rc::new(MarketData::paper_workload(seed));
    let config = EngineVariant::Vectorised.config();
    let n = 8usize;
    let options: Vec<CdsOption> = (0..n as u32).map(workload_option).collect();
    let arrivals: Vec<u64> = (0..n as u64).map(|i| i * 30_000).collect();
    let policy =
        StreamingPolicy { scenario: Some(STREAM_SCENARIO.to_string()), ..Default::default() };
    let mut persist_err: Option<String> = None;
    let clean = run_streaming_checkpointed(
        market.clone(),
        &config,
        &options,
        &arrivals,
        &policy,
        3,
        |cp| {
            if persist_err.is_none() {
                if let Err(e) = cp.persist(recorder.as_ref(), &sidecar) {
                    persist_err = Some(e.to_string());
                }
            }
        },
    )
    .map_err(|e| e.to_string())?;
    if let Some(e) = persist_err {
        return Err(format!("sidecar persist failed: {e}"));
    }

    let trace = recorder.trace();
    let ordering_held = sync_ordering_held(&trace);
    let states = enumerate_crash_states(&trace, &CrashPlan::default());
    let target_root = scratch_dir(&format!("{tag}-state"));
    let mut sweep = Sweep { states: states.len() as u64, typed: 0, resumed: 0, silent: 0 };
    for state in &states {
        fresh_dir(&target_root)?;
        state.materialize(&root, &target_root).map_err(|e| e.to_string())?;
        let target = target_root.join("stream.ckpt");
        if !target.exists() {
            // No durable sidecar: a resume restarts from scratch,
            // which is the clean run by construction.
            sweep.resumed += 1;
            continue;
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let cp = Checkpoint::load(&target)?;
            resume_streaming_from(market.clone(), &config, &options, &arrivals, &policy, &cp)
        }));
        match outcome {
            Ok(Ok(resumed)) if resumed.spreads == clean.spreads => sweep.resumed += 1,
            Ok(Ok(_)) | Err(_) => sweep.silent += 1,
            Ok(Err(_)) => sweep.typed += 1,
        }
    }
    let _ = std::fs::remove_dir_all(&target_root);
    let _ = std::fs::remove_dir_all(&root);
    let zero_silent = sweep.silent == 0;
    Ok(StorageChaosCase {
        name: "storage/engine-sidecar-stream".to_string(),
        zero_silent_corruption: zero_silent,
        ordering_held,
        survived: zero_silent && ordering_held && sweep.states > 0,
        states: sweep.states,
        typed: sweep.typed,
        resumed: sweep.resumed,
    })
}

/// Merge two sub-cases of one scenario (verdicts AND, counts summed).
fn merge(name: &str, a: StorageChaosCase, b: StorageChaosCase) -> StorageChaosCase {
    StorageChaosCase {
        name: name.to_string(),
        zero_silent_corruption: a.zero_silent_corruption && b.zero_silent_corruption,
        ordering_held: a.ordering_held && b.ordering_held,
        survived: a.survived && b.survived,
        states: a.states + b.states,
        typed: a.typed + b.typed,
        resumed: a.resumed + b.resumed,
    }
}

/// Execute the storage chaos matrix. Deterministic in `seed`.
pub fn run(seed: u64) -> Result<StorageChaosReport, String> {
    // Append indices: 0 is the journal header, 1..=6 the accepts, 7..
    // the done lines — so append-fault index 8 lands mid-completion.
    let cases = vec![
        wal_scenario("storage/clean-run", "clean", seed, None, 6, 6, true, true, false)?,
        wal_scenario("storage/kill-resume", "kill", seed, None, 6, 3, false, true, false)?,
        wal_scenario("storage/mid-drain-pending", "drain", seed, None, 6, 3, true, true, false)?,
        wal_scenario(
            "storage/enospc-append",
            "enospc",
            seed,
            Some(StorageFaultPlan::new(seed).enospc_at(8)),
            6,
            6,
            true,
            true,
            true,
        )?,
        merge(
            "storage/eio-short-write",
            wal_scenario(
                "storage/eio-short-write",
                "eio",
                seed,
                Some(StorageFaultPlan::new(seed).eio_at(8)),
                6,
                6,
                true,
                true,
                true,
            )?,
            wal_scenario(
                "storage/eio-short-write",
                "short",
                seed,
                Some(StorageFaultPlan::new(seed ^ 0x5eed).short_write_at(8)),
                6,
                6,
                true,
                true,
                true,
            )?,
        ),
        // Every fsync lies: nothing the writer "synced" is actually
        // durable, so the trace honestly fails the ordering check —
        // and the crash sweep must STILL find zero silent states
        // (checkpoint commit markers and cross-validation turn every
        // half-landed sidecar into a typed refusal).
        wal_scenario(
            "storage/lying-fsync",
            "liar",
            seed,
            Some(StorageFaultPlan::new(seed).lying_fsync_from(0)),
            6,
            6,
            true,
            false,
            false,
        )?,
        scenario_engine_sidecar(seed)?,
    ];
    Ok(StorageChaosReport { schema_version: SCHEMA_VERSION, seed, cases })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(name: &str, survived: bool) -> StorageChaosCase {
        StorageChaosCase {
            name: name.to_string(),
            zero_silent_corruption: true,
            ordering_held: true,
            survived,
            states: 100,
            typed: 40,
            resumed: 60,
        }
    }

    #[test]
    fn report_round_trips_and_gates_on_verdicts_only() {
        let report = StorageChaosReport {
            schema_version: SCHEMA_VERSION,
            seed: 42,
            cases: vec![case("storage/a", true), case("storage/b", true)],
        };
        let parsed = StorageChaosReport::parse(&report.pretty()).expect("parse");
        // Counts are not serialised; verdict comparison still passes.
        assert!(compare(&parsed, &report).is_empty());
        let mut flipped = report.clone();
        flipped.cases[1].ordering_held = false;
        let problems = compare(&parsed, &flipped);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("storage/b"), "{problems:?}");
    }

    #[test]
    fn compare_flags_missing_and_new_scenarios() {
        let baseline = StorageChaosReport {
            schema_version: SCHEMA_VERSION,
            seed: 42,
            cases: vec![case("storage/a", true)],
        };
        let current = StorageChaosReport {
            schema_version: SCHEMA_VERSION,
            seed: 42,
            cases: vec![case("storage/new", true)],
        };
        let problems = compare(&baseline, &current);
        assert_eq!(problems.len(), 2, "{problems:?}");
    }

    #[test]
    fn schema_version_is_enforced() {
        let report = StorageChaosReport { schema_version: SCHEMA_VERSION, seed: 1, cases: vec![] };
        let bumped = report.pretty().replace("\"schema_version\": 1", "\"schema_version\": 9");
        assert!(StorageChaosReport::parse(&bumped).expect_err("gate").contains("regenerate"));
    }

    /// The full sweep is the CI gate's job; here one cheap scenario
    /// proves the machinery end to end (enumerate → materialise →
    /// resume) with zero silent states.
    #[test]
    fn kill_resume_sweep_finds_zero_silent_states() {
        let case =
            wal_scenario("storage/kill-resume", "unit-kill", 7, None, 3, 1, false, true, false)
                .expect("scenario runs");
        assert!(case.states > 0);
        assert!(case.zero_silent_corruption, "{case:?}");
        assert!(case.ordering_held, "{case:?}");
        assert!(case.survived, "{case:?}");
        assert_eq!(case.typed + case.resumed, case.states);
    }
}
