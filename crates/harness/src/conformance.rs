//! `cds-harness conformance` — drive the differential conformance suite
//! (metamorphic oracle + cross-variant fuzzer) and replay the committed
//! corpus as a CI gate.
//!
//! Three layers, all reported together:
//!
//! 1. **relations** — every metamorphic relation checked against the
//!    reference pricer and every [`PriceRoute`] on canonical probes;
//! 2. **fuzz** — `--options N` seeded adversarial cases through every
//!    route, spreads compared to the reference under
//!    [`UlpComparator::ENGINE_F64`], failures shrunk to minimal
//!    reproducers;
//! 3. **corpus** (`--check DIR`) — every `*.case` file replayed through
//!    every route and the oracle; any divergence or violation fails the
//!    gate.

use crate::json::Json;
use cds_conformance::case::ConformanceCase;
use cds_conformance::differential::{fuzz, route_failures, FuzzReport};
use cds_conformance::oracle::{ReferenceModel, Relation, RouteModel, SpreadModel};
use cds_engine::route::PriceRoute;
use cds_quant::option::{CdsOption, MarketData, PaymentFrequency};
use cds_quant::ulp::UlpComparator;
use std::path::Path;

/// Default number of fuzz cases per `conformance` run (each case prices
/// 1–5 options through all seventeen routes).
pub const DEFAULT_FUZZ_CASES: u64 = 48;

/// One relation×model verdict from the sweep.
#[derive(Debug, Clone)]
pub struct RelationOutcome {
    /// Relation label.
    pub relation: String,
    /// Model (reference or route) label.
    pub model: String,
    /// `None` when satisfied, the violation evidence otherwise.
    pub violation: Option<String>,
}

/// One corpus case replay.
#[derive(Debug, Clone)]
pub struct CorpusOutcome {
    /// File stem of the corpus case.
    pub name: String,
    /// Route divergences (empty = clean).
    pub route_failures: Vec<String>,
    /// Oracle violations on the reference model (empty = clean).
    pub relation_violations: Vec<String>,
}

/// Full conformance report.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Fuzz-stream seed.
    pub seed: u64,
    /// Relation sweep outcomes (relations × models × probes collapsed
    /// to worst per relation×model).
    pub relations: Vec<RelationOutcome>,
    /// Differential fuzz summary.
    pub fuzz: FuzzReport,
    /// Corpus replays (empty when `--check` was not given).
    pub corpus: Vec<CorpusOutcome>,
}

impl ConformanceReport {
    /// True when nothing anywhere diverged or violated a relation.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.relations.iter().all(|r| r.violation.is_none())
            && self.fuzz.failures.is_empty()
            && self
                .corpus
                .iter()
                .all(|c| c.route_failures.is_empty() && c.relation_violations.is_empty())
    }

    /// Serialise for `--json`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let relations = self
            .relations
            .iter()
            .map(|r| {
                Json::object(vec![
                    ("relation", Json::Str(r.relation.clone())),
                    ("model", Json::Str(r.model.clone())),
                    ("violation", r.violation.clone().map_or(Json::Null, Json::Str)),
                ])
            })
            .collect();
        let fuzz_failures = self
            .fuzz
            .failures
            .iter()
            .map(|f| {
                Json::object(vec![
                    ("seed", Json::Number(f.seed as f64)),
                    ("index", Json::Number(f.index as f64)),
                    ("case", Json::Str(f.shrunk.to_text())),
                    (
                        "failures",
                        Json::Array(
                            f.failures.iter().map(|rf| Json::Str(rf.to_string())).collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let corpus = self
            .corpus
            .iter()
            .map(|c| {
                Json::object(vec![
                    ("name", Json::Str(c.name.clone())),
                    (
                        "route_failures",
                        Json::Array(c.route_failures.iter().cloned().map(Json::Str).collect()),
                    ),
                    (
                        "relation_violations",
                        Json::Array(c.relation_violations.iter().cloned().map(Json::Str).collect()),
                    ),
                ])
            })
            .collect();
        Json::object(vec![
            ("schema", Json::Str("cds-conformance/v1".to_string())),
            ("seed", Json::Number(self.seed as f64)),
            ("routes", Json::Number(self.fuzz.routes as f64)),
            ("fuzz_cases", Json::Number(self.fuzz.cases as f64)),
            ("options_priced", Json::Number(self.fuzz.options_priced as f64)),
            ("clean", Json::Bool(self.clean())),
            ("relations", Json::Array(relations)),
            ("fuzz_failures", Json::Array(fuzz_failures)),
            ("corpus", Json::Array(corpus)),
        ])
    }
}

/// Canonical probe inputs for the relation sweep: one rough market with
/// a liquid-tenor option, one flat market at a Listing-1 boundary
/// maturity with zero recovery.
fn probes() -> Vec<(MarketData<f64>, CdsOption)> {
    vec![
        (MarketData::paper_workload(11), CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40)),
        (MarketData::flat(0.03, 0.04, 64), CdsOption::new(1.75, PaymentFrequency::Quarterly, 0.0)),
    ]
}

/// Check every relation against the reference and every route; report
/// the first violation per relation×model (or none).
#[must_use]
pub fn relation_sweep() -> Vec<RelationOutcome> {
    let probes = probes();
    let mut models: Vec<Box<dyn SpreadModel>> = vec![Box::new(ReferenceModel)];
    models.extend(PriceRoute::ALL.map(|r| Box::new(RouteModel::new(r)) as Box<dyn SpreadModel>));
    let mut out = Vec::with_capacity(models.len() * Relation::ALL.len());
    for model in &models {
        for relation in Relation::ALL {
            let violation = probes
                .iter()
                .find_map(|(m, o)| relation.check(model.as_ref(), m, o).err())
                .map(|v| v.to_string());
            out.push(RelationOutcome {
                relation: relation.label().to_string(),
                model: model.name().to_string(),
                violation,
            });
        }
    }
    out
}

/// Replay every `*.case` file under `dir`.
///
/// `Err` is an environment problem (unreadable directory, malformed
/// case file) — the caller should exit 2, not 1: a broken corpus is not
/// an engine regression.
pub fn check_corpus(dir: &Path, cmp: &UlpComparator) -> Result<Vec<CorpusOutcome>, String> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus directory {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    entries.sort();
    if entries.is_empty() {
        return Err(format!("corpus directory {} holds no .case files", dir.display()));
    }
    let mut out = Vec::with_capacity(entries.len());
    for path in entries {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let case = ConformanceCase::parse(&text)
            .map_err(|e| format!("malformed corpus case {}: {e}", path.display()))?;
        let name = path
            .file_stem()
            .map_or_else(|| case.name.clone(), |s| s.to_string_lossy().into_owned());
        let failures = route_failures(&case, cmp)
            .map_err(|e| format!("corpus case {} is unpriceable: {e}", path.display()))?;
        let market =
            case.build_market().map_err(|e| format!("corpus case {}: {e}", path.display()))?;
        let mut violations = Vec::new();
        for option in &case.options {
            for relation in Relation::ALL {
                if let Err(v) = relation.check(&ReferenceModel, &market, option) {
                    violations.push(v.to_string());
                }
            }
        }
        out.push(CorpusOutcome {
            name,
            route_failures: failures.iter().map(ToString::to_string).collect(),
            relation_violations: violations,
        });
    }
    Ok(out)
}

/// Run the full suite: relation sweep + differential fuzz (+ corpus
/// replay when `corpus_dir` is given).
pub fn run(
    seed: u64,
    fuzz_cases: u64,
    corpus_dir: Option<&Path>,
) -> Result<ConformanceReport, String> {
    let cmp = UlpComparator::ENGINE_F64;
    let relations = relation_sweep();
    let fuzz_report = fuzz(seed, fuzz_cases, &cmp);
    let corpus = match corpus_dir {
        Some(dir) => check_corpus(dir, &cmp)?,
        None => Vec::new(),
    };
    Ok(ConformanceReport { seed, relations, fuzz: fuzz_report, corpus })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_default_run_is_clean() {
        let report = match run(7, 6, None) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        };
        assert!(report.clean(), "{:?}", report.to_json().pretty());
        // 1 reference + 17 routes, 8 relations each.
        assert_eq!(report.relations.len(), (1 + PriceRoute::ALL.len()) * Relation::ALL.len());
    }

    #[test]
    fn report_json_round_trips_through_the_parser() {
        let report = match run(7, 2, None) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        };
        let text = report.to_json().pretty();
        let parsed = match crate::json::parse(&text) {
            Ok(j) => j,
            Err(e) => panic!("{e}"),
        };
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some("cds-conformance/v1"));
        assert_eq!(parsed.get("clean"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("routes").and_then(Json::as_f64), Some(PriceRoute::ALL.len() as f64));
    }

    #[test]
    fn a_missing_corpus_directory_is_an_environment_error() {
        let err = match check_corpus(Path::new("/nonexistent-corpus"), &UlpComparator::ENGINE_F64) {
            Err(e) => e,
            Ok(_) => panic!("missing directory accepted"),
        };
        assert!(err.contains("cannot read corpus directory"), "{err}");
    }
}
